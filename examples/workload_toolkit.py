#!/usr/bin/env python
"""Workload toolkit: model a machine's job mix and audit the schedule.

Shows the trace-side API end to end:

1. build a custom workload with :class:`repro.traces.WorkloadModel`
   (sizes with power-of-two mass and 256-node spikes, log-normal run
   times, diurnal Poisson arrivals);
2. export/import it as Standard Workload Format (the archive format of
   the real Thunder/Atlas logs);
3. simulate it under Jigsaw with a schedule audit log, and report how
   the scheduler actually ran it — backfill share, waits by size class,
   a utilization sparkline.

Run:  python examples/workload_toolkit.py
"""

import io

from repro import FatTree, Simulator, make_allocator
from repro.experiments.report import render_sparkline
from repro.sched.log import ScheduleLog
from repro.sched.metrics import utilization_timeline
from repro.traces import WorkloadModel, read_swf, write_swf


def main() -> None:
    model = WorkloadModel(
        name="demo-cluster",
        system_nodes=1024,
        mean_size=14,
        max_size=256,
        pow2_fraction=0.5,
        spikes=((256, 0.002), (128, 0.005)),
        runtime="lognormal",
        median_runtime=500.0,
        sigma=1.4,
        max_runtime=86_400.0,
        arrivals="poisson",
        load=1.0,
        diurnal=True,
    )
    trace = model.generate(num_jobs=2_000, seed=7)
    stats = trace.stats()
    print(f"generated {stats.num_jobs} jobs, max {stats.max_job_nodes} "
          f"nodes, run times {stats.min_runtime:.0f}-{stats.max_runtime:.0f}s")

    # Round-trip through the archive format.
    buf = io.StringIO()
    write_swf(trace, buf)
    buf.seek(0)
    trace = read_swf(buf, name=trace.name, system_nodes=1024)
    print(f"SWF round-trip: {len(trace)} jobs preserved\n")

    tree = FatTree.from_radix(16)
    log = ScheduleLog()
    sim = Simulator(make_allocator("jigsaw", tree), event_log=log)
    result = sim.run(trace)

    print(result.summary())
    print(f"starts by mechanism: {dict(log.start_mechanisms())} "
          f"({100 * log.backfill_fraction:.0f}% backfilled)")
    print(f"bounded slowdown: {result.mean_bounded_slowdown():.2f}")
    print("mean turnaround by size class (s):")
    for label, mean in result.turnaround_by_size_class().items():
        print(f"  {label:>6} nodes: {mean:10.0f}")
    series = [u for _, u in utilization_timeline(result, buckets=60)]
    print(f"utilization timeline: |{render_sparkline(series)}|")


if __name__ == "__main__":
    main()
