#!/usr/bin/env python
"""Fault drill: operating an isolating scheduler on a degrading fabric.

A day in the life of the machine room: jobs run under Jigsaw with the
subnet manager maintaining routing tables; hardware fails — a node, a
cable, a whole leaf switch, a spine — and the allocator keeps placing
jobs around the damage while every live partition stays isolated and
internally routable.  Repairs bring capacity back.

Run:  python examples/fault_drill.py
"""

import random

from repro import FatTree, make_allocator
from repro.core.conditions import check_allocation
from repro.routing.subnet import SubnetManager
from repro.topology.faults import FaultInjector
from repro.topology.fattree import LinkId
from repro.topology.render import render_free_summary


def place_some(allocator, manager, rng, next_id, count=6):
    placed = []
    for _ in range(count):
        next_id += 1
        alloc = allocator.allocate(next_id, rng.choice([3, 5, 8, 12, 20]))
        if alloc is None:
            continue
        manager.install(alloc)
        violations = check_allocation(allocator.tree, alloc)
        assert not violations, violations
        placed.append(alloc)
    return placed, next_id


def main() -> None:
    rng = random.Random(7)
    tree = FatTree.from_radix(8)
    allocator = make_allocator("jigsaw", tree)
    manager = SubnetManager(tree)
    injector = FaultInjector(allocator)
    print(f"cluster: {tree.describe()}\n")

    placed, next_id = place_some(allocator, manager, rng, 0)
    print(f"phase 1 — healthy fabric: placed {len(placed)} jobs, "
          f"{allocator.free_nodes} nodes free")

    print("\nphase 2 — failures:")
    from repro.topology.state import AllocationError

    attempts = [
        ("node", lambda: injector.fail_node(
            allocator.state.free_node_ids(30, 1)[0])),
        ("cable", lambda: injector.fail_leaf_link(LinkId(28, 1))),
        ("leaf switch", lambda: injector.fail_leaf_switch(29)),
        ("spine (2,3)", lambda: injector.fail_spine(2, 3)),
        ("spine (3,3)", lambda: injector.fail_spine(3, 3)),
    ]
    for label, fail in attempts:
        try:
            ticket = fail()
            print(f"  failed {ticket.kind}: {ticket.target}")
        except AllocationError:
            # a live job owns part of that hardware: in reality the
            # operator drains the job first — refusing is the safe move
            print(f"  {label}: in use by a live job, drain required first")
    print(f"  free nodes now: {allocator.free_nodes}")

    more, next_id = place_some(allocator, manager, rng, next_id)
    ok = all(not check_allocation(tree, a) for a in more)
    print(f"\nphase 3 — scheduling around damage: placed {len(more)} more "
          f"jobs, all condition-compliant: {ok}")
    sample = more[0] if more else placed[0]
    nodes = sorted(sample.nodes)
    if len(nodes) > 1:
        path = manager.forward(nodes[0], nodes[-1])
        print(f"  sample route inside job {sample.job_id}: "
              f"{' -> '.join(str(s) for s in path)}")

    print("\nphase 4 — repairs:")
    repaired = injector.repair_all()
    print(f"  repaired {repaired} faults; free nodes: {allocator.free_nodes}")
    print("\nper-pod state after the drill:")
    print(render_free_summary(allocator.state))


if __name__ == "__main__":
    main()
