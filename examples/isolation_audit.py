#!/usr/bin/env python
"""Isolation audit: see the paper's guarantees on a live cluster.

Places several jobs with Jigsaw on a small fat-tree and demonstrates,
job by job:

1. the allocation satisfies the formal conditions of section 3.2
   (independently re-checked);
2. plain D-mod-k routing would leak the job's traffic onto links it
   does not own (Figure 5, left);
3. Jigsaw's partition routing confines every source-destination pair to
   allocated links (Figure 5, right);
4. the partition is rearrangeable non-blocking: a random permutation of
   the job's nodes routes at one flow per link per direction
   (Theorem 6, executed).

Run:  python examples/isolation_audit.py
"""

import random

from repro import FatTree, make_allocator
from repro.core.conditions import check_allocation
from repro.routing import (
    PartitionRouter,
    dmodk_route,
    route_permutation,
    route_stays_inside,
    verify_one_flow_per_link,
)

JOB_SIZES = [5, 11, 16, 20, 9]


def audit_job(tree, alloc) -> None:
    print(f"\njob {alloc.job_id}: {alloc.size} nodes, shape {alloc.shape}")
    counts = alloc.leaf_node_counts(tree)
    layout = ", ".join(f"leaf {leaf}x{cnt}" for leaf, cnt in sorted(counts.items()))
    print(f"  layout: {layout}")
    print(f"  links owned: {len(alloc.leaf_links)} leaf, "
          f"{len(alloc.spine_links)} spine")

    violations = check_allocation(tree, alloc)
    print(f"  formal conditions: {'OK' if not violations else violations}")

    nodes = sorted(alloc.nodes)
    if len(nodes) == 1:
        print("  single-node job: no network to audit")
        return

    escapes = sum(
        1
        for src in nodes
        for dst in nodes
        if src != dst and not route_stays_inside(dmodk_route(tree, src, dst), alloc)
    )
    pairs = len(nodes) * (len(nodes) - 1)
    print(f"  plain D-mod-k: {escapes}/{pairs} pairs leave the allocation")

    router = PartitionRouter(tree, alloc)
    confined = all(
        route_stays_inside(router.route(src, dst), alloc)
        for src in nodes
        for dst in nodes
        if src != dst
    )
    print(f"  partition routing confined: {confined}")

    rng = random.Random(alloc.job_id)
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    perm = dict(zip(nodes, shuffled))
    assignments = route_permutation(tree, alloc, perm)
    bad = verify_one_flow_per_link(tree, alloc, assignments)
    print(f"  random permutation, one flow per link: "
          f"{'OK' if not bad else bad[:2]}")


def main() -> None:
    tree = FatTree.from_radix(8)
    print(f"cluster: {tree.describe()}")
    allocator = make_allocator("jigsaw", tree)
    for jid, size in enumerate(JOB_SIZES, start=1):
        alloc = allocator.allocate(jid, size)
        if alloc is None:
            print(f"\njob {jid}: no legal placement for {size} nodes right now")
            continue
        audit_job(tree, alloc)


if __name__ == "__main__":
    main()
