#!/usr/bin/env python
"""Capacity planning with isolation-aware scheduling.

A procurement-style question the library answers directly: *given our
workload, what is the smallest full fat-tree on which Jigsaw's
interference-free scheduling still beats traditional scheduling on
turnaround?*  For each candidate switch radix, this script simulates the
same workload under Baseline (no isolation, full interference) and
Jigsaw with a conservative 10 % isolation speed-up, and reports the
crossover.

Run:  python examples/capacity_planning.py
"""

from repro import FatTree, Simulator, make_allocator
from repro.experiments.report import render_table
from repro.sched.speedup import apply_scenario
from repro.traces import cab_like

RADICES = (14, 16, 18, 20)


def main() -> None:
    # A Cab-like month of demand, arrivals preserved.
    trace = cab_like("sep", num_jobs=1200, seed=0)
    print(f"workload: {len(trace)} jobs, max {trace.stats().max_job_nodes} "
          f"nodes, arrivals retained\n")

    rows = {}
    for radix in RADICES:
        tree = FatTree.from_radix(radix)
        if tree.num_nodes < trace.stats().max_job_nodes:
            continue
        apply_scenario(trace.jobs, "none")
        base = Simulator(make_allocator("baseline", tree)).run(trace)
        apply_scenario(trace.jobs, "10%")
        jig = Simulator(make_allocator("jigsaw", tree)).run(trace)
        rows[f"radix-{radix} ({tree.num_nodes} nodes)"] = {
            "baseline util %": base.steady_state_utilization,
            "jigsaw util %": jig.steady_state_utilization,
            "turnaround ratio": jig.mean_turnaround / base.mean_turnaround,
            "jigsaw wins": "yes" if jig.mean_turnaround < base.mean_turnaround
            else "no",
        }

    print(render_table(
        "Smallest isolating cluster for a Cab-like month "
        "(10% isolation speed-up; ratio < 1 means Jigsaw wins)",
        rows,
        ["baseline util %", "jigsaw util %", "turnaround ratio", "jigsaw wins"],
        row_header="Cluster",
    ))


if __name__ == "__main__":
    main()
