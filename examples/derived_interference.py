#!/usr/bin/env python
"""Scenario-free evaluation: interference penalties derived, not assumed.

The paper evaluates turnaround/makespan under *assumed* isolation
speed-ups (5-20 %).  This script replaces the assumption with the
contention-aware runtime model: each starting job's communication flows
are routed on the fabric, and its runtime stretches with the worst link
sharing it encounters.  Isolating schemes stretch by exactly nothing —
their partitions share no links — so whatever advantage they show here
is earned, not configured.

Run:  python examples/derived_interference.py
"""

from repro import FatTree, Simulator, make_allocator
from repro.experiments.report import render_table
from repro.sched.interference import ContentionRuntimeModel
from repro.traces import synthetic_trace

SCHEMES = ("baseline", "jigsaw", "laas", "ta")


def main() -> None:
    tree = FatTree.from_radix(8)
    trace = synthetic_trace(6, num_jobs=600, seed=1, max_size=tree.num_nodes)
    print(f"cluster: {tree.describe()}")
    print(f"workload: {len(trace)} jobs; contention model alpha=0.3, "
          f"mixed communication patterns (30% quiet)\n")

    results = {}
    for scheme in SCHEMES:
        model = ContentionRuntimeModel(tree, alpha=0.3, seed=0)
        sim = Simulator(make_allocator(scheme, tree), runtime_model=model)
        results[scheme] = sim.run(trace)

    base = results["baseline"]
    rows = {}
    for scheme, result in results.items():
        rows[scheme] = {
            "utilization %": result.steady_state_utilization,
            "turnaround vs baseline": result.mean_turnaround
            / base.mean_turnaround,
            "makespan vs baseline": result.makespan / base.makespan,
        }
    print(render_table(
        "Derived comparison (no assumed speed-up scenarios)",
        rows,
        ["utilization %", "turnaround vs baseline", "makespan vs baseline"],
        row_header="Scheme",
    ))
    print(
        "\nDespite lower utilization, every isolating scheme beats the\n"
        "traditional scheduler once interference is accounted for --\n"
        "and Jigsaw, with the highest isolating utilization, wins."
    )


if __name__ == "__main__":
    main()
