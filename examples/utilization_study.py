#!/usr/bin/env python
"""Utilization study: a miniature Figure 6.

Runs all five scheduling schemes from the paper over a chosen trace and
prints the utilization comparison plus each scheme's instantaneous-
utilization histogram (the Table 2 view).

Run:  python examples/utilization_study.py [trace-name]
      (default Synth-16; any of the nine paper traces works)
"""

import sys

from repro.experiments.report import render_table
from repro.experiments.runner import ALL_TRACE_NAMES, paper_setup, run_scheme

SCHEMES = ("baseline", "lc+s", "jigsaw", "laas", "ta")


def main(trace_name: str = "Synth-16") -> None:
    if trace_name not in ALL_TRACE_NAMES:
        raise SystemExit(f"unknown trace {trace_name!r}; pick from {ALL_TRACE_NAMES}")
    setup = paper_setup(trace_name, scale=0.01)
    print(f"trace: {setup.trace.name} ({len(setup.trace)} jobs) "
          f"on {setup.tree.num_nodes} nodes\n")

    rows = {}
    hists = {}
    for scheme in SCHEMES:
        result = run_scheme(setup, scheme)
        rows[scheme] = {
            "utilization %": result.steady_state_utilization,
            "makespan (h)": result.makespan / 3600,
            "sched ms/job": result.mean_sched_time_per_job * 1e3,
        }
        hists[scheme] = result.instant.as_row()

    print(render_table(
        f"Scheme comparison on {trace_name}",
        rows,
        ["utilization %", "makespan (h)", "sched ms/job"],
        row_header="Scheme",
    ))
    print()
    print(render_table(
        "Instantaneous utilization histogram (event samples per range)",
        hists,
        list(next(iter(hists.values()))),
        row_header="Scheme",
    ))


if __name__ == "__main__":
    main(*sys.argv[1:2] or ["Synth-16"])
