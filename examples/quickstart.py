#!/usr/bin/env python
"""Quickstart: schedule a synthetic workload with and without isolation.

Builds the paper's 1024-node cluster (radix-16 full fat-tree), generates
a Synth-16-style trace, and compares the traditional Baseline scheduler
against Jigsaw: utilization, turnaround, makespan, and scheduling time.

Run:  python examples/quickstart.py
"""

from repro import FatTree, Simulator, make_allocator
from repro.sched.speedup import apply_scenario
from repro.traces import synthetic_trace


def main() -> None:
    tree = FatTree.from_radix(16)
    print(f"cluster: {tree.describe()}")

    trace = synthetic_trace(mean_size=16, num_jobs=800, seed=1,
                            max_size=tree.num_nodes)
    print(f"workload: {len(trace)} jobs, "
          f"max {trace.stats().max_job_nodes} nodes\n")

    # Assume jobs larger than four nodes run 10 % faster when their
    # network partition is interference-free (the paper's 10 % scenario).
    apply_scenario(trace.jobs, "10%")

    for scheme in ("baseline", "jigsaw"):
        result = Simulator(make_allocator(scheme, tree)).run(trace)
        print(result.summary())

    print(
        "\nJigsaw trades a few utilization points for guaranteed network\n"
        "isolation; with even modest isolation speed-ups it matches or\n"
        "beats traditional scheduling on turnaround and makespan."
    )


if __name__ == "__main__":
    main()
