#!/usr/bin/env python
"""Interference study: measure what Jigsaw eliminates.

The paper's motivation (section 2.2) is that network-oblivious
scheduling lets jobs contend for links — communication-heavy benchmarks
slow down by up to 120 % under static routing.  This script packs a
cluster with jobs, drives a permutation traffic pattern inside every
job, and measures link sharing under three routing regimes:

1. **Baseline** — D-mod-k over the shared fabric: inter-job interference
   and self-congestion both occur;
2. **Jigsaw partitions, static routing** — inter-job interference is
   exactly zero (isolation), but a job can still congest itself, which
   is the *intra-job* interference that topology mapping addresses;
3. **Jigsaw partitions, rearranged routing** — the constructive proof
   of the paper's full-bandwidth theorem: one flow per link, slowdown
   factor 1.0.

Run:  python examples/interference_study.py
"""

import random

from repro import FatTree, make_allocator
from repro.routing.contention import contention_report

JOB_SIZES = [5, 11, 20, 9, 16, 33, 7, 13]


def main() -> None:
    tree = FatTree.from_radix(8)
    print(f"cluster: {tree.describe()}")

    allocator = make_allocator("jigsaw", tree)
    allocations = []
    for jid, size in enumerate(JOB_SIZES, start=1):
        alloc = allocator.allocate(jid, size)
        if alloc is not None:
            allocations.append(alloc)
    placed = sum(a.size for a in allocations)
    print(f"placed {len(allocations)} jobs, {placed}/{tree.num_nodes} nodes\n")

    # The same node placements, three routing regimes.  (Baseline would
    # place nodes differently, but using identical placements isolates
    # the effect of routing and link ownership.)
    regimes = {
        "baseline D-mod-k (shared fabric)": dict(),
        "jigsaw partitions, static routing": dict(use_partition_routing=True),
        "jigsaw partitions, rearranged routing": dict(
            use_partition_routing=True, rearranged=True
        ),
    }
    for seed in (1, 2):
        print(f"=== permutation traffic, seed {seed} ===")
        for label, kwargs in regimes.items():
            report = contention_report(tree, allocations, seed=seed, **kwargs)
            inter = sum(j.interfered_flows for j in report.jobs.values())
            print(
                f"  {label:40s} inter-job-interfered flows: {inter:3d}   "
                f"worst link: {report.max_link_sharing} flows   "
                f"mean slowdown: {report.mean_slowdown:4.2f}x"
            )
        print()

    print(
        "Isolation removes every inter-job conflict; the rearranged\n"
        "routing shows the partitions really do have full interconnect\n"
        "bandwidth (Theorem 6): any permutation, one flow per link."
    )


if __name__ == "__main__":
    main()
