#!/usr/bin/env python
"""Cluster map: watch placement shapes differ between schemes.

Feeds the same job sequence to Jigsaw, LaaS and TA and draws the
resulting node-ownership maps side by side — the paper's Figure 2 and
Figure 3, live.  Look for:

* **Jigsaw** — equal node counts per leaf plus one remainder leaf
  (letters fill leaves evenly, one ragged edge per job);
* **LaaS** — identical except jobs forced across pods occupy *whole*
  leaves, padding included (no ragged edge, wasted cells);
* **TA** — small jobs crammed into single leaves, mid jobs confined to
  one pod, and leaves hosting a multi-leaf job closed to other multi
  jobs (watch the free holes that nothing can use).

Run:  python examples/cluster_map.py
"""

from repro import FatTree, make_allocator
from repro.core.diagnostics import fragmentation_snapshot
from repro.topology.render import job_symbols, render_occupancy

JOB_SIZES = [5, 11, 3, 16, 9, 20, 2, 7, 13]


def main() -> None:
    tree = FatTree.from_radix(8)
    print(f"cluster: {tree.describe()}")
    print(f"job sizes, in arrival order: {JOB_SIZES}\n")

    for scheme in ("jigsaw", "laas", "ta"):
        allocator = make_allocator(scheme, tree)
        placed, skipped = [], []
        for jid, size in enumerate(JOB_SIZES, start=1):
            if allocator.allocate(jid, size) is not None:
                placed.append(jid)
            else:
                skipped.append((jid, size))
        symbols = job_symbols(placed)
        legend = "  ".join(
            f"{symbols[j]}={JOB_SIZES[j - 1]}n" for j in placed
        )
        print(f"=== {scheme} ===   {legend}")
        print(render_occupancy(allocator.state, symbols))
        if skipped:
            print(f"  could not place: {skipped}")
        snap = fragmentation_snapshot(allocator, probe_sizes=[1, 8, 16, 32])
        print(
            f"  free {snap.free_nodes} nodes "
            f"({snap.fully_free_leaves} full leaves, "
            f"{snap.shard_nodes} shard nodes); "
            f"padding {snap.padding_nodes}; "
            f"largest placeable {snap.largest_placeable}\n"
        )


if __name__ == "__main__":
    main()
