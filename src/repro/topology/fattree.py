"""Three-level fat-tree topology model.

The paper evaluates on *full* (maximal-size) three-level fat-trees built
from switches of a uniform radix ``r`` (section 5.1).  In such a tree:

* every **leaf** switch has ``r/2`` down-ports to compute nodes and
  ``r/2`` up-ports to the L2 switches of its pod;
* every **L2** switch has ``r/2`` down-ports to the leaves of its pod and
  ``r/2`` up-ports to spine switches;
* a **pod** (the paper's two-level sub-"tree") therefore contains ``r/2``
  leaves, ``r/2`` L2 switches, and ``(r/2)**2`` nodes;
* the machine has ``r`` pods, and spine switches are arranged in ``r/2``
  **groups** of ``r/2`` spines each.  Group ``i`` forms a full bipartite
  graph with the ``i``-th L2 switch of every pod — the partition the paper
  denotes ``T*_i`` (Figure 3).  There are no redundant spine-to-pod
  connections (Appendix A assumes maximal trees).

The node count is ``r**3 / 4``: radix 16, 18, 22 and 28 give exactly the
paper's 1024-, 1458-, 2662- and 5488-node clusters.

For generality (and for exercising the formal conditions on small
instances in tests) the :class:`XGFT` class models arbitrary
Extended-Generalized-Fat-Trees ``XGFT(3; m1, m2, m3; 1, w2, w3)`` with
``m1 = w2`` and ``m2 = w3`` (full bandwidth), of which the radix-``r``
full tree is the special case ``m1 = m2 = r/2, m3 = r``.

Link identity conventions used across the whole code base:

``LinkId(leaf, i)``
    the unique cable between global leaf ``leaf`` and the ``i``-th L2
    switch of that leaf's pod (``0 <= i < m1``);

``SpineLinkId(pod, i, j)``
    the unique cable between the ``i``-th L2 switch of pod ``pod`` and
    spine ``j`` of spine group ``i`` (``0 <= j < m2``).

Nodes are numbered globally and contiguously by leaf: node ``n`` lives on
leaf ``n // m1``, and leaf ``l`` lives in pod ``l // m2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, NamedTuple


class LinkId(NamedTuple):
    """Identity of a leaf-to-L2 cable (used in both directions)."""

    leaf: int
    l2_index: int


class SpineLinkId(NamedTuple):
    """Identity of an L2-to-spine cable (used in both directions)."""

    pod: int
    l2_index: int
    spine_index: int


@dataclass(frozen=True)
class XGFT:
    """A full-bandwidth three-level fat-tree ``XGFT(3; m1, m2, m3)``.

    Parameters
    ----------
    m1:
        Nodes per leaf.  Equals the number of L2 switches per pod
        (``w2 = m1``, the full-bandwidth condition at the leaf level).
    m2:
        Leaves per pod.  Equals the number of spines per L2 switch
        (``w3 = m2``, the full-bandwidth condition at the L2 level).
    m3:
        Number of pods.  Because every spine connects exactly once to
        each pod and has the same radix as every other switch only in
        *maximal* trees, ``m3`` may be at most ``2 * m2`` for a tree
        wired from uniform radix-``2*m2`` switches, but the model itself
        accepts any ``m3 >= 1``.
    """

    m1: int
    m2: int
    m3: int

    def __post_init__(self) -> None:
        if self.m1 < 1 or self.m2 < 1 or self.m3 < 1:
            raise ValueError(
                f"XGFT parameters must be positive, got "
                f"m1={self.m1}, m2={self.m2}, m3={self.m3}"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def nodes_per_leaf(self) -> int:
        return self.m1

    @property
    def leaves_per_pod(self) -> int:
        return self.m2

    @property
    def l2_per_pod(self) -> int:
        # Full bandwidth: as many L2 switches per pod as nodes per leaf.
        return self.m1

    @property
    def spines_per_group(self) -> int:
        # Full bandwidth: as many spines per L2 up-group as leaves per pod.
        return self.m2

    @property
    def num_pods(self) -> int:
        return self.m3

    @cached_property
    def nodes_per_pod(self) -> int:
        return self.m1 * self.m2

    @cached_property
    def num_leaves(self) -> int:
        return self.m2 * self.m3

    @cached_property
    def num_nodes(self) -> int:
        return self.m1 * self.m2 * self.m3

    @cached_property
    def num_l2(self) -> int:
        return self.l2_per_pod * self.m3

    @cached_property
    def num_spine_groups(self) -> int:
        return self.l2_per_pod

    @cached_property
    def num_spines(self) -> int:
        return self.num_spine_groups * self.spines_per_group

    @cached_property
    def num_leaf_links(self) -> int:
        """Total number of leaf-to-L2 cables."""
        return self.num_leaves * self.l2_per_pod

    @cached_property
    def num_spine_links(self) -> int:
        """Total number of L2-to-spine cables."""
        return self.num_pods * self.l2_per_pod * self.spines_per_group

    # ------------------------------------------------------------------
    # Entity mapping helpers
    # ------------------------------------------------------------------
    def leaf_of_node(self, node: int) -> int:
        """Global leaf index hosting global node ``node``."""
        self._check_node(node)
        return node // self.m1

    def pod_of_node(self, node: int) -> int:
        """Pod index hosting global node ``node``."""
        self._check_node(node)
        return node // self.nodes_per_pod

    def pod_of_leaf(self, leaf: int) -> int:
        """Pod index hosting global leaf ``leaf``."""
        self._check_leaf(leaf)
        return leaf // self.m2

    def leaf_index_in_pod(self, leaf: int) -> int:
        """Position of global leaf ``leaf`` within its pod (0-based)."""
        self._check_leaf(leaf)
        return leaf % self.m2

    def node_index_in_leaf(self, node: int) -> int:
        """Position of global node ``node`` within its leaf (0-based)."""
        self._check_node(node)
        return node % self.m1

    def leaves_of_pod(self, pod: int) -> range:
        """Global leaf indices of pod ``pod``."""
        self._check_pod(pod)
        return range(pod * self.m2, (pod + 1) * self.m2)

    def nodes_of_leaf(self, leaf: int) -> range:
        """Global node indices attached to global leaf ``leaf``."""
        self._check_leaf(leaf)
        return range(leaf * self.m1, (leaf + 1) * self.m1)

    def nodes_of_pod(self, pod: int) -> range:
        """Global node indices inside pod ``pod``."""
        self._check_pod(pod)
        return range(pod * self.nodes_per_pod, (pod + 1) * self.nodes_per_pod)

    def first_leaf_of_pod(self, pod: int) -> int:
        self._check_pod(pod)
        return pod * self.m2

    def l2_global_index(self, pod: int, l2_index: int) -> int:
        """Global index of the ``l2_index``-th L2 switch of pod ``pod``."""
        self._check_pod(pod)
        self._check_l2_index(l2_index)
        return pod * self.l2_per_pod + l2_index

    def spine_global_index(self, group: int, spine_index: int) -> int:
        """Global index of spine ``spine_index`` in group ``group``."""
        self._check_l2_index(group)
        if not 0 <= spine_index < self.spines_per_group:
            raise ValueError(
                f"spine index {spine_index} out of range "
                f"[0, {self.spines_per_group})"
            )
        return group * self.spines_per_group + spine_index

    # ------------------------------------------------------------------
    # Link enumeration
    # ------------------------------------------------------------------
    def leaf_links(self) -> Iterator[LinkId]:
        """Every leaf-to-L2 cable in the machine."""
        for leaf in range(self.num_leaves):
            for i in range(self.l2_per_pod):
                yield LinkId(leaf, i)

    def spine_links(self) -> Iterator[SpineLinkId]:
        """Every L2-to-spine cable in the machine."""
        for pod in range(self.num_pods):
            for i in range(self.l2_per_pod):
                for j in range(self.spines_per_group):
                    yield SpineLinkId(pod, i, j)

    def leaf_links_of_leaf(self, leaf: int) -> Iterator[LinkId]:
        self._check_leaf(leaf)
        for i in range(self.l2_per_pod):
            yield LinkId(leaf, i)

    def spine_links_of_l2(self, pod: int, l2_index: int) -> Iterator[SpineLinkId]:
        self._check_pod(pod)
        self._check_l2_index(l2_index)
        for j in range(self.spines_per_group):
            yield SpineLinkId(pod, l2_index, j)

    # ------------------------------------------------------------------
    # Validation helpers
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range [0, {self.num_nodes})")

    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < self.num_leaves:
            raise ValueError(f"leaf {leaf} out of range [0, {self.num_leaves})")

    def _check_pod(self, pod: int) -> None:
        if not 0 <= pod < self.num_pods:
            raise ValueError(f"pod {pod} out of range [0, {self.num_pods})")

    def _check_l2_index(self, i: int) -> None:
        if not 0 <= i < self.l2_per_pod:
            raise ValueError(f"L2 index {i} out of range [0, {self.l2_per_pod})")

    def describe(self) -> str:
        """One-line human-readable summary of the topology."""
        return (
            f"XGFT(3; {self.m1}, {self.m2}, {self.m3}): "
            f"{self.num_nodes} nodes, {self.num_leaves} leaves, "
            f"{self.num_pods} pods, {self.num_spines} spines"
        )


class FatTree(XGFT):
    """A *full* (maximal) three-level fat-tree built from radix-``r`` switches.

    This is the cluster model of the paper's evaluation (section 5.1): the
    tree wired out of uniform radix-``r`` switches with no over- or
    under-subscription, hosting ``r**3 / 4`` nodes.

    >>> FatTree.from_radix(16).num_nodes
    1024
    >>> FatTree.from_radix(28).num_nodes
    5488
    """

    def __init__(self, m1: int, m2: int, m3: int):
        super().__init__(m1=m1, m2=m2, m3=m3)

    @classmethod
    def from_radix(cls, radix: int) -> "FatTree":
        """Build the maximal three-level fat-tree for switch radix ``radix``."""
        if radix < 2 or radix % 2 != 0:
            raise ValueError(f"switch radix must be a positive even int, got {radix}")
        half = radix // 2
        return cls(m1=half, m2=half, m3=radix)

    @classmethod
    def for_min_nodes(cls, min_nodes: int) -> "FatTree":
        """Smallest maximal fat-tree with at least ``min_nodes`` nodes.

        The paper picks its 1458-node radix-18 cluster this way: the
        smallest experiment cluster larger than Thunder, Atlas and Cab.
        """
        if min_nodes < 1:
            raise ValueError("min_nodes must be positive")
        radix = 2
        while radix**3 // 4 < min_nodes:
            radix += 2
        return cls.from_radix(radix)

    @property
    def radix(self) -> int:
        return 2 * self.m1


#: The four experiment clusters of section 5.1, keyed by switch radix,
#: plus the beyond-paper scale-up presets: radix-32 (8192 nodes, the
#: vector-pass benchmarks) and radix-36 (11664 nodes — the maximal
#: three-level tree a radix-36 switch supports, 18·18·36 — the columnar
#: event-core smoke target).
PAPER_CLUSTERS = {
    16: 1024, 18: 1458, 22: 2662, 28: 5488, 32: 8192, 36: 11664,
}
