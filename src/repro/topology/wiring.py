"""Physical wiring of a full fat-tree: the cable list, validated.

Section 2.1: "the folded Clos topology is easily wired out of routers
and links with uniform radix and bandwidth."  This module produces the
explicit cable list — (switch, port) to (switch, port) — for any
:class:`~repro.topology.fattree.XGFT`, and :func:`validate_wiring`
checks the claims that make the topology buildable:

* every switch uses at most its radix in ports, and in a *maximal* tree
  exactly its radix (no dark ports);
* no port carries two cables;
* the spine layer realizes the ``T*_i`` structure: spine group ``i``
  connects exactly the ``i``-th L2 switch of every pod.

Port numbering matches :mod:`repro.routing.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.topology.fattree import XGFT

#: endpoint: (switch id tuple, port number); switch ids as in tables.py,
#: plus ("node", n) endpoints for compute nodes (port 0)
Endpoint = Tuple[Tuple, int]


@dataclass(frozen=True)
class Cable:
    """One physical cable between two ports."""

    a: Endpoint
    b: Endpoint

    def touches(self, switch: Tuple) -> bool:
        return self.a[0] == switch or self.b[0] == switch


def cables(tree: XGFT) -> Iterator[Cable]:
    """Every cable of the machine: node-leaf, leaf-L2, L2-spine."""
    for node in range(tree.num_nodes):
        leaf = tree.leaf_of_node(node)
        yield Cable(
            (("node", node), 0),
            (("leaf", leaf), tree.node_index_in_leaf(node)),
        )
    for leaf in range(tree.num_leaves):
        pod = tree.pod_of_leaf(leaf)
        for i in range(tree.l2_per_pod):
            yield Cable(
                (("leaf", leaf), tree.m1 + i),
                (("l2", pod, i), tree.leaf_index_in_pod(leaf)),
            )
    for pod in range(tree.num_pods):
        for i in range(tree.l2_per_pod):
            for j in range(tree.spines_per_group):
                yield Cable(
                    (("l2", pod, i), tree.m2 + j),
                    (("spine", i, j), pod),
                )


def port_usage(tree: XGFT) -> Dict[Tuple, int]:
    """Ports in use per switch."""
    usage: Dict[Tuple, int] = {}
    for cable in cables(tree):
        for switch, _port in (cable.a, cable.b):
            if switch[0] != "node":
                usage[switch] = usage.get(switch, 0) + 1
    return usage


def validate_wiring(tree: XGFT) -> List[str]:
    """Check buildability; returns violations (empty = wirable).

    For a *maximal* tree (``m3 == 2 * m2``) every switch port is used,
    so the machine is wired entirely from radix-``2*m1`` leaf/L2
    switches and radix-``m3`` spines with no dark ports.
    """
    violations: List[str] = []
    seen_ports: Dict[Endpoint, Cable] = {}
    for cable in cables(tree):
        for endpoint in (cable.a, cable.b):
            if endpoint in seen_ports:
                violations.append(f"port {endpoint} carries two cables")
            seen_ports[endpoint] = cable

    usage = port_usage(tree)
    for switch, used in usage.items():
        kind = switch[0]
        if kind == "leaf":
            expected = tree.m1 + tree.l2_per_pod
        elif kind == "l2":
            expected = tree.m2 + tree.spines_per_group
        else:  # spine: one port per pod
            expected = tree.num_pods
        if used != expected:
            violations.append(
                f"switch {switch} uses {used} ports, expected {expected}"
            )

    # the T*_i structure: spine (i, j) must reach the i-th L2 switch of
    # every pod, exactly once
    spine_peers: Dict[Tuple, set] = {}
    for cable in cables(tree):
        for this, other in ((cable.a, cable.b), (cable.b, cable.a)):
            if this[0][0] == "spine":
                spine_peers.setdefault(this[0], set()).add(other[0])
    for (kind, group, j), peers in spine_peers.items():
        expected_peers = {("l2", pod, group) for pod in range(tree.num_pods)}
        if peers != expected_peers:
            violations.append(
                f"spine ({group}, {j}) wired to {sorted(peers)}, "
                f"not the group-{group} L2 switches of every pod"
            )
    return violations


def cable_count(tree: XGFT) -> int:
    """Total cables (the procurement number)."""
    return tree.num_nodes + tree.num_leaf_links + tree.num_spine_links
