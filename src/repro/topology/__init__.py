"""Fat-tree topology substrate.

This package models the clusters the paper evaluates on: full (maximal)
three-level fat-trees built from uniform-radix switches, wired as folded
Clos networks (paper section 2.1).  It also tracks the occupancy state of
nodes and links, which is what the allocators in :mod:`repro.core` claim
and release.
"""

from repro.topology.fattree import FatTree, XGFT, LinkId, SpineLinkId
from repro.topology.state import ClusterState, LinkCapacityState

__all__ = [
    "FatTree",
    "XGFT",
    "LinkId",
    "SpineLinkId",
    "ClusterState",
    "LinkCapacityState",
]
