"""ASCII rendering of cluster occupancy and allocations.

A picture of who owns what, pod by pod — the fastest way to *see*
fragmentation and the difference between the schemes' placement shapes
(compare Figure 2 and Figure 3 of the paper).  Each leaf is drawn as a
bracketed group of node cells; a cell shows the symbol of the job owning
that node, ``.`` when free.  An optional link panel lists each job's L2
index set per leaf (the common set ``S`` made visible).

Example (radix-8 tree, three jobs)::

    pod 0  [aaaa][aaab][bbb.][....]
    pod 1  [cccc][cc..][....][....]
    ...
"""

from __future__ import annotations

from collections import defaultdict
from string import ascii_lowercase, ascii_uppercase
from typing import Dict, Iterable, List, Mapping, Optional

from repro.core.allocator import Allocation
from repro.topology.fattree import XGFT
from repro.topology.state import ClusterState

#: symbols assigned to jobs, cycling if there are many
_SYMBOLS = ascii_lowercase + ascii_uppercase + "0123456789"
_FREE = "."


def job_symbols(job_ids: Iterable[int]) -> Dict[int, str]:
    """Stable job-id -> display-symbol assignment."""
    return {
        job_id: _SYMBOLS[idx % len(_SYMBOLS)]
        for idx, job_id in enumerate(sorted(set(job_ids)))
    }


def render_occupancy(
    state: ClusterState,
    symbols: Optional[Mapping[int, str]] = None,
    pods: Optional[Iterable[int]] = None,
) -> str:
    """Render node ownership, one line per pod."""
    tree = state.tree
    if symbols is None:
        symbols = job_symbols(state.resident_jobs())
    pods = range(tree.num_pods) if pods is None else pods
    lines: List[str] = []
    for pod in pods:
        cells: List[str] = []
        for leaf in tree.leaves_of_pod(pod):
            owners = [
                int(state.node_owner[n]) for n in tree.nodes_of_leaf(leaf)
            ]
            cells.append(
                "["
                + "".join(
                    _FREE if o == -1 else symbols.get(o, "?") for o in owners
                )
                + "]"
            )
        lines.append(f"pod {pod:>3}  " + "".join(cells))
    return "\n".join(lines)


def render_allocation(tree: XGFT, alloc: Allocation) -> str:
    """Render one allocation: its nodes, and its links per switch.

    The link panel shows each leaf's allocated L2 indices (the set ``S``
    or ``Sr``) and, for multi-pod allocations, each pod's spine set per
    L2 index (``S*_i`` / ``S*r_i``).
    """
    lines: List[str] = [
        f"job {alloc.job_id}: {alloc.size} nodes"
        + (f" (+{alloc.padding} padding)" if alloc.padding else "")
        + (f", shape {alloc.shape}" if alloc.shape is not None else "")
    ]
    counts = alloc.leaf_node_counts(tree)
    links_by_leaf: Dict[int, List[int]] = defaultdict(list)
    for leaf, i in alloc.leaf_links:
        links_by_leaf[leaf].append(i)
    for leaf in sorted(counts):
        ups = ",".join(str(i) for i in sorted(links_by_leaf.get(leaf, [])))
        lines.append(
            f"  leaf {leaf:>3} (pod {tree.pod_of_leaf(leaf)}): "
            f"{counts[leaf]} nodes, uplinks [{ups}]"
        )
    spines: Dict[tuple, List[int]] = defaultdict(list)
    for pod, i, j in alloc.spine_links:
        spines[(pod, i)].append(j)
    for (pod, i) in sorted(spines):
        js = ",".join(str(j) for j in sorted(spines[(pod, i)]))
        lines.append(f"  L2 (pod {pod}, idx {i}): spines [{js}]")
    return "\n".join(lines)


def render_free_summary(state: ClusterState) -> str:
    """One line per pod: free/total nodes and fully-free leaf count."""
    tree = state.tree
    lines: List[str] = []
    for pod in range(tree.num_pods):
        free = int(state.free_leaf_counts_in_pod(pod).sum())
        full = int(state.full_free_leaves[pod])
        bar = "#" * round(10 * (1 - free / tree.nodes_per_pod))
        lines.append(
            f"pod {pod:>3}: {free:>4}/{tree.nodes_per_pod} free, "
            f"{full:>2} fully-free leaves  |{bar:<10}|"
        )
    return "\n".join(lines)
