"""Occupancy state of a fat-tree cluster: nodes and links.

:class:`ClusterState` tracks, for one :class:`~repro.topology.fattree.XGFT`
topology, which compute nodes and which network cables are currently owned
by which job.  It is the single mutable substrate that every allocator in
:mod:`repro.core` queries and updates, and it maintains the paper's
isolation invariant (section 3.2.1): every node and every link is owned by
at most one job.

Link-availability sets are represented as **integer bitmasks**:

* ``leaf_up_mask[leaf]`` has bit ``i`` set iff the cable between ``leaf``
  and the ``i``-th L2 switch of its pod is free;
* ``spine_free_mask[pod][i]`` has bit ``j`` set iff the cable between the
  ``i``-th L2 switch of ``pod`` and spine ``j`` of group ``i`` is free.

Because the paper's largest cluster uses radix-28 switches, these masks
never exceed 14 bits, so the recursive-backtracking searches of
Algorithm 1 reduce to AND/popcount operations on small ints.

:class:`LinkCapacityState` is the fractional-bandwidth variant used by the
LC+S bounding scheme (section 5.2.3), where links are *shared* subject to
a capacity cap rather than exclusively owned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

from repro.topology.fattree import LinkId, SpineLinkId, XGFT


class AllocationError(RuntimeError):
    """Raised when a claim or release violates the isolation invariant."""


@dataclass
class ClaimRecord:
    """Everything :class:`ClusterState` needs to undo one job's claim."""

    job_id: int
    nodes: Tuple[int, ...]
    leaf_links: Tuple[LinkId, ...]
    spine_links: Tuple[SpineLinkId, ...]


def mask_of(indices: Iterable[int]) -> int:
    """Bitmask with the given bit indices set."""
    m = 0
    for i in indices:
        m |= 1 << i
    return m


def indices_of(mask: int) -> Tuple[int, ...]:
    """Sorted tuple of bit indices set in ``mask``."""
    out = []
    i = 0
    while mask:
        if mask & 1:
            out.append(i)
        mask >>= 1
        i += 1
    return tuple(out)


def lowest_bits(mask: int, k: int) -> int:
    """Mask of the ``k`` lowest set bits of ``mask``.

    Raises :class:`ValueError` if ``mask`` has fewer than ``k`` set bits.
    """
    out = 0
    for _ in range(k):
        if not mask:
            raise ValueError("mask has fewer set bits than requested")
        low = mask & -mask
        out |= low
        mask ^= low
    return out


class ClusterState:
    """Mutable node/link ownership state for one fat-tree.

    Parameters
    ----------
    tree:
        The topology.  Node, leaf, pod and link numbering follow
        :mod:`repro.topology.fattree`.

    Notes
    -----
    All mutation goes through :meth:`claim` and :meth:`release`, which
    validate the isolation invariant and keep the derived per-leaf /
    per-pod summaries consistent.  Allocators only *read* the summaries.
    """

    def __init__(self, tree: XGFT):
        self.tree = tree
        m1, m2, m3 = tree.m1, tree.m2, tree.m3
        self._full_leaf_mask = (1 << tree.l2_per_pod) - 1
        self._full_spine_mask = (1 << tree.spines_per_group) - 1

        #: owner job id per node, -1 = free
        self.node_owner = np.full(tree.num_nodes, -1, dtype=np.int64)
        #: free-node count per leaf
        self.free_per_leaf = np.full(tree.num_leaves, m1, dtype=np.int32)
        #: free leaf-uplink bitmask per leaf (bit i = cable to L2 i free)
        self.leaf_up_mask = [self._full_leaf_mask] * tree.num_leaves
        #: free spine-link bitmask per (pod, L2 index)
        self.spine_free_mask = [
            [self._full_spine_mask] * tree.l2_per_pod for _ in range(m3)
        ]
        #: number of completely-free leaves per pod
        self.full_free_leaves = np.full(m3, m2, dtype=np.int32)
        #: total free nodes per pod (plain ints: this is the hottest
        #: read in the allocator search loops)
        self.pod_free = [tree.nodes_per_pod] * m3
        #: total free nodes on the machine
        self.free_nodes_total = tree.num_nodes
        self._claims: Dict[int, ClaimRecord] = {}

    # ------------------------------------------------------------------
    # Read-side helpers used by allocators
    # ------------------------------------------------------------------
    @property
    def num_jobs_resident(self) -> int:
        return len(self._claims)

    def is_idle(self) -> bool:
        return not self._claims

    def free_nodes_on_leaf(self, leaf: int) -> int:
        return int(self.free_per_leaf[leaf])

    def leaf_is_fully_free(self, leaf: int) -> bool:
        return self.free_per_leaf[leaf] == self.tree.m1

    def free_node_ids(self, leaf: int, k: int) -> Tuple[int, ...]:
        """The ``k`` lowest-numbered free nodes on ``leaf``."""
        if k == 0:
            return ()
        base = leaf * self.tree.m1
        owners = self.node_owner[base : base + self.tree.m1]
        free = np.flatnonzero(owners == -1)
        if len(free) < k:
            raise AllocationError(
                f"leaf {leaf} has {len(free)} free nodes, requested {k}"
            )
        return tuple(int(base + i) for i in free[:k])

    def free_leaf_counts_in_pod(self, pod: int) -> np.ndarray:
        """View of per-leaf free-node counts for the leaves of ``pod``."""
        lo = pod * self.tree.m2
        return self.free_per_leaf[lo : lo + self.tree.m2]

    def claim_record(self, job_id: int) -> ClaimRecord:
        return self._claims[job_id]

    def resident_jobs(self) -> Tuple[int, ...]:
        return tuple(self._claims)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def claim(
        self,
        job_id: int,
        nodes: Sequence[int],
        leaf_links: Sequence[LinkId] = (),
        spine_links: Sequence[SpineLinkId] = (),
    ) -> None:
        """Exclusively assign nodes and links to ``job_id``.

        Raises :class:`AllocationError` (leaving state untouched) if the
        job id is already resident or any resource is not free.
        """
        if job_id in self._claims:
            raise AllocationError(f"job {job_id} already holds an allocation")
        nodes = tuple(nodes)
        leaf_links = tuple(leaf_links)
        spine_links = tuple(spine_links)

        # Validate before mutating so failures cannot corrupt state.
        if len(set(nodes)) != len(nodes):
            raise AllocationError("duplicate nodes in claim")
        num_nodes = self.tree.num_nodes
        for n in nodes:
            # Bounds first: numpy would raise a raw IndexError for
            # n >= num_nodes and silently *wrap* negative ids.
            if not 0 <= n < num_nodes:
                raise AllocationError(
                    f"node {n} is outside the cluster [0, {num_nodes})"
                )
            if self.node_owner[n] != -1:
                raise AllocationError(f"node {n} is not free")
        if len(set(leaf_links)) != len(leaf_links):
            raise AllocationError("duplicate leaf links in claim")
        for leaf, i in leaf_links:
            if not self.leaf_up_mask[leaf] & (1 << i):
                raise AllocationError(f"leaf link ({leaf}, {i}) is not free")
        if len(set(spine_links)) != len(spine_links):
            raise AllocationError("duplicate spine links in claim")
        for pod, i, j in spine_links:
            if not self.spine_free_mask[pod][i] & (1 << j):
                raise AllocationError(f"spine link ({pod}, {i}, {j}) is not free")

        for n in nodes:
            self.node_owner[n] = job_id
            leaf = n // self.tree.m1
            pod = leaf // self.tree.m2
            if self.free_per_leaf[leaf] == self.tree.m1:
                self.full_free_leaves[pod] -= 1
            self.free_per_leaf[leaf] -= 1
            self.pod_free[pod] -= 1
        for leaf, i in leaf_links:
            self.leaf_up_mask[leaf] &= ~(1 << i)
        for pod, i, j in spine_links:
            self.spine_free_mask[pod][i] &= ~(1 << j)
        self.free_nodes_total -= len(nodes)
        self._claims[job_id] = ClaimRecord(job_id, nodes, leaf_links, spine_links)

    def release(self, job_id: int) -> ClaimRecord:
        """Return all of ``job_id``'s resources to the free pool."""
        try:
            rec = self._claims.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no allocation") from None
        for n in rec.nodes:
            self.node_owner[n] = -1
            leaf = n // self.tree.m1
            pod = leaf // self.tree.m2
            self.free_per_leaf[leaf] += 1
            self.pod_free[pod] += 1
            if self.free_per_leaf[leaf] == self.tree.m1:
                self.full_free_leaves[pod] += 1
        for leaf, i in rec.leaf_links:
            self.leaf_up_mask[leaf] |= 1 << i
        for pod, i, j in rec.spine_links:
            self.spine_free_mask[pod][i] |= 1 << j
        self.free_nodes_total += len(rec.nodes)
        return rec

    # ------------------------------------------------------------------
    # Consistency audit (used by tests and failure injection)
    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Recompute every derived summary and assert it matches.

        Raises :class:`AllocationError` on the first inconsistency; this
        is the isolation invariant made executable.
        """
        tree = self.tree
        if int((self.node_owner == -1).sum()) != self.free_nodes_total:
            raise AllocationError("free_nodes_total out of sync")
        for leaf in range(tree.num_leaves):
            base = leaf * tree.m1
            free = int((self.node_owner[base : base + tree.m1] == -1).sum())
            if free != self.free_per_leaf[leaf]:
                raise AllocationError(f"free_per_leaf[{leaf}] out of sync")
        for pod in range(tree.num_pods):
            lo = pod * tree.m2
            full = int(
                (self.free_per_leaf[lo : lo + tree.m2] == tree.m1).sum()
            )
            if full != self.full_free_leaves[pod]:
                raise AllocationError(f"full_free_leaves[{pod}] out of sync")
            if int(self.free_per_leaf[lo : lo + tree.m2].sum()) != self.pod_free[pod]:
                raise AllocationError(f"pod_free[{pod}] out of sync")
        owned_nodes: Dict[int, int] = {}
        owned_leaf_links: Dict[LinkId, int] = {}
        owned_spine_links: Dict[SpineLinkId, int] = {}
        for rec in self._claims.values():
            for n in rec.nodes:
                if n in owned_nodes:
                    raise AllocationError(f"node {n} owned twice")
                owned_nodes[n] = rec.job_id
                if self.node_owner[n] != rec.job_id:
                    raise AllocationError(f"node_owner[{n}] out of sync")
            for link in rec.leaf_links:
                if link in owned_leaf_links:
                    raise AllocationError(f"leaf link {link} owned twice")
                owned_leaf_links[link] = rec.job_id
                if self.leaf_up_mask[link.leaf] & (1 << link.l2_index):
                    raise AllocationError(f"leaf link {link} marked free")
            for link in rec.spine_links:
                if link in owned_spine_links:
                    raise AllocationError(f"spine link {link} owned twice")
                owned_spine_links[link] = rec.job_id
                if self.spine_free_mask[link.pod][link.l2_index] & (
                    1 << link.spine_index
                ):
                    raise AllocationError(f"spine link {link} marked free")


@dataclass
class LinkCapacityState:
    """Fractional link-bandwidth state for the LC+S scheme (section 5.2.3).

    Links are shared: each job contributes its average per-link bandwidth
    need to every link it is routed over, and total usage of a link is
    capped at ``cap_fraction * peak_bandwidth`` (the paper uses an 80 %
    cap on a 5 GB/s link, above which degradation rises sharply [30]).
    """

    tree: XGFT
    peak_bandwidth: float = 5.0
    cap_fraction: float = 0.8
    leaf_bw: np.ndarray = field(init=False)
    spine_bw: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        t = self.tree
        self.leaf_bw = np.zeros((t.num_leaves, t.l2_per_pod))
        self.spine_bw = np.zeros((t.num_pods, t.l2_per_pod, t.spines_per_group))
        self._claims: Dict[int, Tuple[Tuple[LinkId, ...], Tuple[SpineLinkId, ...], float]] = {}

    @property
    def capacity(self) -> float:
        """Usable bandwidth per link under the cap."""
        return self.peak_bandwidth * self.cap_fraction

    def leaf_mask(self, leaf: int, need: float) -> int:
        """Bitmask of ``leaf``'s uplinks with at least ``need`` headroom."""
        row = self.leaf_bw[leaf]
        cap = self.capacity
        m = 0
        for i in range(self.tree.l2_per_pod):
            if row[i] + need <= cap + 1e-9:
                m |= 1 << i
        return m

    def spine_mask(self, pod: int, l2_index: int, need: float) -> int:
        """Bitmask of spines reachable from ``(pod, l2_index)`` with headroom."""
        row = self.spine_bw[pod][l2_index]
        cap = self.capacity
        m = 0
        for j in range(self.tree.spines_per_group):
            if row[j] + need <= cap + 1e-9:
                m |= 1 << j
        return m

    def claim(
        self,
        job_id: int,
        leaf_links: Sequence[LinkId],
        spine_links: Sequence[SpineLinkId],
        need: float,
    ) -> None:
        """Add ``need`` GB/s of usage on every given link for ``job_id``."""
        if job_id in self._claims:
            raise AllocationError(f"job {job_id} already holds bandwidth")
        cap = self.capacity
        for leaf, i in leaf_links:
            if self.leaf_bw[leaf][i] + need > cap + 1e-9:
                raise AllocationError(f"leaf link ({leaf}, {i}) over capacity")
        for pod, i, j in spine_links:
            if self.spine_bw[pod][i][j] + need > cap + 1e-9:
                raise AllocationError(f"spine link ({pod}, {i}, {j}) over capacity")
        for leaf, i in leaf_links:
            self.leaf_bw[leaf][i] += need
        for pod, i, j in spine_links:
            self.spine_bw[pod][i][j] += need
        self._claims[job_id] = (tuple(leaf_links), tuple(spine_links), need)

    def release(self, job_id: int) -> None:
        """Return a job's bandwidth on every link it was charged on."""
        try:
            leaf_links, spine_links, need = self._claims.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no bandwidth") from None
        # Clamp tiny negative residue from float accumulation — but only
        # on the links this job touched: a whole-array clip here costs
        # O(total links) per release and would also paper over genuine
        # accounting bugs on links the job never used.
        for leaf, i in leaf_links:
            self.leaf_bw[leaf][i] -= need
            if self.leaf_bw[leaf][i] < 0.0:
                self.leaf_bw[leaf][i] = 0.0
        for pod, i, j in spine_links:
            self.spine_bw[pod][i][j] -= need
            if self.spine_bw[pod][i][j] < 0.0:
                self.spine_bw[pod][i][j] = 0.0
