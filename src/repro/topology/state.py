"""Occupancy state of a fat-tree cluster: nodes and links.

:class:`ClusterState` tracks, for one :class:`~repro.topology.fattree.XGFT`
topology, which compute nodes and which network cables are currently owned
by which job.  It is the single mutable substrate that every allocator in
:mod:`repro.core` queries and updates, and it maintains the paper's
isolation invariant (section 3.2.1): every node and every link is owned by
at most one job.

Link-availability sets are represented as **integer bitmasks**:

* ``leaf_up_mask[leaf]`` has bit ``i`` set iff the cable between ``leaf``
  and the ``i``-th L2 switch of its pod is free;
* ``spine_free_mask[pod][i]`` has bit ``j`` set iff the cable between the
  ``i``-th L2 switch of ``pod`` and spine ``j`` of group ``i`` is free.

Because the paper's largest cluster uses radix-28 switches, these masks
never exceed 14 bits, so the recursive-backtracking searches of
Algorithm 1 reduce to AND/popcount operations on small ints.

:class:`LinkCapacityState` is the fractional-bandwidth variant used by the
LC+S bounding scheme (section 5.2.3), where links are *shared* subject to
a capacity cap rather than exclusively owned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.fattree import LinkId, SpineLinkId, XGFT


class AllocationError(RuntimeError):
    """Raised when a claim or release violates the isolation invariant."""


@dataclass
class ClaimRecord:
    """Everything :class:`ClusterState` needs to undo one job's claim."""

    job_id: int
    nodes: Tuple[int, ...]
    leaf_links: Tuple[LinkId, ...]
    spine_links: Tuple[SpineLinkId, ...]


def mask_of(indices: Iterable[int]) -> int:
    """Bitmask with the given bit indices set."""
    m = 0
    for i in indices:
        m |= 1 << i
    return m


def indices_of(mask: int) -> Tuple[int, ...]:
    """Sorted tuple of bit indices set in ``mask``.

    Iterates set bits only (``mask & -mask`` isolates the lowest one),
    so sparse masks cost O(popcount), not O(highest bit) — this runs in
    the allocators' backtracking inner loops.
    """
    out = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return tuple(out)


def lowest_bits(mask: int, k: int) -> int:
    """Mask of the ``k`` lowest set bits of ``mask``.

    Raises :class:`ValueError` if ``mask`` has fewer than ``k`` set bits.
    """
    if k <= 0:
        return 0
    have = mask.bit_count()
    if have < k:
        raise ValueError("mask has fewer set bits than requested")
    if have == k:
        return mask
    out = 0
    for _ in range(k):
        low = mask & -mask
        out |= low
        mask ^= low
    return out


class ClusterState:
    """Mutable node/link ownership state for one fat-tree.

    Parameters
    ----------
    tree:
        The topology.  Node, leaf, pod and link numbering follow
        :mod:`repro.topology.fattree`.

    Notes
    -----
    All mutation goes through :meth:`claim` and :meth:`release`, which
    validate the isolation invariant and keep the derived per-leaf /
    per-pod summaries consistent.  Allocators only *read* the summaries.

    Beyond the plain per-leaf/per-pod counters, the state maintains an
    **incremental occupancy index** so allocator searches never recompute
    feasibility summaries from scratch:

    * ``_leaf_ge[k, pod]`` — leaves of ``pod`` with at least ``k`` free
      nodes (``k`` in ``0..m1``), the monotone counter behind the
      vectorized pod prefilters (:meth:`feasible_pods`);
    * ``_leaf_buckets[pod][f]`` — bitmask of leaf *offsets* (bit ``j`` =
      ``j``-th leaf of the pod) holding exactly ``f`` free nodes; the
      ``f = m1`` bucket is the fully-free-leaf bitmask, and walking the
      buckets upward yields the allocators' best-fit candidate order
      (:meth:`leaf_candidates`) without a per-call sort.

    Every index is updated in O(touched leaves) inside claim/release and
    is purely derived data: rebuilding it from ``node_owner`` must give
    the same values (:meth:`audit` checks exactly that).
    """

    def __init__(self, tree: XGFT):
        self.tree = tree
        m1, m2, m3 = tree.m1, tree.m2, tree.m3
        self._full_leaf_mask = (1 << tree.l2_per_pod) - 1
        self._full_spine_mask = (1 << tree.spines_per_group) - 1
        self._full_pod_leaf_mask = (1 << m2) - 1

        #: owner job id per node, -1 = free
        self.node_owner = np.full(tree.num_nodes, -1, dtype=np.int64)
        #: free-node count per leaf
        self.free_per_leaf = np.full(tree.num_leaves, m1, dtype=np.int32)
        # Read-only alias handed out by free_leaf_counts_in_pod: slices
        # of a non-writeable view are non-writeable themselves, so
        # allocators cannot scribble on index-owned state.
        self._free_per_leaf_ro = self.free_per_leaf.view()
        self._free_per_leaf_ro.flags.writeable = False
        #: free leaf-uplink bitmask per leaf (bit i = cable to L2 i free)
        self.leaf_up_mask = [self._full_leaf_mask] * tree.num_leaves
        #: free spine-link bitmask per (pod, L2 index)
        self.spine_free_mask = [
            [self._full_spine_mask] * tree.l2_per_pod for _ in range(m3)
        ]
        #: number of completely-free leaves per pod
        self.full_free_leaves = np.full(m3, m2, dtype=np.int32)
        #: total free nodes per pod (numpy so the allocators' pod
        #: prefilter is a single vectorized comparison)
        self.pod_free = np.full(m3, tree.nodes_per_pod, dtype=np.int64)
        #: leaves with >= k free nodes, per pod: row k is the per-pod
        #: vector compared against a shape's leaf demand
        self._leaf_ge = np.full((m1 + 1, m3), m2, dtype=np.int32)
        #: per-pod bitmask buckets of leaf offsets by exact free count;
        #: bucket m1 is the fully-free-leaf mask
        self._leaf_buckets: List[List[int]] = [
            [0] * m1 + [self._full_pod_leaf_mask] for _ in range(m3)
        ]
        #: total free nodes on the machine
        self.free_nodes_total = tree.num_nodes
        #: count of claimed uplinks per leaf (0 = every cable to the
        #: pod's L2 switches is free); drives the usable-leaf index
        self._leaf_busy_up = np.zeros(tree.num_leaves, dtype=np.int32)
        #: per-pod bitmask of leaf offsets with >= 1 claimed uplink;
        #: a fully-free leaf on this mask cannot host a full-bandwidth
        #: (all-uplinks) placement
        self._busy_leaf_mask: List[int] = [0] * m3
        #: numpy column of ``_busy_leaf_mask[pod] != 0`` — lets the
        #: vectorized shape search partition pods in one fancy-index
        self.busy_leaf_any = np.zeros(m3, dtype=bool)
        #: per-pod mutation epoch: bumped whenever any resource of the
        #: pod (node, leaf uplink, spine link) changes hands.  Lets
        #: allocators validate cross-call memo entries in O(1).
        self.pod_epoch = np.zeros(m3, dtype=np.int64)
        self._claims: Dict[int, ClaimRecord] = {}

    # ------------------------------------------------------------------
    # Read-side helpers used by allocators
    # ------------------------------------------------------------------
    @property
    def num_jobs_resident(self) -> int:
        return len(self._claims)

    def is_idle(self) -> bool:
        return not self._claims

    def free_nodes_on_leaf(self, leaf: int) -> int:
        return int(self.free_per_leaf[leaf])

    def leaf_is_fully_free(self, leaf: int) -> bool:
        return self.free_per_leaf[leaf] == self.tree.m1

    def free_node_ids(self, leaf: int, k: int) -> Tuple[int, ...]:
        """The ``k`` lowest-numbered free nodes on ``leaf``."""
        if k == 0:
            return ()
        base = leaf * self.tree.m1
        owners = self.node_owner[base : base + self.tree.m1]
        free = np.flatnonzero(owners == -1)
        if len(free) < k:
            raise AllocationError(
                f"leaf {leaf} has {len(free)} free nodes, requested {k}"
            )
        return tuple(int(base + i) for i in free[:k])

    def free_leaf_counts_in_pod(self, pod: int) -> np.ndarray:
        """Read-only view of per-leaf free-node counts for ``pod``.

        The array is allocator-owned index state: writing through the
        returned view would silently desynchronize the incremental
        occupancy indexes, so mutation raises ``ValueError``.
        """
        lo = pod * self.tree.m2
        return self._free_per_leaf_ro[lo : lo + self.tree.m2]

    # ------------------------------------------------------------------
    # Incremental occupancy index: O(1)/vectorized read side
    # ------------------------------------------------------------------
    def leaves_with_at_least(self, pod: int, k: int) -> int:
        """Number of leaves of ``pod`` holding at least ``k`` free nodes.

        O(1): answered from the maintained bucket counters, never by
        rescanning the leaves.  ``k`` must be in ``0..m1``.
        """
        return int(self._leaf_ge[k, pod])

    def fully_free_leaf_mask(self, pod: int) -> int:
        """Bitmask of completely-free leaf offsets of ``pod`` (bit ``j``
        = the ``j``-th leaf of the pod is fully free)."""
        return self._leaf_buckets[pod][self.tree.m1]

    def busy_uplink_leaf_mask(self, pod: int) -> int:
        """Bitmask of leaf offsets of ``pod`` with at least one claimed
        uplink.  Maintained incrementally from ``_leaf_busy_up``."""
        return self._busy_leaf_mask[pod]

    def usable_full_leaf_mask(self, pod: int) -> int:
        """Bitmask of leaf offsets of ``pod`` that are *usable* as full
        leaves: every node free **and** every uplink cable free.

        A leaf-link fault (or any partial uplink claim) removes a leaf
        from this mask even though its nodes are all free — placements
        that claim all ``l2_per_pod`` uplinks of a full leaf must draw
        from here, not from :meth:`fully_free_leaf_mask`.
        """
        return self._leaf_buckets[pod][self.tree.m1] & ~self._busy_leaf_mask[pod]

    def usable_full_leaves(self, pod: int) -> int:
        """Count of usable full leaves of ``pod`` (see
        :meth:`usable_full_leaf_mask`)."""
        return self.usable_full_leaf_mask(pod).bit_count()

    def leaf_candidates(self, pod: int, min_free: int) -> List[int]:
        """Global leaf ids of ``pod`` with at least ``min_free`` free
        nodes, in best-fit order: ascending free count, then ascending
        leaf id — exactly the order ``sorted(..., key=(free, leaf))``
        would produce, but read off the maintained buckets instead of
        sorted per call."""
        base = pod * self.tree.m2
        out: List[int] = []
        for bucket in self._leaf_buckets[pod][min_free:]:
            while bucket:
                low = bucket & -bucket
                out.append(base + low.bit_length() - 1)
                bucket ^= low
        return out

    def leaf_candidates_by_id(self, pod: int, min_free: int) -> List[int]:
        """Global leaf ids of ``pod`` with at least ``min_free`` free
        nodes, in ascending leaf-id order — the LC family's enumeration
        order.  ORing the buckets and walking set bits costs
        O(m1 + matches) instead of scanning every leaf."""
        mask = 0
        for bucket in self._leaf_buckets[pod][min_free:]:
            mask |= bucket
        base = pod * self.tree.m2
        out: List[int] = []
        while mask:
            low = mask & -mask
            out.append(base + low.bit_length() - 1)
            mask ^= low
        return out

    def best_fit_leaf(self, pod: int, min_free: int) -> Optional[int]:
        """Lowest-id leaf of ``pod`` with the fewest (but at least
        ``min_free``) free nodes, or ``None`` — the head of
        :meth:`leaf_candidates` without building the list."""
        base = pod * self.tree.m2
        for bucket in self._leaf_buckets[pod][min_free:]:
            if bucket:
                return base + (bucket & -bucket).bit_length() - 1
        return None

    def leaf_ge_view(self) -> np.ndarray:
        """Read-only view of the ``_leaf_ge`` counter matrix: row ``k``,
        column ``pod`` counts the pod's leaves with at least ``k`` free
        nodes.  Columnar consumers (the vectorized shape search) slice
        this instead of re-deriving histograms; writes raise."""
        v = self._leaf_ge.view()
        v.flags.writeable = False
        return v

    def feasible_pods(
        self,
        min_free: int,
        min_leaf_free: int = 0,
        min_leaves: int = 0,
        min_full_leaves: int = 0,
    ) -> np.ndarray:
        """Indices of pods passing the vectorized occupancy prechecks:
        at least ``min_free`` free nodes, at least ``min_leaves`` leaves
        with ``min_leaf_free`` free nodes each, and at least
        ``min_full_leaves`` completely-free leaves.

        These are exactly the searches' tick-free rejection conditions,
        evaluated for every pod in one numpy pass; the counters are
        monotone in the requirement, so a pod excluded here is excluded
        for every stronger requirement as well.
        """
        mask = self.pod_free >= min_free
        if min_leaves:
            mask &= self._leaf_ge[min_leaf_free] >= min_leaves
        if min_full_leaves:
            mask &= self.full_free_leaves >= min_full_leaves
        return np.flatnonzero(mask)

    def claim_record(self, job_id: int) -> ClaimRecord:
        return self._claims[job_id]

    def resident_jobs(self) -> Tuple[int, ...]:
        return tuple(self._claims)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def claim(
        self,
        job_id: int,
        nodes: Sequence[int],
        leaf_links: Sequence[LinkId] = (),
        spine_links: Sequence[SpineLinkId] = (),
    ) -> None:
        """Exclusively assign nodes and links to ``job_id``.

        Raises :class:`AllocationError` (leaving state untouched) if the
        job id is already resident or any resource is not free.
        """
        if job_id in self._claims:
            raise AllocationError(f"job {job_id} already holds an allocation")
        nodes = tuple(nodes)
        leaf_links = tuple(leaf_links)
        spine_links = tuple(spine_links)

        # Validate before mutating so failures cannot corrupt state.
        if len(set(nodes)) != len(nodes):
            raise AllocationError("duplicate nodes in claim")
        num_nodes = self.tree.num_nodes
        for n in nodes:
            # Bounds first: numpy would raise a raw IndexError for
            # n >= num_nodes and silently *wrap* negative ids.
            if not 0 <= n < num_nodes:
                raise AllocationError(
                    f"node {n} is outside the cluster [0, {num_nodes})"
                )
            if self.node_owner[n] != -1:
                raise AllocationError(f"node {n} is not free")
        if len(set(leaf_links)) != len(leaf_links):
            raise AllocationError("duplicate leaf links in claim")
        for leaf, i in leaf_links:
            if not self.leaf_up_mask[leaf] & (1 << i):
                raise AllocationError(f"leaf link ({leaf}, {i}) is not free")
        if len(set(spine_links)) != len(spine_links):
            raise AllocationError("duplicate spine links in claim")
        for pod, i, j in spine_links:
            if not self.spine_free_mask[pod][i] & (1 << j):
                raise AllocationError(f"spine link ({pod}, {i}, {j}) is not free")

        m1, m2 = self.tree.m1, self.tree.m2
        touched_pods = set()
        for n in nodes:
            self.node_owner[n] = job_id
            leaf = n // m1
            pod = leaf // m2
            touched_pods.add(pod)
            f = int(self.free_per_leaf[leaf])
            if f == m1:
                self.full_free_leaves[pod] -= 1
            self.free_per_leaf[leaf] = f - 1
            self.pod_free[pod] -= 1
            # Incremental index: the leaf drops from bucket f to f-1 and
            # no longer counts toward "leaves with >= f free".
            bit = 1 << (leaf - pod * m2)
            buckets = self._leaf_buckets[pod]
            buckets[f] &= ~bit
            buckets[f - 1] |= bit
            self._leaf_ge[f, pod] -= 1
        for leaf, i in leaf_links:
            self.leaf_up_mask[leaf] &= ~(1 << i)
            pod = leaf // m2
            touched_pods.add(pod)
            if self._leaf_busy_up[leaf] == 0:
                self._busy_leaf_mask[pod] |= 1 << (leaf - pod * m2)
                self.busy_leaf_any[pod] = True
            self._leaf_busy_up[leaf] += 1
        for pod, i, j in spine_links:
            self.spine_free_mask[pod][i] &= ~(1 << j)
            touched_pods.add(pod)
        for pod in touched_pods:
            self.pod_epoch[pod] += 1
        self.free_nodes_total -= len(nodes)
        self._claims[job_id] = ClaimRecord(job_id, nodes, leaf_links, spine_links)

    def release(self, job_id: int) -> ClaimRecord:
        """Return all of ``job_id``'s resources to the free pool."""
        try:
            rec = self._claims.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no allocation") from None
        m1, m2 = self.tree.m1, self.tree.m2
        touched_pods = set()
        for n in rec.nodes:
            self.node_owner[n] = -1
            leaf = n // m1
            pod = leaf // m2
            touched_pods.add(pod)
            f = int(self.free_per_leaf[leaf])
            self.free_per_leaf[leaf] = f + 1
            self.pod_free[pod] += 1
            if f + 1 == m1:
                self.full_free_leaves[pod] += 1
            # Incremental index: the leaf climbs from bucket f to f+1.
            bit = 1 << (leaf - pod * m2)
            buckets = self._leaf_buckets[pod]
            buckets[f] &= ~bit
            buckets[f + 1] |= bit
            self._leaf_ge[f + 1, pod] += 1
        for leaf, i in rec.leaf_links:
            self.leaf_up_mask[leaf] |= 1 << i
            pod = leaf // m2
            touched_pods.add(pod)
            self._leaf_busy_up[leaf] -= 1
            if self._leaf_busy_up[leaf] == 0:
                self._busy_leaf_mask[pod] &= ~(1 << (leaf - pod * m2))
                if not self._busy_leaf_mask[pod]:
                    self.busy_leaf_any[pod] = False
        for pod, i, j in rec.spine_links:
            self.spine_free_mask[pod][i] |= 1 << j
            touched_pods.add(pod)
        for pod in touched_pods:
            self.pod_epoch[pod] += 1
        self.free_nodes_total += len(rec.nodes)
        return rec

    def release_many(self, job_ids: Sequence[int]) -> List[ClaimRecord]:
        """Release several jobs' resources in one occupancy-index update.

        Equivalent to calling :meth:`release` once per id (any order —
        releases commute), but the derived indexes are updated once per
        *touched leaf* instead of once per node: each leaf's free count
        jumps from ``f`` to ``f + delta`` directly, moving one bucket
        bit and incrementing the ``_leaf_ge`` rows ``f+1 .. f+delta`` —
        exactly the composition of the per-node steps.  Validates every
        id before mutating anything, so a bad id leaves state untouched.
        Returns the claim records in argument order.
        """
        ids = list(job_ids)
        if len(set(ids)) != len(ids):
            raise AllocationError("duplicate job ids in release_many")
        for job_id in ids:
            if job_id not in self._claims:
                raise AllocationError(
                    f"job {job_id} holds no allocation"
                )
        recs = [self._claims.pop(job_id) for job_id in ids]
        m1, m2 = self.tree.m1, self.tree.m2
        touched_pods = set()
        all_nodes = [n for rec in recs for n in rec.nodes]
        if all_nodes:
            nodes_arr = np.array(all_nodes, np.int64)
            self.node_owner[nodes_arr] = -1
            counts = np.bincount(
                nodes_arr // m1, minlength=self.tree.num_leaves
            )
            for leaf in np.flatnonzero(counts).tolist():
                delta = int(counts[leaf])
                pod = leaf // m2
                touched_pods.add(pod)
                f = int(self.free_per_leaf[leaf])
                nf = f + delta
                self.free_per_leaf[leaf] = nf
                self.pod_free[pod] += delta
                if nf == m1:
                    self.full_free_leaves[pod] += 1
                bit = 1 << (leaf - pod * m2)
                buckets = self._leaf_buckets[pod]
                buckets[f] &= ~bit
                buckets[nf] |= bit
                self._leaf_ge[f + 1 : nf + 1, pod] += 1
            self.free_nodes_total += len(all_nodes)
        for rec in recs:
            for leaf, i in rec.leaf_links:
                self.leaf_up_mask[leaf] |= 1 << i
                pod = leaf // m2
                touched_pods.add(pod)
                self._leaf_busy_up[leaf] -= 1
                if self._leaf_busy_up[leaf] == 0:
                    self._busy_leaf_mask[pod] &= ~(1 << (leaf - pod * m2))
                    if not self._busy_leaf_mask[pod]:
                        self.busy_leaf_any[pod] = False
            for pod, i, j in rec.spine_links:
                self.spine_free_mask[pod][i] |= 1 << j
                touched_pods.add(pod)
        for pod in touched_pods:
            self.pod_epoch[pod] += 1
        return recs

    # ------------------------------------------------------------------
    # Consistency audit (used by tests and failure injection)
    # ------------------------------------------------------------------
    def audit(self) -> None:
        """Recompute every derived summary and assert it matches.

        Raises :class:`AllocationError` on the first inconsistency; this
        is the isolation invariant made executable.
        """
        tree = self.tree
        if int((self.node_owner == -1).sum()) != self.free_nodes_total:
            raise AllocationError("free_nodes_total out of sync")
        for leaf in range(tree.num_leaves):
            base = leaf * tree.m1
            free = int((self.node_owner[base : base + tree.m1] == -1).sum())
            if free != self.free_per_leaf[leaf]:
                raise AllocationError(f"free_per_leaf[{leaf}] out of sync")
        for pod in range(tree.num_pods):
            lo = pod * tree.m2
            full = int(
                (self.free_per_leaf[lo : lo + tree.m2] == tree.m1).sum()
            )
            if full != self.full_free_leaves[pod]:
                raise AllocationError(f"full_free_leaves[{pod}] out of sync")
            if int(self.free_per_leaf[lo : lo + tree.m2].sum()) != self.pod_free[pod]:
                raise AllocationError(f"pod_free[{pod}] out of sync")
            counts = self.free_per_leaf[lo : lo + tree.m2]
            for k in range(tree.m1 + 1):
                if int((counts >= k).sum()) != self._leaf_ge[k, pod]:
                    raise AllocationError(f"_leaf_ge[{k}, {pod}] out of sync")
            for f in range(tree.m1 + 1):
                want = mask_of(j for j in range(tree.m2) if counts[j] == f)
                if want != self._leaf_buckets[pod][f]:
                    raise AllocationError(
                        f"_leaf_buckets[{pod}][{f}] out of sync"
                    )
            want_busy = mask_of(
                j
                for j in range(tree.m2)
                if self.leaf_up_mask[lo + j] != self._full_leaf_mask
            )
            if want_busy != self._busy_leaf_mask[pod]:
                raise AllocationError(f"_busy_leaf_mask[{pod}] out of sync")
            if bool(want_busy) != bool(self.busy_leaf_any[pod]):
                raise AllocationError(f"busy_leaf_any[{pod}] out of sync")
        for leaf in range(tree.num_leaves):
            claimed = tree.l2_per_pod - self.leaf_up_mask[leaf].bit_count()
            if claimed != self._leaf_busy_up[leaf]:
                raise AllocationError(f"_leaf_busy_up[{leaf}] out of sync")
        owned_nodes: Dict[int, int] = {}
        owned_leaf_links: Dict[LinkId, int] = {}
        owned_spine_links: Dict[SpineLinkId, int] = {}
        for rec in self._claims.values():
            for n in rec.nodes:
                if n in owned_nodes:
                    raise AllocationError(f"node {n} owned twice")
                owned_nodes[n] = rec.job_id
                if self.node_owner[n] != rec.job_id:
                    raise AllocationError(f"node_owner[{n}] out of sync")
            for link in rec.leaf_links:
                if link in owned_leaf_links:
                    raise AllocationError(f"leaf link {link} owned twice")
                owned_leaf_links[link] = rec.job_id
                if self.leaf_up_mask[link.leaf] & (1 << link.l2_index):
                    raise AllocationError(f"leaf link {link} marked free")
            for link in rec.spine_links:
                if link in owned_spine_links:
                    raise AllocationError(f"spine link {link} owned twice")
                owned_spine_links[link] = rec.job_id
                if self.spine_free_mask[link.pod][link.l2_index] & (
                    1 << link.spine_index
                ):
                    raise AllocationError(f"spine link {link} marked free")


@dataclass
class LinkCapacityState:
    """Fractional link-bandwidth state for the LC+S scheme (section 5.2.3).

    Links are shared: each job contributes its average per-link bandwidth
    need to every link it is routed over, and total usage of a link is
    capped at ``cap_fraction * peak_bandwidth`` (the paper uses an 80 %
    cap on a 5 GB/s link, above which degradation rises sharply [30]).
    """

    tree: XGFT
    peak_bandwidth: float = 5.0
    cap_fraction: float = 0.8
    leaf_bw: np.ndarray = field(init=False)
    spine_bw: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        t = self.tree
        self.leaf_bw = np.zeros((t.num_leaves, t.l2_per_pod))
        self.spine_bw = np.zeros((t.num_pods, t.l2_per_pod, t.spines_per_group))
        #: per-pod bandwidth-mutation epoch, bumped on every claim or
        #: release touching any link of the pod — the LC-family analogue
        #: of :attr:`ClusterState.pod_epoch` for memo invalidation
        self.pod_epoch = np.zeros(t.num_pods, dtype=np.int64)
        self._pow2_leaf = 1 << np.arange(t.l2_per_pod, dtype=np.int64)
        self._pow2_spine = 1 << np.arange(t.spines_per_group, dtype=np.int64)
        self._claims: Dict[int, Tuple[Tuple[LinkId, ...], Tuple[SpineLinkId, ...], float]] = {}

    @property
    def capacity(self) -> float:
        """Usable bandwidth per link under the cap."""
        return self.peak_bandwidth * self.cap_fraction

    def leaf_mask(self, leaf: int, need: float) -> int:
        """Bitmask of ``leaf``'s uplinks with at least ``need`` headroom."""
        row = self.leaf_bw[leaf]
        cap = self.capacity
        m = 0
        for i in range(self.tree.l2_per_pod):
            if row[i] + need <= cap + 1e-9:
                m |= 1 << i
        return m

    def spine_mask(self, pod: int, l2_index: int, need: float) -> int:
        """Bitmask of spines reachable from ``(pod, l2_index)`` with headroom."""
        row = self.spine_bw[pod][l2_index]
        cap = self.capacity
        m = 0
        for j in range(self.tree.spines_per_group):
            if row[j] + need <= cap + 1e-9:
                m |= 1 << j
        return m

    def leaf_masks_of_pod(self, pod: int, need: float) -> List[int]:
        """Headroom bitmasks for every leaf of ``pod`` in one pass.

        Element ``j`` equals ``leaf_mask(first_leaf + j, need)`` exactly:
        the comparison is the same IEEE-754 ``row + need <= cap + 1e-9``
        evaluated elementwise, so columnar and scalar callers agree
        bit-for-bit.
        """
        lo = pod * self.tree.m2
        rows = self.leaf_bw[lo : lo + self.tree.m2]
        ok = rows + need <= self.capacity + 1e-9
        return (ok.astype(np.int64) @ self._pow2_leaf).tolist()

    def spine_masks_of_pod(self, pod: int, need: float) -> List[int]:
        """Headroom bitmasks for every L2 group of ``pod`` in one pass;
        element ``i`` equals ``spine_mask(pod, i, need)`` exactly."""
        ok = self.spine_bw[pod] + need <= self.capacity + 1e-9
        return (ok.astype(np.int64) @ self._pow2_spine).tolist()

    def claim(
        self,
        job_id: int,
        leaf_links: Sequence[LinkId],
        spine_links: Sequence[SpineLinkId],
        need: float,
    ) -> None:
        """Add ``need`` GB/s of usage on every given link for ``job_id``."""
        if job_id in self._claims:
            raise AllocationError(f"job {job_id} already holds bandwidth")
        cap = self.capacity
        for leaf, i in leaf_links:
            if self.leaf_bw[leaf][i] + need > cap + 1e-9:
                raise AllocationError(f"leaf link ({leaf}, {i}) over capacity")
        for pod, i, j in spine_links:
            if self.spine_bw[pod][i][j] + need > cap + 1e-9:
                raise AllocationError(f"spine link ({pod}, {i}, {j}) over capacity")
        m2 = self.tree.m2
        touched_pods = set()
        for leaf, i in leaf_links:
            self.leaf_bw[leaf][i] += need
            touched_pods.add(leaf // m2)
        for pod, i, j in spine_links:
            self.spine_bw[pod][i][j] += need
            touched_pods.add(pod)
        for pod in touched_pods:
            self.pod_epoch[pod] += 1
        self._claims[job_id] = (tuple(leaf_links), tuple(spine_links), need)

    def claimants(
        self,
        leaf_links: Sequence[LinkId] = (),
        spine_links: Sequence[SpineLinkId] = (),
    ) -> Tuple[int, ...]:
        """Ids of every claim charged on any of the given links, sorted.

        The resilience layer uses this to find the jobs that must be
        drained before a shared link can be failed (fault claims appear
        too — callers filter by id sign).
        """
        targets_leaf = set(leaf_links)
        targets_spine = set(spine_links)
        owners = set()
        for job_id, (job_leaf, job_spine, _need) in self._claims.items():
            if targets_leaf.intersection(job_leaf) or targets_spine.intersection(
                job_spine
            ):
                owners.add(job_id)
        return tuple(sorted(owners))

    def release(self, job_id: int) -> None:
        """Return a job's bandwidth on every link it was charged on."""
        try:
            leaf_links, spine_links, need = self._claims.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id} holds no bandwidth") from None
        # Clamp tiny negative residue from float accumulation — but only
        # on the links this job touched: a whole-array clip here costs
        # O(total links) per release and would also paper over genuine
        # accounting bugs on links the job never used.
        m2 = self.tree.m2
        touched_pods = set()
        for leaf, i in leaf_links:
            self.leaf_bw[leaf][i] -= need
            if self.leaf_bw[leaf][i] < 0.0:
                self.leaf_bw[leaf][i] = 0.0
            touched_pods.add(leaf // m2)
        for pod, i, j in spine_links:
            self.spine_bw[pod][i][j] -= need
            if self.spine_bw[pod][i][j] < 0.0:
                self.spine_bw[pod][i][j] = 0.0
            touched_pods.add(pod)
        for pod in touched_pods:
            self.pod_epoch[pod] += 1
