"""Fault injection: scheduling on a degraded fabric.

The paper assumes healthy maximal trees; real machines run with dead
nodes, unplugged cables and drained switches.  Because every allocator
reads availability from :class:`~repro.topology.state.ClusterState`,
faults compose for free: a failed resource is simply claimed by a
reserved fault owner, and the allocators route around it — the formal
conditions keep holding on whatever remains.

For the link-sharing scheme (LC+S) a failed link must also lose its
bandwidth; pass the allocator (not just the state) and the injector
saturates its :class:`~repro.topology.state.LinkCapacityState` too.

Faults are repairable: each injected fault returns a ticket that
:meth:`FaultInjector.repair` reverses.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.allocator import Allocator
from repro.topology.fattree import LinkId, SpineLinkId
from repro.topology.state import AllocationError, ClusterState

#: fault claims use job ids below this marker, far outside real id space
_FAULT_ID_BASE = -(10**9)

#: the fault kinds :meth:`FaultInjector.resolve` understands
FAULT_KINDS = (
    "node", "leaf-link", "spine-link", "leaf-switch", "l2-switch", "spine"
)


@dataclass(frozen=True)
class FaultTicket:
    """Handle for one injected fault."""

    fault_id: int
    kind: str
    target: Union[int, LinkId, SpineLinkId, Tuple]
    #: bandwidth claim id in the capacity state, if any
    bw_claimed: bool = False


class FaultInjector:
    """Inject and repair node/link/switch failures on a live cluster.

    Failing a resource that is currently *owned by a job* is rejected:
    in reality that kills the job, which is scheduler-policy territory —
    drain it first (release the job), then fail the hardware.
    """

    def __init__(self, allocator: Allocator):
        self.allocator = allocator
        self.state: ClusterState = allocator.state
        self._ids = count(_FAULT_ID_BASE)
        self._tickets: Dict[int, FaultTicket] = {}
        self._links_cap = getattr(allocator, "links", None)

    # ------------------------------------------------------------------
    def resolve(
        self, kind: str, target
    ) -> Tuple[List[int], List[LinkId], List[SpineLinkId]]:
        """The resource lists ``(nodes, leaf_links, spine_links)`` one
        fault of ``kind`` on ``target`` takes out of service.

        ``target`` is the fault's plain address: a node id, a
        ``(leaf, l2_index)`` pair, a ``(pod, l2_index, spine_index)``
        triple, a ``(leaf,)`` switch, a ``(pod, l2_index)`` L2 switch or
        a ``(group, spine_index)`` spine — ints or tuples of ints, so a
        fault spec pickles as plain data (the
        :mod:`repro.sched.resilience` timeline rides on this).
        """
        tree = self.state.tree
        t = (target,) if isinstance(target, int) else tuple(target)
        if kind == "node":
            return [int(t[0])], [], []
        if kind == "leaf-link":
            return [], [LinkId(int(t[0]), int(t[1]))], []
        if kind == "spine-link":
            return [], [], [SpineLinkId(int(t[0]), int(t[1]), int(t[2]))]
        if kind == "leaf-switch":
            leaf = int(t[0])
            return (
                list(tree.nodes_of_leaf(leaf)),
                list(tree.leaf_links_of_leaf(leaf)),
                [],
            )
        if kind == "l2-switch":
            pod, index = int(t[0]), int(t[1])
            leaf_links = [
                LinkId(leaf, index) for leaf in tree.leaves_of_pod(pod)
            ]
            return [], leaf_links, list(tree.spine_links_of_l2(pod, index))
        if kind == "spine":
            group, index = int(t[0]), int(t[1])
            return [], [], [
                SpineLinkId(pod, group, index) for pod in range(tree.num_pods)
            ]
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
        )

    def inject(
        self,
        kind: str,
        target,
        resources: Optional[
            Tuple[Sequence[int], Sequence[LinkId], Sequence[SpineLinkId]]
        ] = None,
    ) -> FaultTicket:
        """Fail one ``kind`` fault on ``target`` (plain-data address).

        ``resources`` overrides the resolved resource lists — the
        resilience layer passes a filtered subset when part of the
        target is already owned by an earlier, still-active fault.
        """
        if resources is None:
            resources = self.resolve(kind, target)
        nodes, leaf_links, spine_links = resources
        return self._claim(
            kind, self._ticket_target(kind, target),
            nodes=nodes, leaf_links=leaf_links, spine_links=spine_links,
        )

    @staticmethod
    def _ticket_target(kind: str, target):
        """The human-readable ticket target for a plain-data address."""
        t = (target,) if isinstance(target, int) else tuple(target)
        if kind == "node":
            return int(t[0])
        if kind == "leaf-link":
            return LinkId(int(t[0]), int(t[1]))
        if kind == "spine-link":
            return SpineLinkId(int(t[0]), int(t[1]), int(t[2]))
        if kind == "leaf-switch":
            return ("leaf", int(t[0]))
        if kind == "l2-switch":
            return ("l2", int(t[0]), int(t[1]))
        return ("spine", int(t[0]), int(t[1]))

    def _claim(self, kind, target, nodes=(), leaf_links=(), spine_links=()):
        fault_id = next(self._ids)
        self.state.claim(fault_id, nodes, leaf_links, spine_links)
        if self._links_cap is not None and (leaf_links or spine_links):
            try:
                self._links_cap.claim(
                    fault_id, leaf_links, spine_links,
                    need=self._links_cap.capacity,
                )
            except AllocationError:
                # Atomicity: the ownership claim above must not leak
                # when the bandwidth claim fails (an LC+S job still
                # carries fractional traffic on a target link).
                self.state.release(fault_id)
                raise AllocationError(
                    f"cannot fail {kind} {target!r}: a resident job still "
                    "carries traffic on a target link (drain it first)"
                ) from None
            bw = True
        else:
            bw = False
        # Injection shrinks capacity outside Allocator.allocate/release,
        # so cached verdicts must not be served across it.  The
        # free-node watermark only catches *growth* in the node count;
        # link-only faults change no node count at all, so flush
        # explicitly on every inject path.
        self.allocator.invalidate_feasibility_cache()
        ticket = FaultTicket(fault_id, kind, target, bw)
        self._tickets[fault_id] = ticket
        return ticket

    def fail_node(self, node: int) -> FaultTicket:
        """Take one compute node out of service."""
        return self.inject("node", node)

    def fail_leaf_link(self, link: LinkId) -> FaultTicket:
        """Unplug one leaf-to-L2 cable."""
        return self.inject("leaf-link", tuple(link))

    def fail_spine_link(self, link: SpineLinkId) -> FaultTicket:
        """Unplug one L2-to-spine cable."""
        return self.inject("spine-link", tuple(link))

    def fail_leaf_switch(self, leaf: int) -> FaultTicket:
        """Drain a whole leaf switch: its nodes and all its uplinks."""
        return self.inject("leaf-switch", (leaf,))

    def fail_l2_switch(self, pod: int, index: int) -> FaultTicket:
        """Drain an L2 switch: every cable touching it."""
        return self.inject("l2-switch", (pod, index))

    def fail_spine(self, group: int, index: int) -> FaultTicket:
        """Drain a spine switch: its cable to every pod."""
        return self.inject("spine", (group, index))

    # ------------------------------------------------------------------
    def repair(self, ticket: FaultTicket) -> None:
        """Return the failed resources to service.

        Idempotent-safe: each half of the claim (ownership, bandwidth)
        is released tolerantly, so a repair that previously failed
        half-way — or a bandwidth id that was already returned — cannot
        leave the ticket permanently stuck.  The ticket is deleted only
        after both releases have been attempted.
        """
        if ticket.fault_id not in self._tickets:
            raise ValueError(f"unknown or already-repaired fault {ticket}")
        try:
            self.state.release(ticket.fault_id)
        except AllocationError:
            pass  # already released by a partially-completed repair
        if ticket.bw_claimed and self._links_cap is not None:
            try:
                self._links_cap.release(ticket.fault_id)
            except AllocationError:
                pass  # bandwidth id absent: already released
        # Repaired hardware grows free capacity outside Allocator.release,
        # so cached infeasibility verdicts are no longer trustworthy.
        self.allocator.invalidate_feasibility_cache()
        del self._tickets[ticket.fault_id]

    def repair_all(self) -> int:
        """Repair every outstanding fault; returns how many."""
        tickets = list(self._tickets.values())
        for ticket in tickets:
            self.repair(ticket)
        return len(tickets)

    @property
    def active_faults(self) -> List[FaultTicket]:
        """Tickets of every fault not yet repaired."""
        return list(self._tickets.values())
