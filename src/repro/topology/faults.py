"""Fault injection: scheduling on a degraded fabric.

The paper assumes healthy maximal trees; real machines run with dead
nodes, unplugged cables and drained switches.  Because every allocator
reads availability from :class:`~repro.topology.state.ClusterState`,
faults compose for free: a failed resource is simply claimed by a
reserved fault owner, and the allocators route around it — the formal
conditions keep holding on whatever remains.

For the link-sharing scheme (LC+S) a failed link must also lose its
bandwidth; pass the allocator (not just the state) and the injector
saturates its :class:`~repro.topology.state.LinkCapacityState` too.

Faults are repairable: each injected fault returns a ticket that
:meth:`FaultInjector.repair` reverses.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Tuple, Union

from repro.core.allocator import Allocator
from repro.topology.fattree import LinkId, SpineLinkId
from repro.topology.state import ClusterState

#: fault claims use job ids below this marker, far outside real id space
_FAULT_ID_BASE = -(10**9)


@dataclass(frozen=True)
class FaultTicket:
    """Handle for one injected fault."""

    fault_id: int
    kind: str
    target: Union[int, LinkId, SpineLinkId, Tuple]
    #: bandwidth claim id in the capacity state, if any
    bw_claimed: bool = False


class FaultInjector:
    """Inject and repair node/link/switch failures on a live cluster.

    Failing a resource that is currently *owned by a job* is rejected:
    in reality that kills the job, which is scheduler-policy territory —
    drain it first (release the job), then fail the hardware.
    """

    def __init__(self, allocator: Allocator):
        self.allocator = allocator
        self.state: ClusterState = allocator.state
        self._ids = count(_FAULT_ID_BASE)
        self._tickets: Dict[int, FaultTicket] = {}
        self._links_cap = getattr(allocator, "links", None)

    # ------------------------------------------------------------------
    def _claim(self, kind, target, nodes=(), leaf_links=(), spine_links=()):
        fault_id = next(self._ids)
        self.state.claim(fault_id, nodes, leaf_links, spine_links)
        bw = False
        if self._links_cap is not None and (leaf_links or spine_links):
            self._links_cap.claim(
                fault_id, leaf_links, spine_links, need=self._links_cap.capacity
            )
            bw = True
        ticket = FaultTicket(fault_id, kind, target, bw)
        self._tickets[fault_id] = ticket
        return ticket

    def fail_node(self, node: int) -> FaultTicket:
        """Take one compute node out of service."""
        return self._claim("node", node, nodes=[node])

    def fail_leaf_link(self, link: LinkId) -> FaultTicket:
        """Unplug one leaf-to-L2 cable."""
        return self._claim("leaf-link", link, leaf_links=[link])

    def fail_spine_link(self, link: SpineLinkId) -> FaultTicket:
        """Unplug one L2-to-spine cable."""
        return self._claim("spine-link", link, spine_links=[link])

    def fail_leaf_switch(self, leaf: int) -> FaultTicket:
        """Drain a whole leaf switch: its nodes and all its uplinks."""
        tree = self.state.tree
        return self._claim(
            "leaf-switch",
            ("leaf", leaf),
            nodes=list(tree.nodes_of_leaf(leaf)),
            leaf_links=list(tree.leaf_links_of_leaf(leaf)),
        )

    def fail_l2_switch(self, pod: int, index: int) -> FaultTicket:
        """Drain an L2 switch: every cable touching it."""
        tree = self.state.tree
        leaf_links = [
            LinkId(leaf, index) for leaf in tree.leaves_of_pod(pod)
        ]
        spine_links = list(tree.spine_links_of_l2(pod, index))
        return self._claim(
            "l2-switch", ("l2", pod, index),
            leaf_links=leaf_links, spine_links=spine_links,
        )

    def fail_spine(self, group: int, index: int) -> FaultTicket:
        """Drain a spine switch: its cable to every pod."""
        tree = self.state.tree
        spine_links = [
            SpineLinkId(pod, group, index) for pod in range(tree.num_pods)
        ]
        return self._claim(
            "spine", ("spine", group, index), spine_links=spine_links
        )

    # ------------------------------------------------------------------
    def repair(self, ticket: FaultTicket) -> None:
        """Return the failed resources to service."""
        if ticket.fault_id not in self._tickets:
            raise ValueError(f"unknown or already-repaired fault {ticket}")
        self.state.release(ticket.fault_id)
        if ticket.bw_claimed and self._links_cap is not None:
            self._links_cap.release(ticket.fault_id)
        # Repaired hardware grows free capacity outside Allocator.release,
        # so cached infeasibility verdicts are no longer trustworthy.
        self.allocator.invalidate_feasibility_cache()
        del self._tickets[ticket.fault_id]

    def repair_all(self) -> int:
        """Repair every outstanding fault; returns how many."""
        tickets = list(self._tickets.values())
        for ticket in tickets:
            self.repair(ticket)
        return len(tickets)

    @property
    def active_faults(self) -> List[FaultTicket]:
        """Tickets of every fault not yet repaired."""
        return list(self._tickets.values())
