"""Jigsaw's partition routing (section 4, Figure 5 right).

Once Jigsaw places a job, the system routing must be adjusted so the
job's traffic uses only the links allocated to it.  The paper obtains a
valid routing by "mapping normal D-mod-k routing onto the partition and
using wraparound for ports on remainder switches": the destination's
rank *within the allocation* plays the role its global address plays in
plain D-mod-k, indices are taken modulo the number of *allocated* links,
and at remainder switches — which own fewer links — the modulus simply
wraps around the smaller set.

The key structural fact making this well-defined is that a spine in
group ``i`` only connects L2 switches of index ``i``, so a flow's
up-index at the source leaf equals its down-index at the destination
leaf; the formal conditions guarantee the intersections used below are
never empty (Sr ⊆ S and S*r_i ⊆ S*_i).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.core.allocator import Allocation
from repro.routing.dmodk import Route
from repro.topology.fattree import LinkId, SpineLinkId, XGFT


class PartitionRouter:
    """Oblivious per-packet routing confined to one job's allocation."""

    def __init__(self, tree: XGFT, alloc: Allocation):
        self.tree = tree
        self.alloc = alloc
        self._nodes = set(alloc.nodes)
        #: allocated up-link L2 indices per leaf, sorted
        self._leaf_up: Dict[int, List[int]] = defaultdict(list)
        for leaf, i in alloc.leaf_links:
            self._leaf_up[leaf].append(i)
        for ups in self._leaf_up.values():
            ups.sort()
        #: allocated spine indices per (pod, L2 index), sorted
        self._spines: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for pod, i, j in alloc.spine_links:
            self._spines[(pod, i)].append(j)
        for js in self._spines.values():
            js.sort()
        #: rank of each node within its leaf's allocated nodes
        self._rank_in_leaf: Dict[int, int] = {}
        #: rank of each allocated leaf within its pod's allocated leaves
        self._leaf_rank: Dict[int, int] = {}
        by_leaf: Dict[int, List[int]] = defaultdict(list)
        for n in sorted(alloc.nodes):
            by_leaf[tree.leaf_of_node(n)].append(n)
        by_pod: Dict[int, List[int]] = defaultdict(list)
        for leaf in sorted(by_leaf):
            by_pod[tree.pod_of_leaf(leaf)].append(leaf)
        for nodes in by_leaf.values():
            for r, n in enumerate(nodes):
                self._rank_in_leaf[n] = r
        for leaves in by_pod.values():
            for r, leaf in enumerate(leaves):
                self._leaf_rank[leaf] = r

    def route(self, src: int, dst: int) -> Route:
        """D-mod-k-with-wraparound path from ``src`` to ``dst``.

        Both endpoints must belong to the allocation; the returned route
        touches only allocated links.
        """
        tree = self.tree
        if src not in self._nodes or dst not in self._nodes:
            raise ValueError("both endpoints must belong to the allocation")
        if src == dst:
            raise ValueError("a node does not route to itself")
        src_leaf, dst_leaf = tree.leaf_of_node(src), tree.leaf_of_node(dst)
        if src_leaf == dst_leaf:
            return Route(src, dst)

        # Up-index: D-mod-k uses the destination's index within its leaf;
        # here that index selects among the L2 sets common to both leaves
        # (equal to S, or to Sr when one endpoint sits on the remainder
        # leaf — the "wraparound" case).
        common = sorted(
            set(self._leaf_up[src_leaf]) & set(self._leaf_up[dst_leaf])
        )
        if not common:
            raise RuntimeError(
                "no common allocated L2 index between leaves "
                f"{src_leaf} and {dst_leaf}: allocation violates condition 4"
            )
        i = common[self._rank_in_leaf[dst] % len(common)]

        src_pod, dst_pod = tree.pod_of_leaf(src_leaf), tree.pod_of_leaf(dst_leaf)
        if src_pod == dst_pod:
            return Route(
                src,
                dst,
                up_leaf=LinkId(src_leaf, i),
                down_leaf=LinkId(dst_leaf, i),
            )

        usable = sorted(
            set(self._spines[(src_pod, i)]) & set(self._spines[(dst_pod, i)])
        )
        if not usable:
            raise RuntimeError(
                f"no common allocated spine at L2 index {i} between pods "
                f"{src_pod} and {dst_pod}: allocation violates condition 6"
            )
        j = usable[self._leaf_rank[dst_leaf] % len(usable)]
        return Route(
            src,
            dst,
            up_leaf=LinkId(src_leaf, i),
            spine_up=SpineLinkId(src_pod, i, j),
            spine_down=SpineLinkId(dst_pod, i, j),
            down_leaf=LinkId(dst_leaf, i),
        )
