"""Switch forwarding tables (the subnet-manager view of routing).

InfiniBand fat-trees route with per-switch **linear forwarding tables**
(LFTs): each switch maps a destination node to one output port.  The
paper's section 4 notes that once Jigsaw places a job, "the actual
changing of the routing tables can be done on the fly, for example via
the subnet management software" — this module builds those tables, both
for plain D-mod-k over the whole fabric and for a Jigsaw partition, so
the routing adjustment is a concrete, inspectable artifact rather than
an abstract path function.

Port-numbering convention per switch type (all 0-based):

* **leaf** switch ``l``: ports ``0..m1-1`` go down to its nodes (port
  ``i`` to node ``l*m1 + i``); ports ``m1..2*m1-1`` go up (port
  ``m1 + i`` on the cable ``LinkId(l, i)``).
* **L2** switch ``(pod, i)``: ports ``0..m2-1`` go down to leaves (port
  ``k`` on the cable ``LinkId(pod*m2 + k, i)``); ports ``m2..2*m2-1``
  go up (port ``m2 + j`` on the cable ``SpineLinkId(pod, i, j)``).
* **spine** ``(group, j)``: port ``p`` goes down to pod ``p`` on the
  cable ``SpineLinkId(p, group, j)``.

:func:`forward` walks a packet hop by hop through the tables — the test
suite uses it to prove that table-driven forwarding reaches every
destination and that partition tables never leave the allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.allocator import Allocation
from repro.routing.partition import PartitionRouter
from repro.topology.fattree import LinkId, SpineLinkId, XGFT

#: switch identity: ("leaf", leaf), ("l2", pod, i) or ("spine", group, j)
Switch = Tuple


@dataclass
class ForwardingTables:
    """Destination-indexed output-port tables for every switch."""

    tree: XGFT
    #: ("leaf", l) / ("l2", pod, i) / ("spine", group, j) -> dst -> port
    tables: Dict[Switch, Dict[int, int]] = field(default_factory=dict)

    def port(self, switch: Switch, dst: int) -> int:
        """Output port of ``switch`` for destination node ``dst``."""
        try:
            return self.tables[switch][dst]
        except KeyError:
            raise KeyError(f"switch {switch} has no route to node {dst}") from None

    # ------------------------------------------------------------------
    # Hop-by-hop packet walk
    # ------------------------------------------------------------------
    def forward(self, src: int, dst: int, max_hops: int = 8) -> List[Switch]:
        """Walk a packet from ``src`` to ``dst``; returns switches visited.

        Raises ``RuntimeError`` on a forwarding loop or dead end.
        """
        tree = self.tree
        if src == dst:
            return []
        visited: List[Switch] = []
        switch: Switch = ("leaf", tree.leaf_of_node(src))
        for _ in range(max_hops):
            visited.append(switch)
            port = self.port(switch, dst)
            kind = switch[0]
            if kind == "leaf":
                leaf = switch[1]
                if port < tree.m1:  # down to a node
                    node = leaf * tree.m1 + port
                    if node != dst:
                        raise RuntimeError(
                            f"leaf {leaf} delivered to wrong node {node}"
                        )
                    return visited
                i = port - tree.m1
                switch = ("l2", tree.pod_of_leaf(leaf), i)
            elif kind == "l2":
                _, pod, i = switch
                if port < tree.m2:  # down to a leaf
                    switch = ("leaf", pod * tree.m2 + port)
                else:  # up to a spine
                    switch = ("spine", i, port - tree.m2)
            else:  # spine: port p leads down to pod p at this group's index
                _, group, _j = switch
                switch = ("l2", port, group)
        raise RuntimeError(f"forwarding loop routing {src} -> {dst}")


def dmodk_tables(tree: XGFT) -> ForwardingTables:
    """Full-fabric D-mod-k tables (what the subnet manager installs by
    default; oblivious to job allocations)."""
    ft = ForwardingTables(tree)
    for leaf in range(tree.num_leaves):
        table: Dict[int, int] = {}
        for dst in range(tree.num_nodes):
            if tree.leaf_of_node(dst) == leaf:
                table[dst] = tree.node_index_in_leaf(dst)
            else:
                table[dst] = tree.m1 + tree.node_index_in_leaf(dst)
        ft.tables[("leaf", leaf)] = table
    for pod in range(tree.num_pods):
        for i in range(tree.l2_per_pod):
            table = {}
            for dst in range(tree.num_nodes):
                if tree.pod_of_node(dst) == pod:
                    table[dst] = tree.leaf_index_in_pod(tree.leaf_of_node(dst))
                else:
                    table[dst] = tree.m2 + tree.leaf_index_in_pod(
                        tree.leaf_of_node(dst)
                    )
            ft.tables[("l2", pod, i)] = table
    for group in range(tree.num_spine_groups):
        for j in range(tree.spines_per_group):
            table = {dst: tree.pod_of_node(dst) for dst in range(tree.num_nodes)}
            ft.tables[("spine", group, j)] = table
    return ft


def partition_tables(tree: XGFT, alloc: Allocation) -> ForwardingTables:
    """Per-job tables confined to the allocation (section 4's adjustment).

    Built by asking the partition router for the path of every
    source-destination pair and recording the per-switch decisions.
    Because the router is destination-deterministic at each hop given
    the entry switch, the union of decisions is a consistent table.
    """
    ft = ForwardingTables(tree)
    router = PartitionRouter(tree, alloc)
    nodes = sorted(alloc.nodes)

    def leaf_table(leaf: int) -> Dict[int, int]:
        return ft.tables.setdefault(("leaf", leaf), {})

    def l2_table(pod: int, i: int) -> Dict[int, int]:
        return ft.tables.setdefault(("l2", pod, i), {})

    def spine_table(group: int, j: int) -> Dict[int, int]:
        return ft.tables.setdefault(("spine", group, j), {})

    def set_port(table: Dict[int, int], dst: int, port: int, where: str) -> None:
        old = table.get(dst)
        if old is not None and old != port:
            raise RuntimeError(
                f"conflicting table entry at {where} for destination {dst}"
            )
        table[dst] = port

    for src in nodes:
        src_leaf = tree.leaf_of_node(src)
        # delivery at the destination leaf
        set_port(
            leaf_table(src_leaf), src, tree.node_index_in_leaf(src),
            f"leaf {src_leaf}",
        )
        for dst in nodes:
            if src == dst:
                continue
            route = router.route(src, dst)
            if route.up_leaf is None:
                continue
            i = route.up_leaf.l2_index
            set_port(
                leaf_table(src_leaf), dst, tree.m1 + i, f"leaf {src_leaf}"
            )
            dst_leaf = tree.leaf_of_node(dst)
            src_pod = tree.pod_of_leaf(src_leaf)
            dst_pod = tree.pod_of_leaf(dst_leaf)
            if route.spine_up is None:
                set_port(
                    l2_table(src_pod, i), dst,
                    tree.leaf_index_in_pod(dst_leaf), f"l2 ({src_pod},{i})",
                )
            else:
                j = route.spine_up.spine_index
                set_port(
                    l2_table(src_pod, i), dst, tree.m2 + j,
                    f"l2 ({src_pod},{i})",
                )
                set_port(spine_table(i, j), dst, dst_pod, f"spine ({i},{j})")
                set_port(
                    l2_table(dst_pod, i), dst,
                    tree.leaf_index_in_pod(dst_leaf), f"l2 ({dst_pod},{i})",
                )
    return ft


def tables_use_only_allocated_links(
    tree: XGFT, ft: ForwardingTables, alloc: Allocation
) -> bool:
    """Audit: every up/down table entry corresponds to an allocated cable."""
    leaf_links = set(alloc.leaf_links)
    spine_links = set(alloc.spine_links)
    multi_leaf = len({tree.leaf_of_node(n) for n in alloc.nodes}) > 1
    for switch, table in ft.tables.items():
        kind = switch[0]
        for dst, port in table.items():
            if kind == "leaf":
                leaf = switch[1]
                if port >= tree.m1:
                    if multi_leaf and LinkId(leaf, port - tree.m1) not in leaf_links:
                        return False
            elif kind == "l2":
                _, pod, i = switch
                if port >= tree.m2:
                    if SpineLinkId(pod, i, port - tree.m2) not in spine_links:
                        return False
                else:
                    if multi_leaf and LinkId(pod * tree.m2 + port, i) not in leaf_links:
                        return False
            else:
                _, group, j = switch
                if SpineLinkId(port, group, j) not in spine_links:
                    return False
    return True
