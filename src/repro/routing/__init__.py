"""Routing substrate: static D-mod-k, Jigsaw partition routing, and the
constructive rearrangeable-non-blocking router from the paper's proofs.

Three routers with three distinct roles:

* :mod:`repro.routing.dmodk` — the static routing fat-tree clusters
  normally run (section 2.2); unaware of allocations, it happily routes a
  job's traffic over links the job does not own (Figure 5, left).
* :mod:`repro.routing.partition` — Jigsaw's adjusted routing (section 4):
  D-mod-k mapped onto the allocated partition, with wraparound on the
  remainder switches, so traffic only ever touches allocated links
  (Figure 5, right).
* :mod:`repro.routing.rearrange` — the constructive counterpart of the
  Appendix A sufficiency proof: given *any* permutation of an
  allocation's nodes, it produces a routing with at most one flow per
  link per direction, demonstrating that legal allocations really are
  rearrangeable non-blocking.
"""

from repro.routing.contention import (
    ContentionReport,
    JobContention,
    contention_report,
    link_load,
    permutation_traffic,
    route_flows,
)
from repro.routing.dmodk import Route, dmodk_route, route_stays_inside
from repro.routing.partition import PartitionRouter
from repro.routing.rearrange import (
    FlowAssignment,
    full_machine_allocation,
    route_permutation,
    verify_one_flow_per_link,
)
from repro.routing.subnet import SubnetManager
from repro.routing.tables import (
    ForwardingTables,
    dmodk_tables,
    partition_tables,
    tables_use_only_allocated_links,
)

__all__ = [
    "Route",
    "dmodk_route",
    "route_stays_inside",
    "PartitionRouter",
    "FlowAssignment",
    "full_machine_allocation",
    "route_permutation",
    "verify_one_flow_per_link",
    "ContentionReport",
    "JobContention",
    "contention_report",
    "link_load",
    "permutation_traffic",
    "route_flows",
    "ForwardingTables",
    "dmodk_tables",
    "partition_tables",
    "tables_use_only_allocated_links",
    "SubnetManager",
]
