"""Static D-mod-k routing (Zahavi [35]; section 2.2 of the paper).

D-mod-k is the deterministic routing most InfiniBand fat-tree clusters
deploy: at every up-hop, the output port is chosen as a modulus of the
destination address, which spreads the paths of shift permutations
evenly over the links.  It is completely unaware of job allocations —
which is exactly why a job-isolating scheduler must replace it inside
partitions (Figure 5): the first up-hop of a packet is chosen by the
destination address, not by link ownership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.core.allocator import Allocation
from repro.topology.fattree import LinkId, SpineLinkId, XGFT


@dataclass(frozen=True)
class Route:
    """The links one packet traverses from ``src`` to ``dst``.

    All four link fields are ``None`` for intra-leaf traffic; the spine
    fields are ``None`` for intra-pod traffic.  Up- and down-segments may
    name the same cable identity on different pods' sides; directionality
    is implied by the field (``up_leaf`` is traversed upward, etc.).
    """

    src: int
    dst: int
    up_leaf: Optional[LinkId] = None
    spine_up: Optional[SpineLinkId] = None
    spine_down: Optional[SpineLinkId] = None
    down_leaf: Optional[LinkId] = None

    def links(self) -> Iterator[tuple]:
        """Yield ``(direction, link)`` pairs for every link on the route."""
        if self.up_leaf is not None:
            yield ("up", self.up_leaf)
        if self.spine_up is not None:
            yield ("up", self.spine_up)
        if self.spine_down is not None:
            yield ("down", self.spine_down)
        if self.down_leaf is not None:
            yield ("down", self.down_leaf)

    @property
    def hops(self) -> int:
        """Number of switch-to-switch links traversed."""
        return sum(1 for _ in self.links())


def dmodk_route(tree: XGFT, src: int, dst: int) -> Route:
    """The D-mod-k path from ``src`` to ``dst`` on the full tree.

    The up-port at the leaf is ``dst mod m1`` (the destination's index
    within its leaf) and the up-port at the L2 switch is ``(dst div m1)
    mod m2`` (the destination leaf's index within its pod) — the standard
    digit-decomposition that makes shift permutations contention-free on
    a full tree.
    """
    if src == dst:
        raise ValueError("a node does not route to itself")
    src_leaf, dst_leaf = tree.leaf_of_node(src), tree.leaf_of_node(dst)
    if src_leaf == dst_leaf:
        return Route(src, dst)
    i = tree.node_index_in_leaf(dst)
    src_pod, dst_pod = tree.pod_of_leaf(src_leaf), tree.pod_of_leaf(dst_leaf)
    if src_pod == dst_pod:
        return Route(
            src,
            dst,
            up_leaf=LinkId(src_leaf, i),
            down_leaf=LinkId(dst_leaf, i),
        )
    j = tree.leaf_index_in_pod(dst_leaf)
    return Route(
        src,
        dst,
        up_leaf=LinkId(src_leaf, i),
        spine_up=SpineLinkId(src_pod, i, j),
        spine_down=SpineLinkId(dst_pod, i, j),
        down_leaf=LinkId(dst_leaf, i),
    )


def route_stays_inside(route: Route, alloc: Allocation) -> bool:
    """Whether every link of ``route`` is owned by ``alloc``.

    Under plain D-mod-k this is routinely false (Figure 5, left) — the
    reason Jigsaw must adjust routing tables when it places a job.
    """
    leaf_links = set(alloc.leaf_links)
    spine_links = set(alloc.spine_links)
    for _, link in route.links():
        if isinstance(link, SpineLinkId):
            if link not in spine_links:
                return False
        elif link not in leaf_links:
            return False
    return True
