"""Constructive rearrangeable-non-blocking routing (Appendix A, made code).

The paper proves that an allocation satisfying the formal conditions can
route *any* permutation of its nodes with at most one flow per link per
direction (Definition 1).  The proof is constructive — repeatedly pull
out a set of flows covering every leaf exactly once (Hall's Marriage
Theorem guarantees it exists), send the whole set across one center
network, recurse — and this module executes that construction:

1. flows are edges of a leaf-level multigraph; every leaf is padded with
   dummy self-flows up to the common degree ``nL`` (the proof's
   "augment the partition to a full fat-tree");
2. the multigraph is ``nL``-regular and bipartite (sources x
   destinations), so it decomposes into ``nL`` perfect matchings — each
   matching is one "round" routed over one L2 index;
3. rounds in which the remainder leaf carries a real inter-leaf flow are
   assigned indices from ``Sr`` (the proof's Case 1 / Case 2 choice of
   center network); the rest take the remaining indices of ``S``;
4. within a round, cross-pod flows form a pod-level multigraph that is
   decomposed the same way over the spine group ``T*_i``, with the
   remainder subtree's rounds pinned to ``S*r_i``.

The result is an explicit link assignment that
:func:`verify_one_flow_per_link` can audit — the executable witness that
Jigsaw allocations provide full interconnect bandwidth.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from repro.core.allocator import Allocation
from repro.topology.fattree import LinkId, SpineLinkId, XGFT

#: a flow is its (source node, destination node) pair
Flow = Tuple[int, int]
#: multigraph edge: (source vertex, destination vertex, payload or None)
Edge = Tuple[Hashable, Hashable, Optional[Flow]]


@dataclass(frozen=True)
class FlowAssignment:
    """The routing decision for one flow.

    ``l2_index`` is the common up/down L2 index ``i`` (None for
    intra-leaf flows); ``spine`` is the spine ``j`` within group ``i``
    (None unless the flow crosses pods).
    """

    src: int
    dst: int
    l2_index: Optional[int] = None
    spine: Optional[int] = None


def full_machine_allocation(tree: XGFT) -> Allocation:
    """The whole machine as one allocation (Theorem 5's full fat-tree)."""
    return Allocation(
        job_id=-1,
        size=tree.num_nodes,
        nodes=tuple(range(tree.num_nodes)),
        leaf_links=tuple(tree.leaf_links()),
        spine_links=tuple(tree.spine_links()),
    )


def _decompose_regular(edges: Sequence[Edge], degree: int) -> List[List[Edge]]:
    """Split a ``degree``-regular directed multigraph (self-loops allowed)
    into ``degree`` permutation rounds via repeated perfect matchings.

    Hall's Marriage Theorem guarantees each matching exists: in a
    k-regular bipartite multigraph every subset of sources touches at
    least as many destinations.
    """
    if degree == 0:
        return []
    remaining: Dict[Tuple[Hashable, Hashable], List[Optional[Flow]]] = defaultdict(list)
    vertices = set()
    for u, v, payload in edges:
        remaining[(u, v)].append(payload)
        vertices.add(u)
        vertices.add(v)
    rounds: List[List[Edge]] = []
    for _ in range(degree):
        graph = nx.Graph()
        graph.add_nodes_from(("s", u) for u in vertices)
        graph.add_nodes_from(("d", v) for v in vertices)
        for (u, v), payloads in remaining.items():
            if payloads:
                graph.add_edge(("s", u), ("d", v))
        matching = nx.bipartite.hopcroft_karp_matching(
            graph, top_nodes=[("s", u) for u in vertices]
        )
        this_round: List[Edge] = []
        for u in vertices:
            partner = matching.get(("s", u))
            if partner is None:
                raise RuntimeError(
                    "no perfect matching: multigraph is not regular "
                    "(allocation violates the formal conditions?)"
                )
            v = partner[1]
            payload = remaining[(u, v)].pop()
            this_round.append((u, v, payload))
        rounds.append(this_round)
    if any(payloads for payloads in remaining.values()):
        raise RuntimeError("edges left over after decomposition")
    return rounds


def route_permutation(
    tree: XGFT, alloc: Allocation, perm: Mapping[int, int]
) -> Dict[Flow, FlowAssignment]:
    """Route the permutation ``perm`` over ``alloc`` one-flow-per-link.

    ``perm`` must be a bijection over ``alloc.nodes``.  Fixed points
    (``perm[n] == n``) are allowed and consume no links.  Returns an
    assignment for every non-fixed flow; raises if the allocation's
    structure makes the construction impossible (i.e. the allocation is
    not actually legal).
    """
    nodes = sorted(alloc.nodes)
    if sorted(perm) != nodes or sorted(perm.values()) != nodes:
        raise ValueError("perm must be a bijection over the allocation's nodes")

    by_leaf: Dict[int, List[int]] = defaultdict(list)
    for n in nodes:
        by_leaf[tree.leaf_of_node(n)].append(n)
    leaves = sorted(by_leaf)

    flows: List[Flow] = [(s, d) for s, d in perm.items() if s != d]
    out: Dict[Flow, FlowAssignment] = {}

    if len(leaves) == 1:
        for s, d in flows:
            out[(s, d)] = FlowAssignment(s, d)
        return out

    leaf_up: Dict[int, List[int]] = defaultdict(list)
    for leaf, i in alloc.leaf_links:
        leaf_up[leaf].append(i)
    for ups in leaf_up.values():
        ups.sort()

    n_l = max(len(by_leaf[leaf]) for leaf in leaves)
    rem_leaves = [leaf for leaf in leaves if len(by_leaf[leaf]) < n_l]
    if len(rem_leaves) > 1:
        raise ValueError("allocation has more than one remainder leaf")
    rem_leaf = rem_leaves[0] if rem_leaves else None
    full_leaf = next(leaf for leaf in leaves if leaf != rem_leaf)
    s_indices = list(leaf_up[full_leaf])
    if len(s_indices) != n_l:
        raise ValueError("leaf up/down imbalance: allocation is illegal")

    # ------------------------------------------------------------------
    # Leaf level: pad, decompose, and assign L2 indices to rounds.
    # ------------------------------------------------------------------
    edges: List[Edge] = [
        (tree.leaf_of_node(s), tree.leaf_of_node(d), (s, d)) for s, d in perm.items()
    ]
    for leaf in leaves:
        for _ in range(n_l - len(by_leaf[leaf])):
            edges.append((leaf, leaf, None))
    rounds = _decompose_regular(edges, n_l)

    def needs_sr(rnd: List[Edge]) -> bool:
        return any(
            payload is not None and u != v and rem_leaf in (u, v)
            for u, v, payload in rnd
        )

    sr_indices = list(leaf_up[rem_leaf]) if rem_leaf is not None else []
    free_sr = list(sr_indices)
    free_other = [i for i in s_indices if i not in sr_indices]
    assigned: List[Tuple[int, List[Edge]]] = []
    for rnd in sorted(rounds, key=needs_sr, reverse=True):
        if needs_sr(rnd):
            if not free_sr:
                raise RuntimeError(
                    "more remainder-leaf rounds than Sr indices: "
                    "allocation is illegal"
                )
            assigned.append((free_sr.pop(), rnd))
        else:
            pool = free_other if free_other else free_sr
            assigned.append((pool.pop(), rnd))

    # ------------------------------------------------------------------
    # Spine level: per round, decompose cross-pod flows over T*_i.
    # ------------------------------------------------------------------
    spines: Dict[Tuple[int, int], List[int]] = defaultdict(list)
    for pod, i, j in alloc.spine_links:
        spines[(pod, i)].append(j)
    for js in spines.values():
        js.sort()
    pods = sorted({tree.pod_of_leaf(leaf) for leaf in leaves})
    pod_node_counts = Counter(tree.pod_of_node(n) for n in nodes)
    n_t = max(pod_node_counts.values())
    rem_pods = [p for p in pods if pod_node_counts[p] < n_t]
    rem_pod = rem_pods[0] if rem_pods else None

    for i, rnd in assigned:
        real = [
            (u, v, payload) for u, v, payload in rnd if payload is not None and u != v
        ]
        for u, v, payload in rnd:
            if payload is None:
                continue
            s, d = payload
            if u == v:
                out[(s, d)] = FlowAssignment(s, d)  # intra-leaf
        if not real:
            continue
        cross = [
            (tree.pod_of_leaf(u), tree.pod_of_leaf(v), payload)
            for u, v, payload in real
        ]
        intra_pod = [(p, q, f) for p, q, f in cross if p == q]
        for _, _, (s, d) in intra_pod:
            out[(s, d)] = FlowAssignment(s, d, l2_index=i)
        cross = [(p, q, f) for p, q, f in cross if p != q]
        if not cross:
            continue

        full_pod = next(p for p in pods if p != rem_pod)
        star = list(spines[(full_pod, i)])
        lt = len(star)
        star_r = list(spines[(rem_pod, i)]) if rem_pod is not None else []
        # Pad every allocated pod to degree lt with self-loops.
        out_deg = Counter(p for p, _, _ in cross)
        in_deg = Counter(q for _, q, _ in cross)
        pod_edges: List[Edge] = list(cross)
        for p in pods:
            deficit_out = lt - out_deg.get(p, 0)
            deficit_in = lt - in_deg.get(p, 0)
            if deficit_out != deficit_in:
                raise RuntimeError("pod in/out degrees differ within a round")
            pod_edges.extend((p, p, None) for _ in range(deficit_out))
        prounds = _decompose_regular(pod_edges, lt)

        def touches_rem(prnd: List[Edge]) -> bool:
            return any(
                payload is not None and rem_pod in (u, v)
                for u, v, payload in prnd
            )

        free_r = list(star_r)
        free_o = [j for j in star if j not in star_r]
        for prnd in sorted(prounds, key=touches_rem, reverse=True):
            if touches_rem(prnd):
                if not free_r:
                    raise RuntimeError(
                        "more remainder-pod rounds than S*r spines: "
                        "allocation is illegal"
                    )
                j = free_r.pop()
            else:
                j = (free_o if free_o else free_r).pop()
            for u, v, payload in prnd:
                if payload is None or u == v:
                    continue
                s, d = payload
                out[(s, d)] = FlowAssignment(s, d, l2_index=i, spine=j)

    missing = [f for f in flows if f not in out]
    if missing:
        raise RuntimeError(f"{len(missing)} flows left unrouted")
    return out


def verify_one_flow_per_link(
    tree: XGFT,
    alloc: Allocation,
    assignments: Mapping[Flow, FlowAssignment],
) -> List[str]:
    """Audit a routing: every link allocated, at most one flow per link
    per direction.  Returns violation strings (empty = valid witness of
    rearrangeable non-blocking behaviour)."""
    violations: List[str] = []
    leaf_links = set(alloc.leaf_links)
    spine_links = set(alloc.spine_links)
    multi_leaf = len({tree.leaf_of_node(n) for n in alloc.nodes}) > 1
    usage: Counter = Counter()
    for (s, d), fa in assignments.items():
        src_leaf, dst_leaf = tree.leaf_of_node(s), tree.leaf_of_node(d)
        if fa.l2_index is None:
            if src_leaf != dst_leaf:
                violations.append(f"flow {s}->{d} crosses leaves without links")
            continue
        up = LinkId(src_leaf, fa.l2_index)
        down = LinkId(dst_leaf, fa.l2_index)
        for direction, link in (("up", up), ("down", down)):
            if multi_leaf and link not in leaf_links:
                violations.append(f"flow {s}->{d} uses unallocated link {link}")
            usage[(direction, link)] += 1
        src_pod, dst_pod = tree.pod_of_leaf(src_leaf), tree.pod_of_leaf(dst_leaf)
        if fa.spine is None:
            if src_pod != dst_pod:
                violations.append(f"flow {s}->{d} crosses pods without a spine")
            continue
        sup = SpineLinkId(src_pod, fa.l2_index, fa.spine)
        sdown = SpineLinkId(dst_pod, fa.l2_index, fa.spine)
        for direction, link in (("up", sup), ("down", sdown)):
            if link not in spine_links:
                violations.append(f"flow {s}->{d} uses unallocated link {link}")
            usage[(direction, link)] += 1
    for (direction, link), count in usage.items():
        if count > 1:
            violations.append(f"{count} flows share {direction} link {link}")
    return violations
