"""Inter-job network contention analysis.

The paper's premise (section 2.2): under static D-mod-k routing, jobs
placed by a network-oblivious scheduler share links, and communication-
intensive applications slow down by up to 120 % in controlled
experiments.  This module *measures* that contention for any set of
allocations and traffic patterns, so the benefit Jigsaw provides — a
hard zero for inter-job link sharing — is quantified rather than
asserted:

* :func:`link_load` — flows per directed link for a traffic pattern
  routed with D-mod-k (Baseline) or partition routing (isolating
  schemes);
* :func:`contention_report` — per-job interference summary: how many of
  the job's flows share links, with whom, and the worst per-link
  sharing degree (a standard proxy for worst-case slowdown: a flow on a
  link carrying ``k`` flows gets ``1/k`` of the bandwidth);
* :func:`permutation_traffic` — a random permutation *within each job*,
  the all-to-all-ish pattern the paper's bandwidth guarantee is stated
  over.

The headline property (tested, and shown in
``examples/interference_study.py``): under Jigsaw placements every link
carries at most one flow per direction, so every job's slowdown factor
is exactly 1.0; under Baseline placements the same traffic produces
slowdown factors well above 1.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.allocator import Allocation
from repro.routing.dmodk import Route, dmodk_route
from repro.routing.partition import PartitionRouter
from repro.topology.fattree import XGFT

#: a flow: (job id, source node, destination node)
Flow = Tuple[int, int, int]
#: a directed link: ("up"|"down", LinkId | SpineLinkId)
DirectedLink = Tuple[str, tuple]


def permutation_traffic(
    allocations: Iterable[Allocation], seed: int = 0
) -> List[Flow]:
    """One random permutation of nodes within each job.

    Fixed points are dropped (a node talking to itself uses no links).
    """
    rng = random.Random(seed)
    flows: List[Flow] = []
    for alloc in allocations:
        nodes = sorted(alloc.nodes)
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        flows.extend(
            (alloc.job_id, src, dst)
            for src, dst in zip(nodes, shuffled)
            if src != dst
        )
    return flows


def route_flows(
    tree: XGFT,
    flows: Iterable[Flow],
    allocations: Optional[Mapping[int, Allocation]] = None,
    rearranged: bool = False,
) -> Dict[Flow, Route]:
    """Route every flow.

    * ``allocations=None`` — plain D-mod-k over the shared fabric (the
      Baseline situation);
    * ``allocations`` given — each job's static partition routing
      (confined, but a job may still congest itself);
    * additionally ``rearranged=True`` — the constructive rearrangeable
      routing of :mod:`repro.routing.rearrange` per job, which the
      paper's theorems guarantee is one-flow-per-link.  Requires each
      job's flows to form a (partial) permutation of its nodes.
    """
    routes: Dict[Flow, Route] = {}
    if allocations is None:
        for flow in flows:
            _, src, dst = flow
            routes[flow] = dmodk_route(tree, src, dst)
        return routes
    if rearranged:
        return _route_rearranged(tree, flows, allocations)
    routers: Dict[int, PartitionRouter] = {}
    for flow in flows:
        job_id, src, dst = flow
        router = routers.get(job_id)
        if router is None:
            router = routers[job_id] = PartitionRouter(tree, allocations[job_id])
        routes[flow] = router.route(src, dst)
    return routes


def _route_rearranged(
    tree: XGFT,
    flows: Iterable[Flow],
    allocations: Mapping[int, Allocation],
) -> Dict[Flow, Route]:
    from repro.routing.dmodk import Route as _Route
    from repro.routing.rearrange import route_permutation
    from repro.topology.fattree import LinkId, SpineLinkId

    by_job: Dict[int, Dict[int, int]] = defaultdict(dict)
    for job_id, src, dst in flows:
        if src in by_job[job_id]:
            raise ValueError(f"job {job_id}: node {src} sends two flows")
        by_job[job_id][src] = dst
    routes: Dict[Flow, Route] = {}
    for job_id, perm in by_job.items():
        alloc = allocations[job_id]
        # complete the partial permutation with fixed points
        targets = set(perm.values())
        full = dict(perm)
        for n in alloc.nodes:
            if n not in full:
                if n in targets:
                    raise ValueError(
                        f"job {job_id}: flows are not a partial permutation"
                    )
                full[n] = n
        assignments = route_permutation(tree, alloc, full)
        for (src, dst), fa in assignments.items():
            if src == dst:
                continue
            src_leaf, dst_leaf = tree.leaf_of_node(src), tree.leaf_of_node(dst)
            if fa.l2_index is None:
                routes[(job_id, src, dst)] = _Route(src, dst)
                continue
            spine_up = spine_down = None
            if fa.spine is not None:
                spine_up = SpineLinkId(tree.pod_of_leaf(src_leaf), fa.l2_index, fa.spine)
                spine_down = SpineLinkId(tree.pod_of_leaf(dst_leaf), fa.l2_index, fa.spine)
            routes[(job_id, src, dst)] = _Route(
                src, dst,
                up_leaf=LinkId(src_leaf, fa.l2_index),
                spine_up=spine_up,
                spine_down=spine_down,
                down_leaf=LinkId(dst_leaf, fa.l2_index),
            )
    return routes


def link_load(routes: Mapping[Flow, Route]) -> Dict[DirectedLink, List[Flow]]:
    """Flows carried by every directed link."""
    load: Dict[DirectedLink, List[Flow]] = defaultdict(list)
    for flow, route in routes.items():
        for direction, link in route.links():
            load[(direction, link)].append(flow)
    return load


@dataclass
class JobContention:
    """One job's view of network contention under a traffic pattern."""

    job_id: int
    flows: int
    #: flows of this job that share at least one link with another job
    interfered_flows: int
    #: the worst number of flows sharing any link this job's flows use
    max_link_sharing: int
    #: ids of jobs this job shares links with
    aggressors: Tuple[int, ...] = ()

    @property
    def slowdown_factor(self) -> float:
        """Worst-case bandwidth-share slowdown proxy: a flow on a link
        carrying ``k`` flows gets ``1/k`` of the link, i.e. runs ``k``
        times slower on that hop.  Includes intra-job sharing — under
        static routing a job can congest itself (the *intra-job*
        interference of section 2.3, which topology mapping addresses)."""
        return float(self.max_link_sharing)

    @property
    def interference_free(self) -> bool:
        """No flow of this job shares a link with another job's flow —
        the guarantee isolating schedulers provide.  Intra-job sharing
        is the application's own business and does not count."""
        return self.interfered_flows == 0


@dataclass
class ContentionReport:
    """System-wide contention summary for one traffic pattern."""

    jobs: Dict[int, JobContention] = field(default_factory=dict)
    #: total directed links carrying more than one flow
    congested_links: int = 0
    #: the single worst per-link flow count
    max_link_sharing: int = 1

    @property
    def interference_free(self) -> bool:
        return all(j.interference_free for j in self.jobs.values())

    @property
    def mean_slowdown(self) -> float:
        if not self.jobs:
            return 1.0
        return sum(j.slowdown_factor for j in self.jobs.values()) / len(self.jobs)

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        worst = max(
            self.jobs.values(),
            key=lambda j: j.slowdown_factor,
            default=None,
        )
        lines = [
            f"jobs: {len(self.jobs)}",
            f"congested directed links: {self.congested_links}",
            f"worst link sharing: {self.max_link_sharing} flows",
            f"mean worst-case slowdown: {self.mean_slowdown:.2f}x",
        ]
        if worst is not None:
            lines.append(
                f"worst job: {worst.job_id} "
                f"({worst.slowdown_factor:.0f}x, "
                f"{worst.interfered_flows}/{worst.flows} flows interfered)"
            )
        return "\n".join(lines)


def contention_report(
    tree: XGFT,
    allocations: Iterable[Allocation],
    seed: int = 0,
    use_partition_routing: bool = False,
    rearranged: bool = False,
) -> ContentionReport:
    """Measure contention for one permutation-per-job traffic pattern.

    ``use_partition_routing=False`` models Baseline: everything rides
    plain D-mod-k over the shared fabric and jobs interfere.  ``True``
    models an isolating scheme: each job's traffic is confined to its
    allocation, so inter-job interference is zero by construction;
    intra-job self-congestion may remain under the static per-packet
    routing.  Adding ``rearranged=True`` routes each job's permutation
    with the constructive rearrangeable router, which the paper's
    sufficiency theorem guarantees is one flow per link — slowdown
    factor exactly 1.0.
    """
    allocs = {a.job_id: a for a in allocations}
    flows = permutation_traffic(allocs.values(), seed=seed)
    routes = route_flows(
        tree,
        flows,
        allocations=allocs if use_partition_routing else None,
        rearranged=rearranged,
    )
    load = link_load(routes)

    report = ContentionReport()
    per_job_flows = Counter(job_id for job_id, _, _ in flows)
    interfered: Dict[int, set] = defaultdict(set)
    aggressors: Dict[int, set] = defaultdict(set)
    worst: Dict[int, int] = defaultdict(lambda: 1)

    for link, link_flows in load.items():
        count = len(link_flows)
        if count > report.max_link_sharing:
            report.max_link_sharing = count
        if count > 1:
            report.congested_links += 1
        jobs_here = {job_id for job_id, _, _ in link_flows}
        for flow in link_flows:
            job_id = flow[0]
            worst[job_id] = max(worst[job_id], count)
            others = jobs_here - {job_id}
            if others:
                interfered[job_id].add(flow)
                aggressors[job_id] |= others

    for job_id, nflows in per_job_flows.items():
        report.jobs[job_id] = JobContention(
            job_id=job_id,
            flows=nflows,
            interfered_flows=len(interfered[job_id]),
            max_link_sharing=worst[job_id],
            aggressors=tuple(sorted(aggressors[job_id])),
        )
    for job_id in allocs:
        report.jobs.setdefault(
            job_id, JobContention(job_id=job_id, flows=0, interfered_flows=0,
                                  max_link_sharing=1)
        )
    return report
