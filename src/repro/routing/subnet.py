"""The subnet manager: global routing state across the job lifecycle.

Section 4: "The actual changing of the routing tables can be done on the
fly, for example via the subnet management software on an InfiniBand
system."  This module is that piece of system software, simulated: a
:class:`SubnetManager` owns the fabric-wide forwarding state — the
default D-mod-k tables — and, as jobs are placed and released, overlays
and removes each job's partition-confined entries.

Per-destination overlay semantics match the InfiniBand reality: a
forwarding entry is indexed by destination, so the *destination's* owner
decides the entry.  Traffic to a node of job J follows J's partition
tables (and J's sources only ever target J's nodes, so J's traffic stays
inside its allocation); traffic to free nodes follows the default
D-mod-k entries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.allocator import Allocation
from repro.routing.tables import ForwardingTables, dmodk_tables, partition_tables
from repro.topology.fattree import XGFT

Switch = Tuple


class SubnetManager:
    """Fabric-wide forwarding state with per-job overlays.

    >>> sm = SubnetManager(tree)
    >>> sm.install(alloc)          # on job start
    >>> sm.forward(src, dst)       # hop-by-hop switch path
    >>> sm.remove(alloc.job_id)    # on job completion
    """

    def __init__(self, tree: XGFT):
        self.tree = tree
        self._default = dmodk_tables(tree)
        #: per-switch destination overrides: switch -> dst -> port
        self._overlay: Dict[Switch, Dict[int, int]] = {}
        #: which (switch, dst) entries each job installed
        self._installed: Dict[int, List[Tuple[Switch, int]]] = {}
        #: owner job per node destination (for diagnostics)
        self._dst_owner: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def install(self, alloc: Allocation) -> int:
        """Overlay the job's partition routing; returns entries written.

        The update is the paper's "on the fly" table change: only entries
        for the job's own destinations are touched, so other traffic is
        never disrupted.
        """
        if alloc.job_id in self._installed:
            raise ValueError(f"job {alloc.job_id} already installed")
        for node in alloc.nodes:
            owner = self._dst_owner.get(node)
            if owner is not None:
                raise ValueError(
                    f"node {node} already routed for job {owner}"
                )
        tables = partition_tables(self.tree, alloc)
        written: List[Tuple[Switch, int]] = []
        for switch, table in tables.tables.items():
            overlay = self._overlay.setdefault(switch, {})
            for dst, port in table.items():
                overlay[dst] = port
                written.append((switch, dst))
        for node in alloc.nodes:
            self._dst_owner[node] = alloc.job_id
        self._installed[alloc.job_id] = written
        return len(written)

    def remove(self, job_id: int) -> int:
        """Remove the job's overlay entries; returns entries removed."""
        try:
            written = self._installed.pop(job_id)
        except KeyError:
            raise ValueError(f"job {job_id} has no installed routes") from None
        for switch, dst in written:
            overlay = self._overlay.get(switch)
            if overlay is not None:
                overlay.pop(dst, None)
                if not overlay:
                    del self._overlay[switch]
        for node, owner in list(self._dst_owner.items()):
            if owner == job_id:
                del self._dst_owner[node]
        return len(written)

    # ------------------------------------------------------------------
    def port(self, switch: Switch, dst: int) -> int:
        """Effective output port: the overlay wins over the default."""
        overlay = self._overlay.get(switch)
        if overlay is not None and dst in overlay:
            return overlay[dst]
        return self._default.port(switch, dst)

    def forward(self, src: int, dst: int, max_hops: int = 8) -> List[Switch]:
        """Walk a packet through the effective tables (see
        :meth:`repro.routing.tables.ForwardingTables.forward`)."""
        view = _EffectiveTables(self)
        return ForwardingTables.forward(view, src, dst, max_hops=max_hops)

    # ------------------------------------------------------------------
    def owner_of_destination(self, node: int) -> Optional[int]:
        """The job whose overlay governs traffic to ``node`` (None = default)."""
        return self._dst_owner.get(node)

    @property
    def installed_jobs(self) -> Set[int]:
        return set(self._installed)

    @property
    def overlay_entries(self) -> int:
        """Total overridden (switch, destination) entries."""
        return sum(len(t) for t in self._overlay.values())


class _EffectiveTables:
    """Adapter giving :meth:`ForwardingTables.forward` the merged view."""

    def __init__(self, manager: SubnetManager):
        self.tree = manager.tree
        self._manager = manager

    def port(self, switch: Switch, dst: int) -> int:
        return self._manager.port(switch, dst)
