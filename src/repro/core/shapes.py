"""Enumeration of legal allocation shapes (section 3.2.2, conditions 1-3).

The formal conditions force every allocation into a rigid arithmetic
shape.  A **two-level** (single-subtree) allocation of ``N`` nodes is

    ``N = LT * nL + nrL``          with ``0 <= nrL < nL``

— ``LT`` *full* leaves carrying ``nL`` nodes each plus an optional
remainder leaf carrying ``nrL``.  A **three-level** allocation is

    ``N = T * (LT * nL) + (LrT * nL + nrL)``

— ``T`` identical subtrees of ``LT`` full leaves, plus an optional
remainder subtree of ``LrT`` full leaves and an optional remainder leaf
(Lemma 3 proves the remainder leaf must live in the remainder subtree).

Jigsaw's single extra restriction (section 4) is that three-level
allocations use *all* nodes per leaf (``nL = m1``) except on the
remainder leaf; this collapses the search space and is what keeps
external fragmentation and scheduling time low.  The least-constrained
scheme (LC+S) drops that restriction, which is why its shape set — and
its search — is so much larger.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Literal, Tuple

Order = Literal["dense", "sparse"]


@dataclass(frozen=True)
class TwoLevelShape:
    """Shape of a single-subtree allocation: ``LT`` full leaves of ``nL``
    nodes plus an optional remainder leaf of ``nrL < nL`` nodes."""

    LT: int
    nL: int
    nrL: int

    def __post_init__(self) -> None:
        if self.LT < 1 or self.nL < 1 or not 0 <= self.nrL < self.nL:
            raise ValueError(f"malformed two-level shape {self!r}")

    @property
    def size(self) -> int:
        return self.LT * self.nL + self.nrL

    @property
    def num_leaves(self) -> int:
        return self.LT + (1 if self.nrL else 0)

    @property
    def single_leaf(self) -> bool:
        """True when the whole job fits on one leaf (no links needed)."""
        return self.num_leaves == 1


@dataclass(frozen=True)
class ThreeLevelShape:
    """Shape of a multi-subtree allocation.

    ``T`` full subtrees of ``LT`` leaves with ``nL`` nodes each; a
    remainder subtree of ``LrT`` full leaves plus a remainder leaf of
    ``nrL`` nodes.  ``nrT = LrT * nL + nrL`` must be strictly smaller
    than ``nT = LT * nL`` (Lemma 2), and the remainder leaf lives in the
    remainder subtree (Lemma 3).
    """

    T: int
    LT: int
    nL: int
    LrT: int
    nrL: int

    def __post_init__(self) -> None:
        if self.T < 1 or self.LT < 1 or self.nL < 1:
            raise ValueError(f"malformed three-level shape {self!r}")
        if not 0 <= self.nrL < self.nL:
            raise ValueError(f"remainder leaf too large in {self!r}")
        if self.LrT < 0 or self.nrT >= self.nT:
            raise ValueError(f"remainder subtree too large in {self!r}")

    @property
    def nT(self) -> int:
        """Nodes per full subtree."""
        return self.LT * self.nL

    @property
    def nrT(self) -> int:
        """Nodes in the remainder subtree (0 = none)."""
        return self.LrT * self.nL + self.nrL

    @property
    def size(self) -> int:
        return self.T * self.nT + self.nrT

    @property
    def num_pods(self) -> int:
        return self.T + (1 if self.nrT else 0)

    @property
    def has_remainder_pod(self) -> bool:
        return self.nrT > 0


def two_level_shapes(
    size: int, m1: int, m2: int, order: Order = "dense"
) -> Iterator[TwoLevelShape]:
    """All two-level shapes for a ``size``-node job in one pod.

    For each nodes-per-leaf value ``nL`` there is exactly one shape
    (``LT = size // nL``, ``nrL = size % nL``); shapes using more leaves
    than the pod has are skipped.

    ``order='dense'`` yields the largest ``nL`` (fewest leaves) first,
    which is Jigsaw's default: it touches the fewest leaves and leaves
    the most L2 index flexibility for later jobs.  ``'sparse'`` reverses
    this (exercised by the ordering ablation).
    """
    if size < 1:
        raise ValueError("job size must be positive")
    if size > m1 * m2:
        return
    nls = range(min(m1, size), 0, -1)
    if order == "sparse":
        nls = reversed(nls)
    for nL in nls:
        LT, nrL = divmod(size, nL)
        if LT + (1 if nrL else 0) <= m2:
            yield TwoLevelShape(LT=LT, nL=nL, nrL=nrL)


def three_level_shapes(
    size: int,
    m1: int,
    m2: int,
    m3: int,
    order: Order = "dense",
    full_leaves_only: bool = True,
) -> Iterator[ThreeLevelShape]:
    """All three-level shapes for a ``size``-node job.

    With ``full_leaves_only=True`` (Jigsaw's restriction, section 4)
    ``nL`` is pinned to ``m1``; with ``False`` every ``nL`` is considered
    (the least-constrained scheme).  Shapes equivalent to a two-level
    allocation (one pod, no remainder) are excluded — they are found by
    :func:`two_level_shapes` first.

    ``order='dense'`` yields shapes with the largest subtrees (fewest
    pods) first.
    """
    if size < 1:
        raise ValueError("job size must be positive")
    if size > m1 * m2 * m3:
        return
    nls = [m1] if full_leaves_only else list(range(min(m1, size), 0, -1))
    if order == "sparse":
        nls = list(reversed(nls))
    for nL in nls:
        lts = range(min(m2, max(1, size // nL)), 0, -1)
        if order == "sparse":
            lts = reversed(lts)
        for LT in lts:
            nT = LT * nL
            T, nrT = divmod(size, nT)
            if T < 1:
                continue
            if T == 1 and nrT == 0:
                continue  # single-subtree: a two-level shape
            if T + (1 if nrT else 0) > m3:
                continue
            LrT, nrL = divmod(nrT, nL)
            if LrT + (1 if nrL else 0) > m2:
                continue
            yield ThreeLevelShape(T=T, LT=LT, nL=nL, LrT=LrT, nrL=nrL)


# ----------------------------------------------------------------------
# Cached tuple variants: shape sets depend only on the arguments, and the
# allocators enumerate them on every attempt — the hot path of Table 3.
# ----------------------------------------------------------------------
@lru_cache(maxsize=65536)
def two_level_shapes_cached(
    size: int, m1: int, m2: int, order: Order = "dense"
) -> Tuple[TwoLevelShape, ...]:
    """Memoized :func:`two_level_shapes` as a tuple."""
    return tuple(two_level_shapes(size, m1, m2, order))


@lru_cache(maxsize=65536)
def three_level_shapes_cached(
    size: int,
    m1: int,
    m2: int,
    m3: int,
    order: Order = "dense",
    full_leaves_only: bool = True,
) -> Tuple[ThreeLevelShape, ...]:
    """Memoized :func:`three_level_shapes` as a tuple."""
    return tuple(
        three_level_shapes(size, m1, m2, m3, order, full_leaves_only)
    )
