"""Least-Constrained scheduling, with and without Link-Sharing (LC+S).

The paper's formal conditions (section 3.2) admit far more placements
than Jigsaw actually uses: any nodes-per-leaf value ``nL``, any
combination of partially-free leaves across pods.  The **LC** scheme
searches that full space.  The paper shows (section 4) that full
permissiveness *hurts*: scattered partial leaves cause external
fragmentation, and the search space is exponential in the tree size.

**LC+S** (section 5.2.3) adds the one relaxation that makes the least-
constrained approach shine as a *bounding* scheme: links are shared.
Each job declares an average per-link bandwidth need (0.5-2.0 GB/s in the
paper's setup), links are filled up to an 80 % cap of the 5 GB/s peak,
and a link is "available" to a job if it still has headroom.  This
information is not available to real schedulers — LC+S is of theoretical
interest only — but it approximates the best utilization any
low-interference scheduler could reach.

Because the search space is enormous, LC+S needs a per-job scheduling
timeout (5 s in the paper).  We model it as a backtracking **step
budget** plus an optional wall-clock limit; when the budget is spent the
job simply fails to schedule at this event, exactly like the paper's
timeout.  Table 3's scheduling-time blowup for LC+S falls out of this
directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocator import Allocation
from repro.core.jigsaw import JigsawAllocator
from repro.core.shapes import (
    Order,
    ThreeLevelShape,
    three_level_shapes_cached,
)
from repro.topology.fattree import LinkId, SpineLinkId, XGFT
from repro.topology.state import LinkCapacityState, indices_of, lowest_bits


@dataclass
class _PodSolution:
    """One way a pod can host ``LT`` leaves of ``nL`` nodes: the leaves and
    the bitmask of L2 indices they can commonly reach."""

    leaves: Tuple[int, ...]
    inter: int
    rem_leaf: Optional[int] = None
    rem_avail: int = 0


class LeastConstrainedAllocator(JigsawAllocator):
    """The LC/LC+S bounding scheme.

    Parameters
    ----------
    tree:
        Topology to allocate on.
    share_links:
        ``True`` (LC+S) shares links by bandwidth; ``False`` (pure LC)
        keeps links exclusive — the variant section 4 argues is *worse*
        than Jigsaw, used by the restriction ablation.
    default_bw:
        Per-link bandwidth need (GB/s) assumed for jobs that do not
        declare one.
    peak_bandwidth, cap_fraction:
        Link capacity model; the paper uses 5 GB/s capped at 80 %.
    step_budget:
        Backtracking steps allowed per allocation attempt (the paper's
        5-second timeout, made deterministic).
    max_solutions_per_pod:
        Cap on the per-pod solution lists gathered by ``find_all_L2``.
    """

    name = "lc+s"
    #: links are shared, so strict isolation does not hold ...
    isolating = False
    #: ... but interference is engineered to be negligible, so the
    #: performance scenarios treat LC+S like the isolating schemes.
    low_interference = True

    #: the LC family keeps the scalar two-level walk: its 50k step
    #: budget *binds* (the paper's scheduling timeout), so every tick is
    #: decision-relevant, and the LC+S leaf masks are bandwidth
    #: headroom, which the occupancy histogram cannot see.
    vector_two_level = False

    def __init__(
        self,
        tree: XGFT,
        share_links: bool = True,
        default_bw: float = 1.0,
        peak_bandwidth: float = 5.0,
        cap_fraction: float = 0.8,
        step_budget: int = 50_000,
        max_solutions_per_pod: int = 64,
        order: Order = "dense",
    ):
        super().__init__(tree, order=order)
        self.share_links = share_links
        if not share_links:
            self.name = "lc"
            self.isolating = True
        self.default_bw = default_bw
        self.links = LinkCapacityState(
            tree, peak_bandwidth=peak_bandwidth, cap_fraction=cap_fraction
        )
        self.step_budget = step_budget
        self.max_solutions_per_pod = max_solutions_per_pod
        self._bw = default_bw
        self._bw_by_job: Dict[int, float] = {}
        # Per-_search columnar mask caches (pod -> per-leaf / per-L2
        # bitmask rows at the current bandwidth need); reset by _search.
        self._leaf_mask_cache: Dict[int, List[int]] = {}
        self._spine_mask_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Link availability: bandwidth headroom instead of exclusive ownership
    # ------------------------------------------------------------------
    def _leaf_mask(self, leaf: int) -> int:
        if self.share_links:
            if self.use_indexes:
                # Columnar per-search cache: bandwidth and link state
                # are fixed for the duration of one _search, so all of
                # a pod's leaf masks are built in one vectorized pass
                # (identical IEEE comparison, see
                # :meth:`LinkCapacityState.leaf_masks_of_pod`) on first
                # touch instead of one Python loop per leaf per probe.
                pod = leaf // self.tree.m2
                row = self._leaf_mask_cache.get(pod)
                if row is None:
                    row = self.links.leaf_masks_of_pod(pod, self._bw)
                    self._leaf_mask_cache[pod] = row
                return row[leaf - pod * self.tree.m2]
            return self.links.leaf_mask(leaf, self._bw)
        return self.state.leaf_up_mask[leaf]

    def _spine_mask(self, pod: int, i: int) -> int:
        if self.share_links:
            if self.use_indexes:
                row = self._spine_mask_cache.get(pod)
                if row is None:
                    row = self.links.spine_masks_of_pod(pod, self._bw)
                    self._spine_mask_cache[pod] = row
                return row[i]
            return self.links.spine_mask(pod, i, self._bw)
        return self.state.spine_free_mask[pod][i]

    def _search(self, job_id: int, size: int, bw_need: Optional[float]):
        self._bw = bw_need if bw_need is not None else self.default_bw
        self._leaf_mask_cache = {}
        self._spine_mask_cache = {}
        return super()._search(job_id, size, bw_need)

    def _memo_bw_key(self) -> Optional[float]:
        # LC+S leaf masks depend on the job's bandwidth need, so memo
        # entries are only valid for the need they were recorded under.
        return self._bw if self.share_links else None

    def _pod_epoch_key(self, pod: int):
        # LC+S feasibility additionally reads bandwidth headroom, which
        # lives in LinkCapacityState — couple both epochs.
        if self.share_links:
            return (
                int(self.state.pod_epoch[pod]),
                int(self.links.pod_epoch[pod]),
            )
        return int(self.state.pod_epoch[pod])

    def _trace_attrs(self, size):
        attrs = super()._trace_attrs(size)
        attrs["share_links"] = self.share_links
        attrs["step_budget"] = self.step_budget
        return attrs

    def batch_screen(self, effs, bw_needs=None):
        """No occupancy screen for the LC family.

        LC(+S) searches *unrestricted* three-level shapes (partial
        leaves everywhere) and its feasibility depends on fractional
        link-bandwidth masks, not on the node-occupancy summaries alone
        — Jigsaw's full-leaf screen would wrongly reject placements LC
        can build from partial leaves.  The monotone size cut (fed by
        LC's *durable* failures only) and the feasibility cache still
        apply; they are bandwidth-keyed and proof-backed.
        """
        return None

    def _claim(self, alloc: Allocation, bw_need: Optional[float]) -> None:
        bw = bw_need if bw_need is not None else self.default_bw
        if self.share_links:
            # Nodes stay exclusive; links are accounted as bandwidth.
            self.state.claim(alloc.job_id, alloc.nodes)
            self.links.claim(alloc.job_id, alloc.leaf_links, alloc.spine_links, bw)
            self._bw_by_job[alloc.job_id] = bw
        else:
            super()._claim(alloc, bw_need)

    def _release(self, job_id: int) -> None:
        if self.share_links:
            self.state.release(job_id)
            self.links.release(job_id)
            self._bw_by_job.pop(job_id, None)
        else:
            super()._release(job_id)

    def _release_many(self, job_ids) -> None:
        self.state.release_many(job_ids)
        if self.share_links:
            for job_id in job_ids:
                self.links.release(job_id)
                self._bw_by_job.pop(job_id, None)

    # ------------------------------------------------------------------
    # Shapes: the full least-constrained space
    # ------------------------------------------------------------------
    def _three_level_shape_iter(self, size: int):
        return three_level_shapes_cached(
            size,
            self.tree.m1,
            self.tree.m2,
            self.tree.m3,
            self.order,
            False,
        )

    # ------------------------------------------------------------------
    # find_all_L2: every way a pod can host part of the job
    # ------------------------------------------------------------------
    def _find_all_in_pod(
        self, pod: int, LT: int, nL: int, nrL: int
    ) -> List[_PodSolution]:
        """All (capped) sub-allocations of ``LT`` leaves x ``nL`` nodes in
        ``pod``, each optionally with an ``nrL``-node remainder leaf.

        On the indexed path results are memoized per ``_search`` under
        their exact ``(pod, LT, nL, nrL)`` key — the cluster state and
        the job's bandwidth need are fixed for the duration of a search,
        so a repeat call (``_finish_general`` probes the same remainder
        pods once per completed pod combination) must return the same
        solutions.  A hit replays the recorded step cost through
        :meth:`_charge` so the LC+S budget timeout fires at exactly the
        step it would have fired at without the memo.
        """
        if not self.use_indexes:
            return self._find_all_in_pod_uncached(pod, LT, nL, nrL)
        key = (pod, LT, nL, nrL)
        hit = self._pod_memo.get(key)
        if hit is not None:
            sols, cost = hit
            self.stats.memo_hits += 1
            if self.prof.enabled:
                with self.prof.stage("memo_replay"):
                    self._charge(cost)
            else:
                self._charge(cost)
            return sols
        xkey = None
        if self.use_xpass_memo:
            # Cross-pass negative memo: an earlier allocate() proved
            # this pod empty for the same sub-shape and bandwidth, and
            # the pod's epochs have not moved.  Replay the recorded
            # cost (the budget must time out at the identical step) and
            # seed the per-search memo so repeat probes within this
            # search count memo_hits exactly as they would have.
            xkey = ("pe", pod, LT, nL, nrL, self._memo_bw_key())
            cost = self._xpass_memo_lookup(xkey)
            if cost is not None:
                if self.prof.enabled:
                    with self.prof.stage("memo_replay"):
                        self._charge(cost)
                else:
                    self._charge(cost)
                self._pod_memo[key] = ([], cost)
                return []
            epoch = self._pod_epoch_key(pod)
        before = self._steps_left
        if self.prof.enabled:
            with self.prof.stage("pod_enum"):
                sols = self._find_all_in_pod_uncached(pod, LT, nL, nrL)
        else:
            sols = self._find_all_in_pod_uncached(pod, LT, nL, nrL)
        cost = before - self._steps_left
        self._pod_memo[key] = (sols, cost)
        if xkey is not None and not sols:
            self._xpass_memo[xkey] = (epoch, cost)
        return sols

    def _find_all_in_pod_uncached(
        self, pod: int, LT: int, nL: int, nrL: int
    ) -> List[_PodSolution]:
        tree = self.tree
        state = self.state
        need = LT * nL + nrL
        if state.pod_free[pod] < need:
            return []
        if self.use_indexes:
            # Ascending leaf-id order off the maintained buckets — the
            # exact sequence the naive comprehension builds.
            self.stats.candidate_hits += 1
            candidates = state.leaf_candidates_by_id(pod, nL)
        else:
            free = state.free_leaf_counts_in_pod(pod)
            base = tree.first_leaf_of_pod(pod)
            candidates = [base + k for k in range(tree.m2) if free[k] >= nL]
        if len(candidates) < LT:
            return []
        solutions: List[_PodSolution] = []
        chosen: List[int] = []
        full_mask = (1 << tree.l2_per_pod) - 1

        def attach_remainder(inter: int) -> Optional[Tuple[Optional[int], int]]:
            if nrL == 0:
                return None, 0
            taken = set(chosen)
            # First eligible leaf in best-fit (free, leaf-id) order ==
            # the min-scan's pick: fewest free nodes, then lowest id.
            for leaf in self._pod_candidates(pod, nrL):
                if leaf in taken:
                    continue
                avail = self._leaf_mask(leaf) & inter
                if avail.bit_count() < nrL:
                    continue
                return leaf, avail
            return None

        def backtrack(start: int, inter: int) -> None:
            self._tick()
            if len(solutions) >= self.max_solutions_per_pod:
                return
            if len(chosen) == LT:
                rem = attach_remainder(inter)
                if rem is not None:
                    rem_leaf, rem_avail = rem
                    solutions.append(
                        _PodSolution(tuple(chosen), inter, rem_leaf, rem_avail)
                    )
                return
            for idx in range(start, len(candidates) - (LT - len(chosen)) + 1):
                leaf = candidates[idx]
                ni = inter & self._leaf_mask(leaf)
                if ni.bit_count() < nL:
                    continue
                chosen.append(leaf)
                backtrack(idx + 1, ni)
                chosen.pop()
                if len(solutions) >= self.max_solutions_per_pod:
                    return

        backtrack(0, full_mask)
        return solutions

    # ------------------------------------------------------------------
    # find_L3: the general cross-pod search (no full-leaf restriction)
    # ------------------------------------------------------------------
    def _find_three_level(self, shape: ThreeLevelShape):
        tree = self.tree
        n_i = tree.l2_per_pod
        if self.use_indexes:
            # Vectorized replica of _find_all_in_pod's tick-free
            # rejections (pod_free and candidate-count): pruned pods
            # would have returned [] without spending budget.
            scan = self.state.feasible_pods(
                shape.LT * shape.nL, shape.nL, shape.LT
            ).tolist()
            self.stats.pods_pruned += tree.num_pods - len(scan)
        else:
            scan = range(tree.num_pods)
        sols: Dict[int, List[_PodSolution]] = {}
        for pod in scan:
            s = self._find_all_in_pod(pod, shape.LT, shape.nL, 0)
            if s:
                sols[pod] = s
        if len(sols) < shape.T:
            return None

        pods = sorted(sols)
        chosen: List[Tuple[int, _PodSolution]] = []

        def spine_ok(pod: int, spine_inter: List[int]) -> Optional[List[int]]:
            """AND in this pod's spine masks; viable if enough L2 indices
            could still support LT common spine links."""
            ni = [spine_inter[i] & self._spine_mask(pod, i) for i in range(n_i)]
            return ni

        def viable(leaf_inter: int, spine_inter: List[int]) -> bool:
            good = 0
            for i in range(n_i):
                if leaf_inter & (1 << i) and spine_inter[i].bit_count() >= shape.LT:
                    good += 1
            return good >= shape.nL

        def backtrack(start: int, leaf_inter: int, spine_inter: List[int]):
            self._tick()
            if len(chosen) == shape.T:
                return self._finish_general(shape, chosen, leaf_inter, spine_inter)
            for idx in range(start, len(pods) - (shape.T - len(chosen)) + 1):
                pod = pods[idx]
                spine_i = spine_ok(pod, spine_inter)
                for sol in sols[pod]:
                    self._tick()
                    ni = leaf_inter & sol.inter
                    if ni.bit_count() < shape.nL or not viable(ni, spine_i):
                        continue
                    chosen.append((pod, sol))
                    result = backtrack(idx + 1, ni, spine_i)
                    if result is not None:
                        return result
                    chosen.pop()
            return None

        full_leaf = (1 << n_i) - 1
        full_spine = (1 << tree.spines_per_group) - 1
        return backtrack(0, full_leaf, [full_spine] * n_i)

    def _finish_general(
        self,
        shape: ThreeLevelShape,
        chosen: Sequence[Tuple[int, _PodSolution]],
        leaf_inter: int,
        spine_inter: List[int],
    ):
        """Pick the remainder pod and the final S / S*_i sets."""
        tree = self.tree
        taken = {pod for pod, _ in chosen}
        if not shape.has_remainder_pod:
            picked = self._choose_s(shape, leaf_inter, spine_inter, None, None)
            if picked is None:
                return None
            return list(chosen), None, picked
        if self.use_indexes:
            # Necessary, tick-free conditions for the per-rp probes to
            # yield any solution: LrT leaves with >= nL free plus the
            # node total (the _find_all_in_pod early-outs), or — for a
            # bare remainder leaf — one leaf with >= nrL free.
            if shape.LrT:
                rps = self.state.feasible_pods(
                    shape.LrT * shape.nL + shape.nrL, shape.nL, shape.LrT
                ).tolist()
            else:
                rps = self.state.feasible_pods(
                    shape.nrL, shape.nrL, 1
                ).tolist()
            self.stats.pods_pruned += tree.num_pods - len(rps)
        else:
            rps = range(tree.num_pods)
        for rp in rps:
            if rp in taken:
                continue
            for rsol in self._find_all_in_pod(rp, shape.LrT, shape.nL, shape.nrL) \
                    if shape.LrT else self._remainder_only_solutions(rp, shape):
                ni = leaf_inter & rsol.inter if shape.LrT else leaf_inter
                if shape.LrT and ni.bit_count() < shape.nL:
                    continue
                picked = self._choose_s(shape, ni, spine_inter, rp, rsol)
                if picked is None:
                    continue
                return list(chosen), (rp, rsol), picked
        return None

    def _remainder_only_solutions(
        self, rp: int, shape: ThreeLevelShape
    ) -> List[_PodSolution]:
        """Remainder pods holding only the remainder leaf (``LrT == 0``).

        Entirely tick-free, so the per-search memo replays it at cost 0.
        The key reuses the ``(pod, LT, nL, nrL)`` space with ``LT = 0``,
        which no real :meth:`_find_all_in_pod` call can produce
        (``TwoLevelShape``/``ThreeLevelShape`` force ``LT >= 1``).
        """
        if not self.use_indexes:
            return self._remainder_only_uncached(rp, shape)
        key = (rp, 0, 0, shape.nrL)
        hit = self._pod_memo.get(key)
        if hit is not None:
            self.stats.memo_hits += 1
            return hit[0]
        sols = self._remainder_only_uncached(rp, shape)
        self._pod_memo[key] = (sols, 0)
        return sols

    def _remainder_only_uncached(
        self, rp: int, shape: ThreeLevelShape
    ) -> List[_PodSolution]:
        tree = self.tree
        out: List[_PodSolution] = []
        # Best-fit (free, leaf-id) order — identical to the old
        # sorted((free, leaf)) ranking.
        ranked = self._pod_candidates(rp, shape.nrL)
        for leaf in ranked[:4]:  # a few best-fit candidates suffice
            avail = self._leaf_mask(leaf)
            if avail.bit_count() >= shape.nrL:
                out.append(_PodSolution((), (1 << tree.l2_per_pod) - 1, leaf, avail))
        return out

    def _choose_s(
        self,
        shape: ThreeLevelShape,
        leaf_inter: int,
        spine_inter: List[int],
        rp: Optional[int],
        rsol: Optional[_PodSolution],
    ):
        """Select S (L2 indices), Sr, and per-index spine sets S*_i, S*r_i."""
        tree = self.tree
        n_i = tree.l2_per_pod
        base_ok: List[int] = []
        plus_ok: List[int] = []
        for i in range(n_i):
            if not leaf_inter & (1 << i):
                continue
            if spine_inter[i].bit_count() < shape.LT:
                continue
            if rp is None:
                base_ok.append(i)
                continue
            rp_avail = spine_inter[i] & self._spine_mask(rp, i)
            if rp_avail.bit_count() < shape.LrT:
                continue
            base_ok.append(i)
            if (
                rsol is not None
                and rsol.rem_leaf is not None
                and rsol.rem_avail & (1 << i)
                and rp_avail.bit_count() >= shape.LrT + 1
            ):
                plus_ok.append(i)
        nrL = shape.nrL if rsol is not None and rsol.rem_leaf is not None else 0
        if len(plus_ok) < nrL or len(base_ok) < shape.nL:
            return None
        sr = plus_ok[:nrL]
        s = sr + [i for i in base_ok if i not in sr][: shape.nL - nrL]
        if len(s) < shape.nL:
            return None
        s_star: Dict[int, int] = {}
        s_star_r: Dict[int, int] = {}
        for i in s:
            if rp is None:
                s_star[i] = lowest_bits(spine_inter[i], shape.LT)
                continue
            need_r = shape.LrT + (1 if i in sr else 0)
            rp_avail = spine_inter[i] & self._spine_mask(rp, i)
            sr_i = lowest_bits(rp_avail, need_r) if need_r else 0
            rest = spine_inter[i] & ~sr_i
            s_star[i] = sr_i | (
                lowest_bits(rest, shape.LT - need_r) if shape.LT > need_r else 0
            )
            s_star_r[i] = sr_i
        return sorted(s), sorted(sr), s_star, s_star_r

    # ------------------------------------------------------------------
    # Assembly for the general three-level solution
    # ------------------------------------------------------------------
    def _build_three_level(self, job_id: int, size: int, shape: ThreeLevelShape, *found):
        full, rem, picked = found
        s, sr, s_star, s_star_r = picked
        state = self.state
        nodes: List[int] = []
        leaf_links: List[LinkId] = []
        spine_links: List[SpineLinkId] = []

        for pod, sol in full:
            for leaf in sol.leaves:
                nodes.extend(state.free_node_ids(leaf, shape.nL))
                leaf_links.extend(LinkId(leaf, i) for i in s)
            for i in s:
                spine_links.extend(
                    SpineLinkId(pod, i, j) for j in indices_of(s_star[i])
                )
        if rem is not None:
            rp, rsol = rem
            for leaf in rsol.leaves:
                nodes.extend(state.free_node_ids(leaf, shape.nL))
                leaf_links.extend(LinkId(leaf, i) for i in s)
            if rsol.rem_leaf is not None:
                nodes.extend(state.free_node_ids(rsol.rem_leaf, shape.nrL))
                leaf_links.extend(LinkId(rsol.rem_leaf, i) for i in sr)
            for i in s:
                spine_links.extend(
                    SpineLinkId(rp, i, j) for j in indices_of(s_star_r.get(i, 0))
                )
        return Allocation(
            job_id=job_id,
            size=size,
            nodes=tuple(nodes),
            leaf_links=tuple(leaf_links),
            spine_links=tuple(spine_links),
            shape=shape,
        )
