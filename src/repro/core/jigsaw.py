"""The Jigsaw allocator — Algorithm 1 of the paper.

Jigsaw first looks for a **two-level** (single-subtree) allocation: for
each legal shape ``LT * nL + nrL = size`` it scans the pods, and inside a
pod runs a recursive-backtracking search (``find_L2``) for ``LT`` leaves
that each have ``nL`` free nodes *and* ``nL`` free uplinks to a common
set ``S`` of L2 switches, plus an optional remainder leaf reaching a
subset ``Sr ⊆ S``.

If no subtree can host the job, Jigsaw looks for a **three-level**
allocation.  Here it applies its one restriction beyond the formal
conditions (section 4): every non-remainder leaf is used *entirely*
(``nL = m1``).  Full leaves connect to every L2 switch of their pod, so
the per-pod sub-allocation is just "``LT`` completely-free leaves", and
the cross-pod search (``find_L3``) backtracks over pods while
maintaining, for every L2 index ``i``, the running intersection of free
spine-link sets — the common spine sets ``S*_i`` of condition (6).

Link-availability sets are bitmasks (see :mod:`repro.topology.state`), so
the search inner loop is integer AND + popcount.

The same engine serves LaaS (:mod:`repro.core.laas`): LaaS is exactly
this search with job sizes rounded up to whole leaves, which is the
reduction-to-two-levels described in section 5.2.1.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocator import Allocation, Allocator
from repro.core.shapes import (
    Order,
    ThreeLevelShape,
    TwoLevelShape,
    three_level_shapes_cached,
    two_level_shapes_cached,
)
from repro.topology.fattree import LinkId, SpineLinkId, XGFT
from repro.topology.state import indices_of, lowest_bits


class JigsawAllocator(Allocator):
    """Interference-free allocator with precise three-level conditions.

    Parameters
    ----------
    tree:
        Topology to allocate on.
    order:
        Factorization ordering for the shape enumeration; ``"dense"``
        (default) tries shapes touching the fewest leaves/pods first.
        The ordering ablation benchmark flips this.
    """

    name = "jigsaw"
    isolating = True

    #: read feasibility summaries from the ClusterState incremental
    #: occupancy indexes (vectorized pod prefilter, maintained candidate
    #: order, O(1) best-fit picks).  ``False`` falls back to the naive
    #: recompute-per-call scans; both paths make byte-identical decisions
    #: — the equivalence tests and ``benchmarks/_fingerprint.py`` hold
    #: them to that.
    use_indexes: bool = True

    #: score the two-level shape search on the occupancy-index columns
    #: (one numpy pass per shape over all feasible pods) instead of
    #: running the per-pod backtracking for every candidate.  Only exact
    #: for pods without uplink-claimed leaves — others fall back to the
    #: scalar search — and only engaged with ``strategy="scored"`` on
    #: the indexed path.  The LC family disables it: its step budget is
    #: decision-relevant and its link masks are bandwidth-dependent.
    vector_two_level: bool = True

    #: keep negative per-pod sub-search verdicts *across* allocate()
    #: calls, validated by the pod's mutation epoch
    #: (:attr:`ClusterState.pod_epoch`).  A hit replays the recorded
    #: step cost through :meth:`_charge` so budget-limited schemes time
    #: out at the identical step.  Disabled automatically on the naive
    #: twin; ``REPRO_NO_XPASS_MEMO=1`` disables it for invariance tests.
    use_xpass_memo: bool = True

    #: backtracking-step ceiling per allocation attempt; generous enough
    #: that Jigsaw never hits it in practice (its search space is small —
    #: that is the point of the full-leaf restriction), but it bounds
    #: pathological states and is tightened by the LC+S subclass to model
    #: the paper's per-job scheduling timeout.
    step_budget: int = 5_000_000

    def __init__(
        self, tree: XGFT, order: Order = "dense", strategy: str = "scored"
    ):
        super().__init__(tree)
        self.order: Order = order
        if strategy not in ("scored", "first"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self._steps_left = self.step_budget
        self._budget_exhausted = False
        # Per-_search negative/positive memo for repeated per-pod
        # sub-searches (used by the LC family, cleared at every search).
        self._pod_memo: Dict[Tuple[int, int, int, int], tuple] = {}
        # Cross-pass negative memo: (pod, LT, nL, nrL, bw-key) ->
        # (pod epoch at record time, step cost).  Entries outlive
        # _search calls and are validated lazily against the pod's
        # mutation epoch — the same claim/release/repair paths that
        # invalidate the feasibility cache bump the epoch, so a valid
        # entry proves the sub-search would fail identically again.
        self._xpass_memo: Dict[tuple, Tuple[object, int]] = {}

    class BudgetExhausted(Exception):
        """Raised internally when a search exceeds its step budget."""

    def _tick(self) -> None:
        """Account one backtracking step; abort the search when spent."""
        self.stats.backtrack_steps += 1
        self._steps_left -= 1
        if self._steps_left <= 0:
            raise self.BudgetExhausted()

    def _charge(self, steps: int) -> None:
        """Account ``steps`` backtracking steps at once (memo replay).

        A memo hit must leave the budget exactly where re-running the
        memoized sub-search would have left it — including raising
        :class:`BudgetExhausted` at the same instant — or the LC+S
        timeout would fire at different points and change decisions.
        Replayed steps are *not* re-counted in ``stats.backtrack_steps``:
        that counter reports work actually executed.
        """
        if steps:
            self._steps_left -= steps
            if self._steps_left <= 0:
                raise self.BudgetExhausted()

    # ------------------------------------------------------------------
    # Shape enumeration hooks (overridden by LaaS)
    # ------------------------------------------------------------------
    def _two_level_shape_iter(self, size: int) -> Iterator[TwoLevelShape]:
        return two_level_shapes_cached(
            size, self.tree.m1, self.tree.m2, self.order
        )

    def _three_level_shape_iter(self, size: int) -> Iterator[ThreeLevelShape]:
        return three_level_shapes_cached(
            size,
            self.tree.m1,
            self.tree.m2,
            self.tree.m3,
            self.order,
            True,
        )

    # ------------------------------------------------------------------
    # get_allocation (Algorithm 1)
    # ------------------------------------------------------------------
    def _search(
        self, job_id: int, size: int, bw_need: Optional[float]
    ) -> Optional[Allocation]:
        alloc_size = self.effective_size(size)
        self._budget_exhausted = False
        if alloc_size > self.state.free_nodes_total:
            return None
        self._steps_left = self.step_budget
        self._pod_memo.clear()
        profiling = self.prof.enabled
        try:
            # Look for a single-subtree allocation first.
            if profiling:
                with self.prof.stage("two_level"):
                    found = self._search_two_level(alloc_size)
            else:
                found = self._search_two_level(alloc_size)
            if found is not None:
                shape, solution = found
                return self._build_two_level(job_id, size, shape, *solution)
            # Look for a three-level allocation if two-level failed.
            for shape in self._three_level_shape_iter(alloc_size):
                if profiling:
                    with self.prof.stage("three_level"):
                        found3 = self._find_three_level(shape)
                else:
                    found3 = self._find_three_level(shape)
                if found3 is not None:
                    return self._build_three_level(job_id, size, shape, *found3)
        except self.BudgetExhausted:
            self._budget_exhausted = True
            return None  # the paper's per-job scheduling timeout (LC+S)
        return None

    def _failure_is_durable(self) -> bool:
        # A timed-out search proves nothing about feasibility; only an
        # exhaustive failure may enter the cross-pass feasibility cache.
        return not self._budget_exhausted

    def _trace_attrs(self, size):
        # steps_used reflects the last executed search (0 on cache hits)
        return {
            "strategy": self.strategy,
            "steps_used": self.step_budget - self._steps_left,
            "budget_exhausted": self._budget_exhausted,
        }

    def batch_screen(self, effs, bw_needs=None):
        """Necessary-condition screen from the occupancy indexes.

        A two-level placement needs one pod with ``>= eff`` free nodes;
        a (restricted, full-leaves-only) three-level placement of
        ``eff = F*m1 + r`` nodes needs ``F`` fully-free leaves plus —
        when ``r > 0`` — a further distinct leaf with ``>= r`` free
        nodes, so at least ``F + 1`` leaves with ``>= r`` free.  A
        candidate failing both tests provably fails the scalar search
        (durably: claims only shrink these summaries), independent of
        the step budget.  Conservative in the other direction — a
        passing candidate may still fail on link availability — so
        survivors always run the real search.
        """
        if not self.use_indexes:
            return None
        state = self.state
        m1 = self.tree.m1
        two_ok = effs <= int(state.pod_free.max())
        full = effs // m1
        rem = effs - full * m1
        three_ok = full <= int(state.full_free_leaves.sum())
        has_rem = rem > 0
        if np.any(has_rem & three_ok):
            free_sorted = np.sort(state.free_per_leaf)
            count_ge = free_sorted.size - np.searchsorted(
                free_sorted, rem, side="left"
            )
            three_ok &= ~has_rem | (count_ge >= full + 1)
        return ~(two_ok | three_ok)

    def _search_two_level(self, alloc_size: int):
        """Find a single-subtree placement, returning ``(shape, solution)``.

        With ``strategy="first"`` this is Algorithm 1 verbatim: the first
        pod hosting the first legal shape wins.  With ``strategy="scored"``
        (the default) every feasible (shape, pod) pair is scored by the
        fragmentation it would leave behind — fully-free leaves broken,
        free nodes stranded on the touched leaves — and the least harmful
        placement wins.  The formal conditions admit every candidate
        either way; scoring only chooses *among* legal placements, which
        is exactly the freedom the paper argues precise conditions buy.
        """
        prof = self.prof
        profiling = prof.enabled
        if (
            self.strategy == "scored"
            and self.use_indexes
            and self.vector_two_level
        ):
            return self._search_two_level_vector(alloc_size)
        if self.strategy == "first":
            for shape in self._two_level_shape_iter(alloc_size):
                for pod in self._pods_profiled(alloc_size, shape, profiling):
                    if profiling:
                        with prof.stage("pod_fit"):
                            found = self._find_two_level_in_pod(pod, shape)
                    else:
                        found = self._find_two_level_in_pod(pod, shape)
                    if found is not None:
                        return shape, found
            return None
        best = None  # (score, shape, solution)
        for shape in self._two_level_shape_iter(alloc_size):
            for pod in self._pods_profiled(alloc_size, shape, profiling):
                if profiling:
                    with prof.stage("pod_fit"):
                        found = self._find_two_level_in_pod(pod, shape)
                else:
                    found = self._find_two_level_in_pod(pod, shape)
                if found is None:
                    continue
                score = self._score_two_level(shape, found)
                if best is None or score < best[0]:
                    best = (score, shape, found)
                    if score[:2] == (0, 0):
                        return shape, found  # perfect fit, stop searching
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------
    # Vectorized scored search over the occupancy-index columns
    # ------------------------------------------------------------------
    def _search_two_level_vector(self, alloc_size: int):
        """Scored two-level search evaluated on ``_leaf_ge`` columns.

        For a pod without uplink-claimed leaves the backtracking of
        :meth:`_find_two_level_in_pod_impl` degenerates to a
        deterministic greedy: every leaf mask is full, so the L2
        intersection never shrinks, the chosen leaves are simply the
        first ``LT`` candidates in best-fit order and the remainder
        leaf the first further candidate with ``>= nrL`` free nodes.
        Feasibility and the fragmentation score are then pure functions
        of the pod's free-count histogram, evaluated here for every
        feasible pod of a shape in one numpy pass.  Pods holding a
        claimed uplink fall back to the scalar per-pod search (their
        masks can prune the backtracking).

        Selection replicates the scalar loop exactly: the first
        candidate in (shape, pod) iteration order whose score starts
        ``(0, 0)`` wins immediately; otherwise the strict-``<`` minimum
        over ``(broken, residue, consumed)`` with the earliest
        (shape, pod) on ties.  The winner is re-materialized through
        the scalar search, which reproduces the scored solution.
        """
        tree = self.tree
        prof = self.prof
        profiling = prof.enabled
        ge_all = self.state.leaf_ge_view()
        best = None  # (broken, residue, consumed, shape_idx, pod, shape, found)
        for shape_idx, shape in enumerate(self._two_level_shape_iter(alloc_size)):
            if not shape.single_leaf and shape.nL > tree.l2_per_pod:
                # No leaf can offer nL common uplinks; the scalar walk
                # rejects every candidate set in every pod.
                continue
            pods = self._pods_profiled(alloc_size, shape, profiling)
            if not pods:
                continue
            if profiling:
                with prof.stage("pod_fit"):
                    ranked = self._score_shape_pods(shape, pods, ge_all)
            else:
                ranked = self._score_shape_pods(shape, pods, ge_all)
            if ranked is None:
                continue
            broken, residue, consumed, pod, found = ranked
            if broken == 0 and residue == 0:
                return self._materialize_two_level(shape, pod, found)
            key = (broken, residue, consumed, shape_idx, pod)
            if best is None or key < best[:5]:
                best = (broken, residue, consumed, shape_idx, pod, shape, found)
        if best is None:
            return None
        return self._materialize_two_level(best[5], best[4], best[6])

    def _score_shape_pods(self, shape: TwoLevelShape, pods, ge_all):
        """Best candidate for ``shape`` among ``pods`` (ascending order).

        Returns ``(broken, residue, consumed, pod, found)`` — the first
        pod whose score starts ``(0, 0)`` if one exists, else the
        lexicographic-minimum ``(score, pod)`` — or ``None`` when no pod
        is feasible.  ``found`` is the scalar solution for pods scored
        through the fallback path, ``None`` for vector-scored pods.
        """
        state = self.state
        m1 = self.tree.m1
        LT, nL, nrL = shape.LT, shape.nL, shape.nrL
        pods_arr = np.asarray(pods, dtype=np.int64)
        if shape.single_leaf:
            # No links touched: the histogram greedy is exact even for
            # pods with claimed uplinks.
            clean_pods = pods_arr
            busy_results = []
        else:
            busy_sel = state.busy_leaf_any[pods_arr]
            clean_pods = pods_arr[~busy_sel]
            busy_results = []
            for pod in pods_arr[busy_sel].tolist():
                found = self._find_two_level_in_pod(pod, shape)
                if found is not None:
                    busy_results.append(
                        (pod, self._score_two_level(shape, found), found)
                    )
        ge = ge_all[:, clean_pods]
        if nrL:
            # A remainder leaf needs an (LT+1)-th distinct leaf with
            # >= nrL free nodes; with full masks this is also sufficient.
            ok = ge[nrL] >= LT + 1
            if not ok.all():
                clean_pods = clean_pods[ok]
                ge = ge[:, ok]
        P = clean_pods.size
        if P:
            # Greedy take: LT smallest sufficient free-counts, low f
            # first (the maintained best-fit bucket order).
            remaining = np.full(P, LT, dtype=np.int64)
            sum_f = np.zeros(P, dtype=np.int64)
            m1_taken = np.zeros(P, dtype=np.int64)
            for f in range(nL, m1 + 1):
                cnt = (ge[f] - ge[f + 1]) if f < m1 else ge[m1]
                take = np.minimum(remaining, cnt)
                if f == m1:
                    m1_taken = take
                sum_f += f * take
                remaining -= take
            residue = sum_f - LT * nL
            if nL == m1:
                consumed = m1_taken
                broken = np.zeros(P, dtype=np.int64)
            else:
                broken = m1_taken.astype(np.int64)
                consumed = np.zeros(P, dtype=np.int64)
            if nrL:
                # Remainder free-count: the smallest f in [nrL, nL) if
                # such a leaf exists (it precedes every chosen leaf in
                # bucket order), else the (LT+1)-th candidate >= nL.
                fr = np.full(P, -1, dtype=np.int64)
                for f in range(nrL, nL):
                    cnt = ge[f] - ge[f + 1]
                    fr = np.where((fr < 0) & (cnt > 0), f, fr)
                if (fr < 0).any():
                    cum = np.zeros(P, dtype=np.int64)
                    fr2 = np.full(P, -1, dtype=np.int64)
                    for f in range(nL, m1 + 1):
                        cnt = (ge[f] - ge[f + 1]) if f < m1 else ge[m1]
                        cum += cnt
                        fr2 = np.where((fr2 < 0) & (cum >= LT + 1), f, fr2)
                    fr = np.where(fr < 0, fr2, fr)
                residue = residue + (fr - nrL)
                broken = broken + (fr == m1)
        # First (0, 0)-scored pod in ascending pod order wins outright.
        perfect = None
        if P:
            perf = np.flatnonzero((broken == 0) & (residue == 0))
            if perf.size:
                i = int(perf[0])
                perfect = (0, 0, int(consumed[i]), int(clean_pods[i]), None)
        for pod, sc, found in busy_results:
            if sc[0] == 0 and sc[1] == 0:
                if perfect is None or pod < perfect[3]:
                    perfect = (sc[0], sc[1], sc[2], pod, found)
                break
        if perfect is not None:
            return perfect
        candidates = []
        if P:
            i = int(np.lexsort((clean_pods, consumed, residue, broken))[0])
            candidates.append(
                (int(broken[i]), int(residue[i]), int(consumed[i]),
                 int(clean_pods[i]), None)
            )
        for pod, sc, found in busy_results:
            candidates.append((sc[0], sc[1], sc[2], pod, found))
        if not candidates:
            return None
        # Pods are unique across the two sources, so the tuple compare
        # never reaches the solution field.
        return min(candidates, key=lambda c: c[:4])

    def _materialize_two_level(self, shape: TwoLevelShape, pod: int, found):
        """Turn a winning (shape, pod) back into a concrete solution."""
        if found is None:
            found = self._find_two_level_in_pod(pod, shape)
            if found is None:
                raise RuntimeError(
                    "vector two-level score disagreed with scalar search"
                )
        return shape, found

    def _pods_profiled(
        self, alloc_size: int, shape: TwoLevelShape, profiling: bool
    ) -> List[int]:
        """``_two_level_pods`` under the ``prefilter`` stage when the
        profiler is on (the extra call costs nothing on the disabled
        path: the caller hoisted the ``enabled`` check)."""
        if profiling:
            with self.prof.stage("prefilter"):
                return self._two_level_pods(alloc_size, shape)
        return self._two_level_pods(alloc_size, shape)

    def _score_two_level(self, shape: TwoLevelShape, found) -> tuple:
        """Fragmentation cost of one candidate placement (lower is better):
        (fully-free leaves broken into partial leaves, free nodes stranded
        on the touched leaves, fully-free leaves consumed whole)."""
        full_leaves, _s, rem_leaf, _sr = found
        free = self.state.free_per_leaf
        m1 = self.tree.m1
        broken = 0
        consumed = 0
        residue = 0
        for leaf in full_leaves:
            f = int(free[leaf])
            if f == m1:
                if shape.nL == m1:
                    consumed += 1
                else:
                    broken += 1
            residue += f - shape.nL
        if rem_leaf is not None:
            f = int(free[rem_leaf])
            if f == m1:
                broken += 1
            residue += f - shape.nrL
        return (broken, residue, consumed)

    def _two_level_pods(self, alloc_size: int, shape: TwoLevelShape) -> List[int]:
        """Pods worth searching for ``shape``, in ascending pod order.

        The indexed path is one vectorized pass over the occupancy
        counters: ``pod_free >= size`` and ``LT`` leaves with ``>= nL``
        free nodes.  Both are exactly the *tick-free* rejections
        :meth:`_find_two_level_in_pod` (and, for single-leaf shapes,
        :meth:`_pick_single_leaf`) would perform — skipping those pods
        costs no budget and changes no decision.
        """
        if self.use_indexes:
            pods = self.state.feasible_pods(
                alloc_size, shape.nL, shape.LT
            ).tolist()
            self.stats.pods_pruned += self.tree.num_pods - len(pods)
            return pods
        pod_free = self.state.pod_free
        return [
            p for p in range(self.tree.num_pods) if pod_free[p] >= alloc_size
        ]

    def _pod_candidates(self, pod: int, min_free: int) -> List[int]:
        """Leaves of ``pod`` with at least ``min_free`` free nodes in
        best-fit order (ascending free count, then leaf id).

        The indexed path reads the maintained bucket order; the naive
        path re-sorts per call.  Identical sequences by construction.
        """
        if self.use_indexes:
            self.stats.candidate_hits += 1
            return self.state.leaf_candidates(pod, min_free)
        tree = self.tree
        free = self.state.free_leaf_counts_in_pod(pod)
        base = tree.first_leaf_of_pod(pod)
        return sorted(
            (base + k for k in range(tree.m2) if free[k] >= min_free),
            key=lambda leaf: (free[leaf - base], leaf),
        )

    # ------------------------------------------------------------------
    # find_L2: search one pod for a two-level allocation
    # ------------------------------------------------------------------
    def _leaf_mask(self, leaf: int) -> int:
        """Bitmask of this leaf's free uplinks (hook for LC variants)."""
        return self.state.leaf_up_mask[leaf]

    def _spine_mask(self, pod: int, i: int) -> int:
        """Bitmask of free spine links at (pod, L2 i) (hook for LC)."""
        return self.state.spine_free_mask[pod][i]

    # ------------------------------------------------------------------
    # Cross-pass negative memo
    # ------------------------------------------------------------------
    def _memo_bw_key(self) -> Optional[float]:
        """Bandwidth component of the cross-pass memo key.

        ``None`` for the exclusive-link schemes, whose per-pod searches
        depend only on pod-local occupancy; LC+S overrides this with the
        current job's bandwidth need (its link masks depend on it)."""
        return None

    def _pod_epoch_key(self, pod: int):
        """Mutation-epoch token guarding memo entries for ``pod``.

        A per-pod sub-search reads only pod-local state, and every
        mutation of that state (claim/release/release_many, including
        the fault injector's) bumps the epoch — so an unchanged token
        proves the sub-search would replay identically."""
        return int(self.state.pod_epoch[pod])

    def _xpass_memo_lookup(self, key: tuple) -> Optional[int]:
        """Step cost of a valid negative memo entry, or ``None``.

        Stale entries (epoch moved on) are dropped and counted; the
        caller charges the returned cost through :meth:`_charge` and
        treats the sub-search as failed.  Keys are
        ``(kind, pod, ...shape fields..., bw)`` — the leading ``kind``
        tag separates sub-searches with different semantics (a pod that
        cannot host a *linked* three-level slice may still host the
        identical node counts as a link-free single-leaf shape)."""
        hit = self._xpass_memo.get(key)
        if hit is None:
            return None
        epoch, cost = hit
        if epoch != self._pod_epoch_key(key[1]):
            del self._xpass_memo[key]
            self.stats.xpass_memo_epoch_flushes += 1
            return None
        self.stats.xpass_memo_hits += 1
        # Replayed-step accounting mirrors what the un-memoized search
        # would have *executed*: when the budget binds mid-replay, the
        # scalar twin only runs the steps left before timing out.
        self.stats.xpass_memo_replayed_steps += min(cost, self._steps_left)
        return cost

    def _find_two_level_in_pod(
        self, pod: int, shape: TwoLevelShape
    ) -> Optional[Tuple[List[int], int, Optional[int], int]]:
        """Memo-guarded :meth:`_find_two_level_in_pod_impl`.

        A valid cross-pass entry replays the recorded failure: the step
        cost is charged against the budget (so a budget-limited scheme
        times out at the identical step) and ``None`` is returned
        without re-walking the pod.  Only *completed* failed searches
        are recorded — a budget abort propagates before the store."""
        if not (self.use_indexes and self.use_xpass_memo):
            return self._find_two_level_in_pod_impl(pod, shape)
        key = ("2l", pod, shape.LT, shape.nL, shape.nrL, self._memo_bw_key())
        cost = self._xpass_memo_lookup(key)
        if cost is not None:
            self._charge(cost)
            return None
        epoch = self._pod_epoch_key(pod)
        before = self._steps_left
        result = self._find_two_level_in_pod_impl(pod, shape)
        if result is None:
            self._xpass_memo[key] = (epoch, before - self._steps_left)
        return result

    def _find_two_level_in_pod_impl(
        self, pod: int, shape: TwoLevelShape
    ) -> Optional[Tuple[List[int], int, Optional[int], int]]:
        """Find ``shape`` inside ``pod``.

        Returns ``(full_leaves, S_mask, remainder_leaf, Sr_mask)`` or
        ``None``.  ``S_mask`` is the common-L2-set bitmask of condition
        (4); ``Sr_mask ⊆ S_mask`` is the remainder leaf's subset.
        """
        state = self.state
        tree = self.tree
        if state.pod_free[pod] < shape.size:
            return None

        # Whole job on one leaf: no links needed at all.
        if shape.single_leaf:
            leaf = self._pick_single_leaf(pod, shape.nL)
            if leaf is None:
                return None
            return [leaf], 0, None, 0

        # Best fit: try the leaves with the fewest (sufficient) free nodes
        # first, so partial leaves fill up before fully-free leaves are
        # broken — fully-free leaves are what three-level allocations need.
        candidates = self._pod_candidates(pod, shape.nL)
        if len(candidates) < shape.LT:
            return None

        chosen: List[int] = []

        def backtrack(start: int, inter: int) -> Optional[Tuple[int, Optional[int], int]]:
            if len(chosen) == shape.LT:
                return self._finish_two_level(pod, shape, chosen, inter)
            # Prune: not enough candidates left to complete the set.
            for idx in range(start, len(candidates) - (shape.LT - len(chosen)) + 1):
                self._tick()
                leaf = candidates[idx]
                ni = inter & self._leaf_mask(leaf)
                if ni.bit_count() < shape.nL:
                    continue
                chosen.append(leaf)
                result = backtrack(idx + 1, ni)
                if result is not None:
                    return result
                chosen.pop()
            return None

        full_mask = (1 << tree.l2_per_pod) - 1
        result = backtrack(0, full_mask)
        if result is None:
            return None
        s_mask, rem_leaf, sr_mask = result
        return list(chosen), s_mask, rem_leaf, sr_mask

    def _pick_single_leaf(self, pod: int, n: int) -> Optional[int]:
        """Best-fit leaf in ``pod`` with at least ``n`` free nodes."""
        if self.use_indexes:
            return self.state.best_fit_leaf(pod, n)
        tree = self.tree
        free = self.state.free_leaf_counts_in_pod(pod)
        best: Optional[int] = None
        best_free = tree.m1 + 1
        for k in range(tree.m2):
            f = int(free[k])
            if n <= f < best_free:
                best = tree.first_leaf_of_pod(pod) + k
                best_free = f
        return best

    def _finish_two_level(
        self, pod: int, shape: TwoLevelShape, chosen: Sequence[int], inter: int
    ) -> Optional[Tuple[int, Optional[int], int]]:
        """Complete a two-level solution: pick S and the remainder leaf."""
        if shape.nrL == 0:
            return lowest_bits(inter, shape.nL), None, 0
        taken = set(chosen)
        # Best fit: prefer the eligible leaf with the fewest free nodes,
        # preserving emptier leaves for future jobs.  Walking the bucket
        # order (ascending free count, then leaf id) and taking the first
        # eligible leaf picks exactly the leaf the old min-scan chose:
        # fewest free nodes, ties broken toward the lowest leaf id.
        rem_leaf: Optional[int] = None
        avail = 0
        for leaf in self._pod_candidates(pod, shape.nrL):
            if leaf in taken:
                continue
            a = self._leaf_mask(leaf) & inter
            if a.bit_count() < shape.nrL:
                continue
            rem_leaf, avail = leaf, a
            break
        if rem_leaf is None:
            return None
        sr_mask = lowest_bits(avail, shape.nrL)
        # S contains Sr plus enough other common-free L2 indices.
        s_mask = sr_mask
        rest = inter & ~sr_mask
        s_mask |= lowest_bits(rest, shape.nL - shape.nrL) if shape.nL > shape.nrL else 0
        return s_mask, rem_leaf, sr_mask

    # ------------------------------------------------------------------
    # find_L3: cross-pod search
    # ------------------------------------------------------------------
    def _find_three_level(
        self, shape: ThreeLevelShape
    ) -> Optional[
        Tuple[List[int], Optional[int], Optional[int], int, List[int], List[int]]
    ]:
        """Find ``shape`` across pods.

        Returns ``(full_pods, remainder_pod, remainder_leaf, Sr_mask,
        S_star, S_star_r)`` where ``S_star[i]`` is the spine bitmask
        ``S*_i`` shared by all full pods and ``S_star_r[i] ⊆ S_star[i]``
        is the remainder pod's subset (condition 6); or ``None``.
        """
        tree = self.tree
        state = self.state
        if shape.nL != tree.m1:
            raise ValueError("Jigsaw three-level shapes must use full leaves")

        # Full leaves are placed with *all* their uplinks claimed, so a
        # pod only qualifies through its usable full leaves — fully free
        # nodes AND fully free uplinks.  Counting merely fully-free
        # leaves here let the search pick a leaf whose uplink was held
        # by a fault, and the subsequent claim blew up mid-allocation.
        if self.use_indexes:
            prefiltered = state.feasible_pods(
                0, min_full_leaves=shape.LT
            ).tolist()
            self.stats.pods_pruned += tree.num_pods - len(prefiltered)
            candidates = [
                p for p in prefiltered
                if state.usable_full_leaves(p) >= shape.LT
            ]
        else:
            candidates = [
                p for p in range(tree.num_pods)
                if self._usable_full_leaf_mask(p).bit_count() >= shape.LT
            ]
        if len(candidates) < shape.T:
            return None

        n_i = tree.l2_per_pod
        chosen: List[int] = []

        def addable(pod: int, inter: List[int]) -> Optional[List[int]]:
            ni = [inter[i] & self._spine_mask(pod, i) for i in range(n_i)]
            for m in ni:
                if m.bit_count() < shape.LT:
                    return None
            return ni

        def backtrack(start: int, inter: List[int]):
            if len(chosen) == shape.T:
                return self._finish_three_level(shape, chosen, inter)
            for idx in range(start, len(candidates) - (shape.T - len(chosen)) + 1):
                self._tick()
                pod = candidates[idx]
                ni = addable(pod, inter)
                if ni is None:
                    continue
                chosen.append(pod)
                result = backtrack(idx + 1, ni)
                if result is not None:
                    return result
                chosen.pop()
            return None

        full = (1 << tree.spines_per_group) - 1
        result = backtrack(0, [full] * n_i)
        if result is None:
            return None
        rem_pod, rem_leaf, sr_mask, s_star, s_star_r = result
        return list(chosen), rem_pod, rem_leaf, sr_mask, s_star, s_star_r

    def _finish_three_level(
        self, shape: ThreeLevelShape, chosen: Sequence[int], inter: List[int]
    ) -> Optional[
        Tuple[Optional[int], Optional[int], int, List[int], List[int]]
    ]:
        """Find the remainder pod/leaf and fix the spine sets ``S*_i``."""
        tree = self.tree
        n_i = tree.l2_per_pod
        if not shape.has_remainder_pod:
            s_star = [lowest_bits(inter[i], shape.LT) for i in range(n_i)]
            return None, None, 0, s_star, [0] * n_i

        taken = set(chosen)
        if self.use_indexes:
            # Every condition is *necessary* for _fit_remainder_pod to
            # succeed and its rejections are tick-free, so prefiltering
            # the remainder-pod scan is decision-invariant: LrT fully
            # free leaves (checked first thing in _fit_remainder_pod),
            # and — when there is a remainder leaf — some leaf with
            # >= nrL free nodes plus the implied node total.
            rps = self.state.feasible_pods(
                shape.LrT * tree.m1 + shape.nrL,
                shape.nrL,
                1 if shape.nrL else 0,
                min_full_leaves=shape.LrT,
            ).tolist()
            self.stats.pods_pruned += tree.num_pods - len(rps)
        else:
            rps = range(tree.num_pods)
        for rp in rps:
            if rp in taken:
                continue
            picked = self._fit_remainder_pod(shape, rp, inter)
            if picked is None:
                continue
            rem_leaf, sr_mask, s_star, s_star_r = picked
            return rp, rem_leaf, sr_mask, s_star, s_star_r
        return None

    def _fit_remainder_pod(
        self, shape: ThreeLevelShape, rp: int, inter: List[int]
    ) -> Optional[Tuple[Optional[int], int, List[int], List[int]]]:
        """Check whether pod ``rp`` can be the remainder subtree."""
        tree = self.tree
        state = self.state
        n_i = tree.l2_per_pod
        if self._usable_full_leaf_mask(rp).bit_count() < shape.LrT:
            return None

        # Spine availability seen from the remainder pod, restricted to
        # the running common sets: the remainder subtree must use subsets
        # S*r_i of the full pods' spine sets S*_i (condition 6).
        avail = [inter[i] & self._spine_mask(rp, i) for i in range(n_i)]

        rem_leaf: Optional[int] = None
        sr_mask = 0
        if shape.nrL:
            # eligible_i: L2 indices where a remainder-leaf connection
            # (one extra down-link, hence one extra up-link) still fits.
            eligible = 0
            for i in range(n_i):
                if avail[i].bit_count() >= shape.LrT + 1:
                    eligible |= 1 << i
            picked = self._pick_remainder_leaf(shape, rp, eligible)
            if picked is None:
                return None
            rem_leaf, sr_mask = picked
        if shape.LrT:
            for i in range(n_i):
                need = shape.LrT + (1 if sr_mask & (1 << i) else 0)
                if avail[i].bit_count() < need:
                    return None

        s_star: List[int] = []
        s_star_r: List[int] = []
        for i in range(n_i):
            need_r = shape.LrT + (1 if sr_mask & (1 << i) else 0)
            sr_i = lowest_bits(avail[i], need_r) if need_r else 0
            rest = inter[i] & ~sr_i
            s_i = sr_i | (
                lowest_bits(rest, shape.LT - need_r) if shape.LT > need_r else 0
            )
            s_star.append(s_i)
            s_star_r.append(sr_i)
        return rem_leaf, sr_mask, s_star, s_star_r

    def _pick_remainder_leaf(
        self, shape: ThreeLevelShape, rp: int, eligible: int
    ) -> Optional[Tuple[int, int]]:
        """Best-fit remainder leaf in pod ``rp`` whose free uplinks allow
        ``nrL`` connections at spine-eligible L2 indices."""
        tree = self.tree
        base = tree.first_leaf_of_pod(rp)
        # The LrT full leaves are picked later from the *usable* pool
        # (fully-free nodes and uplinks); reserve them by preferring a
        # remainder leaf outside that pool and requiring enough usable
        # leaves to remain.  A fully-free leaf with a claimed uplink is
        # fair game — it can never serve as a full leaf anyway.  First
        # eligible leaf in best-fit order == the old min-scan's pick.
        usable = self._usable_full_leaf_mask(rp)
        usable_count = usable.bit_count()
        for leaf in self._pod_candidates(rp, shape.nrL):
            if (usable >> (leaf - base)) & 1 and usable_count <= shape.LrT:
                continue  # would consume a full leaf the shape still needs
            ok = self._leaf_mask(leaf) & eligible
            if ok.bit_count() < shape.nrL:
                continue
            return leaf, lowest_bits(ok, shape.nrL)
        return None

    # ------------------------------------------------------------------
    # Allocation assembly
    # ------------------------------------------------------------------
    def _build_two_level(
        self,
        job_id: int,
        size: int,
        shape: TwoLevelShape,
        full_leaves: Sequence[int],
        s_mask: int,
        rem_leaf: Optional[int],
        sr_mask: int,
    ) -> Allocation:
        state = self.state
        nodes: List[int] = []
        leaf_links: List[LinkId] = []
        s_indices = indices_of(s_mask)
        for leaf in full_leaves:
            nodes.extend(state.free_node_ids(leaf, shape.nL))
            if not shape.single_leaf:
                leaf_links.extend(LinkId(leaf, i) for i in s_indices)
        if rem_leaf is not None:
            nodes.extend(state.free_node_ids(rem_leaf, shape.nrL))
            leaf_links.extend(LinkId(rem_leaf, i) for i in indices_of(sr_mask))
        return Allocation(
            job_id=job_id,
            size=size,
            nodes=tuple(nodes),
            leaf_links=tuple(leaf_links),
            spine_links=(),
            shape=shape,
        )

    def _build_three_level(
        self,
        job_id: int,
        size: int,
        shape: ThreeLevelShape,
        full_pods: Sequence[int],
        rem_pod: Optional[int],
        rem_leaf: Optional[int],
        sr_mask: int,
        s_star: Sequence[int],
        s_star_r: Sequence[int],
    ) -> Allocation:
        tree = self.tree
        state = self.state
        n_i = tree.l2_per_pod
        all_up = tuple(range(n_i))
        nodes: List[int] = []
        leaf_links: List[LinkId] = []
        spine_links: List[SpineLinkId] = []

        for pod in full_pods:
            leaves = self._pick_full_free_leaves(pod, shape.LT, exclude=None)
            for leaf in leaves:
                nodes.extend(state.free_node_ids(leaf, tree.m1))
                leaf_links.extend(LinkId(leaf, i) for i in all_up)
            for i in range(n_i):
                spine_links.extend(
                    SpineLinkId(pod, i, j) for j in indices_of(s_star[i])
                )

        if rem_pod is not None:
            leaves = self._pick_full_free_leaves(rem_pod, shape.LrT, exclude=rem_leaf)
            for leaf in leaves:
                nodes.extend(state.free_node_ids(leaf, tree.m1))
                leaf_links.extend(LinkId(leaf, i) for i in all_up)
            if rem_leaf is not None:
                nodes.extend(state.free_node_ids(rem_leaf, shape.nrL))
                leaf_links.extend(
                    LinkId(rem_leaf, i) for i in indices_of(sr_mask)
                )
            for i in range(n_i):
                spine_links.extend(
                    SpineLinkId(rem_pod, i, j) for j in indices_of(s_star_r[i])
                )

        return Allocation(
            job_id=job_id,
            size=size,
            nodes=tuple(nodes),
            leaf_links=tuple(leaf_links),
            spine_links=tuple(spine_links),
            shape=shape,
        )

    def _usable_full_leaf_mask(self, pod: int) -> int:
        """Bitmask of leaf offsets usable as *full* leaves: every node
        free **and** every uplink cable free.

        Three-level assembly claims all ``l2_per_pod`` uplinks of each
        full leaf, so a leaf-link fault (or any partial uplink claim)
        disqualifies an otherwise fully-free leaf — the search must not
        offer it, or the claim raises mid-allocation.
        """
        if self.use_indexes:
            return self.state.usable_full_leaf_mask(pod)
        tree = self.tree
        free = self.state.free_leaf_counts_in_pod(pod)
        base = tree.first_leaf_of_pod(pod)
        full = (1 << tree.l2_per_pod) - 1
        mask = 0
        for k in range(tree.m2):
            if free[k] == tree.m1 and self._leaf_mask(base + k) == full:
                mask |= 1 << k
        return mask

    def _pick_full_free_leaves(
        self, pod: int, count: int, exclude: Optional[int]
    ) -> List[int]:
        """Lowest-index usable full leaves of ``pod`` (skipping the
        remainder leaf if it happens to be in the usable pool)."""
        if count == 0:
            return []
        base = self.tree.first_leaf_of_pod(pod)
        out: List[int] = []
        mask = self._usable_full_leaf_mask(pod)
        while mask:
            low = mask & -mask
            mask ^= low
            leaf = base + low.bit_length() - 1
            if leaf == exclude:
                continue
            out.append(leaf)
            if len(out) == count:
                return out
        raise RuntimeError(
            f"pod {pod} lost usable full leaves between search and assembly"
        )
