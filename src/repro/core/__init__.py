"""The paper's primary contribution and every scheme it is compared to.

* :mod:`repro.core.shapes` — enumeration of the legal allocation shapes
  ``(T, nT, LT, nL, nrT, LrT, nrL)`` of section 3.2.2, conditions (1)-(3).
* :mod:`repro.core.conditions` — executable validator for all formal
  conditions (the lemmas of Appendix A).
* :mod:`repro.core.jigsaw` — the Jigsaw allocator (Algorithm 1).
* :mod:`repro.core.laas`, :mod:`repro.core.ta`, :mod:`repro.core.lcs`,
  :mod:`repro.core.baseline` — the comparison schemes of section 5.2.
"""

from repro.core.allocator import Allocation, Allocator
from repro.core.baseline import BaselineAllocator
from repro.core.diagnostics import (
    FragmentationSnapshot,
    compare_fragmentation,
    fragmentation_snapshot,
)
from repro.core.jigsaw import JigsawAllocator
from repro.core.laas import LaaSAllocator
from repro.core.lcs import LeastConstrainedAllocator
from repro.core.registry import make_allocator, ALLOCATOR_NAMES
from repro.core.shapes import (
    ThreeLevelShape,
    TwoLevelShape,
    three_level_shapes,
    two_level_shapes,
)
from repro.core.ta import TopologyAwareAllocator

__all__ = [
    "Allocation",
    "Allocator",
    "BaselineAllocator",
    "JigsawAllocator",
    "LaaSAllocator",
    "LeastConstrainedAllocator",
    "TopologyAwareAllocator",
    "TwoLevelShape",
    "ThreeLevelShape",
    "two_level_shapes",
    "three_level_shapes",
    "make_allocator",
    "ALLOCATOR_NAMES",
    "FragmentationSnapshot",
    "fragmentation_snapshot",
    "compare_fragmentation",
]
