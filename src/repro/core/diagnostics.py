"""Fragmentation diagnostics: *why* utilization is lost, quantified.

Section 6.1 explains each scheme's utilization in terms of internal and
external fragmentation.  This module turns that narrative into numbers
for any live allocator state:

* **internal fragmentation** — nodes assigned to jobs beyond their
  request (LaaS's whole-leaf padding: allocated, idle, unusable);
* **external fragmentation** — free nodes that exist but cannot be used:
  the placement-feasibility profile answers "could a k-node job start
  right now?" for a sweep of sizes, and ``largest_placeable`` is the
  biggest job the current free-node pattern can legally host;
* structural detail — how the free nodes are spread (fully-free leaves
  vs partial-leaf shards, per-pod totals), which is exactly the shape
  that decides whether Jigsaw's conditions can be met.

Probes use :meth:`repro.core.allocator.Allocator.can_allocate`, which
searches without claiming, so taking a snapshot never perturbs the
system being observed.  (Probes may seed the allocator's feasibility
cache with *sound* infeasibility verdicts — visible in the cache
counters, never in any scheduling decision.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.allocator import Allocator


@dataclass(frozen=True)
class FragmentationSnapshot:
    """One moment's fragmentation picture for an allocator."""

    scheme: str
    total_nodes: int
    free_nodes: int
    #: nodes allocated beyond requests (internal fragmentation)
    padding_nodes: int
    #: completely-free leaves (the currency of three-level placements)
    fully_free_leaves: int
    #: free nodes sitting on partially-occupied leaves ("shards")
    shard_nodes: int
    #: free nodes per pod, descending
    pod_free: Tuple[int, ...]
    #: probe size -> placeable right now?
    placeable: Dict[int, bool] = field(default_factory=dict)
    #: largest probe size that is placeable (0 if none)
    largest_placeable: int = 0
    #: allocator feasibility-cache counters at snapshot time (taken
    #: before the probe sweep, so they reflect the allocator's history)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    #: allocator search-effort counters at snapshot time
    pods_pruned: int = 0
    candidate_hits: int = 0
    memo_hits: int = 0
    backtrack_steps: int = 0
    #: vector-pass prefilter counters at snapshot time
    queue_prefiltered: int = 0
    size_cut_skips: int = 0

    @property
    def free_fraction(self) -> float:
        return self.free_nodes / self.total_nodes if self.total_nodes else 0.0

    @property
    def internal_fragmentation_fraction(self) -> float:
        """Share of the machine lost to padding (the paper measures 3-7 %
        for LaaS)."""
        return self.padding_nodes / self.total_nodes if self.total_nodes else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Share of feasibility lookups the allocator answered from its
        infeasibility cache (0 when it was never consulted)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def unusable_free_nodes(self) -> int:
        """Free nodes beyond the largest placeable job — capacity that
        exists but cannot be handed out as one allocation (external
        fragmentation, by the most direct measure)."""
        return max(0, self.free_nodes - self.largest_placeable)

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"scheme: {self.scheme}",
            f"free: {self.free_nodes}/{self.total_nodes} nodes "
            f"({100 * self.free_fraction:.1f}%)",
            f"internal fragmentation (padding): {self.padding_nodes} nodes",
            f"fully-free leaves: {self.fully_free_leaves}",
            f"partial-leaf shards: {self.shard_nodes} free nodes",
            f"largest placeable job: {self.largest_placeable} nodes "
            f"({self.unusable_free_nodes} free nodes beyond reach)",
            f"feasibility cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses "
            f"({100 * self.cache_hit_rate:.1f}% hit rate, "
            f"{self.cache_invalidations} invalidations)",
            f"search effort: {self.pods_pruned} pods pruned, "
            f"{self.candidate_hits} candidate-list hits, "
            f"{self.memo_hits} memo hits, "
            f"{self.backtrack_steps} backtracking steps",
            f"pass prefilter: {self.queue_prefiltered} candidates skipped "
            f"({self.size_cut_skips} by the size cut)",
        ]
        return "\n".join(lines)


def default_probe_sizes(total_nodes: int) -> Tuple[int, ...]:
    """A geometric sweep of job sizes up to the machine size."""
    sizes = []
    k = 1
    while k < total_nodes:
        sizes.append(k)
        k = max(k + 1, int(k * 1.5))
    sizes.append(total_nodes)
    return tuple(sizes)


def fragmentation_snapshot(
    allocator: Allocator,
    probe_sizes: Optional[Sequence[int]] = None,
) -> FragmentationSnapshot:
    """Take a fragmentation snapshot of ``allocator``'s current state.

    Passing an explicitly empty ``probe_sizes`` sequence yields a
    **structural** snapshot: no ``can_allocate`` probes run at all (so
    the allocator's cache counters are untouched), ``placeable`` stays
    empty and ``largest_placeable`` is 0.  The time-series sampler
    (:mod:`repro.obs.sampler`) relies on this probe-free form.
    """
    tree = allocator.tree
    state = allocator.state
    if probe_sizes is None:
        probe_sizes = default_probe_sizes(tree.num_nodes)

    padding = sum(a.padding for a in allocator.allocations.values())
    stats = allocator.stats
    hits, misses, invalidations = (
        stats.cache_hits, stats.cache_misses, stats.cache_invalidations,
    )
    # Like the cache counters: snapshot before the probe sweep below
    # adds its own search effort.
    pruned, cand, memo, steps = (
        stats.pods_pruned, stats.candidate_hits,
        stats.memo_hits, stats.backtrack_steps,
    )
    prefiltered, cut_skips = stats.queue_prefiltered, stats.size_cut_skips
    free = state.free_nodes_total
    fully_free = int(state.full_free_leaves.sum())
    shard = free - fully_free * tree.m1
    pod_free = tuple(
        sorted(
            (
                int(state.free_per_leaf[p * tree.m2 : (p + 1) * tree.m2].sum())
                for p in range(tree.num_pods)
            ),
            reverse=True,
        )
    )

    placeable: Dict[int, bool] = {}
    largest = 0
    probes = set(probe_sizes)
    if free and probes:
        probes.add(free)  # "could one job absorb all free capacity?"
    for size in sorted(probes):
        ok = size <= free and allocator.can_allocate(size)
        placeable[size] = ok
        if ok:
            largest = size
    return FragmentationSnapshot(
        scheme=allocator.name,
        total_nodes=tree.num_nodes,
        free_nodes=free,
        padding_nodes=padding,
        fully_free_leaves=fully_free,
        shard_nodes=shard,
        pod_free=pod_free,
        placeable=placeable,
        largest_placeable=largest,
        cache_hits=hits,
        cache_misses=misses,
        cache_invalidations=invalidations,
        pods_pruned=pruned,
        candidate_hits=cand,
        memo_hits=memo,
        backtrack_steps=steps,
        queue_prefiltered=prefiltered,
        size_cut_skips=cut_skips,
    )


def structural_snapshot(allocator: Allocator) -> FragmentationSnapshot:
    """Probe-free fragmentation snapshot (structure only, no searches).

    Cheap enough to take per sample interval inside a simulation and
    guaranteed not to perturb the allocator in any way — it never calls
    :meth:`~repro.core.allocator.Allocator.can_allocate`, so even the
    cache counters stay untouched.
    """
    return fragmentation_snapshot(allocator, probe_sizes=())


def compare_fragmentation(
    allocators: Sequence[Allocator],
    probe_sizes: Optional[Sequence[int]] = None,
) -> Dict[str, FragmentationSnapshot]:
    """Snapshots for several allocators (assumed to hold comparable
    workloads), keyed by scheme name."""
    return {
        a.name: fragmentation_snapshot(a, probe_sizes) for a in allocators
    }
