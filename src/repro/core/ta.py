"""Topology-Aware (TA) scheduling (section 5.2.2), reconstructed from the
paper's description of Jain et al. [19].

TA never allocates links explicitly.  Instead it follows node-placement
rules that rule out *every* placement in which two jobs could conceivably
contend for a link under an arbitrary routing:

* a job that fits within a leaf (**T1**, ``size <= m1``) must be placed
  on a single leaf;
* a job that fits within a subtree (**T2**, ``size <= m1*m2``) must be
  placed within a single pod;
* only larger jobs (**T3**) may span the machine.

Because links are only *implicitly* reserved, reservations are coarse: a
leaf carrying any node of a multi-leaf job could route that job's traffic
over **all** of its uplinks, so the whole leaf's uplink set belongs to
that job (Figure 2, center — internal link fragmentation) and no other
multi-leaf job may place nodes there.  Likewise a pod carrying part of a
machine-spanning job could see that job's traffic on all of its
L2-to-spine links, so at most one T3 job may touch a pod.  T1 jobs use no
uplinks at all (their traffic turns around inside the leaf crossbar), so
they may share leaves with anything.

The paper attributes to TA exactly two failure modes, both reproduced
here: internal fragmentation of *links* (never of nodes — TA assigns
exactly ``size`` nodes) and external fragmentation of *nodes* from the
single-leaf / single-pod containment rules (Figure 2, right: a three-node
job waits even though three nodes are free, because no single leaf has
three).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allocator import Allocation, Allocator
from repro.topology.fattree import XGFT


class TopologyAwareAllocator(Allocator):
    """Node-rule-based isolating allocator with implicit link reservation.

    Parameters
    ----------
    tree:
        Topology to allocate on.
    t1_shares_multi_leaf:
        Whether single-leaf (T1) jobs may be placed on leaves whose
        uplinks are implicitly reserved by a multi-leaf job.  ``False``
        (default) is the strict reading — TA reserves at whole-leaf
        granularity, so a reserved leaf takes no other job's nodes;
        ``True`` is the permissive reading (T1 traffic never leaves the
        leaf crossbar, so no contention is conceivable).  The difference
        is an ablation knob.
    """

    name = "ta"
    isolating = True

    #: vectorize the containment-rule scans with numpy; ``False`` falls
    #: back to the per-leaf Python loops.  Both paths make byte-identical
    #: decisions (equivalence-tested).
    use_indexes: bool = True

    def __init__(self, tree: XGFT, t1_shares_multi_leaf: bool = False):
        super().__init__(tree)
        self.t1_shares_multi_leaf = t1_shares_multi_leaf
        #: job id of the multi-leaf job whose nodes sit on each leaf, or -1
        #: (numpy so the T1/T2/T3 scans are vectorized comparisons)
        self._multi_owner = np.full(tree.num_leaves, -1, dtype=np.int64)
        #: job id of the T3 job touching each pod, or -1
        self._t3_owner = np.full(tree.num_pods, -1, dtype=np.int64)
        #: per-job bookkeeping for release: (class, leaves, pods)
        self._job_meta: Dict[int, Tuple[str, Tuple[int, ...], Tuple[int, ...]]] = {}

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def classify(self, size: int) -> str:
        """Job class per the containment rules: ``"t1"``/``"t2"``/``"t3"``."""
        if size <= self.tree.m1:
            return "t1"
        if size <= self.tree.nodes_per_pod:
            return "t2"
        return "t3"

    def _trace_attrs(self, size):
        return {"tier": self.classify(size)}

    def cut_class(self, eff):
        """TA feasibility is monotone only *within* a containment tier.

        Across tiers it is not: a pod can host a T2 job while every
        individual leaf is too fragmented for a smaller T1 job.  The
        size-cut floor therefore lives per tier.
        """
        return self.classify(eff)

    def batch_screen(self, effs, bw_needs=None):
        """Exact containment-rule feasibility, one comparison per tier.

        * T1 is feasible iff some usable leaf has ``>= size`` free
          nodes (``usable`` honours ``t1_shares_multi_leaf``);
        * T2 iff some pod's usable leaves total ``>= size``;
        * T3 iff the usable leaves of T3-eligible pods total ``>= size``.

        These mirror :meth:`_search_t1`/``_t2``/``_t3`` exactly — the
        scalar search succeeds iff the screen passes — so a ``True``
        here is a proof of (durable) infeasibility, and TA's failed
        searches vanish entirely under the vector pass.
        """
        if not self.use_indexes:
            return None
        tree = self.tree
        free = self.state.free_per_leaf
        usable = np.where(self._multi_owner == -1, free, 0)
        t1_free = free if self.t1_shares_multi_leaf else usable
        t1_max = int(t1_free.max()) if t1_free.size else 0
        totals = usable.reshape(tree.num_pods, tree.m2).sum(axis=1)
        t2_max = int(totals.max()) if totals.size else 0
        t3_total = int(np.where(self._t3_owner == -1, totals, 0).sum())
        limit = np.where(
            effs <= tree.m1, t1_max,
            np.where(effs <= tree.nodes_per_pod, t2_max, t3_total),
        )
        return effs > limit

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _search(
        self, job_id: int, size: int, bw_need: Optional[float]
    ) -> Optional[Allocation]:
        cls = self.classify(size)
        if self.prof.enabled:
            with self.prof.stage(cls):
                return self._search_tier(cls, job_id, size)
        return self._search_tier(cls, job_id, size)

    def _search_tier(
        self, cls: str, job_id: int, size: int
    ) -> Optional[Allocation]:
        if cls == "t1":
            return self._search_t1(job_id, size)
        if cls == "t2":
            return self._search_t2(job_id, size)
        return self._search_t3(job_id, size)

    def _leaf_usable_by_multi(self, leaf: int) -> bool:
        """Leaves free of other multi-leaf jobs' implicit reservations."""
        return self._multi_owner[leaf] == -1

    def _search_t1(self, job_id: int, size: int) -> Optional[Allocation]:
        """Best-fit single leaf with ``size`` free nodes."""
        state = self.state
        tree = self.tree
        if self.use_indexes:
            free = state.free_per_leaf
            eligible = free >= size
            if not self.t1_shares_multi_leaf:
                eligible &= self._multi_owner == -1
            # argmin over (free where eligible else m1+1) returns the
            # *first* leaf achieving the minimum — the same best-fit
            # tie-break as the scan's strict < comparison.
            scored = np.where(eligible, free, tree.m1 + 1)
            best = int(np.argmin(scored))
            if scored[best] > tree.m1:
                return None
        else:
            best = None
            best_free = tree.m1 + 1
            for leaf in range(tree.num_leaves):
                f = int(state.free_per_leaf[leaf])
                if f < size or f >= best_free:
                    continue
                if not self.t1_shares_multi_leaf and not self._leaf_usable_by_multi(leaf):
                    continue
                best, best_free = leaf, f
            if best is None:
                return None
        nodes = state.free_node_ids(best, size)
        return Allocation(job_id=job_id, size=size, nodes=tuple(nodes))

    def _usable_free(self) -> np.ndarray:
        """Per-leaf free counts with multi-leaf-reserved leaves zeroed."""
        return np.where(
            self._multi_owner == -1, self.state.free_per_leaf, 0
        )

    def _search_t2(self, job_id: int, size: int) -> Optional[Allocation]:
        """Single pod, on leaves with no other multi-leaf job's nodes."""
        tree = self.tree
        state = self.state
        if self.use_indexes:
            usable_free = self._usable_free()
            totals = usable_free.reshape(tree.num_pods, tree.m2).sum(axis=1)
            ok = np.flatnonzero(totals >= size)
            self.stats.pods_pruned += tree.num_pods - int(ok.size)
            if ok.size == 0:
                return None
            pod = int(ok[0])  # first feasible pod, as in the serial scan
            lo = pod * tree.m2
            seg = usable_free[lo : lo + tree.m2]
            idx = np.flatnonzero(seg > 0)
            return self._take_from_leaves_v(job_id, size, seg[idx], idx + lo)
        for pod in range(tree.num_pods):
            usable = []  # (free, leaf)
            total = 0
            for leaf in tree.leaves_of_pod(pod):
                if not self._leaf_usable_by_multi(leaf):
                    continue
                f = int(state.free_per_leaf[leaf])
                if f:
                    usable.append((f, leaf))
                    total += f
            if total < size:
                continue
            return self._take_from_leaves(job_id, size, usable)
        return None

    def _search_t3(self, job_id: int, size: int) -> Optional[Allocation]:
        """Across pods that no other T3 job touches, on unreserved leaves."""
        tree = self.tree
        state = self.state
        if self.use_indexes:
            usable_free = self._usable_free()
            eligible = self._t3_owner == -1
            self.stats.pods_pruned += int((~eligible).sum())
            per_pod = usable_free.reshape(tree.num_pods, tree.m2).sum(axis=1)
            cum = np.cumsum(np.where(eligible, per_pod, 0))
            if int(cum[-1]) < size:
                return None
            # First pod index at which the running usable total reaches
            # the job — exactly where the serial scan breaks.
            cut = int(np.searchsorted(cum, size))
            limit = (cut + 1) * tree.m2
            mask = np.repeat(eligible[: cut + 1], tree.m2)
            idx = np.flatnonzero((usable_free[:limit] > 0) & mask)
            return self._take_from_leaves_v(job_id, size, usable_free[idx], idx)
        pod_leaves = []  # (free, leaf)
        total = 0
        for pod in range(tree.num_pods):
            if self._t3_owner[pod] != -1:
                continue
            for leaf in tree.leaves_of_pod(pod):
                if not self._leaf_usable_by_multi(leaf):
                    continue
                f = int(state.free_per_leaf[leaf])
                if f:
                    pod_leaves.append((f, leaf))
                    total += f
            if total >= size:
                break
        if total < size:
            return None
        return self._take_from_leaves(job_id, size, pod_leaves)

    def _take_from_leaves_v(
        self,
        job_id: int,
        size: int,
        free_arr: np.ndarray,
        leaf_arr: np.ndarray,
    ) -> Allocation:
        """Columnar :meth:`_take_from_leaves`: rank with one lexsort and
        stop at the prefix the running total proves sufficient.

        ``np.lexsort`` keys are (secondary, primary) = (leaf, -free), so
        the order is emptiest-first with leaf-id tie-break — exactly the
        scalar ``sort(key=(-free, leaf))`` ranking.
        """
        order = np.lexsort((leaf_arr, -free_arr))
        f = free_arr[order]
        leaves = leaf_arr[order]
        cut = int(np.searchsorted(np.cumsum(f), size))
        nodes: List[int] = []
        remaining = size
        for i in range(cut + 1):
            take = min(int(f[i]), remaining)
            nodes.extend(self.state.free_node_ids(int(leaves[i]), take))
            remaining -= take
        assert remaining == 0, "capacity was checked before taking nodes"
        return Allocation(job_id=job_id, size=size, nodes=tuple(nodes))

    def _take_from_leaves(
        self, job_id: int, size: int, usable: List[Tuple[int, int]]
    ) -> Allocation:
        """Take ``size`` nodes, emptiest leaves first (fewest leaves touched,
        so the fewest uplink sets are implicitly reserved)."""
        usable.sort(key=lambda fl: (-fl[0], fl[1]))
        nodes: List[int] = []
        remaining = size
        for f, leaf in usable:
            take = min(f, remaining)
            nodes.extend(self.state.free_node_ids(leaf, take))
            remaining -= take
            if remaining == 0:
                break
        assert remaining == 0, "capacity was checked before taking nodes"
        return Allocation(job_id=job_id, size=size, nodes=tuple(nodes))

    # ------------------------------------------------------------------
    # Claim/release: maintain the implicit-reservation bookkeeping
    # ------------------------------------------------------------------
    def _claim(self, alloc: Allocation, bw_need: Optional[float]) -> None:
        super()._claim(alloc, bw_need)
        cls = self.classify(alloc.size)
        tree = self.tree
        leaves = tuple(sorted({n // tree.m1 for n in alloc.nodes}))
        pods = tuple(sorted({leaf // tree.m2 for leaf in leaves}))
        if cls != "t1":
            for leaf in leaves:
                assert self._multi_owner[leaf] == -1
                self._multi_owner[leaf] = alloc.job_id
        if cls == "t3":
            for pod in pods:
                assert self._t3_owner[pod] == -1
                self._t3_owner[pod] = alloc.job_id
        self._job_meta[alloc.job_id] = (cls, leaves, pods)

    def _release(self, job_id: int) -> None:
        super()._release(job_id)
        self._drop_meta(job_id)

    def _release_many(self, job_ids) -> None:
        # One grouped occupancy-index update; the owner-map teardown is
        # per job either way.
        self.state.release_many(job_ids)
        for job_id in job_ids:
            self._drop_meta(job_id)

    def _drop_meta(self, job_id: int) -> None:
        cls, leaves, pods = self._job_meta.pop(job_id)
        if cls != "t1":
            for leaf in leaves:
                if self._multi_owner[leaf] == job_id:
                    self._multi_owner[leaf] = -1
        if cls == "t3":
            for pod in pods:
                if self._t3_owner[pod] == job_id:
                    self._t3_owner[pod] = -1
