"""Name-based construction of the paper's five scheduling schemes."""

from __future__ import annotations

import os
from typing import Callable, Dict

from repro.core.allocator import Allocator
from repro.core.baseline import BaselineAllocator
from repro.core.jigsaw import JigsawAllocator
from repro.core.laas import LaaSAllocator
from repro.core.lcs import LeastConstrainedAllocator
from repro.core.ta import TopologyAwareAllocator
from repro.topology.fattree import XGFT

_FACTORIES: Dict[str, Callable[..., Allocator]] = {
    "baseline": BaselineAllocator,
    "jigsaw": JigsawAllocator,
    "laas": LaaSAllocator,
    "ta": TopologyAwareAllocator,
    "lc+s": LeastConstrainedAllocator,
    "lc": lambda tree, **kw: LeastConstrainedAllocator(
        tree, share_links=False, **kw
    ),
}

#: The scheme names of the paper's evaluation, in presentation order.
ALLOCATOR_NAMES = ("baseline", "lc+s", "jigsaw", "laas", "ta")


def make_allocator(name: str, tree: XGFT, **kwargs) -> Allocator:
    """Build the named scheme on ``tree``.

    Accepted names: ``baseline``, ``jigsaw``, ``laas``, ``ta``, ``lc+s``
    and ``lc`` (the exclusive-link least-constrained ablation variant).
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; expected one of {sorted(_FACTORIES)}"
        ) from None
    allocator = factory(tree, **kwargs)
    # REPRO_NAIVE_SEARCH=1 flips every allocator to its naive
    # recompute-per-call search path.  Decisions are identical either
    # way — benchmarks/_fingerprint.py --vs-naive proves it — so this
    # exists only for that invariance check and for before/after timing.
    if os.environ.get("REPRO_NAIVE_SEARCH", "") not in ("", "0"):
        allocator.use_indexes = False
    # REPRO_NO_XPASS_MEMO=1 disables only the cross-call negative memo
    # while keeping the indexed search; placements and budget ticks are
    # identical either way (the memo replays the recorded cost).
    if os.environ.get("REPRO_NO_XPASS_MEMO", "") not in ("", "0"):
        allocator.use_xpass_memo = False
    return allocator
