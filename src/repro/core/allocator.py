"""Allocator interface and the :class:`Allocation` result type.

Every scheduling scheme in the paper's evaluation is an
:class:`Allocator`: given a job size it either finds a placement that
satisfies the scheme's conditions — claiming the nodes (and, for the
link-isolating schemes, the links) in the shared
:class:`~repro.topology.state.ClusterState` — or reports that no legal
placement currently exists.  The discrete-event simulator in
:mod:`repro.sched` drives allocators through exactly this interface.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.core.shapes import ThreeLevelShape, TwoLevelShape
from repro.obs.prof import get_profiler
from repro.obs.tracer import get_tracer
from repro.topology.fattree import LinkId, SpineLinkId, XGFT
from repro.topology.state import ClusterState

Shape = Union[TwoLevelShape, ThreeLevelShape, None]


@dataclass(frozen=True)
class Allocation:
    """One job's placement: nodes, links, and the shape that produced it.

    ``nodes`` may exceed ``size`` for schemes with internal node
    fragmentation (LaaS rounds jobs up to whole leaves); utilization
    accounting always uses ``size`` — the padding is precisely the
    fragmentation the paper charges against LaaS (Table 2 discussion).
    """

    job_id: int
    size: int
    nodes: Tuple[int, ...]
    leaf_links: Tuple[LinkId, ...] = ()
    spine_links: Tuple[SpineLinkId, ...] = ()
    shape: Shape = None

    def __post_init__(self) -> None:
        if len(self.nodes) < self.size:
            raise ValueError(
                f"allocation for job {self.job_id} has {len(self.nodes)} nodes "
                f"but the job requested {self.size}"
            )

    @property
    def padding(self) -> int:
        """Nodes assigned beyond the request (internal fragmentation)."""
        return len(self.nodes) - self.size

    def leaf_node_counts(self, tree: XGFT) -> Dict[int, int]:
        """Map of leaf index to number of allocated nodes on that leaf."""
        counts: Dict[int, int] = {}
        for n in self.nodes:
            leaf = n // tree.m1
            counts[leaf] = counts.get(leaf, 0) + 1
        return counts


@dataclass
class AllocatorStats:
    """Counters every allocator maintains; feeds Table 3 and diagnostics."""

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    releases: int = 0
    #: cumulative wall-clock seconds inside allocate()/release()
    alloc_seconds: float = 0.0
    #: successes broken down by allocation level
    two_level: int = 0
    three_level: int = 0
    #: feasibility-cache consultations that skipped a search
    cache_hits: int = 0
    #: feasibility-cache consultations that had to run the search
    cache_misses: int = 0
    #: times the cache was flushed because free capacity grew
    cache_invalidations: int = 0
    #: pods rejected by the vectorized occupancy prefilter before any
    #: per-pod search work was spent on them
    pods_pruned: int = 0
    #: per-pod candidate lists served from the maintained bucket order
    #: instead of a fresh sorted() call
    candidate_hits: int = 0
    #: per-search negative-memo consultations that skipped a repeated
    #: per-pod sub-search (LC family)
    memo_hits: int = 0
    #: cross-pass negative-memo hits: per-pod sub-searches skipped
    #: because an earlier allocate() proved them infeasible and the
    #: pod's mutation epoch has not moved since
    xpass_memo_hits: int = 0
    #: cross-pass memo entries dropped at lookup because the pod's
    #: mutation epoch had moved on (claim/release/repair touched it)
    xpass_memo_epoch_flushes: int = 0
    #: backtracking steps replayed from the cross-pass memo instead of
    #: executed; ``backtrack_steps + xpass_memo_replayed_steps`` is
    #: invariant under the memo (the twin-equivalence tests rely on it)
    xpass_memo_replayed_steps: int = 0
    #: budgeted backtracking steps actually executed across all searches
    backtrack_steps: int = 0
    #: queued candidates the vectorized pass rejected without running
    #: :meth:`Allocator._search` (cache, size cut, or occupancy screen)
    queue_prefiltered: int = 0
    #: subset of ``queue_prefiltered`` rejected by the monotone size cut
    #: (a smaller effective size already failed durably this round)
    size_cut_skips: int = 0
    #: scheduling passes executed on the vectorized (column-oriented)
    #: pass; 0 when ``use_vector_pass=False`` / ``REPRO_NAIVE_PASS=1``
    pass_vector_rounds: int = 0

    def record(self, success: bool, seconds: float) -> None:
        self.attempts += 1
        self.alloc_seconds += seconds
        if success:
            self.successes += 1
        else:
            self.failures += 1

    @property
    def cache_hit_rate(self) -> float:
        """Share of feasibility lookups answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_registry(self, registry=None, labels=None):
        """These counters as a :class:`repro.obs.metrics.MetricRegistry`.

        The registry's instruments are *bound*: they read this object's
        fields live, so ``snapshot()`` / ``export_prometheus_text()``
        always agree with the attributes (see
        :func:`repro.obs.bridge.registry_for_stats` for the name
        catalog).  The fields themselves stay plain ints — the
        allocation hot path never pays for the registry view.
        """
        from repro.obs.bridge import registry_for_stats

        return registry_for_stats(self, registry=registry, labels=labels)


class Allocator(ABC):
    """Base class for all scheduling schemes.

    Subclasses implement :meth:`_search`, returning an
    :class:`Allocation` without touching state; the base class handles
    claiming, releasing, statistics, and the public API.
    """

    #: short scheme name, e.g. ``"jigsaw"`` — set by each subclass
    name: str = "abstract"
    #: whether the scheme guarantees inter-job network isolation
    isolating: bool = True
    #: whether jobs run at their isolated (sped-up) run time under this
    #: scheme; true for every isolating scheme and for LC+S (negligible
    #: interference), false only for Baseline
    low_interference: bool = True

    def __init__(self, tree: XGFT):
        self.tree = tree
        self.state = ClusterState(tree)
        self.stats = AllocatorStats()
        #: span tracer for ``alloc.search`` (the process-global, disabled
        #: tracer by default; the simulator installs its own).  Tracing
        #: is passive — a disabled tracer costs one attribute check per
        #: allocate() and an enabled one never changes a decision.
        self.tracer = get_tracer()
        #: stage profiler for the search internals (the process-global,
        #: disabled profiler by default; ``run_scheme(profiled=True)``
        #: installs an enabled one).  Same contract as the tracer:
        #: passive, and one attribute check per site when disabled.
        self.prof = get_profiler()
        self.allocations: Dict[int, Allocation] = {}
        # Allocation-feasibility cache.  A key is (effective size,
        # bw_need); a key is present iff a search with that key failed
        # and no resource has been freed since.  Claims only *shrink*
        # availability (nodes, exclusive links, link-bandwidth headroom,
        # TA's implicit reservations), so a proven failure stays a
        # failure across any number of claims; only release() — or an
        # external event that returns capacity, see
        # :meth:`invalidate_feasibility_cache` — can make it stale.
        self._failed_keys: Set[Tuple[int, Optional[float]]] = set()
        # Monotone size-cut floor: (cut class, bw_need) -> smallest
        # effective size proven durably infeasible since the last cache
        # flush.  Within one cut class (see :meth:`cut_class`)
        # feasibility is monotone in the effective size, so any queued
        # job at or above the floor can be rejected without a search.
        # Lives and dies with the feasibility cache: fed only by the
        # durable-failure sites below, cleared exactly where
        # ``_failed_keys`` clears.
        self._failed_floor: Dict[Tuple[Hashable, Optional[float]], int] = {}
        # Watermark guarding against *direct* state mutation (tests and
        # diagnostics releasing nodes without going through release()):
        # free_nodes_total above the last value seen at a cache consult
        # means capacity grew behind our back, so the cache is flushed.
        # Link-only growth is invisible to this guard — anything that
        # returns link capacity directly must still call
        # :meth:`invalidate_feasibility_cache` explicitly.
        self._min_free_seen = self.state.free_nodes_total

    # ------------------------------------------------------------------
    # Public API used by the simulator
    # ------------------------------------------------------------------
    def allocate(
        self, job_id: int, size: int, bw_need: Optional[float] = None
    ) -> Optional[Allocation]:
        """Try to place a ``size``-node job; claim resources on success.

        ``bw_need`` is the job's average per-link bandwidth requirement in
        GB/s; only the link-sharing scheme (LC+S) uses it, and the paper
        stresses that real schedulers do not have this information.
        """
        if size < 1:
            raise ValueError("job size must be positive")
        if job_id in self.allocations:
            raise ValueError(f"job {job_id} is already allocated")
        t0 = time.perf_counter()
        tracer = self.tracer
        span = tracer.begin("alloc.search") if tracer.enabled else None
        alloc: Optional[Allocation] = None
        self._check_watermark()
        key = (self.effective_size(size), bw_need)
        if key in self._failed_keys:
            self.stats.cache_hits += 1
            outcome = "cache_hit"
        else:
            self.stats.cache_misses += 1
            if size <= self.state.free_nodes_total:
                prof = self.prof
                if prof.enabled:
                    prof.scheme = self.name
                    pt = prof.push("search")
                    try:
                        alloc = self._search(job_id, size, bw_need)
                    finally:
                        prof.pop(pt)
                else:
                    alloc = self._search(job_id, size, bw_need)
            if alloc is None and self._failure_is_durable():
                self._failed_keys.add(key)
                self._note_durable_failure(key)
            outcome = "placed" if alloc is not None else "failed"
        if alloc is not None:
            prof = self.prof
            if prof.enabled:
                prof.scheme = self.name
                pt = prof.push("claim")
                try:
                    self._claim(alloc, bw_need)
                finally:
                    prof.pop(pt)
            else:
                self._claim(alloc, bw_need)
            self.allocations[job_id] = alloc
            if isinstance(alloc.shape, ThreeLevelShape):
                self.stats.three_level += 1
            else:
                self.stats.two_level += 1
        if span is not None:
            span.set(
                scheme=self.name, job=job_id, size=size, eff=key[0],
                outcome=outcome, **self._trace_attrs(size),
            )
            if bw_need is not None:
                span.set(bw_need=bw_need)
            if alloc is not None:
                span.set(
                    level=3 if isinstance(alloc.shape, ThreeLevelShape) else 2,
                    nodes=len(alloc.nodes),
                )
            tracer.end(span)
        self.stats.record(alloc is not None, time.perf_counter() - t0)
        return alloc

    def can_allocate(self, size: int, bw_need: Optional[float] = None) -> bool:
        """Whether a ``size``-node job could be placed *right now*.

        A hypothetical probe: runs the same search as :meth:`allocate`
        but claims nothing and spends no time in the timing statistics
        (so Table 3's scheduling times are not polluted by diagnostics).
        It does consult — and, on failure, populate — the feasibility
        cache, since a probe's failure is exactly as durable as a real
        attempt's.
        """
        if size < 1:
            raise ValueError("job size must be positive")
        self._check_watermark()
        key = (self.effective_size(size), bw_need)
        if key in self._failed_keys:
            self.stats.cache_hits += 1
            return False
        self.stats.cache_misses += 1
        if size > self.state.free_nodes_total:
            self._failed_keys.add(key)
            self._note_durable_failure(key)
            return False
        ok = self._search(-1, size, bw_need) is not None
        if not ok and self._failure_is_durable():
            self._failed_keys.add(key)
            self._note_durable_failure(key)
        return ok

    def release(self, job_id: int) -> None:
        """Return a finished job's resources to the free pool."""
        t0 = time.perf_counter()
        if job_id not in self.allocations:
            raise ValueError(f"job {job_id} is not allocated")
        del self.allocations[job_id]
        prof = self.prof
        if prof.enabled:
            prof.scheme = self.name
            pt = prof.push("release")
            try:
                self._release(job_id)
            finally:
                prof.pop(pt)
        else:
            self._release(job_id)
        self.invalidate_feasibility_cache()
        self.stats.releases += 1
        self.stats.alloc_seconds += time.perf_counter() - t0

    def release_many(self, job_ids: Sequence[int]) -> None:
        """Release a batch of finished jobs in one pass.

        Equivalent to calling :meth:`release` once per id, but the
        feasibility cache and watermark are invalidated once for the
        whole batch and the underlying state update is grouped (a
        single occupancy-index pass when the allocator has no custom
        per-job teardown).  Validates every id up front so a bad id
        leaves the allocator untouched.
        """
        ids = list(job_ids)
        if not ids:
            return
        t0 = time.perf_counter()
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in release_many")
        for job_id in ids:
            if job_id not in self.allocations:
                raise ValueError(f"job {job_id} is not allocated")
        for job_id in ids:
            del self.allocations[job_id]
        prof = self.prof
        if prof.enabled:
            prof.scheme = self.name
            pt = prof.push("release")
            try:
                self._release_many(ids)
            finally:
                prof.pop(pt)
        else:
            self._release_many(ids)
        self.invalidate_feasibility_cache()
        self.stats.releases += len(ids)
        self.stats.alloc_seconds += time.perf_counter() - t0

    def _release_many(self, job_ids: List[int]) -> None:
        """Batch counterpart of :meth:`_release`.

        Subclasses with per-job teardown bookkeeping (e.g. owner maps)
        either override this or inherit the conservative fallback: if
        the subclass customized :meth:`_release`, call it per job so
        the bookkeeping still runs; otherwise hand the whole batch to
        :meth:`ClusterState.release_many`.
        """
        if type(self)._release is not Allocator._release:
            for job_id in job_ids:
                self._release(job_id)
        else:
            self.state.release_many(job_ids)

    def invalidate_feasibility_cache(self) -> None:
        """Forget every cached infeasibility verdict.

        Called automatically on :meth:`release`.  Anything else that
        grows free capacity *without* going through release — e.g.
        :meth:`repro.topology.faults.FaultInjector.repair` returning
        drained hardware to service, or a test mutating
        :attr:`state` directly — must call this before the next
        allocation attempt.  Growth in the *node* count is additionally
        caught by a free-node watermark at the next consult, so only
        link-only growth strictly requires the explicit call.
        """
        if self._failed_keys:
            self._failed_keys.clear()
            self.stats.cache_invalidations += 1
        self._failed_floor.clear()
        self._min_free_seen = self.state.free_nodes_total

    def _check_watermark(self) -> None:
        """Flush the cache if free capacity grew outside release()."""
        free = self.state.free_nodes_total
        if free > self._min_free_seen:
            self.invalidate_feasibility_cache()
        else:
            self._min_free_seen = free

    @property
    def feasibility_cache_size(self) -> int:
        """Number of (effective size, bw_need) keys currently proven
        unallocatable (diagnostic; resets to 0 on every release)."""
        return len(self._failed_keys)

    def feasibility_cache_keys(self) -> Tuple[Tuple[int, Optional[float]], ...]:
        """Snapshot of the cached infeasible keys (for audits/tests)."""
        return tuple(sorted(self._failed_keys, key=repr))

    def effective_size(self, size: int) -> int:
        """Nodes a ``size``-node job actually consumes under this scheme.

        Used by EASY backfilling's shadow-time estimate.  Only LaaS
        (whole-leaf rounding) overrides this.
        """
        return size

    def effective_sizes(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`effective_size` over a size column.

        Must agree elementwise with the scalar method — the vector pass
        builds its ``(effective_size, bw_need)`` key column from this.
        Only LaaS overrides it.
        """
        return sizes

    # ------------------------------------------------------------------
    # Vectorized-pass dispatch API (see sched/simulator.py)
    # ------------------------------------------------------------------
    def cut_class(self, eff: int) -> Hashable:
        """Partition key within which feasibility is monotone in ``eff``.

        The monotone size cut only compares effective sizes that share a
        cut class.  The base scheme families (Baseline, Jigsaw, LaaS,
        LC+S) are globally monotone — dropping a node from any legal
        placement of ``eff`` nodes yields a legal placement of
        ``eff - 1`` — so one class suffices.  TA overrides this with its
        containment tier: a multi-leaf placement can be feasible while a
        single-leaf (smaller) job has no leaf with enough room.
        """
        return 0

    def cut_infeasible(self, eff: int, bw_need: Optional[float]) -> bool:
        """Whether the monotone size cut rejects ``eff`` at ``bw_need``.

        True iff some effective size ``<= eff`` in the same cut class
        failed durably since the last cache flush.
        """
        floor = self._failed_floor.get((self.cut_class(eff), bw_need))
        return floor is not None and eff >= floor

    def _note_durable_failure(self, key: Tuple[int, Optional[float]]) -> None:
        """Lower the size-cut floor for a durably failed key."""
        eff, bw_need = key
        fkey = (self.cut_class(eff), bw_need)
        cur = self._failed_floor.get(fkey)
        if cur is None or eff < cur:
            self._failed_floor[fkey] = eff

    def batch_screen(
        self, effs: np.ndarray, bw_needs=None
    ) -> Optional[np.ndarray]:
        """Vectorized *necessary-condition* infeasibility screen.

        Given a column of effective sizes (and the matching bandwidth
        needs), return a boolean mask marking candidates that provably
        cannot be placed against the current occupancy indexes — every
        ``True`` must imply the scalar :meth:`_search` would fail *and*
        that the failure is durable (claims only shrink availability, so
        a verdict computed mid-pass stays valid for the rest of the
        pass).  ``None`` means the scheme has no screen and every
        candidate goes to the dispatcher's cache/cut checks only.
        Schemes whose feasibility is not a function of the occupancy
        indexes alone (LC+S's bandwidth masks) must return ``None``.
        """
        return None

    def charge_skip(
        self,
        job_id: int,
        size: int,
        bw_need: Optional[float] = None,
        reason: str = "cache",
    ) -> None:
        """Account for a vector-pass rejection exactly like a failed
        :meth:`allocate` call.

        The vectorized pass may only skip an allocate() whose failure is
        already proven (cached key, monotone size cut, occupancy
        screen).  Decision invariance requires the *counters* to stay
        identical too — ``alloc_attempts`` is fingerprinted — so every
        skip is charged here: attempts/failures/cache counters move as
        the scalar call would have moved them, the feasibility cache
        learns the (durable) verdict, and only the ``_search`` body is
        saved.  ``reason`` is ``"cache"``, ``"cut"`` or ``"screen"``.
        """
        t0 = time.perf_counter()
        tracer = self.tracer
        span = tracer.begin("alloc.search") if tracer.enabled else None
        self._check_watermark()
        key = (self.effective_size(size), bw_need)
        self.stats.queue_prefiltered += 1
        if reason == "cut":
            self.stats.size_cut_skips += 1
        if key in self._failed_keys:
            self.stats.cache_hits += 1
            outcome = "cache_hit"
        else:
            self.stats.cache_misses += 1
            self._failed_keys.add(key)
            self._note_durable_failure(key)
            outcome = f"prefiltered:{reason}"
        if span is not None:
            span.set(
                scheme=self.name, job=job_id, size=size, eff=key[0],
                outcome=outcome, **self._trace_attrs(size),
            )
            if bw_need is not None:
                span.set(bw_need=bw_need)
            tracer.end(span)
        self.stats.record(False, time.perf_counter() - t0)

    @property
    def free_nodes(self) -> int:
        return self.state.free_nodes_total

    @property
    def busy_requested_nodes(self) -> int:
        """Nodes doing requested work (excludes LaaS padding)."""
        return sum(a.size for a in self.allocations.values())

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def _search(
        self, job_id: int, size: int, bw_need: Optional[float]
    ) -> Optional[Allocation]:
        """Find a placement without mutating state, or return None."""

    def _trace_attrs(self, size: int) -> Dict[str, Any]:
        """Scheme-specific attributes for the ``alloc.search`` span.

        Called only when tracing is enabled; must be side-effect free.
        """
        return {}

    def _failure_is_durable(self) -> bool:
        """Whether the last failed :meth:`_search` *proves* infeasibility.

        A complete search's failure stays valid until capacity grows,
        so it may enter the feasibility cache.  Budget-limited searches
        (LC+S's scheduling timeout) override this to return ``False``
        when they gave up early: a timeout is not a proof — a later,
        smaller search space might succeed within the budget, and
        caching the timeout would change scheduling decisions.
        """
        return True

    def _claim(self, alloc: Allocation, bw_need: Optional[float]) -> None:
        self.state.claim(
            alloc.job_id, alloc.nodes, alloc.leaf_links, alloc.spine_links
        )

    def _release(self, job_id: int) -> None:
        self.state.release(job_id)
