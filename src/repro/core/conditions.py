"""Executable form of the paper's formal allocation conditions.

Section 3.2.2 (proved necessary and sufficient in Appendix A) constrains
how an interference-free, full-bandwidth partition may be laid out:

1. nodes are evenly distributed across ``T`` subtrees plus an optional
   smaller remainder subtree (Lemma 2);
2. within each subtree, nodes are evenly distributed across leaves, with
   a single optional remainder leaf (Lemma 1);
3. the remainder leaf lives in the remainder subtree (Lemma 3);
4. within a subtree, all full leaves connect to a common L2 set ``S``
   and the remainder leaf to ``Sr ⊆ S`` (Lemma 4);
5. every subtree uses the same L2 *indices* ``S`` (Lemma 6);
6. the ``i``-th L2 switch of every subtree connects to a common spine
   set ``S*_i``, the remainder subtree to ``S*r_i ⊆ S*_i`` (Lemma 5/6);

plus up/down link balance at every switch, and (for high utilization)
``N = Nr`` — exactly the requested node count.

:func:`check_allocation` evaluates all of these against a concrete
:class:`~repro.core.allocator.Allocation` and returns a list of
violation strings (empty = legal).  It is the oracle for the property
tests, and an independent re-derivation of the structure — it does *not*
trust the ``shape`` the allocator attached.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.core.allocator import Allocation
from repro.topology.fattree import XGFT


class ConditionViolation(AssertionError):
    """Raised by :func:`assert_valid` when an allocation is illegal."""


def check_allocation(
    tree: XGFT, alloc: Allocation, exact_nodes: bool = True
) -> List[str]:
    """Return every way ``alloc`` violates the formal conditions.

    ``exact_nodes=False`` skips the high-utilization condition
    ``N == Nr`` (LaaS intentionally violates it by rounding up).
    """
    v: List[str] = []
    if exact_nodes and len(alloc.nodes) != alloc.size:
        v.append(
            f"N != Nr: job asked for {alloc.size} nodes, got {len(alloc.nodes)}"
        )
    if len(set(alloc.nodes)) != len(alloc.nodes):
        v.append("duplicate nodes")
        return v

    # ------------------------------------------------------------------
    # Structure: nodes per leaf and per pod
    # ------------------------------------------------------------------
    per_leaf: Dict[int, int] = defaultdict(int)
    for n in alloc.nodes:
        per_leaf[n // tree.m1] += 1
    per_pod: Dict[int, int] = defaultdict(int)
    for leaf, cnt in per_leaf.items():
        per_pod[leaf // tree.m2] += cnt

    leaf_counts = sorted(per_leaf.values(), reverse=True)
    pod_counts = sorted(per_pod.values(), reverse=True)

    # Conditions (1)-(3): equal counts with at most one smaller remainder.
    nL = leaf_counts[0]
    rem_leaves = [leaf for leaf, c in per_leaf.items() if c != nL]
    if len(rem_leaves) > 1:
        v.append(f"more than one remainder leaf: counts {leaf_counts}")
    nT = pod_counts[0]
    rem_pods = [pod for pod, c in per_pod.items() if c != nT]
    if len(rem_pods) > 1:
        v.append(f"more than one remainder subtree: counts {pod_counts}")
    if rem_leaves and len(per_pod) > 1:
        rem_leaf_pod = rem_leaves[0] // tree.m2
        if not rem_pods:
            v.append("remainder leaf present but all subtrees have equal counts")
        elif rem_leaf_pod != rem_pods[0]:
            v.append(
                f"remainder leaf in pod {rem_leaf_pod}, but the remainder "
                f"subtree is pod {rem_pods[0]}"
            )
    if v:
        return v

    single_leaf = len(per_leaf) == 1
    single_pod = len(per_pod) == 1
    rem_leaf = rem_leaves[0] if rem_leaves else None
    rem_pod = rem_pods[0] if rem_pods else None

    # ------------------------------------------------------------------
    # Leaf links: balance and common S / Sr ⊆ S  (condition 4, 5)
    # ------------------------------------------------------------------
    links_by_leaf: Dict[int, Set[int]] = defaultdict(set)
    for leaf, i in alloc.leaf_links:
        if i in links_by_leaf[leaf]:
            v.append(f"duplicate leaf link ({leaf}, {i})")
        links_by_leaf[leaf].add(i)

    if single_leaf:
        if alloc.leaf_links or alloc.spine_links:
            v.append("single-leaf allocation should not hold any links")
        return v

    for leaf, cnt in per_leaf.items():
        got = len(links_by_leaf.get(leaf, ()))
        if got != cnt:
            v.append(
                f"leaf {leaf} up/down imbalance: {cnt} nodes but {got} uplinks"
            )
    for leaf in links_by_leaf:
        if leaf not in per_leaf:
            v.append(f"leaf {leaf} holds links but no nodes")
    if v:
        return v

    full_leaf_sets = {
        frozenset(links_by_leaf[leaf]) for leaf in per_leaf if leaf != rem_leaf
    }
    if len(full_leaf_sets) > 1:
        v.append(f"full leaves use different L2 sets: {sorted(map(sorted, full_leaf_sets))}")
        return v
    s_set: Set[int] = set(next(iter(full_leaf_sets))) if full_leaf_sets else set()
    if rem_leaf is not None:
        sr_set = links_by_leaf[rem_leaf]
        if full_leaf_sets and not sr_set <= s_set:
            v.append(f"remainder leaf L2 set {sorted(sr_set)} not a subset of S {sorted(s_set)}")
    else:
        sr_set = set()
    if not full_leaf_sets:
        s_set = set(sr_set)  # allocation is a lone remainder leaf per pod

    # ------------------------------------------------------------------
    # Spine links: balance and common S*_i / subsets  (condition 6)
    # ------------------------------------------------------------------
    spines_by_pod_i: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
    for pod, i, j in alloc.spine_links:
        if j in spines_by_pod_i[(pod, i)]:
            v.append(f"duplicate spine link ({pod}, {i}, {j})")
        spines_by_pod_i[(pod, i)].add(j)

    if single_pod:
        if alloc.spine_links:
            v.append("single-subtree allocation should not hold spine links")
        return v

    # Down-link count into L2 switch i of each pod: one per full leaf in
    # the pod, plus one if the remainder leaf connects to i.
    full_leaves_in_pod: Dict[int, int] = defaultdict(int)
    for leaf in per_leaf:
        if leaf != rem_leaf:
            full_leaves_in_pod[leaf // tree.m2] += 1
    for pod in per_pod:
        for i in range(tree.l2_per_pod):
            down = full_leaves_in_pod.get(pod, 0) if i in s_set else 0
            if rem_leaf is not None and rem_leaf // tree.m2 == pod and i in sr_set:
                down += 1
            up = len(spines_by_pod_i.get((pod, i), ()))
            if up != down:
                v.append(
                    f"L2 switch (pod {pod}, index {i}) imbalance: "
                    f"{down} downlinks vs {up} uplinks"
                )
    for pod, i in spines_by_pod_i:
        if pod not in per_pod:
            v.append(f"pod {pod} holds spine links but no nodes")
    if v:
        return v

    for i in s_set:
        star_sets = {
            frozenset(spines_by_pod_i.get((pod, i), frozenset()))
            for pod in per_pod
            if pod != rem_pod
        }
        if len(star_sets) > 1:
            v.append(f"full subtrees use different spine sets at L2 index {i}")
            continue
        s_star = next(iter(star_sets)) if star_sets else frozenset()
        if rem_pod is not None:
            rset = spines_by_pod_i.get((rem_pod, i), set())
            if star_sets and not rset <= s_star:
                v.append(
                    f"remainder subtree spine set at L2 index {i} not a "
                    f"subset of S*_{i}"
                )
    return v


def assert_valid(tree: XGFT, alloc: Allocation, exact_nodes: bool = True) -> None:
    """Raise :class:`ConditionViolation` listing every violated condition."""
    violations = check_allocation(tree, alloc, exact_nodes=exact_nodes)
    if violations:
        raise ConditionViolation(
            f"allocation for job {alloc.job_id} violates the formal "
            f"conditions:\n- " + "\n- ".join(violations)
        )
