"""Links-as-a-Service (LaaS) allocator (section 5.2.1).

LaaS predates Jigsaw's three-level conditions.  For jobs that fit in a
single subtree it knows the same two-level placement rules Jigsaw uses
(the paper's footnote 2: two of Jigsaw's conditions were first
identified by LaaS, and "its algorithm is similar up to here"), so
single-subtree allocations are identical to Jigsaw's — partial leaves,
remainder leaf and all.

For jobs that must span subtrees, LaaS sidesteps the three-level
placement problem by *reducing it to two levels*: entire leaves take the
place of nodes, L2 switches of leaves, spines of L2 switches.  The unit
of allocation becomes the whole leaf, so the job's size is **rounded up
to a whole number of leaves** — and the unrequested nodes on its last
leaf are allocated-but-idle for the job's whole lifetime.

That rounding is the *internal node fragmentation* of Figure 2 (left),
and it is why LaaS utilization saturates below Jigsaw's (section 6.1):
under load, mid-size jobs routinely fail to fit into any fragmented
subtree, spill to a three-level placement, and drag padding with them —
the paper measures 3-7 % of the system lost this way.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.jigsaw import JigsawAllocator
from repro.core.shapes import ThreeLevelShape, three_level_shapes


class LaaSAllocator(JigsawAllocator):
    """Jigsaw's two-level search plus whole-leaf three-level reduction."""

    name = "laas"
    isolating = True

    def _rounded(self, size: int) -> int:
        """Size rounded up to a whole number of leaves."""
        m1 = self.tree.m1
        return ((size + m1 - 1) // m1) * m1

    def effective_size(self, size: int) -> int:
        """Nodes consumed, for backfilling's shadow estimate.

        Jobs that cannot possibly fit in one subtree will be rounded;
        smaller jobs may or may not be, depending on fragmentation at
        allocation time, so the optimistic (unrounded) size is used.
        """
        if size > self.tree.nodes_per_pod:
            return self._rounded(size)
        return size

    def _trace_attrs(self, size):
        attrs = super()._trace_attrs(size)
        # the whole-leaf padding a three-level spill would drag along
        attrs["rounded_size"] = self._rounded(size)
        return attrs

    def effective_sizes(self, sizes):
        """Vectorized :meth:`effective_size` (whole-leaf rounding)."""
        m1 = self.tree.m1
        rounded = ((sizes + m1 - 1) // m1) * m1
        return np.where(sizes > self.tree.nodes_per_pod, rounded, sizes)

    def batch_screen(self, effs, bw_needs=None):
        """LaaS screen: the three-level reduction uses *whole leaves*.

        ``_rounded`` is idempotent on effective sizes (an already-rounded
        size rounds to itself), so the rounded column here equals the
        scalar search's ``_rounded(size)``.  A three-level spill needs
        ``rounded/m1`` fully-free leaves; a two-level placement needs a
        pod with ``>= eff`` free nodes.  Both are necessary conditions,
        budget-independent and durable under claims.
        """
        if not self.use_indexes:
            return None
        state = self.state
        m1 = self.tree.m1
        two_ok = effs <= int(state.pod_free.max())
        rounded = ((effs + m1 - 1) // m1) * m1
        three_ok = rounded // m1 <= int(state.full_free_leaves.sum())
        return ~(two_ok | three_ok)

    # The two-level search is inherited from Jigsaw unchanged.

    def _three_level_shape_iter(self, size: int) -> Iterator[ThreeLevelShape]:
        # Reduction to two levels: whole leaves only.  The rounded size
        # is a multiple of m1, so every shape has nrL = 0 automatically.
        return three_level_shapes(
            self._rounded(size),
            self.tree.m1,
            self.tree.m2,
            self.tree.m3,
            self.order,
            full_leaves_only=True,
        )

    def _find_three_level(self, shape: ThreeLevelShape):
        if shape.nrL != 0:
            raise AssertionError("LaaS three-level shapes use whole leaves")
        return super()._find_three_level(shape)
