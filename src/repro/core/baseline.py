"""Traditional unconstrained scheduler (the paper's Baseline).

Baseline allocates dedicated *nodes* but takes no network resources into
account: any set of free nodes will do, links are shared by whoever is
routed over them, and jobs therefore suffer whatever inter-job network
interference the workload produces (section 1).  Its placement always
succeeds when enough nodes are free, which is why its utilization is the
97-100 % ceiling every isolating scheme is measured against.

Placement policy: best-fit by leaf — partially-used leaves are filled
before fully-free leaves are broken, which keeps contiguous capacity
available and matches how node-count-only schedulers behave in practice.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.allocator import Allocation, Allocator


class BaselineAllocator(Allocator):
    """Unconstrained node-only allocator; never isolates network links."""

    name = "baseline"
    isolating = False
    low_interference = False

    def _trace_attrs(self, size):
        return {"free_nodes": self.state.free_nodes_total}

    def batch_screen(self, effs, bw_needs=None):
        """Exact: Baseline places a job iff enough nodes are free."""
        return effs > self.state.free_nodes_total

    def _search(
        self, job_id: int, size: int, bw_need: Optional[float]
    ) -> Optional[Allocation]:
        if self.prof.enabled:
            with self.prof.stage("fill"):
                return self._search_fill(job_id, size)
        return self._search_fill(job_id, size)

    def _search_fill(self, job_id: int, size: int) -> Optional[Allocation]:
        state = self.state
        if size > state.free_nodes_total:
            return None
        # Fill the fullest (least-free) non-empty leaves first.
        free = state.free_per_leaf
        occupied_order = np.argsort(free, kind="stable")
        nodes: List[int] = []
        remaining = size
        for leaf in occupied_order:
            f = int(free[leaf])
            if f == 0:
                continue
            take = min(f, remaining)
            nodes.extend(state.free_node_ids(int(leaf), take))
            remaining -= take
            if remaining == 0:
                break
        if remaining:
            return None  # unreachable given the free_nodes_total guard
        return Allocation(job_id=job_id, size=size, nodes=tuple(nodes))
