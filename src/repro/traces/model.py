"""Composable workload models: build your own Table 1 row.

The LLNL-like generators in :mod:`repro.traces.llnl` are fixed presets;
this module exposes the same ingredients as a configurable model so
users can synthesize workloads for their own machines:

* **sizes** — exponential body, optional snapping to powers of two,
  optional explicit "spike" sizes (the 128/256-node mass of Cab),
  optional rare near-machine jobs;
* **run times** — log-normal (skewed short, heavy tail) or uniform
  (the paper's synthetic traces), clamped to a range;
* **arrivals** — all-at-zero, homogeneous Poisson at a target offered
  load, optionally warped by the diurnal day/week cycle.

Example::

    model = WorkloadModel(
        name="my-cluster",
        system_nodes=4096,
        mean_size=24, pow2_fraction=0.5, max_size=1024,
        runtime="lognormal", median_runtime=900, sigma=1.4,
        arrivals="poisson", load=0.95, diurnal=True,
    )
    trace = model.generate(num_jobs=50_000, seed=1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sched.job import Job
from repro.traces.llnl import _apply_diurnal_cycle, _hpc_sizes, _skewed_runtimes
from repro.traces.synthetic import assign_bandwidth_classes
from repro.traces.trace import Trace
from repro.util.rng import rng_for


@dataclass(frozen=True)
class WorkloadModel:
    """A parameterized job-mix / run-time / arrival model."""

    name: str
    system_nodes: int

    # --- sizes ---
    mean_size: float = 16.0
    max_size: int = 1024
    pow2_fraction: float = 0.0
    #: explicit size spikes: (size, probability) pairs
    spikes: Tuple[Tuple[int, float], ...] = ()
    #: probability of a near-machine job (uniform in [max/2, max])
    near_machine_prob: float = 0.0

    # --- run times ---
    runtime: str = "lognormal"  # or "uniform"
    median_runtime: float = 600.0
    sigma: float = 1.4
    min_runtime: float = 1.0
    max_runtime: float = 86_400.0

    # --- arrivals ---
    arrivals: str = "zero"  # or "poisson"
    load: float = 1.0
    diurnal: bool = False

    def __post_init__(self) -> None:
        if self.system_nodes < 1:
            raise ValueError("system_nodes must be positive")
        if not 1 <= self.max_size <= self.system_nodes:
            raise ValueError("max_size must be within the system")
        if self.runtime not in ("lognormal", "uniform"):
            raise ValueError(f"unknown runtime model {self.runtime!r}")
        if self.arrivals not in ("zero", "poisson"):
            raise ValueError(f"unknown arrival model {self.arrivals!r}")
        if not 0 <= self.pow2_fraction <= 1:
            raise ValueError("pow2_fraction must be in [0, 1]")
        if not 0 <= self.near_machine_prob <= 1:
            raise ValueError("near_machine_prob must be in [0, 1]")
        if any(not (0 <= p <= 1) or s < 1 for s, p in self.spikes):
            raise ValueError("spikes must be (size >= 1, probability) pairs")
        if self.arrivals == "poisson" and self.load <= 0:
            raise ValueError("offered load must be positive")
        if self.min_runtime <= 0 or self.max_runtime < self.min_runtime:
            raise ValueError("runtime range must be positive and ordered")

    # ------------------------------------------------------------------
    def generate(self, num_jobs: int, seed: int = 0) -> Trace:
        """Generate a trace of ``num_jobs`` jobs."""
        if num_jobs < 1:
            raise ValueError("num_jobs must be positive")
        rng = rng_for(f"workload-model/{self.name}", seed)

        sizes = _hpc_sizes(
            rng, num_jobs,
            mean_size=self.mean_size,
            max_job=self.max_size,
            pow2_fraction=self.pow2_fraction,
        )
        for size, prob in self.spikes:
            hit = rng.random(num_jobs) < prob
            sizes[hit] = min(size, self.max_size)
        if self.near_machine_prob:
            hit = rng.random(num_jobs) < self.near_machine_prob
            count = int(hit.sum())
            if count:
                sizes[hit] = rng.integers(
                    self.max_size // 2, self.max_size + 1, size=count
                )

        if self.runtime == "lognormal":
            runtimes = _skewed_runtimes(
                rng, num_jobs,
                median=self.median_runtime,
                sigma=self.sigma,
                max_runtime=self.max_runtime,
            )
            runtimes = np.maximum(runtimes, self.min_runtime)
        else:
            runtimes = rng.uniform(
                self.min_runtime, self.max_runtime, size=num_jobs
            )

        if self.arrivals == "zero":
            arrivals = np.zeros(num_jobs)
        else:
            mean_work = float(np.mean(sizes * runtimes))
            rate = self.load * self.system_nodes / mean_work
            gaps = rng.exponential(1.0 / rate, size=num_jobs)
            arrivals = np.cumsum(gaps) - gaps[0]
            if self.diurnal:
                arrivals = _apply_diurnal_cycle(arrivals)

        jobs = [
            Job(id=i, size=int(sizes[i]), runtime=float(runtimes[i]),
                arrival=float(arrivals[i]))
            for i in range(num_jobs)
        ]
        assign_bandwidth_classes(jobs, seed=seed)
        return Trace(
            name=self.name,
            jobs=jobs,
            system_nodes=self.system_nodes,
            has_arrivals=self.arrivals != "zero",
            description=f"generated by WorkloadModel({self.name})",
        )
