"""The :class:`Trace` container and its Table 1 statistics."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.sched.job import Job


@dataclass(frozen=True)
class TraceStats:
    """One row of Table 1."""

    name: str
    system_nodes: Optional[int]
    num_jobs: int
    max_job_nodes: int
    min_runtime: float
    max_runtime: float
    has_arrivals: bool

    def as_row(self) -> dict:
        return {
            "Trace name": self.name,
            "System nodes": self.system_nodes if self.system_nodes else "-",
            "Number of jobs": self.num_jobs,
            "Max job nodes": self.max_job_nodes,
            "Job run times (s)": f"{self.min_runtime:g}-{self.max_runtime:g}",
            "Arrival times": "Y" if self.has_arrivals else "N",
        }


@dataclass
class Trace:
    """A job queue: the input of one simulation.

    ``system_nodes`` records the node count of the *source* system the
    trace models (Table 1's "System nodes" column); the simulated
    cluster may be larger (the paper runs Thunder/Atlas/Cab on the
    1458-node cluster).
    """

    name: str
    jobs: List[Job]
    system_nodes: Optional[int] = None
    has_arrivals: bool = False
    description: str = ""
    _sorted: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError(f"trace {self.name!r} has no jobs")
        ids = {j.id for j in self.jobs}
        if len(ids) != len(self.jobs):
            raise ValueError(f"trace {self.name!r} has duplicate job ids")
        if not self._sorted:
            self.jobs.sort(key=lambda j: (j.arrival, j.id))
            self._sorted = True

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    # ------------------------------------------------------------------
    def stats(self) -> TraceStats:
        """Summarize the trace as a Table 1 row."""
        return TraceStats(
            name=self.name,
            system_nodes=self.system_nodes,
            num_jobs=len(self.jobs),
            max_job_nodes=max(j.size for j in self.jobs),
            min_runtime=min(j.runtime for j in self.jobs),
            max_runtime=max(j.runtime for j in self.jobs),
            has_arrivals=self.has_arrivals,
        )

    def head(self, num_jobs: int, name: Optional[str] = None) -> "Trace":
        """The first ``num_jobs`` jobs (in arrival order).

        This is the scale knob for the benchmarks: taking a prefix keeps
        the size/run-time distributions and, for arrival traces, the
        offered load, while shrinking simulation cost.
        """
        if num_jobs >= len(self.jobs):
            return self
        return Trace(
            name=name or f"{self.name}[:{num_jobs}]",
            jobs=[replace(j) for j in self.jobs[:num_jobs]],
            system_nodes=self.system_nodes,
            has_arrivals=self.has_arrivals,
            description=self.description,
        )

    def scale_arrivals(self, factor: float) -> "Trace":
        """Multiply every arrival time by ``factor``.

        The paper scales Aug-Cab and Nov-Cab arrivals by 0.5 to raise
        their otherwise-low offered load.
        """
        jobs = [replace(j, arrival=j.arrival * factor) for j in self.jobs]
        return Trace(
            name=self.name,
            jobs=jobs,
            system_nodes=self.system_nodes,
            has_arrivals=self.has_arrivals,
            description=self.description,
        )

    def zeroed_arrivals(self) -> "Trace":
        """Discard arrival times (all jobs available at time zero), as the
        paper does for Thunder and Atlas to test under heavy load."""
        jobs = [replace(j, arrival=0.0) for j in self.jobs]
        return Trace(
            name=self.name,
            jobs=jobs,
            system_nodes=self.system_nodes,
            has_arrivals=False,
            description=self.description,
        )
