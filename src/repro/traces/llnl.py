"""Synthetic equivalents of the paper's LLNL traces (section 5.1, Table 1).

The paper replays job logs from three LLNL clusters: Thunder and Atlas
(Feitelson's workload archive [12]) and four months of Cab [32].  Those
logs are not redistributable here, so this module generates synthetic
traces that match every characteristic Table 1 reports — system size,
job count, maximum job size, run-time range, arrival-time availability —
plus the two distributional facts the paper states explicitly:

* "the job size distribution is roughly exponential in shape but
  contains more job sizes that are powers of two";
* "the job run times are skewed towards short-running jobs with only a
  handful of long-running jobs" (modeled log-normally with a clamp at
  the Table 1 maximum).

For the Cab months, arrival times are a Poisson process whose rate is
set from a per-month offered-load factor; the paper keeps Cab arrivals
(scaling Aug/Nov by 0.5 because of their low native load), and the
month profiles below bake in native loads that reproduce that setup.

Every generator takes ``num_jobs`` so experiments can run scaled-down
replicas with the same distributions (DESIGN.md section 7).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.sched.job import Job
from repro.traces.synthetic import assign_bandwidth_classes
from repro.traces.trace import Trace
from repro.util.rng import rng_for

#: Table 1 characteristics of each modeled trace.
PAPER_TRACES = {
    "Thunder": dict(system_nodes=1024, num_jobs=105_764, max_job=965,
                    max_runtime=172_362.0, arrivals=False),
    "Atlas": dict(system_nodes=1152, num_jobs=29_700, max_job=1024,
                  max_runtime=342_754.0, arrivals=False),
    # Native offered loads: Aug and Nov ran light (the paper halves their
    # arrival times, doubling the rate); Sep/Oct ran near saturation with
    # Oct the heaviest (it is the paper's worst Cab month).  All months
    # stay *below* saturation — production queues drain; the steady-state
    # metric then measures the contention episodes, as in the paper.
    "Aug-Cab": dict(system_nodes=1296, num_jobs=30_691, max_job=257,
                    max_runtime=86_429.0, arrivals=True, load=0.44),
    "Sep-Cab": dict(system_nodes=1296, num_jobs=87_564, max_job=256,
                    max_runtime=57_629.0, arrivals=True, load=0.90),
    "Oct-Cab": dict(system_nodes=1296, num_jobs=125_228, max_job=258,
                    max_runtime=93_623.0, arrivals=True, load=0.96),
    "Nov-Cab": dict(system_nodes=1296, num_jobs=50_353, max_job=256,
                    max_runtime=86_426.0, arrivals=True, load=0.44),
}


def _hpc_sizes(
    rng: np.random.Generator,
    num_jobs: int,
    mean_size: float,
    max_job: int,
    pow2_fraction: float,
) -> np.ndarray:
    """Roughly-exponential sizes with extra mass on powers of two."""
    sizes = np.maximum(1, np.rint(rng.exponential(mean_size, num_jobs))).astype(int)
    np.minimum(sizes, max_job, out=sizes)
    snap = rng.random(num_jobs) < pow2_fraction
    # Snap a fraction of jobs to the nearest power of two (>= 1).
    with np.errstate(divide="ignore"):
        exps = np.where(sizes > 0, np.rint(np.log2(np.maximum(sizes, 1))), 0)
    pow2 = np.minimum(2 ** exps.astype(int), max_job)
    sizes[snap] = pow2[snap]
    return sizes


def _skewed_runtimes(
    rng: np.random.Generator,
    num_jobs: int,
    median: float,
    sigma: float,
    max_runtime: float,
) -> np.ndarray:
    """Log-normal run times: mostly short, a handful of very long jobs."""
    rt = rng.lognormal(mean=math.log(median), sigma=sigma, size=num_jobs)
    return np.clip(rt, 1.0, max_runtime)


_DAY = 86_400.0
_WEEK = 7 * _DAY


def _diurnal_intensity(t: float) -> float:
    """Relative submission intensity at wall-clock time ``t`` (mean ~1).

    A smooth day/night cycle (peak mid-afternoon, trough pre-dawn) and a
    weekday/weekend step, the two dominant periodicities in production
    job logs.
    """
    hour = (t % _DAY) / 3600.0
    day_cycle = 1.0 + 0.5 * math.sin((hour - 9.0) * math.pi / 12.0)
    weekday = (t % _WEEK) / _DAY  # 0..7, with 5..7 the weekend
    week_cycle = 0.6 if weekday >= 5.0 else 1.16  # mean ~1 over the week
    return day_cycle * week_cycle


def _apply_diurnal_cycle(arrivals: np.ndarray) -> np.ndarray:
    """Warp homogeneous-Poisson arrivals into an inhomogeneous process
    with :func:`_diurnal_intensity`, via time-change: each inter-arrival
    gap is consumed at the local intensity."""
    out = np.empty_like(arrivals)
    t = 0.0
    prev = 0.0
    step = 300.0  # integration resolution: 5 simulated minutes
    for idx, a in enumerate(arrivals):
        need = a - prev  # homogeneous "work" to consume
        prev = a
        while need > 0:
            intensity = _diurnal_intensity(t)
            chunk = min(step, need / intensity)
            t += chunk
            need -= chunk * intensity
        out[idx] = t
    return out


def thunder_like(num_jobs: Optional[int] = None, seed: int = 0) -> Trace:
    """A Thunder-like trace: 1024-node system, jobs up to 965 nodes,
    run times 1-172362 s, arrivals discarded (all at time zero)."""
    spec = PAPER_TRACES["Thunder"]
    n = num_jobs or spec["num_jobs"]
    rng = rng_for("llnl/thunder", seed)
    sizes = _hpc_sizes(rng, n, mean_size=12.0, max_job=spec["max_job"],
                       pow2_fraction=0.55)
    # A handful of near-machine-size jobs, as the real log contains.
    # The rate is per-job so scaled-down replicas are not over-stressed;
    # each such job forces a near-total drain, and the drain cost only
    # amortizes when these jobs are genuinely rare.
    n_big = n // 30_000
    big = rng.integers(0, n, size=n_big)
    sizes[big] = rng.integers(spec["max_job"] // 2, spec["max_job"] + 1,
                              size=n_big)
    # "Skewed towards short-running jobs with only a handful of
    # long-running jobs": the tail probability of a multi-day job is a
    # few in ten thousand, so near-machine drains finish in hours.
    runtimes = _skewed_runtimes(rng, n, median=500.0, sigma=1.35,
                                max_runtime=spec["max_runtime"])
    jobs = [
        Job(id=i, size=int(sizes[i]), runtime=float(runtimes[i]), arrival=0.0)
        for i in range(n)
    ]
    assign_bandwidth_classes(jobs, seed=seed)
    return Trace("Thunder", jobs, system_nodes=spec["system_nodes"],
                 has_arrivals=False,
                 description="Thunder-like synthetic equivalent (see DESIGN.md)")


def atlas_like(num_jobs: Optional[int] = None, seed: int = 0) -> Trace:
    """An Atlas-like trace: 1152-node system including several
    whole-machine (1024-node) requests — the paper's worst case for
    every scheme's utilization."""
    spec = PAPER_TRACES["Atlas"]
    n = num_jobs or spec["num_jobs"]
    rng = rng_for("llnl/atlas", seed)
    sizes = _hpc_sizes(rng, n, mean_size=24.0, max_job=spec["max_job"],
                       pow2_fraction=0.6)
    # "Several whole-machine job requests" — the reason Atlas is the
    # worst-case trace for every scheme, Baseline included (section 6.1).
    whole = rng.integers(0, n, size=max(1, n // 6000))
    sizes[whole] = spec["max_job"]
    runtimes = _skewed_runtimes(rng, n, median=550.0, sigma=1.35,
                                max_runtime=spec["max_runtime"])
    jobs = [
        Job(id=i, size=int(sizes[i]), runtime=float(runtimes[i]), arrival=0.0)
        for i in range(n)
    ]
    assign_bandwidth_classes(jobs, seed=seed)
    return Trace("Atlas", jobs, system_nodes=spec["system_nodes"],
                 has_arrivals=False,
                 description="Atlas-like synthetic equivalent (see DESIGN.md)")


def cab_like(
    month: str,
    num_jobs: Optional[int] = None,
    seed: int = 0,
    diurnal: bool = False,
) -> Trace:
    """A Cab-like trace for ``month`` in {aug, sep, oct, nov}.

    Arrival times are retained (Poisson at the month's native offered
    load); the experiment layer applies the paper's 0.5 scaling to the
    Aug and Nov months.

    ``diurnal=True`` modulates the arrival rate with the day/night and
    weekday/weekend cycle production logs exhibit (Feitelson's workload
    modeling): daytime submission peaks at roughly twice the nighttime
    rate, weekends at ~60 % of weekdays.  The mean offered load is kept
    at the month's load factor.
    """
    key = f"{month.capitalize()}-Cab"
    if key not in PAPER_TRACES:
        raise ValueError(f"unknown Cab month {month!r}; expected aug/sep/oct/nov")
    spec = PAPER_TRACES[key]
    n = num_jobs or spec["num_jobs"]
    rng = rng_for(f"llnl/cab/{month.lower()}", seed)
    sizes = _hpc_sizes(rng, n, mean_size=12.0, max_job=spec["max_job"],
                       pow2_fraction=0.6)
    # Cab's job mix includes occasional 128- and 256-node jobs (Table 1's
    # maxima are 256-258); give them explicit mass beyond the exponential
    # tail so every month exercises them.
    spikes = rng.integers(0, n, size=max(2, n // 1000))
    sizes[spikes] = rng.choice([128, 192, 256], size=len(spikes))
    sizes = np.minimum(sizes, spec["max_job"])
    runtimes = _skewed_runtimes(rng, n, median=400.0, sigma=1.35,
                                max_runtime=spec["max_runtime"])
    # Poisson arrivals at the month's offered load: the mean inter-arrival
    # time that makes (mean work) / (capacity) equal the load factor.
    mean_work = float(np.mean(sizes * runtimes))
    rate = spec["load"] * spec["system_nodes"] / mean_work  # jobs per second
    gaps = rng.exponential(1.0 / rate, size=n)
    arrivals = np.cumsum(gaps) - gaps[0]
    if diurnal:
        arrivals = _apply_diurnal_cycle(arrivals)
    jobs = [
        Job(id=i, size=int(sizes[i]), runtime=float(runtimes[i]),
            arrival=float(arrivals[i]))
        for i in range(n)
    ]
    assign_bandwidth_classes(jobs, seed=seed)
    return Trace(key, jobs, system_nodes=spec["system_nodes"],
                 has_arrivals=True,
                 description=f"{key}-like synthetic equivalent (see DESIGN.md)")
