"""Job-queue traces (section 5.1, Table 1).

Three families:

* :func:`synthetic_trace` — the LaaS-style synthetic workloads
  (Synth-16/22/28): exponential sizes, uniform run times, all jobs
  arriving at time zero.
* :mod:`repro.traces.llnl` — synthetic equivalents of the LLNL traces
  (Thunder, Atlas, and the four Cab months) matching every Table 1
  characteristic; see DESIGN.md's substitution table.
* :mod:`repro.traces.swf` — Standard Workload Format IO, so real
  archive traces can be dropped in when available.
"""

from repro.traces.llnl import (
    PAPER_TRACES,
    atlas_like,
    cab_like,
    thunder_like,
)
from repro.traces.model import WorkloadModel
from repro.traces.swf import read_swf, write_swf
from repro.traces.synthetic import assign_bandwidth_classes, synthetic_trace
from repro.traces.trace import Trace, TraceStats

__all__ = [
    "Trace",
    "TraceStats",
    "synthetic_trace",
    "assign_bandwidth_classes",
    "thunder_like",
    "atlas_like",
    "cab_like",
    "PAPER_TRACES",
    "read_swf",
    "write_swf",
    "WorkloadModel",
]
