"""LaaS-style synthetic traces (section 5.1).

"In the synthetic traces, the job sizes are drawn from an exponential
distribution, and the job run times are drawn from a uniform random
distribution … all jobs arriving at time zero."  The paper generates
them the same way as the original LaaS paper, modeled on a Julich
JUROPA trace, with mean job sizes of 16, 22 and 28 and run times of
20-3000 s (Table 1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.sched.job import Job
from repro.traces.trace import Trace
from repro.util.rng import rng_for

#: the per-link bandwidth classes (GB/s) of section 5.4.2
BANDWIDTH_CLASSES = (0.5, 1.0, 1.5, 2.0)


def synthetic_trace(
    mean_size: int,
    num_jobs: int = 10_000,
    min_runtime: float = 20.0,
    max_runtime: float = 3000.0,
    max_size: Optional[int] = None,
    seed: int = 0,
    name: Optional[str] = None,
) -> Trace:
    """Generate a Synth-``mean_size`` trace.

    Sizes are exponential with the given mean, rounded up to at least
    one node (and clamped to ``max_size`` when given — jobs larger than
    the target cluster make no sense).  Run times are uniform.  All jobs
    arrive at time zero.
    """
    if mean_size < 1 or num_jobs < 1:
        raise ValueError("mean_size and num_jobs must be positive")
    if min_runtime <= 0 or max_runtime < min_runtime:
        raise ValueError("runtime range must be positive and ordered")
    name = name or f"Synth-{mean_size}"
    rng = rng_for(f"synthetic/{name}", seed)
    raw = rng.exponential(scale=mean_size, size=num_jobs)
    sizes = [max(1, int(round(s))) for s in raw]
    if max_size is not None:
        sizes = [min(s, max_size) for s in sizes]
    runtimes = rng.uniform(min_runtime, max_runtime, size=num_jobs)
    jobs = [
        Job(id=i, size=sizes[i], runtime=float(runtimes[i]), arrival=0.0)
        for i in range(num_jobs)
    ]
    assign_bandwidth_classes(jobs, seed=seed)
    return Trace(
        name=name,
        jobs=jobs,
        system_nodes=None,  # synthetic traces have no source system
        has_arrivals=False,
        description=(
            f"LaaS-style synthetic trace: exponential sizes (mean "
            f"{mean_size}), uniform runtimes {min_runtime:g}-{max_runtime:g}s"
        ),
    )


def assign_bandwidth_classes(
    jobs: Sequence[Job],
    classes: Sequence[float] = BANDWIDTH_CLASSES,
    seed: int = 0,
) -> List[Job]:
    """Randomly assign each job a per-link bandwidth need (section 5.4.2).

    Only the LC+S scheme reads ``bw_need``; the assignment is keyed by
    the jobs' ids so it is stable across schemes and scenarios.
    """
    rng = rng_for("bandwidth-classes", seed)
    picks = rng.integers(0, len(classes), size=len(jobs))
    for job, p in zip(jobs, picks):
        job.bw_need = float(classes[p])
    return list(jobs)
