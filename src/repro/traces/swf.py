"""Standard Workload Format (SWF) IO.

The Thunder and Atlas logs the paper uses come from Feitelson's Parallel
Workloads Archive [12], which distributes them in SWF: one line of 18
whitespace-separated fields per job.  This module reads archive files —
so real logs can replace the synthetic equivalents whenever they are
available — and writes our traces back out in the same format.

Field reference (1-based, as in the archive docs):
1 job number, 2 submit time, 3 wait time, 4 run time, 5 allocated
processors, 6 average CPU time, 7 used memory, 8 requested processors,
9 requested time, 10 requested memory, 11 status, 12 user, 13 group,
14 executable, 15 queue, 16 partition, 17 preceding job, 18 think time.
Missing values are -1; comment/header lines start with ``;``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, TextIO, Union

from repro.sched.job import Job
from repro.traces.trace import Trace

_FIELDS = 18


def read_swf(
    source: Union[str, Path, TextIO],
    name: Optional[str] = None,
    cores_per_node: int = 1,
    system_nodes: Optional[int] = None,
    keep_arrivals: bool = True,
) -> Trace:
    """Parse an SWF file into a :class:`Trace`.

    ``cores_per_node`` converts processor counts to node counts (archive
    logs report processors).  Jobs with non-positive size or run time,
    and cancelled jobs that never ran, are skipped — the archive's own
    recommendation for simulation use.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            return read_swf(fh, name or Path(source).stem, cores_per_node,
                            system_nodes, keep_arrivals)
    jobs: List[Job] = []
    max_procs = 0
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line or line.startswith(";"):
            continue
        parts = line.split()
        if len(parts) < _FIELDS:
            raise ValueError(
                f"SWF line {lineno}: expected {_FIELDS} fields, got {len(parts)}"
            )
        job_id = int(parts[0])
        submit = float(parts[1])
        run_time = float(parts[3])
        procs = int(parts[4])
        if procs <= 0:
            procs = int(parts[7])  # fall back to requested processors
        if procs <= 0 or run_time <= 0:
            continue  # cancelled or malformed job
        size = max(1, -(-procs // cores_per_node))  # ceil division
        max_procs = max(max_procs, procs)
        jobs.append(
            Job(
                id=job_id,
                size=size,
                runtime=run_time,
                arrival=submit if keep_arrivals else 0.0,
            )
        )
    if not jobs:
        raise ValueError("SWF source contained no usable jobs")
    return Trace(
        name=name or "swf",
        jobs=jobs,
        system_nodes=system_nodes,
        has_arrivals=keep_arrivals,
        description=f"parsed from SWF ({cores_per_node} cores/node)",
    )


def write_swf(trace: Trace, target: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` as SWF (one processor per node)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_swf(trace, fh)
            return
    target.write(f"; SWF export of trace {trace.name}\n")
    target.write(f"; MaxNodes: {trace.system_nodes or '-'}\n")
    for job in trace.jobs:
        fields = [-1] * _FIELDS
        fields[0] = job.id
        fields[1] = int(job.arrival)
        fields[2] = -1  # wait time: a simulation output, not an input
        fields[3] = int(round(job.runtime))
        fields[4] = job.size
        fields[7] = job.size
        fields[8] = int(round(job.runtime))  # requested time = perfect estimate
        fields[10] = 1  # status: completed
        target.write(" ".join(str(f) for f in fields) + "\n")


def swf_roundtrip(trace: Trace) -> Trace:
    """Write then re-read ``trace`` (used by tests to pin the format)."""
    buf = io.StringIO()
    write_swf(trace, buf)
    buf.seek(0)
    return read_swf(buf, name=trace.name, system_nodes=trace.system_nodes)
