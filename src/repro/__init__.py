"""Reproduction of *Jigsaw: A High-Utilization, Interference-Free Job
Scheduler for Fat-Tree Clusters* (Smith & Lowenthal, HPDC 2021).

Public API highlights:

* :class:`repro.FatTree` — the paper's full three-level fat-tree clusters.
* :func:`repro.make_allocator` — build any of the five evaluated schemes
  (``jigsaw``, ``laas``, ``ta``, ``lc+s``, ``baseline``).
* :class:`repro.Simulator` — trace-driven scheduler simulation with EASY
  backfilling and the paper's metrics.
* :mod:`repro.traces` — the paper's synthetic and LLNL-like workloads.
* :mod:`repro.experiments` — regenerate every table and figure.

Quickstart::

    from repro import FatTree, make_allocator, Simulator
    from repro.traces import synthetic_trace

    tree = FatTree.from_radix(16)           # 1024 nodes
    trace = synthetic_trace(mean_size=16, num_jobs=500, seed=1)
    sim = Simulator(make_allocator("jigsaw", tree))
    result = sim.run(trace)
    print(result.steady_state_utilization)
"""

from repro.core import (
    ALLOCATOR_NAMES,
    Allocation,
    Allocator,
    BaselineAllocator,
    JigsawAllocator,
    LaaSAllocator,
    LeastConstrainedAllocator,
    TopologyAwareAllocator,
    make_allocator,
)
from repro.topology import ClusterState, FatTree, XGFT

__version__ = "1.0.0"

__all__ = [
    "ALLOCATOR_NAMES",
    "Allocation",
    "Allocator",
    "BaselineAllocator",
    "ClusterState",
    "FatTree",
    "JigsawAllocator",
    "LaaSAllocator",
    "LeastConstrainedAllocator",
    "Simulator",
    "TopologyAwareAllocator",
    "XGFT",
    "make_allocator",
    "__version__",
]


def __getattr__(name):  # lazy import to avoid heavy modules at import time
    if name == "Simulator":
        from repro.sched.simulator import Simulator

        return Simulator
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
