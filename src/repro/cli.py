"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    jigsaw-repro table1
    jigsaw-repro fig6 --traces Synth-16 Aug-Cab
    jigsaw-repro fig7 --scale 0.05
    jigsaw-repro table3
    jigsaw-repro simulate --trace Synth-16 --scheme jigsaw
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import fig6, fig7, fig8, table1, table2, table3
from repro.experiments.runner import (
    ALL_TRACE_NAMES,
    default_scale,
    paper_setup,
    run_scheme,
)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="fraction of the paper's job counts (default: bench-sized "
        "counts; overrides REPRO_SCALE)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for the experiment grid (default: "
        "REPRO_WORKERS or 1 = serial; results are identical either way)",
    )


def _scale(args) -> Optional[float]:
    scale = getattr(args, "scale", None)
    return scale if scale is not None else default_scale()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: parse arguments and dispatch to one artifact command."""
    parser = argparse.ArgumentParser(
        prog="jigsaw-repro",
        description="Reproduce the evaluation of the Jigsaw scheduler "
        "(Smith & Lowenthal, HPDC 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="trace characteristics")
    _add_common(p)

    p = sub.add_parser("fig6", help="average system utilization")
    _add_common(p)
    p.add_argument("--traces", nargs="+", default=list(ALL_TRACE_NAMES),
                   choices=ALL_TRACE_NAMES)

    p = sub.add_parser("table2", help="instantaneous utilization histogram")
    _add_common(p)
    p.add_argument("--trace", default="Thunder", choices=ALL_TRACE_NAMES)

    p = sub.add_parser("fig7", help="normalized turnaround times")
    _add_common(p)
    p.add_argument("--traces", nargs="+", default=list(fig7.FIG7_TRACES),
                   choices=ALL_TRACE_NAMES)

    p = sub.add_parser("fig8", help="normalized makespans")
    _add_common(p)
    p.add_argument("--traces", nargs="+", default=list(fig8.FIG8_TRACES),
                   choices=ALL_TRACE_NAMES)

    p = sub.add_parser("table3", help="scheduling time per job")
    _add_common(p)

    p = sub.add_parser("simulate", help="run one trace under one scheme")
    _add_common(p)
    p.add_argument("--trace", required=True, choices=ALL_TRACE_NAMES)
    p.add_argument("--scheme", required=True,
                   choices=["baseline", "jigsaw", "laas", "ta", "lc+s", "lc"])
    p.add_argument("--scenario", default=None,
                   help="job-performance scenario (none/5%%/10%%/20%%/v2/random)")
    p.add_argument("--trace-out", default=None, metavar="FILE",
                   help="write a Chrome trace_event JSON of the run "
                   "(open in Perfetto or chrome://tracing)")
    p.add_argument("--trace-jsonl", default=None, metavar="FILE",
                   help="write the raw span events as JSONL")
    p.add_argument("--metrics-out", default=None, metavar="FILE",
                   help="write the run's counters in Prometheus text format")
    p.add_argument("--samples-out", default=None, metavar="FILE",
                   help="write per-interval time-series samples as JSONL")
    p.add_argument("--sample-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="simulated seconds between time-series samples "
                   "(default 3600 when --samples-out is given)")
    p.add_argument("--mttf", type=float, default=None, metavar="SECONDS",
                   help="inject a synthetic per-node fault timeline with "
                   "this mean time to failure (simulated seconds)")
    p.add_argument("--mttr", type=float, default=None, metavar="SECONDS",
                   help="mean time to repair for --mttf faults "
                   "(default: mttf/10)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed of the synthetic fault timeline")
    p.add_argument("--fault-victim-policy", default="requeue-full",
                   choices=["requeue-full", "requeue-remaining"],
                   help="what a fault does to jobs on failed hardware")
    p.add_argument("--checkpoint-interval", type=float, default=0.0,
                   metavar="SECONDS",
                   help="checkpoint period for requeue-remaining "
                   "(0 = continuous checkpointing)")
    p.add_argument("--step-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="batch-step scheduling: run rounds every this many "
                   "simulated seconds instead of a pass per event (faster "
                   "on bursty traces; bounded fidelity cost — see "
                   "EXPERIMENTS.md)")
    p.add_argument("--topology", type=int, default=None, metavar="RADIX",
                   help="override the trace's cluster switch radix "
                   "(e.g. 32 = the 8192-node scale-up preset)")
    p.add_argument("--naive-pass", action="store_true",
                   help="use the scalar scheduling pass instead of the "
                   "vectorized one (identical decisions; for invariance "
                   "checks and timing comparisons)")
    p.add_argument("--naive-events", action="store_true",
                   help="drain events one at a time instead of in "
                   "columnar batches (identical decisions; for "
                   "invariance checks and timing comparisons)")
    p.add_argument("--prof-out", default=None, metavar="FILE",
                   help="profile the allocator hot path and write the "
                   "stage snapshot as JSON")
    p.add_argument("--prof-stacks", default=None, metavar="FILE",
                   help="profile and write collapsed stacks "
                   "(flamegraph.pl / speedscope input)")
    p.add_argument("--provenance-out", default=None, metavar="FILE",
                   help="record per-job scheduling provenance and write "
                   "it as JSONL (.csv extension selects CSV)")

    p = sub.add_parser(
        "resilience",
        help="utilization + bounded slowdown under a fault-rate sweep",
    )
    _add_common(p)
    p.add_argument("--trace", default="Synth-16", choices=ALL_TRACE_NAMES)
    p.add_argument("--mttf", type=float, nargs="+", default=None,
                   metavar="SECONDS",
                   help="fault rates to sweep (default: healthy, 80000, "
                   "20000); the healthy column is always included")
    p.add_argument("--fault-victim-policy", default="requeue-remaining",
                   choices=["requeue-full", "requeue-remaining"])
    p.add_argument("--checkpoint-interval", type=float, default=600.0,
                   metavar="SECONDS")
    p.add_argument("--fault-seed", type=int, default=1)

    p = sub.add_parser("obs", help="observability utilities")
    obs_sub = p.add_subparsers(dest="obs_command", required=True)
    ps = obs_sub.add_parser(
        "summarize",
        help="per-span rollup of a trace file (Chrome JSON or JSONL)",
    )
    ps.add_argument("trace_file")

    p = sub.add_parser(
        "prof",
        help="stage-level wall-time attribution of the allocator hot path",
    )
    _add_common(p)
    p.add_argument("--trace", default="Synth-28", choices=ALL_TRACE_NAMES)
    p.add_argument("--scheme", default="jigsaw",
                   choices=["baseline", "jigsaw", "laas", "ta", "lc+s", "lc"])
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the stage snapshot as JSON")
    p.add_argument("--stacks", default=None, metavar="FILE",
                   help="also write collapsed stacks (flamegraph input)")

    p = sub.add_parser(
        "frag",
        help="fragmentation snapshot of a packed cluster under one scheme",
    )
    _add_common(p)
    p.add_argument("--scheme", default="jigsaw",
                   choices=["baseline", "jigsaw", "laas", "ta", "lc+s", "lc"])
    p.add_argument("--radix", type=int, default=16)
    p.add_argument("--occupancy", type=float, default=0.85,
                   help="target fill fraction before the snapshot")

    p = sub.add_parser(
        "contention",
        help="inter-job interference report under three routing regimes",
    )
    _add_common(p)
    p.add_argument("--radix", type=int, default=8)
    p.add_argument("--jobs", type=int, nargs="+",
                   default=[5, 11, 20, 9, 16, 33])

    p = sub.add_parser(
        "check",
        help="fast self-check: do the paper's headline claims reproduce?",
    )
    _add_common(p)

    p = sub.add_parser(
        "campaign",
        help="persistent, resumable sweep (for full-scale reruns)",
    )
    _add_common(p)
    p.add_argument("--out", required=True, help="JSON results file")
    p.add_argument("--traces", nargs="+", default=["Synth-16"],
                   choices=ALL_TRACE_NAMES)
    p.add_argument("--schemes", nargs="+",
                   default=["baseline", "jigsaw", "laas", "ta"],
                   choices=["baseline", "jigsaw", "laas", "ta", "lc+s", "lc"])
    p.add_argument("--scenarios", nargs="+", default=["none"])
    p.add_argument("--metric", default="steady_state_utilization")

    args = parser.parse_args(argv)
    scale = _scale(args)

    workers = getattr(args, "workers", None)

    if args.command == "table1":
        print(table1.render(table1.table1_traces(scale=scale, seed=args.seed,
                                                 workers=workers)))
    elif args.command == "fig6":
        rows = fig6.fig6_utilization(names=args.traces, scale=scale,
                                     seed=args.seed, workers=workers)
        print(fig6.render(rows))
        from repro.experiments.report import render_bars

        for trace_name, by_scheme in rows.items():
            print()
            print(render_bars(f"{trace_name} utilization (%)", by_scheme,
                              lo=60.0, hi=100.0))
    elif args.command == "table2":
        print(table2.render(table2.table2_instantaneous(
            trace_name=args.trace, scale=scale, seed=args.seed,
            workers=workers)))
    elif args.command == "fig7":
        print(fig7.render(fig7.fig7_turnaround(
            trace_names=args.traces, scale=scale, seed=args.seed,
            workers=workers)))
    elif args.command == "fig8":
        print(fig8.render(fig8.fig8_makespan(
            trace_names=args.traces, scale=scale, seed=args.seed,
            workers=workers)))
    elif args.command == "table3":
        rows, cache_rows, search_rows = table3.table3_full(
            scale=scale, seed=args.seed, workers=workers)
        print(table3.render(rows))
        print()
        print(table3.render_cache(cache_rows))
        print()
        print(table3.render_search(search_rows))
    elif args.command == "simulate":
        from repro.obs.metrics import MetricRegistry
        from repro.obs.sampler import write_jsonl as _write_samples
        from repro.obs.tracer import Tracer
        from repro.sched.log import ScheduleLog

        tracing = bool(args.trace_out or args.trace_jsonl)
        tracer = Tracer(enabled=True) if tracing else None
        registry = MetricRegistry() if args.metrics_out else None
        event_log = ScheduleLog() if registry is not None else None
        sample_interval = args.sample_interval
        if args.samples_out and sample_interval is None:
            sample_interval = 3600.0
        profiled = bool(args.prof_out or args.prof_stacks)
        setup = paper_setup(args.trace, scale=scale, seed=args.seed,
                            topology=args.topology)
        result = run_scheme(setup, args.scheme, scenario=args.scenario,
                            seed=args.seed, tracer=tracer,
                            event_log=event_log,
                            sample_interval=sample_interval,
                            metrics=registry,
                            mttf=args.mttf, mttr=args.mttr,
                            fault_seed=args.fault_seed,
                            fault_victim_policy=args.fault_victim_policy,
                            checkpoint_interval=args.checkpoint_interval,
                            step_interval=args.step_interval,
                            use_vector_pass=not args.naive_pass,
                            use_columnar_events=not args.naive_events,
                            profiled=profiled,
                            provenance=bool(args.provenance_out))
        print(result.summary())
        if result.step_interval is not None:
            print(f"batch-step: {result.scheduling_rounds} rounds at "
                  f"dt={result.step_interval:g}s")
        if result.faults_injected:
            print(f"faults: {result.faults_injected} injected, "
                  f"{result.faults_repaired} repaired, "
                  f"{result.resubmissions} jobs killed+requeued, "
                  f"{result.wasted_node_seconds:.0f} node-s wasted "
                  f"(goodput {100 * result.goodput_fraction:.1f}%), "
                  f"degraded integral "
                  f"{result.degraded_node_seconds:.0f} node-s")
        print("instantaneous histogram:", result.instant.as_row())
        lookups = result.cache_hits + result.cache_misses
        print(f"feasibility cache: {result.cache_hits}/{lookups} lookups "
              f"served from cache ({100 * result.cache_hit_rate:.1f}%)")
        print(f"search effort: {result.pods_pruned} pods pruned, "
              f"{result.candidate_hits} candidate-list hits, "
              f"{result.memo_hits} memo hits, "
              f"{result.backtrack_steps} backtracking steps")
        if result.pass_vector_rounds:
            print(f"vector pass: {result.pass_vector_rounds} rounds, "
                  f"{result.queue_prefiltered} candidates prefiltered "
                  f"({result.size_cut_skips} by the size cut)")
        from repro.experiments.report import render_sparkline
        from repro.sched.metrics import utilization_timeline

        series = [u for _, u in utilization_timeline(result, buckets=60)]
        print(f"utilization timeline: |{render_sparkline(series)}|")
        if tracer is not None and args.trace_out:
            tracer.write_chrome_trace(args.trace_out)
            print(f"trace: {len(tracer.events)} events -> {args.trace_out}")
        if tracer is not None and args.trace_jsonl:
            tracer.write_jsonl(args.trace_jsonl)
            print(f"trace JSONL: {len(tracer.events)} events -> "
                  f"{args.trace_jsonl}")
        if tracer is not None and tracer.dropped:
            print(f"WARNING: {tracer.dropped} trace events dropped "
                  f"(max_events={tracer.max_events} reached); exported "
                  "traces undercount the run", file=sys.stderr)
        if profiled:
            if args.prof_out:
                import json as _json

                with open(args.prof_out, "w", encoding="utf-8") as fh:
                    _json.dump(result.prof, fh, indent=2)
                print(f"profile: {len(result.prof['stages'])} stages -> "
                      f"{args.prof_out}")
            if args.prof_stacks:
                from repro.obs.prof import snapshot_collapsed

                with open(args.prof_stacks, "w", encoding="utf-8") as fh:
                    fh.write(snapshot_collapsed(result.prof))
                print(f"collapsed stacks -> {args.prof_stacks}")
        if args.provenance_out:
            from repro.sched.metrics import (
                write_provenance_csv,
                write_provenance_jsonl,
            )

            if args.provenance_out.endswith(".csv"):
                write_provenance_csv(result.provenance, args.provenance_out)
            else:
                write_provenance_jsonl(result.provenance, args.provenance_out)
            print(f"provenance: {len(result.provenance)} jobs -> "
                  f"{args.provenance_out}")
            wq = result.wait_quantiles()
            print("scheduling latency (wait): "
                  + "  ".join(f"p{int(q * 100)}={wq[q]:.0f}s"
                              for q in sorted(wq)))
        if registry is not None:
            with open(args.metrics_out, "w", encoding="utf-8") as fh:
                fh.write(registry.export_prometheus_text())
            print(f"metrics: {len(registry.snapshot())} series -> "
                  f"{args.metrics_out}")
        if args.samples_out:
            _write_samples(result.samples, args.samples_out)
            print(f"samples: {len(result.samples)} rows "
                  f"(every {sample_interval:g}s) -> {args.samples_out}")
    elif args.command == "resilience":
        from repro.experiments import figresilience

        mttf_values = [None]
        mttf_values += list(
            args.mttf if args.mttf is not None
            else [v for v in figresilience.DEFAULT_MTTF_VALUES if v]
        )
        rows = figresilience.resilience_sweep(
            trace_name=args.trace,
            mttf_values=mttf_values,
            fault_victim_policy=args.fault_victim_policy,
            checkpoint_interval=args.checkpoint_interval,
            fault_seed=args.fault_seed,
            scale=scale,
            seed=args.seed,
            workers=workers,
        )
        print(figresilience.render(rows))
    elif args.command == "obs":
        from repro.obs.tracer import (
            load_trace_events,
            read_dropped_count,
            summarize_trace,
        )

        print(summarize_trace(load_trace_events(args.trace_file),
                              dropped=read_dropped_count(args.trace_file)))
    elif args.command == "prof":
        return _prof_command(args, scale)
    elif args.command == "frag":
        _frag_command(args)
    elif args.command == "contention":
        _contention_command(args)
    elif args.command == "check":
        from repro.experiments.check import render as render_check
        from repro.experiments.check import run_checks

        results = run_checks(scale=scale or 0.01)
        print(render_check(results))
        return 0 if all(r.passed for r in results) else 1
    elif args.command == "campaign":
        from repro.experiments.campaign import Campaign

        campaign = Campaign(args.out, scale=scale)
        campaign.run(
            traces=args.traces,
            schemes=args.schemes,
            scenarios=args.scenarios,
            seeds=(args.seed,),
            progress=True,
            workers=workers,
        )
        for scenario in args.scenarios:
            print(campaign.table(metric=args.metric, scenario=scenario,
                                 seed=args.seed))
        print(f"(total simulated wall time: "
              f"{campaign.total_wall_seconds:.0f}s; results in {args.out})")
    return 0


def _prof_command(args, scale) -> int:
    """Run one profiled+traced simulation and print the stage
    attribution table, with coverage against the ``alloc.search`` span
    total (how much of the measured search time the stages explain)."""
    from repro.obs.prof import (
        render_attribution,
        snapshot_collapsed,
        top_level_seconds,
    )
    from repro.obs.tracer import Tracer

    tracer = Tracer(enabled=True)
    setup = paper_setup(args.trace, scale=scale, seed=args.seed)
    result = run_scheme(setup, args.scheme, seed=args.seed,
                        tracer=tracer, profiled=True)
    snap = result.prof
    print(f"{args.scheme} on {args.trace}: "
          f"{result.alloc_attempts} allocation attempts, "
          f"{result.sched_seconds * 1e3:.1f} ms in the allocator\n")
    print(render_attribution(snap))
    search_wall = sum(
        e.get("dur", 0.0) for e in tracer.events
        if e.get("name") == "alloc.search" and not e.get("instant")
    )
    stage_search = sum(
        s["total_s"] for s in snap["stages"]
        if s["stack"] == "search"
    )
    if search_wall > 0:
        coverage = 100.0 * stage_search / search_wall
        print(f"\nattribution coverage: stage 'search' explains "
              f"{coverage:.1f}% of the alloc.search span total "
              f"({stage_search * 1e3:.1f} of {search_wall * 1e3:.1f} ms)")
    print(f"profiler account of the hot path: "
          f"{top_level_seconds(snap) * 1e3:.1f} ms "
          "(search + claim + release stages)")
    if args.out:
        import json as _json

        with open(args.out, "w", encoding="utf-8") as fh:
            _json.dump(snap, fh, indent=2)
        print(f"snapshot -> {args.out}")
    if args.stacks:
        with open(args.stacks, "w", encoding="utf-8") as fh:
            fh.write(snapshot_collapsed(snap))
        print(f"collapsed stacks -> {args.stacks}")
    return 0


def _frag_command(args) -> None:
    import random

    from repro.core.diagnostics import fragmentation_snapshot
    from repro.core.registry import make_allocator
    from repro.topology.fattree import FatTree
    from repro.topology.render import render_free_summary

    tree = FatTree.from_radix(args.radix)
    allocator = make_allocator(args.scheme, tree)
    rng = random.Random(args.seed)
    jid = 0
    sizes = [1, 3, 5, 8, 13, 20, 33, 48, 70]
    while allocator.free_nodes > (1 - args.occupancy) * tree.num_nodes:
        jid += 1
        if allocator.allocate(jid, rng.choice(sizes)) is None:
            break
    print(f"cluster: {tree.describe()}  scheme: {args.scheme}\n")
    print(fragmentation_snapshot(allocator).summary())
    print("\nper-pod free capacity:")
    print(render_free_summary(allocator.state))


def _contention_command(args) -> None:
    from repro.core.registry import make_allocator
    from repro.routing.contention import contention_report
    from repro.topology.fattree import FatTree

    tree = FatTree.from_radix(args.radix)
    allocator = make_allocator("jigsaw", tree)
    allocations = []
    for jid, size in enumerate(args.jobs, start=1):
        alloc = allocator.allocate(jid, size)
        if alloc is not None:
            allocations.append(alloc)
    print(f"cluster: {tree.describe()}, {len(allocations)} jobs placed\n")
    for label, kwargs in (
        ("baseline D-mod-k", {}),
        ("jigsaw partitions (static)", dict(use_partition_routing=True)),
        ("jigsaw partitions (rearranged)",
         dict(use_partition_routing=True, rearranged=True)),
    ):
        report = contention_report(tree, allocations, seed=args.seed, **kwargs)
        print(f"--- {label} ---")
        print(report.summary())
        print()


if __name__ == "__main__":
    sys.exit(main())
