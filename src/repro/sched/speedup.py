"""Job-performance scenarios (section 5.4.1).

When a job-isolating scheduler removes inter-job network interference,
some jobs run faster.  The paper evaluates turnaround time and makespan
under six assumptions about *which* jobs improve and by *how much*:

``none``
    The worst case: no job improves at all.
``5%`` / ``10%`` / ``20%``
    Every job larger than four nodes speeds up by the fixed percentage
    (scenarios taken from the TA evaluation paper [26]).
``v2``
    Jobs are randomly assigned to speed-up buckets with maxima between
    0 % and 30 %; within a bucket the speed-up scales linearly with the
    job's node count.  The bucket details live in [26]; this module
    reconstructs them as four equally-likely buckets (0/10/20/30 % max)
    with linear scaling by ``size / max_size``.
``random``
    The paper's own, least optimistic scenario: only jobs larger than 64
    nodes ever speed up, each by 0, 5, 15 or 30 % chosen uniformly.

Speed-ups apply to the low-interference schemes (TA, LaaS, Jigsaw, LC+S)
and never to Baseline.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sched.job import Job
from repro.util.rng import rng_for

#: scenario names in the order the paper's figures present them
SCENARIOS = ("none", "5%", "10%", "20%", "v2", "random")

#: jobs at or below this size never speed up in the fixed-% scenarios
FIXED_SCENARIO_MIN_SIZE = 4
#: jobs at or below this size never speed up in the random scenario
RANDOM_SCENARIO_MIN_SIZE = 64

_V2_BUCKETS = (0.0, 0.10, 0.20, 0.30)
_RANDOM_CHOICES = (0.0, 0.05, 0.15, 0.30)


def apply_scenario(jobs: Iterable[Job], scenario: str, seed: int = 0) -> List[Job]:
    """Set every job's ``speedup`` according to ``scenario`` (in place).

    Random draws are keyed by the scenario name and ``seed`` so the same
    trace gets the same speed-ups across schemes — the comparisons in
    Figures 7 and 8 depend on that.
    """
    jobs = list(jobs)
    scenario = scenario.lower()
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")

    if scenario == "none":
        for job in jobs:
            job.speedup = 0.0
        return jobs

    if scenario.endswith("%"):
        pct = float(scenario[:-1]) / 100.0
        for job in jobs:
            job.speedup = pct if job.size > FIXED_SCENARIO_MIN_SIZE else 0.0
        return jobs

    rng = rng_for(f"speedup/{scenario}", seed)
    if scenario == "v2":
        max_size = max(job.size for job in jobs)
        buckets = rng.integers(0, len(_V2_BUCKETS), size=len(jobs))
        for job, b in zip(jobs, buckets):
            job.speedup = _V2_BUCKETS[b] * (job.size / max_size)
        return jobs

    # scenario == "random"
    picks = rng.integers(0, len(_RANDOM_CHOICES), size=len(jobs))
    for job, p in zip(jobs, picks):
        job.speedup = (
            _RANDOM_CHOICES[p] if job.size > RANDOM_SCENARIO_MIN_SIZE else 0.0
        )
    return jobs
