"""The unit of work: a batch job from a queue trace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Job:
    """One job of a trace.

    ``runtime`` is the job's run time under traditional (interfering)
    scheduling; ``speedup`` is the fractional improvement the job enjoys
    when its network is isolated (section 5.4.1's performance scenarios),
    so its isolated run time is ``runtime / (1 + speedup)``.

    ``bw_need`` is the average per-link bandwidth (GB/s) the LC+S scheme
    is assumed to know (section 5.4.2); other schemes ignore it.
    """

    id: int
    size: int
    runtime: float
    arrival: float = 0.0
    bw_need: Optional[float] = None
    speedup: float = 0.0

    # Filled in by the simulator:
    start: float = field(default=-1.0, compare=False)
    end: float = field(default=-1.0, compare=False)
    #: row index in the run's JobTable (stamped at table build; -1 =
    #: not part of a table yet).  Hot paths address the table columns
    #: by this instead of a dict lookup.
    row: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"job {self.id}: size must be positive")
        if self.runtime <= 0:
            raise ValueError(f"job {self.id}: runtime must be positive")
        if self.arrival < 0:
            raise ValueError(f"job {self.id}: arrival must be non-negative")
        if self.speedup < 0:
            raise ValueError(f"job {self.id}: speedup must be non-negative")

    @property
    def isolated_runtime(self) -> float:
        """Run time when the job's network partition is interference-free."""
        return self.runtime / (1.0 + self.speedup)

    def runtime_under(self, low_interference: bool) -> float:
        """Run time under a scheme with or without interference freedom."""
        return self.isolated_runtime if low_interference else self.runtime

    @property
    def turnaround(self) -> float:
        """Queue arrival to completion (requires a finished simulation)."""
        if self.end < 0:
            raise ValueError(f"job {self.id} has not completed")
        return self.end - self.arrival

    @property
    def wait(self) -> float:
        """Queue arrival to start of execution."""
        if self.start < 0:
            raise ValueError(f"job {self.id} never started")
        return self.start - self.arrival

    def reset(self) -> None:
        """Clear simulation results so the job can be re-simulated."""
        self.start = -1.0
        self.end = -1.0
