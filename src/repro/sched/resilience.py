"""Online fault timeline: job-killing failures inside the simulator.

:mod:`repro.topology.faults` can degrade a *static* cluster, but its
docstring punts the hard part: failing a resource owned by a running
job kills the job, and deciding what happens next is scheduler policy.
This module supplies that policy for the discrete-event simulator:

* :class:`FaultSpec` / :class:`FaultTimeline` — timestamped fail/repair
  windows, either listed explicitly or drawn from a per-node MTTF/MTTR
  renewal process seeded through :mod:`repro.util.rng` (so a synthetic
  timeline is reproducible and identical across worker processes);
* :class:`ResilienceManager` — consumed by
  :class:`repro.sched.simulator.Simulator`, which interleaves the
  timeline's events with job arrivals and completions.  When a fault
  hits resources owned by a running job the simulator drains the victim
  through the ordinary release path (the *victim policy* decides how
  much work survives), then the manager claims the hardware via
  :class:`~repro.topology.faults.FaultInjector`;
* resilience accounting — wasted node-seconds, resubmission counts and
  the degraded-capacity integral, surfaced on
  :class:`repro.sched.metrics.SimResult`.

Victim policies
---------------
``requeue-full``
    The killed job is resubmitted with its full work: everything it
    computed is lost (no checkpointing).
``requeue-remaining``
    A simple checkpoint-interval model: with interval ``C`` the job has
    durable checkpoints every ``C`` seconds of execution, so a kill
    after ``e`` seconds preserves ``floor(e / C) * C`` seconds of work
    and only the remainder is redone.  ``C == 0`` means continuous
    checkpointing (only in-flight work at the instant of the kill is
    lost — the optimistic bound).

Either way the resubmitted job re-enters the waiting queue through the
simulator's ordinary ``enqueue`` path, i.e. per the active queue order
(FIFO arrival order, SJF priority, ...), and its turnaround keeps
counting from the *original* arrival — time lost to failures is
scheduler-visible loss.

Everything here is plain picklable data (tuples of frozen dataclasses),
so timelines thread through the experiment grid's process pool
unchanged; a given ``(timeline, trace, scheme)`` cell is byte-identical
serially or in any pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.topology.faults import FAULT_KINDS, FaultInjector, FaultTicket
from repro.util.rng import rng_for

#: accepted victim policies (see module docstring)
VICTIM_POLICIES = ("requeue-full", "requeue-remaining")

#: default MTTR as a fraction of MTTF when only an MTTF is given
DEFAULT_MTTR_FRACTION = 0.1


@dataclass(frozen=True)
class FaultSpec:
    """One fault window: ``target`` fails at ``start``, is repaired at
    ``end`` (``None`` = never repaired).

    ``target`` is the plain-data address
    :meth:`repro.topology.faults.FaultInjector.resolve` understands —
    ints and tuples of ints only, so specs pickle as data.
    """

    start: float
    kind: str
    target: Tuple[int, ...]
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.start < 0:
            raise ValueError("fault start must be non-negative")
        if self.end is not None and self.end <= self.start:
            raise ValueError("fault end must be after its start")
        target = self.target
        if isinstance(target, int):
            target = (target,)
        object.__setattr__(self, "target", tuple(int(x) for x in target))

    @property
    def duration(self) -> Optional[float]:
        """Seconds out of service (None for a permanent fault)."""
        return None if self.end is None else self.end - self.start


@dataclass(frozen=True)
class FaultTimeline:
    """An ordered collection of :class:`FaultSpec` windows."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    @classmethod
    def coerce(
        cls, value: Union[None, "FaultTimeline", Sequence[FaultSpec]]
    ) -> "FaultTimeline":
        """Normalize ``None`` / a timeline / a spec sequence."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        return cls(tuple(value))

    @classmethod
    def synthetic(
        cls,
        num_nodes: int,
        mttf: float,
        mttr: Optional[float] = None,
        horizon: float = 0.0,
        seed: int = 0,
        stream: str = "fault.timeline",
    ) -> "FaultTimeline":
        """Per-node fail/repair renewal process over ``[0, horizon)``.

        Each node independently alternates exponential up-times (mean
        ``mttf``) and exponential down-times (mean ``mttr``, default
        ``mttf * 0.1``); failures past ``horizon`` are dropped.  Drawn
        from the named :func:`repro.util.rng.rng_for` stream, so the
        same ``(num_nodes, mttf, mttr, horizon, seed)`` always yields
        the same timeline — in any process.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be positive")
        if mttf <= 0:
            raise ValueError("mttf must be positive")
        if mttr is None:
            mttr = mttf * DEFAULT_MTTR_FRACTION
        if mttr <= 0:
            raise ValueError("mttr must be positive")
        rng = rng_for(stream, seed)
        faults: List[FaultSpec] = []
        for node in range(num_nodes):
            t = float(rng.exponential(mttf))
            while t < horizon:
                down = float(rng.exponential(mttr))
                faults.append(FaultSpec(t, "node", (node,), t + down))
                t += down + float(rng.exponential(mttf))
        faults.sort(key=lambda s: (s.start, s.target))
        return cls(tuple(faults))


@dataclass
class ResilienceStats:
    """What the fault timeline did to one simulation run."""

    #: fault windows whose fail event was applied
    injected: int = 0
    #: fault windows whose repair event was applied
    repaired: int = 0
    #: jobs killed by a fault and resubmitted
    resubmissions: int = 0
    #: node-seconds of execution destroyed by kills (checkpoint-saved
    #: work excluded)
    wasted_node_seconds: float = 0.0
    #: integral of out-of-service nodes over simulated time
    degraded_node_seconds: float = 0.0


class ResilienceManager:
    """Applies one :class:`FaultTimeline` to a live allocator.

    The simulator drives it with :meth:`victims` (who must die before
    this fault lands), :meth:`inject` and :meth:`repair`; the manager
    owns the :class:`~repro.topology.faults.FaultInjector` tickets, the
    degraded-node count and the resilience counters.  Overlapping fault
    windows are tolerated: resources already held by an earlier active
    fault are absorbed (not claimed twice), and return to service with
    the fault that actually claimed them.
    """

    def __init__(
        self,
        allocator,
        timeline: FaultTimeline,
        victim_policy: str = "requeue-full",
        checkpoint_interval: float = 0.0,
        tracer=None,
        event_log=None,
    ):
        if victim_policy not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown victim policy {victim_policy!r}; "
                f"expected one of {VICTIM_POLICIES}"
            )
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        self.timeline = timeline
        self.victim_policy = victim_policy
        self.checkpoint_interval = checkpoint_interval
        self.injector = FaultInjector(allocator)
        self.tracer = tracer
        self.event_log = event_log
        self.stats = ResilienceStats()
        #: nodes currently out of service (fault-claimed)
        self.degraded_nodes = 0
        #: spec index -> ticket (None = fully absorbed by earlier faults)
        self._tickets: Dict[int, Optional[FaultTicket]] = {}
        #: spec index -> nodes its ticket took down
        self._nodes_down: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def saved_work(self, elapsed: float) -> float:
        """Executed seconds that survive a kill after ``elapsed`` seconds
        of execution, under the active victim policy."""
        if self.victim_policy == "requeue-full" or elapsed <= 0:
            return 0.0
        c = self.checkpoint_interval
        if c <= 0:
            return elapsed  # continuous checkpointing
        return min(elapsed, (elapsed // c) * c)

    def victims(self, index: int) -> List[int]:
        """Ids of resident jobs owning any resource of fault ``index``,
        in ascending id order (the deterministic kill order).

        Covers exclusive ownership (nodes and links in the
        :class:`~repro.topology.state.ClusterState`) and, for the
        link-sharing scheme, fractional bandwidth on a target link.
        """
        spec = self.timeline.faults[index]
        nodes, leaf_links, spine_links = self.injector.resolve(
            spec.kind, spec.target
        )
        state = self.injector.state
        owners = set()
        for n in nodes:
            owner = int(state.node_owner[n])
            if owner >= 0:
                owners.add(owner)
        if leaf_links or spine_links:
            targets_leaf = set(leaf_links)
            targets_spine = set(spine_links)
            for job_id in state.resident_jobs():
                if job_id < 0 or job_id in owners:
                    continue
                rec = state.claim_record(job_id)
                if targets_leaf.intersection(rec.leaf_links) or (
                    targets_spine.intersection(rec.spine_links)
                ):
                    owners.add(job_id)
            links_cap = self.injector._links_cap
            if links_cap is not None:
                owners.update(
                    j
                    for j in links_cap.claimants(leaf_links, spine_links)
                    if j >= 0
                )
        return sorted(owners)

    def inject(self, index: int, now: float) -> Optional[FaultTicket]:
        """Apply fault ``index``'s fail event (victims already drained)."""
        spec = self.timeline.faults[index]
        resources = self._unclaimed_resources(spec)
        nodes, leaf_links, spine_links = resources
        if nodes or leaf_links or spine_links:
            ticket = self.injector.inject(spec.kind, spec.target, resources)
            self._nodes_down[index] = len(nodes)
            self.degraded_nodes += len(nodes)
        else:
            ticket = None  # fully absorbed by earlier active faults
        self._tickets[index] = ticket
        self.stats.injected += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.instant("fault.inject", {
                "kind": spec.kind, "target": list(spec.target),
                "nodes_down": len(nodes),
                "links_down": len(leaf_links) + len(spine_links),
                "degraded_nodes": self.degraded_nodes,
            })
        return ticket

    def repair(self, index: int, now: float) -> None:
        """Apply fault ``index``'s repair event."""
        ticket = self._tickets.pop(index, None)
        if ticket is not None:
            self.injector.repair(ticket)
            self.degraded_nodes -= self._nodes_down.pop(index, 0)
        self.stats.repaired += 1
        if self.tracer is not None and self.tracer.enabled:
            spec = self.timeline.faults[index]
            self.tracer.instant("fault.repair", {
                "kind": spec.kind, "target": list(spec.target),
                "degraded_nodes": self.degraded_nodes,
            })

    def _unclaimed_resources(self, spec: FaultSpec):
        """The spec's resources minus anything an *active fault* already
        holds (a resident job holding one is a bug: victims are drained
        before injection)."""
        nodes, leaf_links, spine_links = self.injector.resolve(
            spec.kind, spec.target
        )
        state = self.injector.state
        fault_leaf = set()
        fault_spine = set()
        if leaf_links or spine_links:
            for job_id in state.resident_jobs():
                if job_id >= 0:
                    continue
                rec = state.claim_record(job_id)
                fault_leaf.update(rec.leaf_links)
                fault_spine.update(rec.spine_links)
        return (
            [n for n in nodes if int(state.node_owner[n]) == -1],
            [l for l in leaf_links if l not in fault_leaf],
            [s for s in spine_links if s not in fault_spine],
        )
