"""Structured schedule log: every scheduling decision, exportable.

Pass a :class:`ScheduleLog` to the simulator to capture an audit trail:
job arrivals, starts (with how the start happened: FIFO head, EASY
backfill, or a conservative reservation coming due), and completions.
The log exports to CSV for external analysis and answers the usual
debugging questions (what fraction of starts were backfills? how long
did job X wait and why?).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
import json
from typing import Counter as CounterType
from collections import Counter
from typing import Any, Dict, List, Optional, TextIO, Union

#: event kinds, in the order they can occur for one job; "kill"/"requeue"
#: record a fault-timeline victim being drained and resubmitted (see
#: :mod:`repro.sched.resilience`); "unscheduled" terminates a job that
#: provably can never start (failure injection)
KINDS = ("arrive", "start", "kill", "requeue", "complete", "unscheduled")
#: how a start happened
VIAS = ("fifo", "backfill", "reserved")


@dataclass(frozen=True)
class ScheduleEvent:
    """One scheduling decision."""

    time: float
    kind: str  # arrive | start | complete
    job_id: int
    size: int
    #: for starts: how the job was selected (fifo/backfill/reserved)
    via: Optional[str] = None
    #: free-form context (the simulator shares one dict between this
    #: event and the tracer's matching instant event, so the audit trail
    #: and the trace can be joined without re-deriving anything)
    attrs: Optional[Dict[str, Any]] = None


@dataclass
class ScheduleLog:
    """Append-only audit trail collected by the simulator."""

    events: List[ScheduleEvent] = field(default_factory=list)

    def record(
        self, time: float, kind: str, job_id: int, size: int,
        via: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event (validated against KINDS/VIAS)."""
        if kind not in KINDS:
            raise ValueError(f"unknown event kind {kind!r}")
        if via is not None and via not in VIAS:
            raise ValueError(f"unknown start mechanism {via!r}")
        self.events.append(ScheduleEvent(time, kind, job_id, size, via, attrs))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def of_job(self, job_id: int) -> List[ScheduleEvent]:
        """Every event of one job, in order."""
        return [e for e in self.events if e.job_id == job_id]

    def start_mechanisms(self) -> CounterType[str]:
        """How starts happened: Counter of fifo/backfill/reserved."""
        return Counter(
            e.via for e in self.events if e.kind == "start" and e.via
        )

    @property
    def backfill_fraction(self) -> float:
        """Share of starts that jumped the queue (0 when none started)."""
        mechanisms = self.start_mechanisms()
        total = sum(mechanisms.values())
        return mechanisms.get("backfill", 0) / total if total else 0.0

    def as_registry(self, registry=None):
        """Event and start-mechanism counts as a live metric-registry
        view (see :mod:`repro.obs.bridge`)."""
        from repro.obs.bridge import registry_for_log

        return registry_for_log(self, registry=registry)

    def to_csv(self, target: Union[str, Path, TextIO]) -> None:
        """Write the log as CSV (time, kind, job_id, size, via).

        An ``attrs`` column (JSON-encoded) is appended only when at
        least one event carries attributes, so untraced logs keep the
        historical five-column layout byte for byte.
        """
        if isinstance(target, (str, Path)):
            with open(target, "w", newline="", encoding="utf-8") as fh:
                self.to_csv(fh)
                return
        writer = csv.writer(target)
        with_attrs = any(e.attrs for e in self.events)
        header = ["time", "kind", "job_id", "size", "via"]
        if with_attrs:
            header.append("attrs")
        writer.writerow(header)
        for e in self.events:
            row = [e.time, e.kind, e.job_id, e.size, e.via or ""]
            if with_attrs:
                row.append(
                    json.dumps(e.attrs, sort_keys=True) if e.attrs else ""
                )
            writer.writerow(row)
