"""Contention-aware runtime model: interference derived, not assumed.

The paper's Figures 7 and 8 rely on *assumed* isolation speed-ups
(section 5.4.1).  This extension derives the penalty instead: when a job
starts, its communication flows are routed (plain D-mod-k under a
non-isolating scheduler, partition routing under an isolating one) and
registered on the fabric's directed links; the job's runtime is extended
by a factor driven by the worst link sharing its flows encounter.

Model details, and their justification:

* each job draws a communication pattern (or is "quiet": some fraction
  of HPC jobs are compute- or IO-bound and indifferent to the network);
* the slowdown proxy is the worst per-link sharing degree ``k`` over the
  job's flows — a flow on a link carrying ``k`` flows gets ``1/k`` of
  the bandwidth — damped by a communication-fraction coefficient
  ``alpha`` (jobs only spend part of their time communicating):
  ``factor = 1 + alpha * (k - 1)``.  With ``alpha = 0.3`` a fully
  shared link (k=2) costs 30 %, in the range the interference studies
  report;
* the factor is fixed at job start (the contention a job meets when it
  begins; later arrivals do not retroactively slow it — a documented
  one-way approximation that keeps the simulation event-driven).

Under any isolating scheduler the factor is identically 1 for inter-job
reasons — partitions share no links — so this model reproduces the
paper's qualitative setup with zero scenario knobs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.allocator import Allocation
from repro.netsim.patterns import PATTERNS, pattern_flows
from repro.routing.dmodk import dmodk_route
from repro.routing.partition import PartitionRouter
from repro.topology.fattree import XGFT
from repro.util.rng import rng_for

#: default pattern mix (name -> weight); None means a quiet job
DEFAULT_MIX: Tuple[Tuple[Optional[str], float], ...] = (
    (None, 0.3),
    ("neighbor", 0.3),
    ("shift", 0.2),
    ("permutation", 0.1),
    ("alltoall_sample", 0.1),
)


@dataclass
class ContentionRuntimeModel:
    """Stateful runtime-extension model, driven by the simulator.

    Parameters
    ----------
    tree:
        The fabric.
    alpha:
        Communication-fraction damping: ``factor = 1 + alpha * (k - 1)``
        where ``k`` is the worst sharing degree the job's flows see.
    mix:
        Pattern mix as (pattern-or-None, weight) pairs.
    seed:
        Pattern assignment stream.
    """

    tree: XGFT
    alpha: float = 0.3
    mix: Tuple[Tuple[Optional[str], float], ...] = DEFAULT_MIX
    seed: int = 0
    #: live flow count per directed link
    _link_flows: Counter = field(default_factory=Counter, repr=False)
    _job_links: Dict[int, List[tuple]] = field(default_factory=dict, repr=False)
    _factors: Dict[int, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        total = sum(w for _, w in self.mix)
        if total <= 0:
            raise ValueError("pattern mix weights must sum to a positive value")
        for name, _ in self.mix:
            if name is not None and name not in PATTERNS:
                raise ValueError(f"unknown pattern {name!r} in mix")
        self._rng = rng_for("interference-model", self.seed)

    # ------------------------------------------------------------------
    def pattern_for(self, job_id: int) -> Optional[str]:
        """Deterministic pattern assignment (stable across schemes)."""
        rng = rng_for(f"interference-pattern/{job_id}", self.seed)
        weights = [w for _, w in self.mix]
        total = sum(weights)
        pick = rng.uniform(0, total)
        acc = 0.0
        for name, w in self.mix:
            acc += w
            if pick <= acc:
                return name
        return self.mix[-1][0]

    # ------------------------------------------------------------------
    def on_start(
        self, alloc: Allocation, isolating: bool
    ) -> float:
        """Register the job's flows; return its runtime factor (>= 1)."""
        pattern = self.pattern_for(alloc.job_id)
        links: List[tuple] = []
        if pattern is not None and len(alloc.nodes) > 1:
            flows = pattern_flows(alloc, pattern, seed=self.seed)
            # Schemes that allocate explicit links route inside them;
            # TA reserves links only implicitly (and its containment
            # rules make plain D-mod-k conflict-free by construction),
            # and single-leaf allocations need no links at all.
            router = (
                PartitionRouter(self.tree, alloc)
                if isolating and alloc.leaf_links
                else None
            )
            for src, dst in flows:
                route = (
                    router.route(src, dst)
                    if router is not None
                    else dmodk_route(self.tree, src, dst)
                )
                links.extend(route.links())
        # Sharing degree with *other* jobs' flows only: self-congestion
        # exists under isolation too and cancels out of the comparison.
        # Under an isolating scheme no link carries foreign flows, so the
        # factor is 1 automatically — no special-casing needed.
        worst_foreign = 0
        for link in set(links):
            worst_foreign = max(worst_foreign, self._link_flows[link])
        for link in links:
            self._link_flows[link] += 1
        self._job_links[alloc.job_id] = links

        factor = 1.0 + self.alpha * worst_foreign
        self._factors[alloc.job_id] = factor
        return factor

    def on_release(self, job_id: int) -> None:
        """Remove a completed job's flows from the fabric."""
        for link in self._job_links.pop(job_id, ()):
            self._link_flows[link] -= 1
            if self._link_flows[link] <= 0:
                del self._link_flows[link]
        self._factors.pop(job_id, None)

    # ------------------------------------------------------------------
    def factor_of(self, job_id: int) -> float:
        """The factor assigned to a live job (1.0 if unknown)."""
        return self._factors.get(job_id, 1.0)

    @property
    def live_flows(self) -> int:
        """Total flow-link registrations currently on the fabric."""
        return sum(self._link_flows.values())
