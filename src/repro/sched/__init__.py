"""Trace-driven discrete-event scheduling simulation.

This is the evaluation vehicle of the paper (section 5): jobs arrive in
a queue, a scheduling policy (FIFO + EASY backfilling, window 50) asks an
allocator for placements, and the simulator measures steady-state
utilization, turnaround times, makespan, instantaneous utilization and
scheduling time.
"""

from repro.sched.eventcore import (
    ArrayEventQueue,
    CompletionQueue,
    EventStreams,
    JobTable,
    round_boundary,
)
from repro.sched.interference import ContentionRuntimeModel
from repro.sched.job import Job
from repro.sched.metrics import (
    INSTANT_BINS,
    InstantHistogram,
    JobRecord,
    SimResult,
    fidelity_report,
)
from repro.sched.resilience import (
    VICTIM_POLICIES,
    FaultSpec,
    FaultTimeline,
    ResilienceManager,
)
from repro.sched.simulator import Simulator
from repro.sched.speedup import SCENARIOS, apply_scenario

__all__ = [
    "ArrayEventQueue",
    "CompletionQueue",
    "ContentionRuntimeModel",
    "EventStreams",
    "Job",
    "JobTable",
    "Simulator",
    "SimResult",
    "fidelity_report",
    "round_boundary",
    "JobRecord",
    "InstantHistogram",
    "INSTANT_BINS",
    "SCENARIOS",
    "apply_scenario",
    "FaultSpec",
    "FaultTimeline",
    "ResilienceManager",
    "VICTIM_POLICIES",
]
