"""Discrete-event scheduler simulator (the evaluation vehicle, section 5).

The simulator replays a job-queue trace against one allocator:

* job arrivals and completions are the events;
* scheduling is FIFO + EASY backfilling with a lookahead window
  (:mod:`repro.sched.backfill`), run after every event batch;
* jobs run for their base run time under Baseline and for their
  isolated (sped-up) run time under the low-interference schemes;
* walltime estimates are perfect (actual run times), as is conventional
  for trace replay;
* metrics are accumulated exactly as section 5 defines them
  (:mod:`repro.sched.metrics`).

Within one scheduling pass, allocation failures are memoized by
(effective size, bandwidth need): state only shrinks during a pass, so a
failed size stays failed — this makes wide backfill windows cheap
without changing any scheduling decision.  The allocator extends the
same argument *across* passes with its feasibility cache (see
:mod:`repro.core.allocator`): a failure stays proven until the next
release, so pure-arrival event batches never repeat a lost search.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.allocator import Allocator
from repro.obs.sampler import simulator_row
from repro.sched.backfill import Reservation, compute_reservation, may_backfill
from repro.sched.job import Job
from repro.sched.metrics import InstantHistogram, JobRecord, SimResult
from repro.sched.resilience import (
    VICTIM_POLICIES,
    FaultTimeline,
    ResilienceManager,
)

# Event kinds, in sort order at equal times: repairs free hardware
# first, then completions free jobs, then arrivals join the queue, and
# only then do fault injections land — so a job finishing exactly when
# its node dies completes rather than being killed.  Fault events carry
# the timeline index as payload instead of a Job; the unique ``seq``
# field tie-breaks before the payload is ever compared.
_FAULT_REPAIR = -1
_COMPLETION = 0
_ARRIVAL = 1
_FAULT_INJECT = 2


class Simulator:
    """Replay a trace against one allocator and measure the outcome.

    Parameters
    ----------
    allocator:
        A fresh allocator (its cluster must be idle).
    backfill_window:
        How many queued jobs past the head EASY may consider (the paper
        uses 50; 0 disables backfilling, i.e. pure FIFO).
    """

    #: how the head's reservation evolves while it waits:
    #: ``renew`` (default) — honored until its shadow time passes, then
    #: recomputed; ``sticky`` — computed once, honored until the head
    #: starts (forces drains); ``slip`` — recomputed at every event (the
    #: shadow can slip forever under constrained allocators).
    RESERVATION_POLICIES = ("renew", "sticky", "slip")

    #: how out-of-order starts are planned: ``easy`` (single head
    #: reservation, the paper's setup) or ``conservative`` (every queued
    #: job in the window holds a reservation; nothing delays an earlier
    #: one — a classic alternative, provided as an extension)
    BACKFILL_POLICIES = ("easy", "conservative")

    #: how the waiting queue is ordered: ``fifo`` (arrival order, the
    #: paper's setup) or one of the classic priority orders, provided as
    #: extensions: ``sjf`` (shortest estimated walltime first),
    #: ``smallest``/``largest`` (by node count).  Ties fall back to
    #: arrival order.
    QUEUE_ORDERS = ("fifo", "sjf", "smallest", "largest")

    #: minimum number of stale priority-heap entries before an eager
    #: compaction is considered (tests lower this to force compaction;
    #: the schedule must not change either way)
    PHEAP_COMPACT_MIN = 16

    def __init__(
        self,
        allocator: Allocator,
        backfill_window: int = 50,
        reservation_policy: str = "renew",
        backfill_policy: str = "easy",
        estimate_factor: float = 1.0,
        runtime_model=None,
        queue_order: str = "fifo",
        event_log=None,
        tracer=None,
        sampler=None,
        fault_timeline=None,
        fault_victim_policy: str = "requeue-full",
        checkpoint_interval: float = 0.0,
    ):
        if not allocator.state.is_idle():
            raise ValueError("allocator must start idle")
        if reservation_policy not in self.RESERVATION_POLICIES:
            raise ValueError(
                f"unknown reservation policy {reservation_policy!r}; "
                f"expected one of {self.RESERVATION_POLICIES}"
            )
        if backfill_policy not in self.BACKFILL_POLICIES:
            raise ValueError(
                f"unknown backfill policy {backfill_policy!r}; "
                f"expected one of {self.BACKFILL_POLICIES}"
            )
        if estimate_factor < 1.0:
            raise ValueError("estimate_factor must be >= 1 (users overestimate)")
        if queue_order not in self.QUEUE_ORDERS:
            raise ValueError(
                f"unknown queue order {queue_order!r}; "
                f"expected one of {self.QUEUE_ORDERS}"
            )
        if queue_order != "fifo" and backfill_policy != "easy":
            raise ValueError(
                "priority queue orders are only supported with EASY backfilling"
            )
        if fault_victim_policy not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown victim policy {fault_victim_policy!r}; "
                f"expected one of {VICTIM_POLICIES}"
            )
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        self.allocator = allocator
        self.backfill_window = backfill_window
        self.reservation_policy = reservation_policy
        self.backfill_policy = backfill_policy
        #: walltime estimates are actual runtimes scaled by this factor
        #: (1.0 = the paper's perfect estimates)
        self.estimate_factor = estimate_factor
        #: optional contention-aware runtime model (see
        #: :mod:`repro.sched.interference`); when set, it replaces the
        #: scenario-based speed-ups entirely: runtimes are the jobs' base
        #: runtimes extended by the measured contention factor
        self.runtime_model = runtime_model
        self.queue_order = queue_order
        #: optional :class:`repro.sched.log.ScheduleLog` audit trail
        self.event_log = event_log
        #: optional :class:`repro.obs.tracer.Tracer`; when set it is also
        #: installed on the allocator so one trace covers both layers.
        #: ``None`` falls back to whatever tracer the allocator carries
        #: (the process-global one unless someone installed another).
        self.tracer = tracer
        #: optional :class:`repro.obs.sampler.TimeSeriesSampler`; when
        #: set, ``run`` fills it and the rows land in ``SimResult.samples``
        self.sampler = sampler
        #: optional fail/repair timeline consumed by the event loop (see
        #: :mod:`repro.sched.resilience`); empty = fault-free, with the
        #: guarantee that the run is event-for-event identical to one
        #: without any resilience machinery at all
        self.fault_timeline = FaultTimeline.coerce(fault_timeline)
        self.fault_victim_policy = fault_victim_policy
        self.checkpoint_interval = checkpoint_interval
        self.low_interference = allocator.low_interference
        #: the head job's current reservation: (job id, Reservation)
        self._sticky: Optional[Tuple[int, Reservation]] = None
        #: high-water marks of the live bookkeeping structures, exposed
        #: so tests can assert the queue stays bounded on long traces
        self.peak_queue_len = 0
        self.peak_started_out_of_order = 0
        self.peak_pheap_stale = 0

    # ------------------------------------------------------------------
    def run(self, trace, trace_name: Optional[str] = None) -> SimResult:
        """Simulate ``trace`` (a ``Trace`` or a sequence of jobs)."""
        jobs: List[Job] = list(getattr(trace, "jobs", trace))
        name = trace_name or getattr(trace, "name", "trace")
        self._sticky = None
        self.peak_queue_len = 0
        self.peak_started_out_of_order = 0
        self.peak_pheap_stale = 0
        tree = self.allocator.tree
        for job in jobs:
            job.reset()
            if self.allocator.effective_size(job.size) > tree.num_nodes:
                raise ValueError(
                    f"job {job.id} needs {job.size} nodes "
                    f"(effective {self.allocator.effective_size(job.size)}) "
                    f"but the cluster has {tree.num_nodes}"
                )

        # Event heap: (time, kind, seq, payload); the kind ordering at
        # equal times is documented on the kind constants.  The payload
        # is the Job for arrivals/completions and the timeline index for
        # fault events.
        seq = count()
        events: List[Tuple[float, int, int, object]] = [
            (job.arrival, _ARRIVAL, next(seq), job) for job in jobs
        ]
        for index, spec in enumerate(self.fault_timeline.faults):
            events.append((spec.start, _FAULT_INJECT, next(seq), index))
            if spec.end is not None:
                events.append((spec.end, _FAULT_REPAIR, next(seq), index))
        heapq.heapify(events)

        queue: List[Job] = []
        head = 0
        #: priority heap used instead of the FIFO list for non-FIFO orders
        pheap: List[Tuple[float, int, Job]] = []
        started_out_of_order: set = set()
        #: stale pheap entries (jobs that already started out of order);
        #: in priority mode ``started_out_of_order`` holds exactly the
        #: ids of these entries, so the two counts track together
        pheap_stale = 0
        pending = 0
        running: Dict[int, Tuple[float, int]] = {}
        cur_busy = 0  # requested nodes currently computing

        instant = InstantHistogram()
        busy_area = 0.0
        demand_area = 0.0
        total_busy_area = 0.0
        last_t = min((j.arrival for j in jobs), default=0.0)
        n_system = tree.num_nodes
        unscheduled: List[int] = []

        # Telemetry (strictly passive: nothing below may influence a
        # scheduling decision — benchmarks/_fingerprint.py --obs holds
        # the whole stack to that).
        tracer = self.tracer if self.tracer is not None else self.allocator.tracer
        if self.tracer is not None:
            self.allocator.tracer = tracer
        if tracer.enabled:
            tracer.sim_time = last_t
        sampler = self.sampler
        if sampler is not None:
            sampler.reset(last_t)

        # Resilience machinery, engaged only for a non-empty timeline.
        # Every touch point below is gated on ``resilience is not None``
        # so a fault-free run takes exactly the historical code path —
        # the empty-timeline fingerprint check holds the gate to that.
        resilience: Optional[ResilienceManager] = None
        #: job id -> remaining work as a fraction of the base runtime
        #: (absent = 1.0); shrinks when a checkpoint survives a kill
        work_frac: Dict[int, float] = {}
        #: job id -> seq of its live completion event; a kill orphans
        #: the heap entry, which is dropped on pop by this check
        live_comp: Dict[int, int] = {}
        job_by_id: Dict[int, Job] = {}
        if self.fault_timeline:
            resilience = ResilienceManager(
                self.allocator,
                self.fault_timeline,
                self.fault_victim_policy,
                self.checkpoint_interval,
                tracer=tracer,
                event_log=self.event_log,
            )
            job_by_id = {job.id: job for job in jobs}

        def sample_row(boundary: float) -> dict:
            return simulator_row(
                boundary, self.allocator, pending, len(running), cur_busy,
                resilience.degraded_nodes if resilience is not None else 0,
            )

        def advance(t: float) -> None:
            nonlocal busy_area, demand_area, total_busy_area, last_t
            dt = t - last_t
            if dt > 0:
                total_busy_area += cur_busy * dt
                if pending > 0:
                    busy_area += cur_busy * dt
                    demand_area += n_system * dt
                if resilience is not None:
                    resilience.stats.degraded_node_seconds += (
                        resilience.degraded_nodes * dt
                    )
                last_t = t

        def sample() -> None:
            if pending > 0:
                instant.add(100.0 * cur_busy / n_system)

        def eff(job: Job) -> int:
            return self.allocator.effective_size(job.size)

        def walltime_est(job: Job) -> float:
            """The (possibly overestimated) walltime planning uses."""
            est = job.runtime_under(self.low_interference) * self.estimate_factor
            if resilience is not None:
                # A checkpoint-restarted job only redoes its lost work.
                est *= work_frac.get(job.id, 1.0)
            return est

        def try_start(job: Job, now: float, via: str = "fifo") -> bool:
            nonlocal cur_busy
            alloc = self.allocator.allocate(job.id, job.size, bw_need=job.bw_need)
            if alloc is None:
                return False
            if tracer.enabled:
                # One dict serves both sinks: the trace's instant event
                # and the audit log's attrs column stay joinable.
                attrs = {"wait": now - job.arrival, "via": via,
                         "job": job.id, "size": job.size}
                tracer.instant("sched.start", attrs)
                if self.event_log is not None:
                    self.event_log.record(
                        now, "start", job.id, job.size, via, attrs=attrs
                    )
            elif self.event_log is not None:
                self.event_log.record(now, "start", job.id, job.size, via)
            job.start = now
            if self.runtime_model is not None:
                factor = self.runtime_model.on_start(
                    alloc, self.allocator.isolating
                )
                actual = job.runtime * factor
            else:
                actual = job.runtime_under(self.low_interference)
            if resilience is not None:
                actual *= work_frac.get(job.id, 1.0)
            job.end = now + actual
            comp_seq = next(seq)
            heapq.heappush(events, (job.end, _COMPLETION, comp_seq, job))
            if resilience is not None:
                live_comp[job.id] = comp_seq
            # Planning sees the *estimated* completion time.
            running[job.id] = (now + actual * self.estimate_factor, eff(job))
            cur_busy += job.size
            return True

        priority_key = None
        if self.queue_order == "sjf":
            priority_key = walltime_est
        elif self.queue_order == "smallest":
            priority_key = lambda job: job.size  # noqa: E731
        elif self.queue_order == "largest":
            priority_key = lambda job: -job.size  # noqa: E731

        def enqueue(job: Job) -> None:
            nonlocal pending
            if priority_key is None:
                queue.append(job)
                self.peak_queue_len = max(self.peak_queue_len, len(queue))
            else:
                heapq.heappush(pheap, (priority_key(job), next(seq), job))
                self.peak_queue_len = max(self.peak_queue_len, len(pheap))
            pending += 1

        def note_started_out_of_order(job_id: int) -> None:
            nonlocal pheap_stale
            started_out_of_order.add(job_id)
            self.peak_started_out_of_order = max(
                self.peak_started_out_of_order, len(started_out_of_order)
            )
            if priority_key is not None:
                pheap_stale += 1
                self.peak_pheap_stale = max(self.peak_pheap_stale, pheap_stale)
                compact_pheap()

        def compact_pheap() -> None:
            """Rebuild the priority heap without its stale entries once
            they dominate it.  Amortized O(1) per event; pure
            bookkeeping — the set of live entries (and hence every
            scheduling decision) is unchanged.  Without this, each
            ``window_candidates`` snapshot pays O(Q log Q) as the stale
            share grows on long traces."""
            nonlocal pheap_stale
            if (
                pheap_stale < self.PHEAP_COMPACT_MIN
                or pheap_stale * 2 < len(pheap)
            ):
                return
            live = [e for e in pheap if e[2].id not in started_out_of_order]
            started_out_of_order.difference_update(
                e[2].id for e in pheap if e[2].id in started_out_of_order
            )
            pheap[:] = live
            heapq.heapify(pheap)
            pheap_stale = 0

        def purge_queued(job: Job) -> None:
            """Remove a killed job's stale queue entry, if any.

            A job that started out of order leaves its entry in the
            queue (lazily skipped once the head passes it).  Re-enqueuing
            the same Job object behind that stale entry would confuse
            the lazy bookkeeping — backfill would skip the live entry,
            and after the stale one is pruned the running job could be
            offered to the allocator twice — so kills purge eagerly.
            Kills are rare; O(queue) is fine here.
            """
            nonlocal pheap_stale
            if job.id not in started_out_of_order:
                return
            started_out_of_order.discard(job.id)
            if priority_key is None:
                for i in range(head, len(queue)):
                    if queue[i] is job:
                        del queue[i]
                        return
            else:
                live = [e for e in pheap if e[2] is not job]
                pheap_stale -= len(pheap) - len(live)
                pheap[:] = live
                heapq.heapify(pheap)

        def kill_job(job: Job, now: float) -> None:
            """Drain one fault victim through the ordinary release path
            and resubmit it per the active queue order."""
            nonlocal cur_busy
            elapsed = now - job.start
            planned = job.end - job.start
            saved = min(resilience.saved_work(elapsed), planned)
            self.allocator.release(job.id)
            if self.runtime_model is not None:
                self.runtime_model.on_release(job.id)
            running.pop(job.id)
            live_comp.pop(job.id, None)
            cur_busy -= job.size
            resilience.stats.wasted_node_seconds += (elapsed - saved) * job.size
            resilience.stats.resubmissions += 1
            if planned > 0 and saved > 0:
                frac = work_frac.get(job.id, 1.0)
                work_frac[job.id] = frac * (1.0 - saved / planned)
            job.start = -1.0
            job.end = -1.0
            if tracer.enabled:
                attrs = {"job": job.id, "size": job.size,
                         "elapsed": elapsed, "saved": saved}
                tracer.instant("sched.kill", attrs)
                if self.event_log is not None:
                    self.event_log.record(
                        now, "kill", job.id, job.size, attrs=attrs
                    )
            elif self.event_log is not None:
                self.event_log.record(now, "kill", job.id, job.size)
            purge_queued(job)
            enqueue(job)
            if self.event_log is not None:
                self.event_log.record(now, "requeue", job.id, job.size)
            sample()

        def prune_fifo_front() -> None:
            """Advance ``head`` past jobs that already started out of
            order (pruning them from the tracking set — once the head
            passes a job it can never be looked up again) and compact
            the FIFO list once at least half of it is dead prefix.  Both
            are amortized O(1) per event; without them ``queue`` and
            ``started_out_of_order`` grow with every job ever enqueued."""
            nonlocal head
            while head < len(queue) and queue[head].id in started_out_of_order:
                started_out_of_order.discard(queue[head].id)
                head += 1
            if head >= 64 and head * 2 >= len(queue):
                del queue[:head]
                head = 0

        def peek_head() -> Optional[Job]:
            nonlocal pheap_stale
            if priority_key is None:
                prune_fifo_front()
                return queue[head] if head < len(queue) else None
            while pheap and pheap[0][2].id in started_out_of_order:
                started_out_of_order.discard(pheap[0][2].id)
                heapq.heappop(pheap)
                pheap_stale -= 1
            return pheap[0][2] if pheap else None

        def advance_head() -> None:
            nonlocal head
            if priority_key is None:
                head += 1
            else:
                heapq.heappop(pheap)

        def window_candidates():
            """Up to ``backfill_window`` waiting jobs after the head, in
            queue order."""
            if priority_key is None:
                yielded = 0
                idx = head
                while yielded < self.backfill_window:
                    idx += 1
                    if idx >= len(queue):
                        return
                    cand = queue[idx]
                    if cand.id in started_out_of_order:
                        continue
                    yielded += 1
                    yield cand
                return
            # At most ``pheap_stale`` of the snapshot entries are dead,
            # so this take still covers the head plus a full window of
            # live candidates; eager compaction keeps it O(window).
            take = self.backfill_window + 1 + pheap_stale
            snapshot = heapq.nsmallest(take, pheap)
            # Freeze the dead ids now: a backfill started mid-iteration
            # may trigger a compaction that removes them from the live
            # set, and a snapshot entry must not come back to life.
            # (Jobs started *during* this pass never need the check —
            # each snapshot entry is yielded at most once.)
            dead = started_out_of_order.intersection(
                e[2].id for e in snapshot
            )
            yielded = 0
            skipped_head = False
            for _, _, cand in snapshot:
                if cand.id in dead:
                    continue
                if not skipped_head:
                    skipped_head = True  # the head itself is not a candidate
                    continue
                yielded += 1
                yield cand
                if yielded >= self.backfill_window:
                    return

        def conservative_schedule(now: float) -> None:
            """Every job in the window gets a reservation; a job starts
            only if its reservation is 'now' (so no earlier job is ever
            delayed by a later one)."""
            nonlocal pending
            from repro.sched.profile import FOREVER, FreeProfile

            prune_fifo_front()
            failed: set = set()
            profile = FreeProfile(now, self.allocator.free_nodes)
            for est_end, eff_size in running.values():
                profile.release_at(est_end, eff_size)
            scanned = 0
            idx = head - 1
            while scanned <= self.backfill_window:
                idx += 1
                if idx >= len(queue):
                    break
                job = queue[idx]
                if job.id in started_out_of_order:
                    continue
                scanned += 1
                size = eff(job)
                wall = walltime_est(job)
                start = profile.earliest_fit(size, wall)
                key = (size, job.bw_need)
                if start <= now and key not in failed:
                    if try_start(job, now, via="reserved"):
                        note_started_out_of_order(job.id)
                        pending -= 1
                        profile.reserve(now, now + wall, size)
                        sample()
                        continue
                    failed.add(key)
                    # Fragmentation-blocked: the pattern can only change
                    # at the next expected release.
                    later = [t for t in profile._times if t > now]
                    start = later[0] if later else FOREVER
                if start != FOREVER:
                    profile.reserve(start, start + wall, size)

        def schedule(now: float) -> None:
            nonlocal pending
            if self.backfill_policy == "conservative":
                conservative_schedule(now)
                return
            failed: set = set()
            # FIFO phase: start from the head until something blocks.
            while pending:
                job = peek_head()
                assert job is not None
                if try_start(job, now):
                    advance_head()
                    pending -= 1
                    sample()
                else:
                    failed.add((eff(job), job.bw_need))
                    break
            if not pending or self.backfill_window <= 0:
                self._sticky = None
                return
            head_job = peek_head()
            assert head_job is not None
            # The head's reservation is computed when it first blocks and
            # honored according to the reservation policy.  Recomputing
            # every event ("slip") lets the shadow slip forever under
            # constrained allocators — the node-count shadow
            # underestimates when fragmentation, not node count, blocks
            # the head — which starves large jobs; never recomputing
            # ("sticky") forces full drains.  The default renews the
            # reservation only once its shadow time has passed.
            expired = (
                self._sticky is not None
                and self.reservation_policy == "renew"
                and now >= self._sticky[1].shadow_time
            )
            if (
                self._sticky is None
                or self._sticky[0] != head_job.id
                or self.reservation_policy == "slip"
                or expired
            ):
                self._sticky = (head_job.id, self._reservation(now, head_job, running))
            reservation = self._sticky[1]
            bspan = tracer.begin("backfill.window") if tracer.enabled else None
            scanned = 0
            started = 0
            for cand in window_candidates():
                scanned += 1
                key = (eff(cand), cand.bw_need)
                if key in failed:
                    continue
                if eff(cand) > self.allocator.free_nodes:
                    continue
                walltime = walltime_est(cand)
                if not may_backfill(
                    cand, now, walltime, self.allocator.free_nodes,
                    eff(cand), reservation,
                ):
                    continue
                if try_start(cand, now, via="backfill"):
                    note_started_out_of_order(cand.id)
                    pending -= 1
                    started += 1
                    sample()
                else:
                    failed.add(key)
            if bspan is not None:
                bspan.set(
                    window=self.backfill_window, scanned=scanned,
                    started=started, head=head_job.id,
                    shadow_time=reservation.shadow_time,
                )
                tracer.end(bspan)

        # --------------------------------------------------------------
        # Main loop
        # --------------------------------------------------------------
        makespan_start = last_t
        last_completion = last_t
        while events:
            t = events[0][0]
            if sampler is not None:
                # Boundaries before t see the state as of entering them:
                # sample *before* applying this batch or advancing areas.
                sampler.advance_to(t, sample_row)
            if tracer.enabled:
                tracer.sim_time = t
            advance(t)
            arrivals = 0
            completions = 0
            while events and events[0][0] == t:
                _, kind, ev_seq, payload = heapq.heappop(events)
                if kind == _FAULT_REPAIR:
                    resilience.repair(payload, t)
                    continue
                if kind == _FAULT_INJECT:
                    # Victims drain through the ordinary release path
                    # before the injector claims the hardware.
                    for victim_id in resilience.victims(payload):
                        kill_job(job_by_id[victim_id], t)
                    resilience.inject(payload, t)
                    continue
                job = payload
                if kind == _COMPLETION:
                    if resilience is not None:
                        if live_comp.get(job.id) != ev_seq:
                            continue  # orphaned by a kill; not a completion
                        live_comp.pop(job.id)
                    self.allocator.release(job.id)
                    if self.runtime_model is not None:
                        self.runtime_model.on_release(job.id)
                    running.pop(job.id)
                    cur_busy -= job.size
                    last_completion = t
                    completions += 1
                    if tracer.enabled:
                        attrs = {"job": job.id, "size": job.size}
                        tracer.instant("sched.complete", attrs)
                        if self.event_log is not None:
                            self.event_log.record(
                                t, "complete", job.id, job.size, attrs=attrs
                            )
                    elif self.event_log is not None:
                        self.event_log.record(t, "complete", job.id, job.size)
                    sample()
                else:
                    arrivals += 1
                    if self.event_log is not None:
                        self.event_log.record(t, "arrive", job.id, job.size)
                    enqueue(job)
            span = tracer.begin("sched.pass") if tracer.enabled else None
            queue_before = pending
            schedule(t)
            if span is not None:
                span.set(
                    arrivals=arrivals, completions=completions,
                    queue_before=queue_before, queue_after=pending,
                    started=queue_before - pending, running=len(running),
                    free_nodes=self.allocator.free_nodes,
                )
                tracer.end(span)
            if pending and not running and not events:
                # Nothing can ever start these jobs (should not happen
                # for valid traces; recorded for failure-injection tests).
                while (job := peek_head()) is not None:
                    unscheduled.append(job.id)
                    if self.event_log is not None:
                        self.event_log.record(t, "unscheduled", job.id, job.size)
                    advance_head()
                    pending -= 1
                break

        if sampler is not None:
            sampler.finish(last_t, sample_row)

        completed = [
            JobRecord(j.id, j.size, j.arrival, j.start, j.end)
            for j in jobs
            if j.end >= 0
        ]
        return SimResult(
            scheme=self.allocator.name,
            trace_name=name,
            system_nodes=n_system,
            jobs=completed,
            makespan=last_completion - makespan_start,
            busy_area=busy_area,
            demand_area=demand_area,
            total_busy_area=total_busy_area,
            instant=instant,
            sched_seconds=self.allocator.stats.alloc_seconds,
            alloc_attempts=self.allocator.stats.attempts,
            unscheduled=unscheduled,
            cache_hits=self.allocator.stats.cache_hits,
            cache_misses=self.allocator.stats.cache_misses,
            pods_pruned=self.allocator.stats.pods_pruned,
            candidate_hits=self.allocator.stats.candidate_hits,
            memo_hits=self.allocator.stats.memo_hits,
            backtrack_steps=self.allocator.stats.backtrack_steps,
            samples=list(sampler.rows) if sampler is not None else [],
            faults_injected=(
                resilience.stats.injected if resilience is not None else 0
            ),
            faults_repaired=(
                resilience.stats.repaired if resilience is not None else 0
            ),
            resubmissions=(
                resilience.stats.resubmissions if resilience is not None else 0
            ),
            wasted_node_seconds=(
                resilience.stats.wasted_node_seconds
                if resilience is not None else 0.0
            ),
            degraded_node_seconds=(
                resilience.stats.degraded_node_seconds
                if resilience is not None else 0.0
            ),
        )

    # ------------------------------------------------------------------
    def _reservation(
        self, now: float, head_job: Job, running: Dict[int, Tuple[float, int]]
    ) -> Reservation:
        return compute_reservation(
            now,
            self.allocator.effective_size(head_job.size),
            self.allocator.free_nodes,
            list(running.values()),
        )
