"""Discrete-event scheduler simulator (the evaluation vehicle, section 5).

The simulator replays a job-queue trace against one allocator:

* job arrivals and completions are the events;
* scheduling is FIFO + EASY backfilling with a lookahead window
  (:mod:`repro.sched.backfill`), run after every event batch;
* jobs run for their base run time under Baseline and for their
  isolated (sped-up) run time under the low-interference schemes;
* walltime estimates are perfect (actual run times), as is conventional
  for trace replay;
* metrics are accumulated exactly as section 5 defines them
  (:mod:`repro.sched.metrics`).

The implementation is split into two layers:

* the **event core** (:mod:`repro.sched.eventcore`) holds the trace as
  a column-array job table and the four event streams (arrivals,
  completions, fault repairs, fault injections) on sorted numpy arrays,
  merged one *round* at a time;
* the **policy layer** (:class:`_RunState`, below) holds the mutable
  scheduling state of one run — queue, reservations, running set,
  areas — and applies the drained events and scheduling passes.

Two drive modes share that machinery:

* **event-driven** (``step_interval=None``, the default): every round
  covers exactly one event timestamp and a scheduling pass follows
  every event batch — the classic discrete-event replay, held
  bit-identical across refactors by ``benchmarks/_fingerprint.py``;
* **batch-step** (``step_interval=Δt``): scheduling runs on the fixed
  grid ``t0 + k·Δt`` (Firmament's ``batch_step_seconds`` shape).
  Arrivals, completions and fault events accumulate between rounds;
  each round first drains everything up to its boundary in event order,
  then runs one scheduling pass.  Jobs start only at round boundaries,
  trading a bounded start lag (≤ Δt, surfaced as the ``step_lag``
  sampler column) for far fewer scheduling passes on bursty traces —
  the fidelity/throughput trade is quantified by
  ``benchmarks/bench_batch_fidelity.py``.

Within one scheduling pass, allocation failures are memoized by
(effective size, bandwidth need): state only shrinks during a pass, so a
failed size stays failed — this makes wide backfill windows cheap
without changing any scheduling decision.  The allocator extends the
same argument *across* passes with its feasibility cache (see
:mod:`repro.core.allocator`): a failure stays proven until the next
release, so pure-arrival event batches never repeat a lost search.
"""

from __future__ import annotations

import heapq
import math
import os
from itertools import count
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allocator import Allocator
from repro.obs.sampler import simulator_row
from repro.sched.backfill import (
    Reservation,
    compute_reservation,
    may_backfill,
    reservation_from_arrays,
)
from repro.sched.eventcore import (
    ARRIVAL,
    COMPLETION,
    FAULT_INJECT,
    FAULT_REPAIR,
    ArrayEventQueue,
    CompletionQueue,
    EventStreams,
    JobTable,
    RunningSet,
    round_boundary,
)
from repro.sched.job import Job
from repro.sched.metrics import InstantHistogram, JobRecord, SimResult
from repro.sched.resilience import (
    VICTIM_POLICIES,
    FaultTimeline,
    ResilienceManager,
)

# Backward-compatible aliases: the kind constants moved to eventcore
# (their equal-time ordering is documented there).
_FAULT_REPAIR = FAULT_REPAIR
_COMPLETION = COMPLETION
_ARRIVAL = ARRIVAL
_FAULT_INJECT = FAULT_INJECT


class Simulator:
    """Replay a trace against one allocator and measure the outcome.

    Parameters
    ----------
    allocator:
        A fresh allocator (its cluster must be idle).
    backfill_window:
        How many queued jobs past the head EASY may consider (the paper
        uses 50; 0 disables backfilling, i.e. pure FIFO).
    step_interval:
        ``None`` (default) replays event-driven: one scheduling pass per
        event batch.  A positive Δt selects batch-step mode: scheduling
        rounds on the grid ``first_event + k·Δt``, with events
        accumulating between rounds (see the module docstring).
    use_vector_pass:
        ``True`` (default) runs the column-oriented scheduling pass:
        queue scans are batched over the job table's size/bandwidth
        columns, proven-infeasible candidates are skipped without a
        search (charged through ``Allocator.charge_skip`` so the
        attempt accounting is unchanged), and the backfill bookkeeping
        is vectorized.  ``False`` — or ``REPRO_NAIVE_PASS=1`` in the
        environment — selects the scalar twin; both produce identical
        placements (``benchmarks/_fingerprint.py --vs-scalar``).
    use_columnar_events:
        ``True`` (default) drains events between scheduling passes in
        columnar batches: completions release their allocations through
        one :meth:`~repro.core.allocator.Allocator.release_many` call
        (a single occupancy-index update and one grouped
        feasibility-cache invalidation), arrivals enqueue as a bulk
        state transition, and fault kills drain victims through the
        same bulk release path.  ``False`` — or ``REPRO_NAIVE_EVENTS=1``
        in the environment — selects the historical one-event-at-a-time
        twin; both produce identical decisions
        (``benchmarks/_fingerprint.py --vs-scalar-events``).  Runs that
        attach per-event telemetry (a sampler, an enabled tracer, or an
        event log) always take the scalar drain, which keeps the
        telemetry stream per-event without changing any decision.
    provenance:
        ``True`` records per-job scheduling provenance on the job-table
        columns — first-eligible time, attempt count, and every skipped
        or failed attempt broken down by reason — exported as
        ``SimResult.provenance`` (see ``docs/observability.md``).
        Strictly passive; off by default.
    """

    #: how the head's reservation evolves while it waits:
    #: ``renew`` (default) — honored until its shadow time passes, then
    #: recomputed; ``sticky`` — computed once, honored until the head
    #: starts (forces drains); ``slip`` — recomputed at every event (the
    #: shadow can slip forever under constrained allocators).
    RESERVATION_POLICIES = ("renew", "sticky", "slip")

    #: how out-of-order starts are planned: ``easy`` (single head
    #: reservation, the paper's setup) or ``conservative`` (every queued
    #: job in the window holds a reservation; nothing delays an earlier
    #: one — a classic alternative, provided as an extension)
    BACKFILL_POLICIES = ("easy", "conservative")

    #: how the waiting queue is ordered: ``fifo`` (arrival order, the
    #: paper's setup) or one of the classic priority orders, provided as
    #: extensions: ``sjf`` (shortest estimated walltime first),
    #: ``smallest``/``largest`` (by node count).  Ties fall back to
    #: arrival order.
    QUEUE_ORDERS = ("fifo", "sjf", "smallest", "largest")

    #: minimum number of stale priority-heap entries before an eager
    #: compaction is considered (tests lower this to force compaction;
    #: the schedule must not change either way)
    PHEAP_COMPACT_MIN = 16

    def __init__(
        self,
        allocator: Allocator,
        backfill_window: int = 50,
        reservation_policy: str = "renew",
        backfill_policy: str = "easy",
        estimate_factor: float = 1.0,
        runtime_model=None,
        queue_order: str = "fifo",
        event_log=None,
        tracer=None,
        sampler=None,
        fault_timeline=None,
        fault_victim_policy: str = "requeue-full",
        checkpoint_interval: float = 0.0,
        step_interval: Optional[float] = None,
        use_vector_pass: bool = True,
        use_columnar_events: bool = True,
        provenance: bool = False,
    ):
        if not allocator.state.is_idle():
            raise ValueError("allocator must start idle")
        if reservation_policy not in self.RESERVATION_POLICIES:
            raise ValueError(
                f"unknown reservation policy {reservation_policy!r}; "
                f"expected one of {self.RESERVATION_POLICIES}"
            )
        if backfill_policy not in self.BACKFILL_POLICIES:
            raise ValueError(
                f"unknown backfill policy {backfill_policy!r}; "
                f"expected one of {self.BACKFILL_POLICIES}"
            )
        if estimate_factor < 1.0:
            raise ValueError("estimate_factor must be >= 1 (users overestimate)")
        if queue_order not in self.QUEUE_ORDERS:
            raise ValueError(
                f"unknown queue order {queue_order!r}; "
                f"expected one of {self.QUEUE_ORDERS}"
            )
        if queue_order != "fifo" and backfill_policy != "easy":
            raise ValueError(
                "priority queue orders are only supported with EASY backfilling"
            )
        if fault_victim_policy not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown victim policy {fault_victim_policy!r}; "
                f"expected one of {VICTIM_POLICIES}"
            )
        if checkpoint_interval < 0:
            raise ValueError("checkpoint_interval must be non-negative")
        if step_interval is not None and step_interval <= 0:
            raise ValueError("step_interval must be positive (or None)")
        self.allocator = allocator
        self.backfill_window = backfill_window
        self.reservation_policy = reservation_policy
        self.backfill_policy = backfill_policy
        #: walltime estimates are actual runtimes scaled by this factor
        #: (1.0 = the paper's perfect estimates)
        self.estimate_factor = estimate_factor
        #: optional contention-aware runtime model (see
        #: :mod:`repro.sched.interference`); when set, it replaces the
        #: scenario-based speed-ups entirely: runtimes are the jobs' base
        #: runtimes extended by the measured contention factor
        self.runtime_model = runtime_model
        self.queue_order = queue_order
        #: optional :class:`repro.sched.log.ScheduleLog` audit trail
        self.event_log = event_log
        #: optional :class:`repro.obs.tracer.Tracer`; when set it is also
        #: installed on the allocator so one trace covers both layers.
        #: ``None`` falls back to whatever tracer the allocator carries
        #: (the process-global one unless someone installed another).
        self.tracer = tracer
        #: optional :class:`repro.obs.sampler.TimeSeriesSampler`; when
        #: set, ``run`` fills it and the rows land in ``SimResult.samples``
        self.sampler = sampler
        #: optional fail/repair timeline consumed by the event loop (see
        #: :mod:`repro.sched.resilience`); empty = fault-free, with the
        #: guarantee that the run is event-for-event identical to one
        #: without any resilience machinery at all
        self.fault_timeline = FaultTimeline.coerce(fault_timeline)
        self.fault_victim_policy = fault_victim_policy
        self.checkpoint_interval = checkpoint_interval
        #: batch-step round length (None = event-driven)
        self.step_interval = step_interval
        #: column-oriented scheduling pass (the scalar twin stays
        #: available for invariance checks; the env knob mirrors
        #: ``REPRO_NAIVE_SEARCH`` in :mod:`repro.core.registry`)
        if os.environ.get("REPRO_NAIVE_PASS", "") not in ("", "0"):
            use_vector_pass = False
        self.use_vector_pass = bool(use_vector_pass)
        #: columnar event drain between passes (scalar twin stays
        #: available for invariance checks, same knob pattern)
        if os.environ.get("REPRO_NAIVE_EVENTS", "") not in ("", "0"):
            use_columnar_events = False
        self.use_columnar_events = bool(use_columnar_events)
        #: per-job provenance recording (lifecycle timeline plus skip
        #: reasons on the job-table columns; see
        #: :meth:`_RunState._provenance_rows`).  Strictly passive — the
        #: columns are write-only during the run and the recording sites
        #: never read scheduling state (``_fingerprint.py --prof``).
        self.provenance = bool(provenance)
        self.low_interference = allocator.low_interference
        #: the head job's current reservation: (job id, Reservation)
        self._sticky: Optional[Tuple[int, Reservation]] = None
        #: high-water marks of the live bookkeeping structures, exposed
        #: so tests can assert the queue stays bounded on long traces
        self.peak_queue_len = 0
        self.peak_started_out_of_order = 0
        self.peak_pheap_stale = 0

    # ------------------------------------------------------------------
    def run(self, trace, trace_name: Optional[str] = None) -> SimResult:
        """Simulate ``trace`` (a ``Trace`` or a sequence of jobs)."""
        jobs: List[Job] = list(getattr(trace, "jobs", trace))
        name = trace_name or getattr(trace, "name", "trace")
        self._sticky = None
        self.peak_queue_len = 0
        self.peak_started_out_of_order = 0
        self.peak_pheap_stale = 0
        tree = self.allocator.tree
        for job in jobs:
            job.reset()
        table = JobTable(jobs)
        bad = table.first_oversized(
            self.allocator.effective_size, tree.num_nodes
        )
        if bad is not None:
            raise ValueError(
                f"job {bad.id} needs {bad.size} nodes "
                f"(effective {self.allocator.effective_size(bad.size)}) "
                f"but the cluster has {tree.num_nodes}"
            )
        state = _RunState(self, table)
        state.drive()
        return state.result(name)

    # ------------------------------------------------------------------
    def _reservation(
        self, now: float, head_job: Job,
        running_pairs: List[Tuple[float, int]],
    ) -> Reservation:
        return compute_reservation(
            now,
            self.allocator.effective_size(head_job.size),
            self.allocator.free_nodes,
            list(running_pairs),
        )


class _RunState:
    """Mutable scheduling state of one ``Simulator.run``.

    The policy layer over :mod:`repro.sched.eventcore`: it owns the
    waiting queue(s), the running set, the area accumulators and the
    resilience bookkeeping, and exposes the event handlers
    (:meth:`try_start`, :meth:`kill_job`, …) as methods so tests can
    observe or wrap individual transitions.
    """

    def __init__(self, sim: Simulator, table: JobTable):
        self.sim = sim
        self.table = table
        self.allocator = sim.allocator
        self.tracer = (
            sim.tracer if sim.tracer is not None else sim.allocator.tracer
        )
        if sim.tracer is not None:
            sim.allocator.tracer = self.tracer
        self.sampler = sim.sampler
        self.event_log = sim.event_log

        # Event streams: arrivals and fault events are pre-known;
        # completions are discovered as jobs start.
        faults = sim.fault_timeline.faults
        self.streams = EventStreams(
            table.arrival_queue(),
            CompletionQueue(),
            repairs=ArrayEventQueue(
                [spec.end for spec in faults if spec.end is not None],
                [i for i, spec in enumerate(faults) if spec.end is not None],
            ),
            injects=ArrayEventQueue(
                [spec.start for spec in faults], list(range(len(faults)))
            ),
        )

        self.queue: List[Job] = []
        self.head = 0
        #: priority heap used instead of the FIFO list for non-FIFO orders
        self.pheap: List[Tuple[float, int, Job]] = []
        #: tie-break counter for priority-heap entries (push order)
        self._pseq = count()
        self.started_out_of_order: set = set()
        #: stale pheap entries (jobs that already started out of order);
        #: in priority mode ``started_out_of_order`` holds exactly the
        #: ids of these entries, so the two counts track together
        self.pheap_stale = 0
        self.pending = 0
        #: running jobs as an index of job-table rows; the per-run
        #: planning columns (``est_end``, ``eff_size``) live on the
        #: table, so reservation/backfill arithmetic reads column
        #: slices instead of rebuilding arrays from a dict
        self.run_rows = RunningSet(len(table))
        self.cur_busy = 0  # requested nodes currently computing
        #: columnar event drain between passes; per-event telemetry
        #: sinks force the scalar twin (identical decisions either way)
        self.columnar_drain = (
            sim.use_columnar_events
            and sim.sampler is None
            and sim.event_log is None
            and not self.tracer.enabled
        )
        #: per-job provenance recording (pass-level: the recording
        #: sites are ``try_start``/``dispatch_start``, which both
        #: drains share, so the columnar gate above is unaffected)
        self.provenance = sim.provenance

        self.instant = InstantHistogram()
        self.busy_area = 0.0
        self.demand_area = 0.0
        self.total_busy_area = 0.0
        self.last_t = table.first_arrival
        self.n_system = sim.allocator.tree.num_nodes
        self.unscheduled: List[int] = []
        self.makespan_start = self.last_t
        self.last_completion = self.last_t
        #: scheduling passes run (rounds, in batch-step terms)
        self.rounds = 0
        #: simulation time of the most recent scheduling pass (feeds the
        #: ``step_lag`` sampler column)
        self.last_sched_t = self.last_t

        # Resilience machinery, engaged only for a non-empty timeline.
        # Every touch point below is gated on ``resilience is not None``
        # so a fault-free run takes exactly the historical code path —
        # the empty-timeline fingerprint check holds the gate to that.
        self.resilience: Optional[ResilienceManager] = None
        #: job id -> slot of its live completion event; a kill orphans
        #: the queued entry, which is dropped on drain by this check
        self.live_comp: Dict[int, int] = {}
        if sim.fault_timeline:
            self.resilience = ResilienceManager(
                sim.allocator,
                sim.fault_timeline,
                sim.fault_victim_policy,
                sim.checkpoint_interval,
                tracer=self.tracer,
                event_log=sim.event_log,
            )

        if self.tracer.enabled:
            self.tracer.sim_time = self.last_t
        if self.sampler is not None:
            self.sampler.reset(self.last_t)

        self.priority_key = None
        if sim.queue_order == "sjf":
            self.priority_key = self.walltime_est
        elif sim.queue_order == "smallest":
            self.priority_key = lambda job: job.size
        elif sim.queue_order == "largest":
            self.priority_key = lambda job: -job.size

    # -- running-set views ---------------------------------------------
    @property
    def running(self) -> Dict[int, Tuple[float, int]]:
        """Dict view ``id -> (est_end, eff_size)`` of the running set.

        Diagnostics/tests only — built on demand from the job-table
        columns; hot paths read :attr:`run_rows` and the columns
        directly.
        """
        table = self.table
        return {
            int(table.ids[r]): (
                float(table.est_end[r]), int(table.eff_size[r])
            )
            for r in self.run_rows.rows().tolist()
        }

    def running_pairs(self) -> List[Tuple[float, int]]:
        """``(est_end, eff_size)`` of every running job (reservation
        profiles sort these, so the index's swap-remove order is
        immaterial)."""
        table = self.table
        rows = self.run_rows.rows()
        return list(
            zip(table.est_end[rows].tolist(), table.eff_size[rows].tolist())
        )

    @property
    def work_frac(self) -> Dict[int, float]:
        """Dict view of the remaining-work column (diagnostics/tests):
        ids whose remaining fraction has shrunk below 1."""
        table = self.table
        wf = table.work_frac
        return {
            int(table.ids[i]): float(wf[i])
            for i in np.flatnonzero(wf != 1.0).tolist()
        }

    # -- telemetry -----------------------------------------------------
    def sample_row(self, boundary: float) -> dict:
        resilience = self.resilience
        return simulator_row(
            boundary, self.allocator, self.pending, len(self.run_rows),
            self.cur_busy,
            resilience.degraded_nodes if resilience is not None else 0,
            step_lag=max(0.0, boundary - self.last_sched_t),
        )

    # -- accounting ----------------------------------------------------
    def advance(self, t: float) -> None:
        dt = t - self.last_t
        if dt > 0:
            self.total_busy_area += self.cur_busy * dt
            if self.pending > 0:
                self.busy_area += self.cur_busy * dt
                # The under-demand capacity excludes fault-claimed
                # nodes: work that cannot be placed anywhere is not
                # scheduler loss.
                self.demand_area += self.capacity() * dt
            if self.resilience is not None:
                self.resilience.stats.degraded_node_seconds += (
                    self.resilience.degraded_nodes * dt
                )
            self.last_t = t

    def capacity(self) -> int:
        """Nodes currently in service (system size minus fault-claimed)."""
        if self.resilience is not None:
            return self.n_system - self.resilience.degraded_nodes
        return self.n_system

    def sample(self) -> None:
        if self.pending > 0:
            cap = self.capacity()
            if cap > 0:
                self.instant.add(100.0 * self.cur_busy / cap)

    # -- planning estimates --------------------------------------------
    def eff(self, job: Job) -> int:
        return self.allocator.effective_size(job.size)

    def plan_runtime(self, job: Job) -> float:
        """The base runtime every planning estimate starts from.

        Under a contention runtime model the slowdown factor is unknown
        until placement, so planning uses the unscaled base runtime;
        otherwise the scheme's scenario runtime.  ``walltime_est`` and
        the running-job completion estimates both build on this — one
        source, so the head's shadow time and ``may_backfill`` can never
        disagree about the same job.
        """
        if self.sim.runtime_model is not None:
            return job.runtime
        return job.runtime_under(self.sim.low_interference)

    def walltime_est(self, job: Job) -> float:
        """The (possibly overestimated) walltime planning uses."""
        est = self.plan_runtime(job) * self.sim.estimate_factor
        if self.resilience is not None:
            # A checkpoint-restarted job only redoes its lost work.
            est *= float(self.table.work_frac[job.row])
        return est

    # -- provenance ----------------------------------------------------
    def prov_attempt(self, job: Job, now: float) -> None:
        """Record one charged allocation attempt (real or skipped) for
        ``job`` and stamp the first time the scheduler considered it."""
        table = self.table
        row = job.row
        table.attempt_count[row] += 1
        if math.isnan(table.first_eligible[row]):
            table.first_eligible[row] = now

    def _provenance_rows(self) -> List[dict]:
        """One plain dict per trace job: lifecycle timeline plus the
        per-reason skip accounting (the ``SimResult.provenance``
        export; column catalog in ``docs/observability.md``)."""
        table = self.table
        names = {
            JobTable.PENDING: "pending", JobTable.QUEUED: "queued",
            JobTable.RUNNING: "running", JobTable.DONE: "completed",
            JobTable.UNSCHEDULED: "unscheduled",
        }
        rows = []
        for i, job in enumerate(table.jobs):
            fe = float(table.first_eligible[i])
            started = job.start >= 0
            rows.append({
                "job_id": int(table.ids[i]),
                "size": int(table.sizes[i]),
                "arrival": float(table.arrivals[i]),
                "first_eligible": None if math.isnan(fe) else fe,
                "attempts": int(table.attempt_count[i]),
                "skip_cache": int(table.skip_cache[i]),
                "skip_cut": int(table.skip_cut[i]),
                "skip_screen": int(table.skip_screen[i]),
                "skip_search": int(table.skip_search[i]),
                "skip_budget": int(table.skip_budget[i]),
                "start": job.start if started else None,
                "end": job.end if started else None,
                "wait": (job.start - job.arrival) if started else None,
                "state": names[int(table.state[i])],
            })
        return rows

    # -- transitions ---------------------------------------------------
    def try_start(self, job: Job, now: float, via: str = "fifo") -> bool:
        sim = self.sim
        if self.provenance:
            self.prov_attempt(job, now)
            # Classify a failure *before* the call: the cache verdict
            # is consumed inside allocate(), and the budget flag is
            # only fresh if the search actually ran (a free-node
            # shortfall skips it, leaving the flag stale).
            allocator = self.allocator
            allocator._check_watermark()
            was_cached = (
                (allocator.effective_size(job.size), job.bw_need)
                in allocator._failed_keys
            )
            had_room = job.size <= allocator.state.free_nodes_total
        alloc = self.allocator.allocate(job.id, job.size, bw_need=job.bw_need)
        if alloc is None:
            if self.provenance:
                table = self.table
                if was_cached:
                    table.skip_cache[job.row] += 1
                elif had_room and getattr(
                    self.allocator, "_budget_exhausted", False
                ):
                    table.skip_budget[job.row] += 1
                else:
                    table.skip_search[job.row] += 1
            return False
        tracer = self.tracer
        if tracer.enabled:
            # One dict serves both sinks: the trace's instant event
            # and the audit log's attrs column stay joinable.
            attrs = {"wait": now - job.arrival, "via": via,
                     "job": job.id, "size": job.size}
            tracer.instant("sched.start", attrs)
            if self.event_log is not None:
                self.event_log.record(
                    now, "start", job.id, job.size, via, attrs=attrs
                )
        elif self.event_log is not None:
            self.event_log.record(now, "start", job.id, job.size, via)
        job.start = now
        if sim.runtime_model is not None:
            factor = sim.runtime_model.on_start(
                alloc, self.allocator.isolating
            )
            actual = job.runtime * factor
        else:
            actual = job.runtime_under(sim.low_interference)
        if self.resilience is not None:
            actual *= float(self.table.work_frac[job.row])
        job.end = now + actual
        slot = self.streams.completions.push(job.end, job)
        if self.resilience is not None:
            self.live_comp[job.id] = slot
        # Planning sees the *estimated* completion time — the same
        # estimate ``walltime_est`` hands the backfill rules, so the
        # shadow computed from the running columns and the window
        # checks agree.
        row = job.row
        table = self.table
        table.est_end[row] = now + self.walltime_est(job)
        table.eff_size[row] = self.eff(job)
        self.run_rows.add(row)
        table.state[row] = JobTable.RUNNING
        self.cur_busy += job.size
        return True

    def enqueue(self, job: Job) -> None:
        sim = self.sim
        if self.priority_key is None:
            self.queue.append(job)
            sim.peak_queue_len = max(sim.peak_queue_len, len(self.queue))
        else:
            heapq.heappush(
                self.pheap, (self.priority_key(job), next(self._pseq), job)
            )
            sim.peak_queue_len = max(sim.peak_queue_len, len(self.pheap))
        self.pending += 1
        self.table.state[self.table.row_of[job.id]] = JobTable.QUEUED

    def note_started_out_of_order(self, job_id: int) -> None:
        sim = self.sim
        self.started_out_of_order.add(job_id)
        sim.peak_started_out_of_order = max(
            sim.peak_started_out_of_order, len(self.started_out_of_order)
        )
        if self.priority_key is not None:
            self.pheap_stale += 1
            sim.peak_pheap_stale = max(sim.peak_pheap_stale, self.pheap_stale)
            self.compact_pheap()

    def compact_pheap(self) -> None:
        """Rebuild the priority heap without its stale entries once
        they dominate it.  Amortized O(1) per event; pure
        bookkeeping — the set of live entries (and hence every
        scheduling decision) is unchanged.  Without this, each
        ``window_candidates`` snapshot pays O(Q log Q) as the stale
        share grows on long traces."""
        if (
            self.pheap_stale < self.sim.PHEAP_COMPACT_MIN
            or self.pheap_stale * 2 < len(self.pheap)
        ):
            return
        pheap = self.pheap
        live = [e for e in pheap if e[2].id not in self.started_out_of_order]
        self.started_out_of_order.difference_update(
            e[2].id for e in pheap if e[2].id in self.started_out_of_order
        )
        pheap[:] = live
        heapq.heapify(pheap)
        self.pheap_stale = 0

    def purge_queued(self, job: Job) -> None:
        """Remove a killed job's stale queue entry, if any.

        A job that started out of order leaves its entry in the
        queue (lazily skipped once the head passes it).  Re-enqueuing
        the same Job object behind that stale entry would confuse
        the lazy bookkeeping — backfill would skip the live entry,
        and after the stale one is pruned the running job could be
        offered to the allocator twice — so kills purge eagerly.
        Kills are rare; O(queue) is fine here.
        """
        if job.id not in self.started_out_of_order:
            return
        self.started_out_of_order.discard(job.id)
        if self.priority_key is None:
            for i in range(self.head, len(self.queue)):
                if self.queue[i] is job:
                    del self.queue[i]
                    return
        else:
            pheap = self.pheap
            live = [e for e in pheap if e[2] is not job]
            self.pheap_stale -= len(pheap) - len(live)
            pheap[:] = live
            heapq.heapify(pheap)

    def kill_job(self, job: Job, now: float, released: bool = False) -> None:
        """Drain one fault victim through the ordinary release path
        and resubmit it per the active queue order.  ``released=True``
        means the caller already returned the allocation (the bulk
        path in :meth:`kill_jobs`)."""
        resilience = self.resilience
        elapsed = now - job.start
        planned = job.end - job.start
        saved = min(resilience.saved_work(elapsed), planned)
        if not released:
            self.allocator.release(job.id)
        if self.sim.runtime_model is not None:
            self.sim.runtime_model.on_release(job.id)
        self.run_rows.discard(job.row)
        self.live_comp.pop(job.id, None)
        self.cur_busy -= job.size
        resilience.stats.wasted_node_seconds += (elapsed - saved) * job.size
        resilience.stats.resubmissions += 1
        if planned > 0 and saved > 0:
            wf = self.table.work_frac
            wf[job.row] = float(wf[job.row]) * (1.0 - saved / planned)
        job.start = -1.0
        job.end = -1.0
        if self.tracer.enabled:
            attrs = {"job": job.id, "size": job.size,
                     "elapsed": elapsed, "saved": saved}
            self.tracer.instant("sched.kill", attrs)
            if self.event_log is not None:
                self.event_log.record(
                    now, "kill", job.id, job.size, attrs=attrs
                )
        elif self.event_log is not None:
            self.event_log.record(now, "kill", job.id, job.size)
        self.purge_queued(job)
        self.enqueue(job)
        if self.event_log is not None:
            self.event_log.record(now, "requeue", job.id, job.size)
        self.sample()

    def kill_jobs(self, jobs: List[Job], now: float) -> None:
        """Drain a fault's victims through the bulk release path.

        One grouped :meth:`~repro.core.allocator.Allocator.release_many`
        returns every victim's allocation, then each victim runs the
        ordinary :meth:`kill_job` bookkeeping (in the same sorted-id
        order the scalar twin uses, so requeue order is identical).
        """
        self.allocator.release_many([job.id for job in jobs])
        for job in jobs:
            self.kill_job(job, now, released=True)

    # -- queue views ---------------------------------------------------
    def prune_fifo_front(self) -> None:
        """Advance ``head`` past jobs that already started out of
        order (pruning them from the tracking set — once the head
        passes a job it can never be looked up again) and compact
        the FIFO list once at least half of it is dead prefix.  Both
        are amortized O(1) per event; without them ``queue`` and
        ``started_out_of_order`` grow with every job ever enqueued."""
        queue = self.queue
        while (
            self.head < len(queue)
            and queue[self.head].id in self.started_out_of_order
        ):
            self.started_out_of_order.discard(queue[self.head].id)
            self.head += 1
        if self.head >= 64 and self.head * 2 >= len(queue):
            del queue[:self.head]
            self.head = 0

    def peek_head(self) -> Optional[Job]:
        if self.priority_key is None:
            self.prune_fifo_front()
            return (
                self.queue[self.head]
                if self.head < len(self.queue)
                else None
            )
        pheap = self.pheap
        while pheap and pheap[0][2].id in self.started_out_of_order:
            self.started_out_of_order.discard(pheap[0][2].id)
            heapq.heappop(pheap)
            self.pheap_stale -= 1
        return pheap[0][2] if pheap else None

    def advance_head(self) -> None:
        if self.priority_key is None:
            self.head += 1
        else:
            heapq.heappop(self.pheap)

    def window_candidates(self):
        """Up to ``backfill_window`` waiting jobs after the head, in
        queue order."""
        window = self.sim.backfill_window
        if self.priority_key is None:
            yielded = 0
            idx = self.head
            while yielded < window:
                idx += 1
                if idx >= len(self.queue):
                    return
                cand = self.queue[idx]
                if cand.id in self.started_out_of_order:
                    continue
                yielded += 1
                yield cand
            return
        # At most ``pheap_stale`` of the snapshot entries are dead,
        # so this take still covers the head plus a full window of
        # live candidates; eager compaction keeps it O(window).
        take = window + 1 + self.pheap_stale
        snapshot = heapq.nsmallest(take, self.pheap)
        # Freeze the dead ids now: a backfill started mid-iteration
        # may trigger a compaction that removes them from the live
        # set, and a snapshot entry must not come back to life.
        # (Jobs started *during* this pass never need the check —
        # each snapshot entry is yielded at most once.)
        dead = self.started_out_of_order.intersection(
            e[2].id for e in snapshot
        )
        yielded = 0
        skipped_head = False
        for _, _, cand in snapshot:
            if cand.id in dead:
                continue
            if not skipped_head:
                skipped_head = True  # the head itself is not a candidate
                continue
            yielded += 1
            yield cand
            if yielded >= window:
                return

    # -- scheduling passes ---------------------------------------------
    def conservative_schedule(self, now: float) -> None:
        """Every job in the window gets a reservation; a job starts
        only if its reservation is 'now' (so no earlier job is ever
        delayed by a later one)."""
        from repro.sched.profile import FOREVER, FreeProfile

        self.prune_fifo_front()
        failed: set = set()
        profile = FreeProfile(now, self.allocator.free_nodes)
        for est_end, eff_size in self.running_pairs():
            profile.release_at(est_end, eff_size)
        scanned = 0
        idx = self.head - 1
        while scanned <= self.sim.backfill_window:
            idx += 1
            if idx >= len(self.queue):
                break
            job = self.queue[idx]
            if job.id in self.started_out_of_order:
                continue
            scanned += 1
            size = self.eff(job)
            wall = self.walltime_est(job)
            start = profile.earliest_fit(size, wall)
            key = (size, job.bw_need)
            if start <= now:
                if key not in failed and self.try_start(
                    job, now, via="reserved"
                ):
                    self.note_started_out_of_order(job.id)
                    self.pending -= 1
                    profile.reserve(now, now + wall, size)
                    self.sample()
                    continue
                # The profile says the job fits now but the allocator
                # has already proven (this pass) that it cannot place
                # the shape — fragmentation-blocked.  Reserving at
                # ``now`` anyway would book capacity the job provably
                # cannot use and push every later reservation behind
                # phantom load, so the reservation defers to the next
                # expected release, where the free pattern can change.
                failed.add(key)
                later = [t for t in profile._times if t > now]
                start = later[0] if later else FOREVER
            if start != FOREVER:
                profile.reserve(start, start + wall, size)

    def schedule(self, now: float) -> None:
        """One scheduling pass: dispatch to the policy × pass-mode
        implementation.  The vector and scalar twins of each policy
        make identical decisions (held to it by the twin-driver tests
        and ``_fingerprint.py --vs-scalar``); the vector passes replace
        provably-lost allocator searches with ``charge_skip`` and run
        the window bookkeeping on the job-table columns."""
        sim = self.sim
        if sim.backfill_policy == "conservative":
            if sim.use_vector_pass:
                self.conservative_schedule_vector(now)
            else:
                self.conservative_schedule(now)
            return
        if sim.use_vector_pass:
            self.easy_schedule_vector(now)
        else:
            self.easy_schedule(now)

    def easy_schedule(self, now: float) -> None:
        """Scalar EASY pass (the ``REPRO_NAIVE_PASS=1`` twin)."""
        sim = self.sim
        failed: set = set()
        # FIFO phase: start from the head until something blocks.
        while self.pending:
            job = self.peek_head()
            assert job is not None
            if self.try_start(job, now):
                self.advance_head()
                self.pending -= 1
                self.sample()
            else:
                failed.add((self.eff(job), job.bw_need))
                break
        if not self.pending or sim.backfill_window <= 0:
            sim._sticky = None
            return
        head_job = self.peek_head()
        assert head_job is not None
        # The head's reservation is computed when it first blocks and
        # honored according to the reservation policy.  Recomputing
        # every event ("slip") lets the shadow slip forever under
        # constrained allocators — the node-count shadow
        # underestimates when fragmentation, not node count, blocks
        # the head — which starves large jobs; never recomputing
        # ("sticky") forces full drains.  The default renews the
        # reservation only once its shadow time has passed.
        expired = (
            sim._sticky is not None
            and sim.reservation_policy == "renew"
            and now >= sim._sticky[1].shadow_time
        )
        if (
            sim._sticky is None
            or sim._sticky[0] != head_job.id
            or sim.reservation_policy == "slip"
            or expired
        ):
            sim._sticky = (
                head_job.id,
                sim._reservation(now, head_job, self.running_pairs()),
            )
        reservation = sim._sticky[1]
        tracer = self.tracer
        bspan = tracer.begin("backfill.window") if tracer.enabled else None
        scanned = 0
        started = 0
        for cand in self.window_candidates():
            scanned += 1
            key = (self.eff(cand), cand.bw_need)
            if key in failed:
                continue
            if self.eff(cand) > self.allocator.free_nodes:
                continue
            walltime = self.walltime_est(cand)
            if not may_backfill(
                cand, now, walltime, self.allocator.free_nodes,
                self.eff(cand), reservation,
            ):
                continue
            if self.try_start(cand, now, via="backfill"):
                self.note_started_out_of_order(cand.id)
                self.pending -= 1
                started += 1
                self.sample()
            else:
                failed.add(key)
        if bspan is not None:
            bspan.set(
                window=sim.backfill_window, scanned=scanned,
                started=started, head=head_job.id,
                shadow_time=reservation.shadow_time,
            )
            tracer.end(bspan)

    # -- vectorized scheduling pass --------------------------------------
    #
    # The vector pass makes exactly the decisions the scalar pass makes.
    # Its speed comes from never *running* a search whose failure is
    # already proven: the feasibility cache, the monotone size cut and
    # the allocator's batch screen are all durable-infeasibility proofs,
    # so a candidate they condemn is skipped via ``charge_skip`` — which
    # moves the attempt/failure/cache counters exactly as the failed
    # ``allocate`` would have.  Everything else (walltime estimates,
    # shadow arithmetic, reservation profiles) is the same float/int
    # arithmetic lifted onto the job-table columns.

    def dispatch_start(
        self, job: Job, now: float, via: str, key, screened: bool = False
    ) -> bool:
        """``try_start`` with proven-failure short-circuits.

        Checks, in order: the allocator's feasibility cache, the
        monotone size cut, then the caller's precomputed batch-screen
        verdict (one batch call covers a whole window; head dispatches
        skip the screen — a head fails at most once per pass and that
        failure is durably cached).  Each is a durable proof that the
        search would fail, so the skip is charged like the failed
        ``allocate`` and the verdict is identical — only the lost
        search is saved.
        """
        alloc = self.allocator
        if key in alloc._failed_keys:
            if self.provenance:
                self.prov_attempt(job, now)
                self.table.skip_cache[job.row] += 1
            alloc.charge_skip(job.id, job.size, job.bw_need, "cache")
            return False
        if alloc.cut_infeasible(key[0], key[1]):
            if self.provenance:
                self.prov_attempt(job, now)
                self.table.skip_cut[job.row] += 1
            alloc.charge_skip(job.id, job.size, job.bw_need, "cut")
            return False
        if screened:
            if self.provenance:
                self.prov_attempt(job, now)
                self.table.skip_screen[job.row] += 1
            alloc.charge_skip(job.id, job.size, job.bw_need, "screen")
            return False
        return self.try_start(job, now, via=via)

    def walltimes_vec(self, rows: np.ndarray) -> np.ndarray:
        """``walltime_est`` over job-table rows — the same float ops
        elementwise, so each entry is bit-identical to the scalar
        estimate."""
        sim = self.sim
        table = self.table
        if sim.runtime_model is None and sim.low_interference:
            plan = table.runtimes[rows] / (1.0 + table.speedups[rows])
        else:
            plan = table.runtimes[rows]
        est = plan * sim.estimate_factor
        if self.resilience is not None:
            est = est * table.work_frac[rows]
        return est

    def reservation_vec(self, now: float, head_job: Job) -> Reservation:
        """The head's reservation straight from the running columns
        (bit-identical to ``Simulator._reservation``)."""
        table = self.table
        rows = self.run_rows.rows()
        return reservation_from_arrays(
            now,
            self.eff(head_job),
            self.allocator.free_nodes,
            table.est_end[rows],
            table.eff_size[rows],
        )

    def easy_schedule_vector(self, now: float) -> None:
        """Column-oriented EASY pass — identical decisions to
        :meth:`easy_schedule`.

        The FIFO phase is the same head loop with proven failures
        short-circuited.  The backfill window is materialized once
        (safe: the queue cannot change mid-pass), its effective sizes,
        walltimes and shadow checks are evaluated as columns, the batch
        screen runs once for the whole window, and the loop then picks
        the first eligible candidate under the *current* free count
        until none remains.  Eligibility only shrinks as the pass
        consumes nodes, so the sequence of charged allocator events —
        and hence every placement — matches the scalar scan exactly.
        """
        sim = self.sim
        alloc = self.allocator
        alloc.stats.pass_vector_rounds += 1
        failed: set = set()
        while self.pending:
            job = self.peek_head()
            assert job is not None
            key = (self.eff(job), job.bw_need)
            if self.dispatch_start(job, now, "fifo", key):
                self.advance_head()
                self.pending -= 1
                self.sample()
            else:
                failed.add(key)
                break
        if not self.pending or sim.backfill_window <= 0:
            sim._sticky = None
            return
        head_job = self.peek_head()
        assert head_job is not None
        # Reservation policy: same logic as the scalar pass (see the
        # comment there); only the shadow arithmetic is vectorized.
        expired = (
            sim._sticky is not None
            and sim.reservation_policy == "renew"
            and now >= sim._sticky[1].shadow_time
        )
        if (
            sim._sticky is None
            or sim._sticky[0] != head_job.id
            or sim.reservation_policy == "slip"
            or expired
        ):
            sim._sticky = (head_job.id, self.reservation_vec(now, head_job))
        reservation = sim._sticky[1]
        tracer = self.tracer
        bspan = tracer.begin("backfill.window") if tracer.enabled else None
        cands = list(self.window_candidates())
        started = 0
        if cands:
            started = self._backfill_window_vector(
                now, cands, reservation, failed
            )
        if bspan is not None:
            bspan.set(
                window=sim.backfill_window, scanned=len(cands),
                started=started, head=head_job.id,
                shadow_time=reservation.shadow_time,
            )
            tracer.end(bspan)

    def _backfill_window_vector(
        self, now: float, cands: List[Job], reservation: Reservation,
        failed: set,
    ) -> int:
        """Scan a materialized backfill window with column arithmetic;
        returns how many candidates started."""
        alloc = self.allocator
        table = self.table
        n = len(cands)
        rows = np.fromiter((j.row for j in cands), np.int64, n)
        effs = alloc.effective_sizes(table.sizes[rows])
        walls = self.walltimes_vec(rows)
        # may_backfill, decomposed: given eff <= free (checked live in
        # the loop), the job may start iff it finishes before the
        # shadow time or fits in the reservation's spare nodes.
        ok_static = ((now + walls) <= reservation.shadow_time) | (
            effs <= reservation.spare_nodes
        )
        keys = [
            (int(e), j.bw_need) for e, j in zip(effs.tolist(), cands)
        ]
        # Factor equal keys so one failure kills every twin at once —
        # the scalar scan's per-pass ``failed`` set, vectorized.
        key_ids: Dict[tuple, int] = {}
        ids = np.empty(n, np.int64)
        for i, k in enumerate(keys):
            ids[i] = key_ids.setdefault(k, len(key_ids))
        key_dead = np.zeros(len(key_ids), bool)
        for k, kid in key_ids.items():
            if k in failed:
                key_dead[kid] = True
        # One batch screen for the whole window: sound because free
        # capacity only shrinks during a pass, so infeasible-now stays
        # infeasible at any later dispatch within the pass.
        screen = alloc.batch_screen(effs)
        screened = (
            np.zeros(n, bool) if screen is None else np.asarray(screen, bool)
        )
        done = np.zeros(n, bool)
        started = 0
        while True:
            elig = (
                ~done
                & ~key_dead[ids]
                & (effs <= alloc.free_nodes)
                & ok_static
            )
            idxs = np.flatnonzero(elig)
            if not idxs.size:
                break
            i = int(idxs[0])
            done[i] = True
            cand = cands[i]
            key = keys[i]
            if self.dispatch_start(
                cand, now, "backfill", key, bool(screened[i])
            ):
                self.note_started_out_of_order(cand.id)
                self.pending -= 1
                started += 1
                self.sample()
            else:
                failed.add(key)
                key_dead[key_ids[key]] = True
        return started

    def conservative_schedule_vector(self, now: float) -> None:
        """Column-oriented conservative pass — identical decisions to
        :meth:`conservative_schedule`: same profile, same reservations,
        same start order; the per-candidate ``earliest_fit`` runs as
        one cumsum sweep and proven-lost searches are charged skips."""
        from repro.sched.profile import FOREVER, FreeProfile

        alloc = self.allocator
        alloc.stats.pass_vector_rounds += 1
        self.prune_fifo_front()
        failed: set = set()
        profile = FreeProfile(now, alloc.free_nodes)
        for est_end, eff_size in self.running_pairs():
            profile.release_at(est_end, eff_size)
        # Materialize the scan window (the queue slice cannot change
        # mid-pass; jobs started by this pass are exactly the ones the
        # scalar loop would have already visited).
        window = self.sim.backfill_window
        cands: List[Job] = []
        idx = self.head - 1
        while len(cands) <= window:
            idx += 1
            if idx >= len(self.queue):
                break
            job = self.queue[idx]
            if job.id in self.started_out_of_order:
                continue
            cands.append(job)
        if not cands:
            return
        n = len(cands)
        table = self.table
        rows = np.fromiter((j.row for j in cands), np.int64, n)
        effs = alloc.effective_sizes(table.sizes[rows])
        walls = self.walltimes_vec(rows)
        screen = alloc.batch_screen(effs)
        for i, job in enumerate(cands):
            size = int(effs[i])
            wall = float(walls[i])
            start = profile.earliest_fit_vec(size, wall)
            key = (size, job.bw_need)
            if start <= now:
                if key not in failed and self.dispatch_start(
                    job, now, "reserved", key,
                    bool(screen[i]) if screen is not None else False,
                ):
                    self.note_started_out_of_order(job.id)
                    self.pending -= 1
                    profile.reserve(now, now + wall, size)
                    self.sample()
                    continue
                # Fragmentation-blocked (see the scalar twin): defer
                # the reservation to the next expected release.
                failed.add(key)
                later = [t for t in profile._times if t > now]
                start = later[0] if later else FOREVER
            if start != FOREVER:
                profile.reserve(start, start + wall, size)

    # -- event drains --------------------------------------------------
    def drain_scalar(
        self, times: np.ndarray, kinds: np.ndarray, payloads: np.ndarray
    ) -> Tuple[int, int]:
        """Apply one round's events one at a time (the historical loop;
        the ``REPRO_NAIVE_EVENTS=1`` twin, and the only drain that
        feeds per-event telemetry sinks).  Returns (arrivals,
        completions)."""
        sim = self.sim
        streams = self.streams
        tracer = self.tracer
        sampler = self.sampler
        table = self.table
        resilience = self.resilience
        arrivals = 0
        completions = 0
        for t, kind, payload in zip(
            times.tolist(), kinds.tolist(), payloads.tolist()
        ):
            if sampler is not None:
                # Boundaries before t see the state as of entering
                # them: sample *before* applying the event.
                sampler.advance_to(t, self.sample_row)
            if tracer.enabled:
                tracer.sim_time = t
            self.advance(t)
            if kind == FAULT_REPAIR:
                resilience.repair(payload, t)
            elif kind == FAULT_INJECT:
                # Victims drain through the ordinary release path
                # before the injector claims the hardware.
                for victim_id in resilience.victims(payload):
                    self.kill_job(
                        table.jobs[table.row_of[victim_id]], t
                    )
                resilience.inject(payload, t)
            elif kind == COMPLETION:
                job = streams.completions.job(payload)
                if resilience is not None:
                    if self.live_comp.get(job.id) != payload:
                        continue  # orphaned by a kill
                    self.live_comp.pop(job.id)
                self.allocator.release(job.id)
                if sim.runtime_model is not None:
                    sim.runtime_model.on_release(job.id)
                self.run_rows.discard(job.row)
                self.cur_busy -= job.size
                table.state[job.row] = JobTable.DONE
                self.last_completion = t
                completions += 1
                if tracer.enabled:
                    attrs = {"job": job.id, "size": job.size}
                    tracer.instant("sched.complete", attrs)
                    if self.event_log is not None:
                        self.event_log.record(
                            t, "complete", job.id, job.size, attrs=attrs
                        )
                elif self.event_log is not None:
                    self.event_log.record(t, "complete", job.id, job.size)
                self.sample()
            else:  # ARRIVAL — payload is the job-table row
                job = table.jobs[payload]
                arrivals += 1
                if self.event_log is not None:
                    self.event_log.record(t, "arrive", job.id, job.size)
                self.enqueue(job)
        return arrivals, completions

    def drain_columnar(
        self, times: np.ndarray, kinds: np.ndarray, payloads: np.ndarray
    ) -> Tuple[int, int]:
        """Apply one round's events as bulk state transitions.

        ``take_round`` yields the events in global ``(time, kind,
        payload)`` order; this splits the batch into maximal
        same-kind segments (preserving that order) and hands
        completion/arrival segments to the columnar handlers.  Fault
        events stay per-event — they are rare — but their victims
        drain through the bulk release path (:meth:`kill_jobs`).
        Decisions, areas and histogram counts are identical to
        :meth:`drain_scalar`.

        Tiny rounds (event-driven mode drains one timestamp at a time)
        fall back to the scalar loop: segmenting a two-event batch
        costs more than it saves, and the two drains are
        interchangeable mid-run precisely because they are decision-
        identical.
        """
        n = len(times)
        if n < 16:
            return self.drain_scalar(times, kinds, payloads)
        table = self.table
        resilience = self.resilience
        arrivals = 0
        completions = 0
        cuts = np.flatnonzero(np.diff(kinds)) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            kind = int(kinds[s])
            if kind == COMPLETION:
                completions += self.complete_batch(
                    times[s:e], payloads[s:e]
                )
            elif kind == ARRIVAL:
                self.enqueue_batch(times[s:e], payloads[s:e])
                arrivals += e - s
            else:
                for t, payload in zip(
                    times[s:e].tolist(), payloads[s:e].tolist()
                ):
                    self.advance(t)
                    if kind == FAULT_REPAIR:
                        resilience.repair(payload, t)
                    else:  # FAULT_INJECT
                        victims = resilience.victims(payload)
                        if victims:
                            self.kill_jobs(
                                [
                                    table.jobs[table.row_of[vid]]
                                    for vid in victims
                                ],
                                t,
                            )
                        resilience.inject(payload, t)
        return arrivals, completions

    def complete_batch(self, times: np.ndarray, slots: np.ndarray) -> int:
        """Retire a time-sorted run of completions in one transition.

        The area accumulators advance event by event in the exact
        float-operation order of the scalar twin (the utilization
        metrics are sums of per-interval products, so association
        order matters down to the bit); everything O(1)-per-event
        beyond that — allocation release, the occupancy-index update,
        the feasibility-cache invalidation — is grouped: one
        ``release_many``, one state-column write per job, one
        histogram ``add_many``.
        """
        streams = self.streams
        table = self.table
        resilience = self.resilience
        run_rows = self.run_rows
        state_col = table.state
        done = JobTable.DONE
        # Constant across the run: no arrivals, kills or fault events
        # occur inside a same-kind segment.
        pending = self.pending
        cap = self.capacity()
        degraded = resilience.degraded_nodes if resilience is not None else 0
        stats = resilience.stats if resilience is not None else None
        last_t = self.last_t
        tba = self.total_busy_area
        ba = self.busy_area
        da = self.demand_area
        busy = self.cur_busy
        live: List[Job] = []
        util: List[float] = []
        want_util = pending > 0 and cap > 0
        for t, slot in zip(times.tolist(), slots.tolist()):
            dt = t - last_t
            if dt > 0:
                tba += busy * dt
                if pending > 0:
                    ba += busy * dt
                    da += cap * dt
                if stats is not None:
                    stats.degraded_node_seconds += degraded * dt
                last_t = t
            job = streams.completions.job(slot)
            if resilience is not None:
                # Orphaned by a kill: the clock still advanced above,
                # exactly like the scalar twin.
                if self.live_comp.get(job.id) != slot:
                    continue
                self.live_comp.pop(job.id)
            busy -= job.size
            live.append(job)
            self.last_completion = t
            if want_util:
                util.append(100.0 * busy / cap)
        self.last_t = last_t
        self.total_busy_area = tba
        self.busy_area = ba
        self.demand_area = da
        self.cur_busy = busy
        if live:
            self.allocator.release_many([job.id for job in live])
            rm = self.sim.runtime_model
            for job in live:
                if rm is not None:
                    rm.on_release(job.id)
                run_rows.discard(job.row)
                state_col[job.row] = done
        if util:
            self.instant.add_many(np.array(util, np.float64))
        return len(live)

    def enqueue_batch(self, times: np.ndarray, rows: np.ndarray) -> None:
        """Enqueue a time-sorted run of arrivals in one transition."""
        table = self.table
        resilience = self.resilience
        stats = resilience.stats if resilience is not None else None
        degraded = resilience.degraded_nodes if resilience is not None else 0
        cap = self.capacity()
        last_t = self.last_t
        tba = self.total_busy_area
        ba = self.busy_area
        da = self.demand_area
        busy = self.cur_busy
        pending = self.pending
        for t in times.tolist():
            dt = t - last_t
            if dt > 0:
                tba += busy * dt
                if pending > 0:
                    ba += busy * dt
                    da += cap * dt
                if stats is not None:
                    stats.degraded_node_seconds += degraded * dt
                last_t = t
            pending += 1
        self.last_t = last_t
        self.total_busy_area = tba
        self.busy_area = ba
        self.demand_area = da
        jobs = [table.jobs[r] for r in rows.tolist()]
        sim = self.sim
        if self.priority_key is None:
            self.queue.extend(jobs)
            sim.peak_queue_len = max(sim.peak_queue_len, len(self.queue))
        else:
            pheap = self.pheap
            for job in jobs:
                heapq.heappush(
                    pheap, (self.priority_key(job), next(self._pseq), job)
                )
            sim.peak_queue_len = max(sim.peak_queue_len, len(pheap))
        self.pending = pending
        table.state[rows] = JobTable.QUEUED

    # -- drive loop ----------------------------------------------------
    def drive(self) -> None:
        """Run rounds until every stream is drained.

        Each round covers ``(previous boundary, round_t]``: drain the
        round's events in global ``(time, kind, seq)`` order (advancing
        the clock and areas event by event), then run one scheduling
        pass at the boundary.  Event-driven mode is the degenerate case
        ``round_t = next event time`` — one timestamp per round, a pass
        after every event batch, bit-identical to the historical loop.
        """
        sim = self.sim
        step = sim.step_interval
        streams = self.streams
        tracer = self.tracer
        sampler = self.sampler
        table = self.table
        t0 = self.last_t
        round_idx = 0
        while True:
            first = streams.next_time()
            if first == float("inf"):
                break
            if step is None:
                round_t = first
            else:
                round_t = round_boundary(t0, first, step)
            rspan = (
                tracer.begin("sched.round")
                if step is not None and tracer.enabled
                else None
            )
            times, kinds, payloads = streams.take_round(round_t)
            if self.columnar_drain:
                arrivals, completions = self.drain_columnar(
                    times, kinds, payloads
                )
            else:
                arrivals, completions = self.drain_scalar(
                    times, kinds, payloads
                )
            # The scheduling pass runs at the round boundary (in event
            # mode the boundary *is* the batch timestamp, so these
            # advances are no-ops).
            if sampler is not None:
                sampler.advance_to(round_t, self.sample_row)
            if tracer.enabled:
                tracer.sim_time = round_t
            self.advance(round_t)
            span = tracer.begin("sched.pass") if tracer.enabled else None
            queue_before = self.pending
            self.schedule(round_t)
            self.rounds += 1
            self.last_sched_t = round_t
            if span is not None:
                span.set(
                    arrivals=arrivals, completions=completions,
                    queue_before=queue_before, queue_after=self.pending,
                    started=queue_before - self.pending,
                    running=len(self.run_rows),
                    free_nodes=self.allocator.free_nodes,
                )
                tracer.end(span)
            if rspan is not None:
                rspan.set(
                    round=round_idx, step=step, drained=len(times),
                    arrivals=arrivals, completions=completions,
                    lag=round_t - first, started=queue_before - self.pending,
                )
                tracer.end(rspan)
            round_idx += 1
            if self.pending and not len(self.run_rows) and streams.empty():
                # Nothing can ever start these jobs (should not happen
                # for valid traces; recorded for failure-injection tests).
                while (job := self.peek_head()) is not None:
                    self.unscheduled.append(job.id)
                    table.state[table.row_of[job.id]] = JobTable.UNSCHEDULED
                    if self.event_log is not None:
                        self.event_log.record(
                            round_t, "unscheduled", job.id, job.size
                        )
                    self.advance_head()
                    self.pending -= 1
                break

        if sampler is not None:
            sampler.finish(self.last_t, self.sample_row)

    # -- result --------------------------------------------------------
    def result(self, name: str) -> SimResult:
        sim = self.sim
        resilience = self.resilience
        completed = [
            JobRecord(j.id, j.size, j.arrival, j.start, j.end)
            for j in self.table.jobs
            if j.end >= 0
        ]
        return SimResult(
            scheme=self.allocator.name,
            trace_name=name,
            system_nodes=self.n_system,
            jobs=completed,
            makespan=self.last_completion - self.makespan_start,
            busy_area=self.busy_area,
            demand_area=self.demand_area,
            total_busy_area=self.total_busy_area,
            instant=self.instant,
            sched_seconds=self.allocator.stats.alloc_seconds,
            alloc_attempts=self.allocator.stats.attempts,
            unscheduled=self.unscheduled,
            cache_hits=self.allocator.stats.cache_hits,
            cache_misses=self.allocator.stats.cache_misses,
            pods_pruned=self.allocator.stats.pods_pruned,
            candidate_hits=self.allocator.stats.candidate_hits,
            memo_hits=self.allocator.stats.memo_hits,
            xpass_memo_hits=self.allocator.stats.xpass_memo_hits,
            xpass_memo_epoch_flushes=(
                self.allocator.stats.xpass_memo_epoch_flushes
            ),
            xpass_memo_replayed_steps=(
                self.allocator.stats.xpass_memo_replayed_steps
            ),
            backtrack_steps=self.allocator.stats.backtrack_steps,
            queue_prefiltered=self.allocator.stats.queue_prefiltered,
            size_cut_skips=self.allocator.stats.size_cut_skips,
            pass_vector_rounds=self.allocator.stats.pass_vector_rounds,
            samples=(
                list(self.sampler.rows) if self.sampler is not None else []
            ),
            faults_injected=(
                resilience.stats.injected if resilience is not None else 0
            ),
            faults_repaired=(
                resilience.stats.repaired if resilience is not None else 0
            ),
            resubmissions=(
                resilience.stats.resubmissions
                if resilience is not None else 0
            ),
            wasted_node_seconds=(
                resilience.stats.wasted_node_seconds
                if resilience is not None else 0.0
            ),
            degraded_node_seconds=(
                resilience.stats.degraded_node_seconds
                if resilience is not None else 0.0
            ),
            scheduling_rounds=self.rounds,
            step_interval=sim.step_interval,
            provenance=(
                self._provenance_rows() if self.provenance else []
            ),
        )
