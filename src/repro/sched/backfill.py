"""EASY backfilling (Skovira et al. [29]; section 5.3 of the paper).

Under EASY, jobs start FIFO until the head of the queue cannot be
placed.  The head then receives a *reservation*: the shadow time at
which, judging by the expected completions of running jobs, enough nodes
will be free.  Queued jobs within a lookahead window (50 in the paper)
may then start out of order — *backfill* — provided they do not delay
the reservation: either they finish before the shadow time, or they fit
in the nodes the reservation will not need.

The shadow computation is the standard node-count approximation: with a
constrained allocator, "enough free nodes" does not guarantee a legal
placement at the shadow time (that is re-checked when the time comes),
and a fragmentation-blocked head (enough nodes free, no legal shape) is
given the next completion time as its shadow.  The original LaaS code
base, in which the paper implemented all schemes, uses the same
node-count EASY logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.sched.job import Job


@dataclass(frozen=True)
class Reservation:
    """The head job's reservation: when it should be able to start, and
    how many nodes will remain free once it does."""

    shadow_time: float
    spare_nodes: int


def compute_reservation(
    now: float,
    need: int,
    free_now: int,
    running: List[Tuple[float, int]],
) -> Reservation:
    """Shadow time and spare nodes for a head job needing ``need`` nodes.

    ``running`` holds ``(expected_end, effective_size)`` pairs of running
    jobs, in any order.  If the head is blocked purely by fragmentation
    (``free_now >= need``), the next completion is used as the shadow —
    the earliest moment the fragmentation pattern can change.
    """
    events = sorted(running)
    free = free_now
    if free >= need:
        if not events:
            # Nothing running yet nothing fits: an oversized job on an
            # empty machine; it can never start (caller filters these).
            return Reservation(now, free - need)
        end, released = events[0]
        return Reservation(end, free + released - need)
    for end, released in events:
        free += released
        if free >= need:
            return Reservation(end, free - need)
    return Reservation(float("inf"), 0)


def reservation_from_arrays(
    now: float,
    need: int,
    free_now: int,
    ends: np.ndarray,
    sizes: np.ndarray,
) -> Reservation:
    """:func:`compute_reservation` over ``(end, size)`` column arrays.

    Replaces the sort-and-accumulate Python loop with one ``lexsort``
    (end, then size — the same lexicographic order ``sorted`` gives the
    tuples) and an integer ``cumsum``/``searchsorted``.  All arithmetic
    is integer except the returned shadow (an unmodified element of
    ``ends``), so the result is bit-identical to the scalar function —
    the vector pass's decision-invariance depends on that.
    """
    n = int(ends.size)
    if free_now >= need:
        if not n:
            return Reservation(now, free_now - need)
        order = np.lexsort((sizes, ends))
        first = int(order[0])
        return Reservation(
            float(ends[first]), free_now + int(sizes[first]) - need
        )
    if not n:
        return Reservation(float("inf"), 0)
    order = np.lexsort((sizes, ends))
    cum = free_now + np.cumsum(sizes[order])
    idx = int(np.searchsorted(cum, need, side="left"))
    if idx >= n:
        return Reservation(float("inf"), 0)
    return Reservation(float(ends[order[idx]]), int(cum[idx]) - need)


def may_backfill(
    job: Job,
    now: float,
    walltime: float,
    free_now: int,
    effective_size: int,
    reservation: Reservation,
) -> bool:
    """EASY's two backfill conditions: finish before the shadow time, or
    use only nodes the reservation leaves spare."""
    if now + walltime <= reservation.shadow_time:
        return True
    return effective_size <= min(free_now, reservation.spare_nodes)
