"""Future free-node profile: the planning substrate for conservative
backfilling.

A :class:`FreeProfile` is a step function ``free(t)`` for ``t >= now``,
built from the current free-node count, the expected completions of
running jobs (which *release* nodes), and reservations for queued jobs
(which *consume* nodes over an interval).  ``earliest_fit`` finds the
first time a job of a given size could run for its whole (estimated)
duration — the core query of conservative backfilling, where every
queued job holds a reservation and nothing may delay an earlier one.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List

import numpy as np

#: effectively "forever" for reservation intervals
FOREVER = float("inf")


class FreeProfile:
    """Piecewise-constant free-node count over future time."""

    def __init__(self, now: float, free_now: int):
        self.now = now
        self.base = free_now
        #: time -> cumulative delta applied at that instant
        self._deltas: Dict[float, int] = {}
        self._times: List[float] = []

    def _add_delta(self, t: float, delta: int) -> None:
        if t <= self.now or delta == 0 or t == FOREVER:
            if t <= self.now:
                self.base += delta
            return
        if t not in self._deltas:
            insort(self._times, t)
            self._deltas[t] = 0
        self._deltas[t] += delta

    # ------------------------------------------------------------------
    def release_at(self, t: float, nodes: int) -> None:
        """``nodes`` become free at time ``t`` (a running job's expected
        completion)."""
        if nodes < 0:
            raise ValueError("released node count must be non-negative")
        self._add_delta(t, nodes)

    def reserve(self, start: float, end: float, nodes: int) -> None:
        """``nodes`` are consumed over ``[start, end)`` (a reservation)."""
        if nodes < 0:
            raise ValueError("reserved node count must be non-negative")
        if end <= start:
            raise ValueError("reservation interval must be non-empty")
        self._add_delta(start, -nodes)
        if end != FOREVER:
            self._add_delta(end, nodes)

    # ------------------------------------------------------------------
    def free_at(self, t: float) -> int:
        """Free nodes at time ``t`` (``t >= now``)."""
        free = self.base
        for bt in self._times:
            if bt > t:
                break
            free += self._deltas[bt]
        return free

    def earliest_fit(self, nodes: int, duration: float) -> float:
        """Earliest ``t >= now`` with ``free >= nodes`` throughout
        ``[t, t + duration)``.  Returns ``inf`` if no such time exists
        within the profile's horizon (free never recovers)."""
        candidates = [self.now] + self._times
        for idx, t0 in enumerate(candidates):
            if t0 < self.now:
                continue
            if self.free_at(t0) < nodes:
                continue
            # check the whole interval [t0, t0 + duration)
            end = t0 + duration
            ok = True
            for bt in self._times:
                if bt <= t0:
                    continue
                if bt >= end:
                    break
                if self.free_at(bt) < nodes:
                    ok = False
                    break
            if ok:
                return t0
        return FOREVER

    def earliest_fit_vec(self, nodes: int, duration: float) -> float:
        """Vectorized :meth:`earliest_fit` — identical results.

        One cumulative-sum pass over the breakpoint columns replaces the
        quadratic candidate × ``free_at`` scan: levels are the integer
        cumsum of the deltas, ``bad`` marks levels below ``nodes``, a
        reversed running minimum gives each candidate its next bad
        breakpoint, and a candidate fits iff its own level is good and
        the next bad breakpoint lies at or past ``t0 + duration`` (the
        same float addition and ``>=`` the scalar loop performs, so the
        verdicts are bit-identical).  Used by the vectorized
        conservative pass; the scalar loop above is the
        ``REPRO_NAIVE_PASS=1`` twin.
        """
        times = self._times
        n = len(times)
        if not n:
            return self.now if self.base >= nodes else FOREVER
        t = np.fromiter(times, np.float64, n)
        deltas = np.fromiter((self._deltas[bt] for bt in times),
                             np.int64, n)
        levels = self.base + np.cumsum(deltas)
        bad = levels < nodes
        next_bad = np.minimum.accumulate(
            np.where(bad, np.arange(n), n)[::-1]
        )[::-1]
        nb_ext = np.append(next_bad, n)
        t_ext = np.append(t, FOREVER)
        if self.base >= nodes and t_ext[int(nb_ext[0])] >= (
            self.now + duration
        ):
            return self.now
        feasible = ~bad & (t_ext[nb_ext[1:]] >= t + duration)
        hits = np.flatnonzero(feasible)
        if hits.size:
            return float(t[int(hits[0])])
        return FOREVER

    def min_free(self, start: float, end: float) -> int:
        """Minimum free-node count over ``[start, end)``."""
        lo = self.free_at(start)
        for bt in self._times:
            if start < bt < end:
                lo = min(lo, self.free_at(bt))
        return lo
