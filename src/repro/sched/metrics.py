"""Metrics of the paper's evaluation (section 5).

* **Average system utilization** — requested node-seconds divided by
  available node-seconds, restricted to the *steady-state* portion of the
  simulation: the periods where the queue is non-empty, i.e. the system
  is actually under demand.  Idle nodes while jobs wait are scheduler
  loss (fragmentation); idle nodes with an empty queue are not.
* **Instantaneous utilization** — sampled at every schedule/completion
  event, binned into the ranges of Table 2.
* **Turnaround time** — arrival to completion, averaged over all jobs
  and over large jobs (> 100 nodes), per Figure 7.
* **Makespan** — first arrival to last completion (Figure 8).
* **Scheduling time** — wall-clock seconds inside the allocator per job
  (Table 3).

Utilization counts only *requested* nodes: a LaaS job padded from 11 to
12 nodes contributes 11 — its padding is internal fragmentation, which
is exactly why LaaS cannot reach 98 % instantaneous utilization in
Table 2.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Table 2's instantaneous-utilization ranges, as (label, lo, hi) with
#: samples classified by lo <= u < hi (the top bin includes 100).
INSTANT_BINS = (
    (">=98", 98.0, 100.0001),
    ("95-97", 95.0, 98.0),
    ("90-95", 90.0, 95.0),
    ("80-90", 80.0, 90.0),
    ("60-80", 60.0, 80.0),
    ("<=60", -0.0001, 60.0),
)

#: Ascending bin edges / labels derived from INSTANT_BINS, used by the
#: vectorized ``InstantHistogram.add_many`` (searchsorted wants ascending).
_INSTANT_LABELS_ASC = tuple(label for label, _, _ in reversed(INSTANT_BINS))
_INSTANT_EDGES = np.array(
    [INSTANT_BINS[-1][1]] + [hi for _, _, hi in reversed(INSTANT_BINS)],
    np.float64,
)

#: Figure 7's "large job" threshold, in nodes.
LARGE_JOB_NODES = 100


@dataclass
class InstantHistogram:
    """Counts of instantaneous-utilization samples per Table 2 bin."""

    counts: Dict[str, int] = field(
        default_factory=lambda: {label: 0 for label, _, _ in INSTANT_BINS}
    )
    total: int = 0

    def add(self, utilization_pct: float) -> None:
        """Classify one instantaneous-utilization sample into its bin."""
        for label, lo, hi in INSTANT_BINS:
            if lo <= utilization_pct < hi:
                self.counts[label] += 1
                self.total += 1
                return
        raise ValueError(f"utilization {utilization_pct} outside [0, 100]")

    def add_many(self, utilization_pcts: "np.ndarray") -> None:
        """Classify a batch of samples; identical to per-sample :meth:`add`.

        Bins by the same half-open ``lo <= u < hi`` ranges via
        ``searchsorted`` over the ascending bin edges.
        """
        arr = np.asarray(utilization_pcts, np.float64)
        if arr.size == 0:
            return
        idx = np.searchsorted(_INSTANT_EDGES, arr, side="right") - 1
        if (idx < 0).any() or (idx >= len(_INSTANT_LABELS_ASC)).any():
            bad = arr[(idx < 0) | (idx >= len(_INSTANT_LABELS_ASC))][0]
            raise ValueError(f"utilization {bad} outside [0, 100]")
        for i, n in zip(*np.unique(idx, return_counts=True)):
            self.counts[_INSTANT_LABELS_ASC[i]] += int(n)
        self.total += int(arr.size)

    def fraction(self, label: str) -> float:
        """Share of samples in the named bin (0 when no samples)."""
        return self.counts[label] / self.total if self.total else 0.0

    def as_row(self) -> Dict[str, int]:
        """The bin counts as a plain dict (one Table 2 row)."""
        return dict(self.counts)


@dataclass(frozen=True)
class JobRecord:
    """Immutable snapshot of one job's outcome in one simulation run.

    Jobs themselves are shared, mutable objects reused across runs; the
    result of a run must not change when the same trace is replayed
    against another scheme, so every run snapshots its outcomes.
    """

    job_id: int
    size: int
    arrival: float
    start: float
    end: float

    @property
    def turnaround(self) -> float:
        return self.end - self.arrival

    @property
    def wait(self) -> float:
        return self.start - self.arrival


@dataclass
class SimResult:
    """Everything one simulation run produced."""

    scheme: str
    trace_name: str
    system_nodes: int
    jobs: List[JobRecord]
    makespan: float
    #: node-seconds of requested work done while the queue was non-empty
    busy_area: float
    #: node-seconds available while the queue was non-empty
    demand_area: float
    #: node-seconds of requested work over the whole simulation
    total_busy_area: float
    instant: InstantHistogram
    #: wall-clock seconds spent inside allocate()/release()
    sched_seconds: float
    #: number of allocation attempts (successes + failures)
    alloc_attempts: int
    #: ids of jobs that could never be started (should be empty)
    unscheduled: List[int] = field(default_factory=list)
    #: allocator feasibility-cache lookups answered without a search
    cache_hits: int = 0
    #: allocator feasibility-cache lookups that ran the search
    cache_misses: int = 0
    #: pods rejected by the vectorized occupancy prefilter
    pods_pruned: int = 0
    #: per-pod candidate lists read off the maintained bucket order
    candidate_hits: int = 0
    #: per-search memo hits that skipped a repeated per-pod sub-search
    memo_hits: int = 0
    #: cross-pass negative-memo hits that skipped a whole pod sub-search
    xpass_memo_hits: int = 0
    #: cross-pass memo entries dropped because the pod's epoch moved on
    xpass_memo_epoch_flushes: int = 0
    #: backtracking steps replayed (not executed) from cross-pass memo
    #: hits; ``backtrack_steps + xpass_memo_replayed_steps`` equals the
    #: memo-off step count exactly
    xpass_memo_replayed_steps: int = 0
    #: backtracking steps actually executed by the allocator searches
    backtrack_steps: int = 0
    #: queued candidates skipped by the vector pass's prefilter (cache /
    #: size cut / batch screen) instead of running a lost search
    queue_prefiltered: int = 0
    #: prefilter skips proven by the monotone size cut specifically
    size_cut_skips: int = 0
    #: scheduling passes that ran the column-oriented (vector) path
    pass_vector_rounds: int = 0
    #: per-interval time-series rows, when the run was sampled
    #: (see :mod:`repro.obs.sampler`); empty otherwise.  Plain dicts so
    #: the result stays picklable across the grid engine's process pool.
    samples: List[Dict[str, Any]] = field(default_factory=list)
    #: fault-timeline events applied during the run (zero without a
    #: timeline — see :mod:`repro.sched.resilience`)
    faults_injected: int = 0
    faults_repaired: int = 0
    #: jobs killed by a fault and resubmitted to the queue
    resubmissions: int = 0
    #: node-seconds of execution destroyed by fault kills (work saved by
    #: the checkpoint model excluded); already included in the busy areas
    wasted_node_seconds: float = 0.0
    #: integral of out-of-service (fault-claimed) nodes over time
    degraded_node_seconds: float = 0.0
    #: scheduling passes run; under batch-step mode this is the round
    #: count (far below the event count on bursty traces), under
    #: event-driven replay one per event batch
    scheduling_rounds: int = 0
    #: the batch-step Δt the run used (None = event-driven)
    step_interval: Optional[float] = None
    #: per-job scheduling-provenance rows (plain dicts, picklable);
    #: populated only when the simulator ran with ``provenance=True`` —
    #: see :func:`write_provenance_jsonl` for the column catalog
    provenance: List[Dict[str, Any]] = field(default_factory=list)
    #: stage-profiler snapshot (see :mod:`repro.obs.prof`); attached by
    #: the runner when profiling was requested, None otherwise
    prof: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    @property
    def steady_state_utilization(self) -> float:
        """Average utilization (%) over the under-demand portion."""
        if self.demand_area <= 0:
            return 100.0
        return 100.0 * self.busy_area / self.demand_area

    @property
    def overall_utilization(self) -> float:
        """Average utilization (%) over the entire makespan."""
        area = self.system_nodes * self.makespan
        return 100.0 * self.total_busy_area / area if area else 0.0

    @property
    def mean_turnaround(self) -> float:
        return _mean([j.turnaround for j in self.jobs])

    @property
    def mean_turnaround_large(self) -> float:
        """Mean turnaround of jobs larger than 100 nodes (NaN if none)."""
        return _mean(
            [j.turnaround for j in self.jobs if j.size > LARGE_JOB_NODES]
        )

    @property
    def mean_wait(self) -> float:
        return _mean([j.wait for j in self.jobs])

    def wait_quantiles(
        self, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Dict[float, float]:
        """Nearest-rank quantiles of per-job wait (queueing latency).

        Returns ``{q: seconds}``; ``0.0`` when the run started no jobs —
        a degenerate run has no latency to report, and a NaN here would
        leak into the exported ``repro_sched_wait_seconds`` gauges
        (NaN poisons downstream aggregation silently).  Nearest-rank
        (ceil(q*n)-th order statistic) so the reported latency is always
        one a job actually experienced.
        """
        waits = sorted(j.wait for j in self.jobs)
        n = len(waits)
        out: Dict[float, float] = {}
        for q in qs:
            if not n:
                out[q] = 0.0
            else:
                rank = min(n - 1, max(0, int(math.ceil(q * n)) - 1))
                out[q] = waits[rank]
        return out

    @property
    def mean_sched_time_per_job(self) -> float:
        """Table 3's metric: allocator wall-clock seconds per job."""
        return self.sched_seconds / len(self.jobs) if self.jobs else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Share of allocator feasibility lookups served from cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def goodput_fraction(self) -> float:
        """Share of executed node-seconds that survived to completion.

        ``1.0`` means no work was lost to fault kills; fault-free runs
        (or runs that did no work at all) report 1.0.
        """
        if self.total_busy_area <= 0:
            return 1.0
        frac = 1.0 - self.wasted_node_seconds / self.total_busy_area
        return min(1.0, max(0.0, frac))

    def mean_bounded_slowdown(self, tau: float = 10.0) -> float:
        """Mean bounded slowdown (Feitelson's standard fairness metric):
        ``max(1, turnaround / max(run_time, tau))`` per job, with the
        ``tau`` floor keeping very short jobs from dominating."""
        if not self.jobs:
            return float("nan")
        total = 0.0
        for r in self.jobs:
            run_time = max(r.end - r.start, tau)
            total += max(1.0, r.turnaround / run_time)
        return total / len(self.jobs)

    def turnaround_by_size_class(
        self, bounds: Sequence[int] = (1, 4, 16, 64, 256)
    ) -> Dict[str, float]:
        """Mean turnaround per job-size class.

        ``bounds`` are inclusive upper edges; a final open class collects
        everything larger.  Classes with no jobs are omitted.
        """
        edges = sorted(bounds)
        labels: List[str] = []
        lo = 1
        for hi in edges:
            labels.append(f"{lo}-{hi}" if lo != hi else str(hi))
            lo = hi + 1
        labels.append(f">{edges[-1]}")
        classes: Dict[str, List[float]] = {label: [] for label in labels}
        for r in self.jobs:
            label = labels[-1]
            lo = 1
            for idx, hi in enumerate(edges):
                if r.size <= hi:
                    label = labels[idx]
                    break
            classes[label].append(r.turnaround)
        # insertion order is size order; empty classes are omitted
        return {
            label: _mean(vals) for label, vals in classes.items() if vals
        }

    def as_registry(self, registry=None, labels: Optional[Dict[str, str]] = None):
        """This result's counters as a live metric-registry view.

        The registry's instruments read these fields on demand (the
        collector pattern — see :mod:`repro.obs.bridge`), so the two
        representations cannot disagree.  Imported lazily to keep the
        metrics module dependency-free for pickling.
        """
        from repro.obs.bridge import registry_for_result

        return registry_for_result(self, registry=registry, labels=labels)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.scheme:>9} on {self.trace_name}: "
            f"util={self.steady_state_utilization:5.1f}%  "
            f"makespan={self.makespan:12.0f}s  "
            f"turnaround={self.mean_turnaround:10.0f}s  "
            f"sched={self.mean_sched_time_per_job * 1e3:7.3f}ms/job"
        )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


#: Column order of the provenance export, fixed so CSV headers and the
#: schema validator (``benchmarks/_check_obs_schema.py --provenance``)
#: agree.  Catalog with semantics: ``docs/observability.md``.
PROVENANCE_COLUMNS = (
    "job_id", "size", "arrival", "first_eligible", "attempts",
    "skip_cache", "skip_cut", "skip_screen", "skip_search", "skip_budget",
    "start", "end", "wait", "state",
)


def _finite_or_none(value: Any) -> Any:
    """Map non-finite floats to ``None`` (JSON has no NaN/Infinity —
    ``json.dumps`` would happily emit them and produce lines no strict
    parser accepts; CSV readers choke on ``nan`` cells the same way)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def write_provenance_jsonl(rows: Sequence[Dict[str, Any]], path) -> None:
    """Write provenance rows as JSON Lines, one job per line.

    Keys are emitted in :data:`PROVENANCE_COLUMNS` order; unknown keys
    in a row are an error (the export format is a contract).  Non-finite
    floats are emitted as ``null`` so every line parses under strict
    JSON even for degenerate rows (a job that never became eligible)."""
    with open(path, "w") as fh:
        for row in rows:
            extra = set(row) - set(PROVENANCE_COLUMNS)
            if extra:
                raise ValueError(f"unknown provenance columns: {sorted(extra)}")
            fh.write(json.dumps(
                {k: _finite_or_none(row.get(k)) for k in PROVENANCE_COLUMNS}
            ) + "\n")


def write_provenance_csv(rows: Sequence[Dict[str, Any]], path) -> None:
    """Write provenance rows as CSV (``None`` and non-finite floats
    become empty cells)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(PROVENANCE_COLUMNS)
        for row in rows:
            writer.writerow(
                "" if _finite_or_none(row.get(k)) is None else row.get(k)
                for k in PROVENANCE_COLUMNS
            )


def fidelity_report(event: SimResult, batch: SimResult) -> Dict[str, float]:
    """Deltas of a batch-step run against its event-driven ground truth.

    Both results must come from the same trace and scheme; the report
    quantifies what the coarser scheduling grid cost (or saved):
    utilization in percentage points, turnaround/makespan/wait
    relatively, plus the round and allocator-attempt ratios that explain
    *why* batch mode is cheaper.  ``benchmarks/bench_batch_fidelity.py``
    tabulates this per scheme.
    """
    if (event.trace_name, event.scheme) != (batch.trace_name, batch.scheme):
        raise ValueError(
            "fidelity_report compares one (trace, scheme) pair: "
            f"{(event.trace_name, event.scheme)} vs "
            f"{(batch.trace_name, batch.scheme)}"
        )

    def _rel(a: float, b: float) -> float:
        return 100.0 * (b - a) / a if a else float("nan")

    return {
        "util_delta_pp": (
            batch.steady_state_utilization - event.steady_state_utilization
        ),
        "turnaround_delta_pct": _rel(
            event.mean_turnaround, batch.mean_turnaround
        ),
        "wait_delta_s": batch.mean_wait - event.mean_wait,
        "makespan_delta_pct": _rel(event.makespan, batch.makespan),
        "rounds_ratio": (
            batch.scheduling_rounds / event.scheduling_rounds
            if event.scheduling_rounds else float("nan")
        ),
        "attempts_ratio": (
            batch.alloc_attempts / event.alloc_attempts
            if event.alloc_attempts else float("nan")
        ),
    }


def utilization_timeline(
    result: SimResult, buckets: int = 20
) -> List[Tuple[float, float]]:
    """Time-bucketed utilization series reconstructed from job records.

    Returns ``buckets`` points ``(bucket start time, utilization %)``
    over the makespan — the "utilization over time" view that makes
    drain dips and steady-state plateaus visible.  Counts requested
    nodes, like every other utilization figure here.
    """
    if buckets < 1:
        raise ValueError("buckets must be positive")
    if not result.jobs or result.makespan <= 0:
        return [(0.0, 0.0)] * buckets
    t0 = min(r.arrival for r in result.jobs)
    width = result.makespan / buckets
    area = [0.0] * buckets
    for r in result.jobs:
        start, end = r.start - t0, r.end - t0
        first = max(0, min(buckets - 1, int(start // width)))
        last = max(0, min(buckets - 1, int((end - 1e-12) // width)))
        for b in range(first, last + 1):
            lo = max(start, b * width)
            hi = min(end, (b + 1) * width)
            if hi > lo:
                area[b] += r.size * (hi - lo)
    cap = result.system_nodes * width
    return [
        (t0 + b * width, 100.0 * area[b] / cap) for b in range(buckets)
    ]
