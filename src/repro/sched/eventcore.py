"""Array-native event core: the simulator's hot-path event machinery.

The discrete-event loop used to live on one ``heapq`` of
``(time, kind, seq, payload)`` tuples, paying Python-object tuple
comparisons for every push and pop.  This module rebuilds that substrate
on structured numpy arrays:

* :class:`JobTable` — the trace as column arrays (arrival / size /
  bw_need / runtime / state), the "job table" the batch-step policy
  reasons over.  The per-job ``Job`` objects stay authoritative for
  scheduling decisions; the table gives the event loop vectorized
  queries (stable arrival order, unique-size validation) without
  touching them.  The per-run columns (``est_end`` / ``eff_size`` /
  ``work_frac``) carry the running set's planning state, so
  reservation and backfill arithmetic reads column slices instead of
  rebuilding arrays from a Python dict per call.
* :class:`RunningSet` — the maintained index of running job-table
  rows: a dense row array with O(1) swap-remove, whose live prefix is
  the running set as a numpy slice.
* :class:`ArrayEventQueue` — a *pre-known* event stream (arrivals,
  fault injections, fault repairs) as a sorted time array plus a
  cursor: ``peek`` is an array read, draining a round is one
  ``searchsorted`` slice instead of O(k log n) heap pops.
* :class:`CompletionQueue` — the *dynamic* stream (completions are
  discovered as jobs start) as growable arrays with an append buffer,
  consolidated by one ``lexsort`` per drain — the "round bucket" of the
  batch-step mode.
* :class:`EventStreams` — the four streams merged per round:
  :meth:`EventStreams.take_round` returns every pending event up to a
  time bound in exactly the global ``(time, kind, seq)`` order the old
  heap produced, so the event-driven policy replays bit-identically on
  this core (``benchmarks/_fingerprint.py --compare`` holds it to
  that).

Event kinds, in sort order at equal times: repairs free hardware first,
then completions free jobs, then arrivals join the queue, and only then
do fault injections land — so a job finishing exactly when its node
dies completes rather than being killed.  The same constants the old
heap used; they are the ``kind`` column of a merged round.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: event kinds, in their equal-time processing order
FAULT_REPAIR = -1
COMPLETION = 0
ARRIVAL = 1
FAULT_INJECT = 2

_INF = math.inf


class JobTable:
    """Column-array view of a trace: one numpy array per job field.

    ``state`` tracks each job's lifecycle (``PENDING`` → ``QUEUED`` →
    ``RUNNING`` → ``DONE``, or ``UNSCHEDULED``); the event loop updates
    it as a side channel for vectorized accounting — the ``Job``
    objects remain the source of truth for scheduling decisions.
    """

    PENDING, QUEUED, RUNNING, DONE, UNSCHEDULED = range(5)

    __slots__ = ("jobs", "ids", "sizes", "arrivals", "runtimes",
                 "speedups", "bw_needs", "state", "row_of",
                 "est_end", "eff_size", "work_frac",
                 "first_eligible", "attempt_count", "skip_cache",
                 "skip_cut", "skip_screen", "skip_search", "skip_budget")

    def __init__(self, jobs: Sequence):
        self.jobs = list(jobs)
        n = len(self.jobs)
        self.row_of = {j.id: i for i, j in enumerate(self.jobs)}
        # Cache each job's row on the Job object: the hot paths address
        # the columns by ``job.row`` instead of a dict lookup.  A job
        # reused across runs is re-stamped by the next table build.
        for i, j in enumerate(self.jobs):
            j.row = i
        self.ids = np.fromiter((j.id for j in self.jobs), np.int64, n)
        self.sizes = np.fromiter((j.size for j in self.jobs), np.int64, n)
        self.arrivals = np.fromiter(
            (j.arrival for j in self.jobs), np.float64, n
        )
        self.runtimes = np.fromiter(
            (j.runtime for j in self.jobs), np.float64, n
        )
        # captured at table-build time, after apply_scenario has
        # (re)assigned the scenario's speed-ups to the Job objects
        self.speedups = np.fromiter(
            (j.speedup for j in self.jobs), np.float64, n
        )
        # bw_need is Optional[float]; NaN encodes "no bandwidth tag"
        self.bw_needs = np.fromiter(
            (
                math.nan if j.bw_need is None else j.bw_need
                for j in self.jobs
            ),
            np.float64,
            n,
        )
        self.state = np.full(n, self.PENDING, np.int8)
        # Per-run planning columns of the running set.  ``est_end`` and
        # ``eff_size`` are written by try_start and read (through a
        # :class:`RunningSet` row slice) by the reservation/backfill
        # arithmetic; ``work_frac`` is the remaining-work fraction of a
        # checkpoint-restarted job (1.0 = full work; see
        # :mod:`repro.sched.resilience`).
        self.est_end = np.zeros(n, np.float64)
        self.eff_size = np.zeros(n, np.int64)
        self.work_frac = np.ones(n, np.float64)
        # Provenance columns (``Simulator(provenance=True)``): the first
        # time the scheduler *considered* the job, how many allocation
        # attempts were charged for it, and that attempt count broken
        # down by rejection reason (feasibility-cache negative, monotone
        # size cut, batch-screen reject, failed ``_search``, step-budget
        # timeout).  Written only when provenance recording is on;
        # always allocated so the columns are cheap to reason about.
        self.first_eligible = np.full(n, math.nan, np.float64)
        self.attempt_count = np.zeros(n, np.int64)
        self.skip_cache = np.zeros(n, np.int64)
        self.skip_cut = np.zeros(n, np.int64)
        self.skip_screen = np.zeros(n, np.int64)
        self.skip_search = np.zeros(n, np.int64)
        self.skip_budget = np.zeros(n, np.int64)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def first_arrival(self) -> float:
        """Earliest arrival (0.0 for an empty table) — the simulation
        clock's start."""
        if not len(self.jobs):
            return 0.0
        return float(self.arrivals.min())

    def unique_sizes(self) -> np.ndarray:
        """Distinct requested sizes, ascending (for per-size validation:
        O(distinct sizes) allocator calls instead of O(jobs))."""
        return np.unique(self.sizes)

    def first_job_with_size(self, size: int):
        """The first job (trace order) requesting ``size`` nodes."""
        idx = int(np.argmax(self.sizes == size))
        return self.jobs[idx]

    def first_oversized(self, effective_size, capacity: int):
        """The first job (trace order) whose *effective* size exceeds
        ``capacity``, or ``None`` — one allocator call per distinct size
        instead of one per job."""
        bad = [
            int(s)
            for s in self.unique_sizes()
            if effective_size(int(s)) > capacity
        ]
        if not bad:
            return None
        rows = np.flatnonzero(np.isin(self.sizes, bad))
        return self.jobs[int(rows[0])]

    def arrival_queue(self) -> "ArrayEventQueue":
        """The arrival stream: stable-sorted by time, so equal-time
        arrivals keep trace order — the old heap's seq tie-break."""
        return ArrayEventQueue(self.arrivals, np.arange(len(self.jobs)))


class RunningSet:
    """Maintained index of the running job-table rows.

    A dense ``rows`` array plus a row-to-position map: ``add`` appends,
    ``discard`` swap-removes — both O(1) — and :meth:`rows` exposes the
    live prefix as a numpy view, so the reservation/backfill code reads
    ``table.est_end[running.rows()]`` instead of rebuilding arrays from
    a Python dict per call.  Iteration order is add order disturbed by
    swap-removes; every consumer sorts (or accumulates commutatively),
    so the order never reaches a scheduling decision.
    """

    __slots__ = ("_rows", "_pos", "_count")

    def __init__(self, capacity: int):
        self._rows = np.empty(capacity, np.int64)
        self._pos = np.full(capacity, -1, np.int64)
        self._count = 0

    def add(self, row: int) -> None:
        if self._pos[row] >= 0:
            raise ValueError(f"row {row} is already running")
        self._rows[self._count] = row
        self._pos[row] = self._count
        self._count += 1

    def discard(self, row: int) -> None:
        p = int(self._pos[row])
        if p < 0:
            raise KeyError(f"row {row} is not running")
        last = self._count - 1
        if p != last:
            moved = self._rows[last]
            self._rows[p] = moved
            self._pos[moved] = p
        self._pos[row] = -1
        self._count = last

    def rows(self) -> np.ndarray:
        """The running rows as a live numpy view (do not mutate)."""
        return self._rows[: self._count]

    def __len__(self) -> int:
        return self._count

    def __contains__(self, row: int) -> bool:
        return bool(self._pos[row] >= 0)


class ArrayEventQueue:
    """A pre-known event stream: sorted times, payload ids, a cursor.

    ``payloads`` are small ints (job-table rows, timeline indices);
    their original order doubles as the equal-time tie-break, matching
    the push order of the heap this replaces.
    """

    __slots__ = ("times", "payloads", "pos")

    def __init__(self, times, payloads):
        times = np.asarray(times, np.float64)
        payloads = np.asarray(payloads, np.int64)
        order = np.argsort(times, kind="stable")
        self.times = times[order]
        self.payloads = payloads[order]
        self.pos = 0

    def __len__(self) -> int:
        return len(self.times) - self.pos

    def peek_time(self) -> float:
        """Time of the next pending event (``inf`` when drained)."""
        if self.pos >= len(self.times):
            return _INF
        return float(self.times[self.pos])

    def take_until(self, t: float) -> Tuple[np.ndarray, np.ndarray]:
        """Drain every pending event with ``time <= t``: one
        ``searchsorted`` slice, no per-event work."""
        lo = self.pos
        hi = int(np.searchsorted(self.times, t, side="right"))
        if hi < lo:
            hi = lo
        self.pos = hi
        return self.times[lo:hi], self.payloads[lo:hi]


class CompletionQueue:
    """Round-bucketed completion events on growable numpy arrays.

    Pushes append to a plain-list buffer; a drain consolidates the
    buffer into the sorted arrays with one ``lexsort`` over
    ``(time, slot)`` — slots increase in push order, so equal-time
    completions replay in exactly the order the old heap's global
    sequence numbers produced.  The slot also serves as the live-
    completion token the kill path uses to orphan a stale entry (the
    entry itself stays queued and is skipped on drain).
    """

    __slots__ = ("_times", "_slots", "_pos", "_buf_t", "_buf_s",
                 "_buf_min", "_jobs")

    def __init__(self):
        self._times = np.empty(0, np.float64)
        self._slots = np.empty(0, np.int64)
        self._pos = 0
        self._buf_t: List[float] = []
        self._buf_s: List[int] = []
        self._buf_min = _INF
        self._jobs: List = []  # slot-indexed, one entry per push

    def __len__(self) -> int:
        return (len(self._times) - self._pos) + len(self._buf_t)

    def push(self, t: float, job) -> int:
        """Queue ``job``'s completion at ``t``; returns its slot (the
        live-completion token)."""
        slot = len(self._jobs)
        self._jobs.append(job)
        self._buf_t.append(t)
        self._buf_s.append(slot)
        if t < self._buf_min:
            self._buf_min = t
        return slot

    def job(self, slot: int):
        return self._jobs[slot]

    def peek_time(self) -> float:
        head = (
            float(self._times[self._pos])
            if self._pos < len(self._times)
            else _INF
        )
        return head if head <= self._buf_min else self._buf_min

    def _consolidate(self) -> None:
        if not self._buf_t:
            return
        times = np.concatenate(
            [self._times[self._pos:], np.array(self._buf_t, np.float64)]
        )
        slots = np.concatenate(
            [self._slots[self._pos:], np.array(self._buf_s, np.int64)]
        )
        order = np.lexsort((slots, times))
        self._times = times[order]
        self._slots = slots[order]
        self._pos = 0
        self._buf_t.clear()
        self._buf_s.clear()
        self._buf_min = _INF

    def take_until(self, t: float) -> Tuple[np.ndarray, np.ndarray]:
        """Drain every pending completion with ``time <= t`` as
        ``(times, slots)`` in ``(time, slot)`` order — the round
        bucket."""
        if self._buf_t:
            self._consolidate()
        lo = self._pos
        hi = int(np.searchsorted(self._times, t, side="right"))
        if hi < lo:
            hi = lo
        self._pos = hi
        return self._times[lo:hi], self._slots[lo:hi]


class EventStreams:
    """The four event streams of one run, merged per scheduling round.

    ``arrivals``/``repairs``/``injects`` are :class:`ArrayEventQueue`\\ s
    (pre-known), ``completions`` a :class:`CompletionQueue` (dynamic).
    """

    __slots__ = ("arrivals", "completions", "repairs", "injects")

    def __init__(
        self,
        arrivals: ArrayEventQueue,
        completions: CompletionQueue,
        repairs: Optional[ArrayEventQueue] = None,
        injects: Optional[ArrayEventQueue] = None,
    ):
        empty = None
        if repairs is None or injects is None:
            empty = ArrayEventQueue(
                np.empty(0, np.float64), np.empty(0, np.int64)
            )
        self.arrivals = arrivals
        self.completions = completions
        self.repairs = repairs if repairs is not None else empty
        self.injects = injects if injects is not None else ArrayEventQueue(
            np.empty(0, np.float64), np.empty(0, np.int64)
        ) if empty is None else empty

    def next_time(self) -> float:
        """Earliest pending event time across all streams (``inf`` when
        every stream is drained)."""
        t = self.arrivals.peek_time()
        c = self.completions.peek_time()
        if c < t:
            t = c
        r = self.repairs.peek_time()
        if r < t:
            t = r
        i = self.injects.peek_time()
        if i < t:
            t = i
        return t

    def empty(self) -> bool:
        return self.next_time() == _INF

    def take_round(
        self, t: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Every pending event with ``time <= t``, merged across streams
        into global ``(time, kind, payload)`` order.

        This is the replacement for popping the old heap: one slice per
        stream plus one ``lexsort`` over the round, with the payload ids
        supplying the within-kind tie-break (push order), so the merged
        order is exactly the heap's ``(time, kind, seq)`` order.
        """
        parts = []
        for kind, stream in (
            (FAULT_REPAIR, self.repairs),
            (COMPLETION, self.completions),
            (ARRIVAL, self.arrivals),
            (FAULT_INJECT, self.injects),
        ):
            times, payloads = stream.take_until(t)
            if len(times):
                parts.append((times, kind, payloads))
        if not parts:
            z = np.empty(0, np.float64)
            zi = np.empty(0, np.int64)
            return z, zi.astype(np.int8), zi
        if len(parts) == 1:
            times, kind, payloads = parts[0]
            kinds = np.full(len(times), kind, np.int8)
            return times, kinds, payloads
        times = np.concatenate([p[0] for p in parts])
        kinds = np.concatenate(
            [np.full(len(p[0]), p[1], np.int8) for p in parts]
        )
        payloads = np.concatenate([p[2] for p in parts])
        order = np.lexsort((payloads, kinds, times))
        return times[order], kinds[order], payloads[order]


def round_boundary(t0: float, event_time: float, step: float) -> float:
    """The batch-step grid point at or after ``event_time``.

    Rounds live on the grid ``t0 + k * step`` (``t0`` = the run's first
    event time, the Firmament anchor); the next round is the first grid
    point that covers the earliest pending event, so idle stretches are
    skipped instead of ticking empty rounds.
    """
    if event_time <= t0:
        return t0
    k = math.ceil((event_time - t0) / step)
    boundary = t0 + k * step
    # guard against float slop pushing the boundary below the event
    while boundary < event_time:
        k += 1
        boundary = t0 + k * step
    return boundary
