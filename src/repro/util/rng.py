"""Deterministic random-number streams.

Every stochastic component (trace generators, speed-up scenarios,
bandwidth-class assignment) draws from a named, seeded stream so that
experiments are exactly reproducible and independent components never
perturb each other's sequences.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np


def rng_for(name: str, seed: int = 0) -> np.random.Generator:
    """A generator keyed by ``(name, seed)``.

    The name is hashed so streams for different purposes are
    statistically independent even with equal seeds.
    """
    digest = hashlib.sha256(f"{name}:{seed}".encode()).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def spawn_rngs(name: str, count: int, seed: int = 0) -> List[np.random.Generator]:
    """``count`` independent generators under one name."""
    return [rng_for(f"{name}/{i}", seed) for i in range(count)]
