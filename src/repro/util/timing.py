"""Wall-clock accounting for Table 3 (scheduling time per job)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.calls
    1
    """

    seconds: float = 0.0
    calls: int = 0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._start
        self.calls += 1

    @property
    def mean(self) -> float:
        """Average seconds per timed call (0 when never used)."""
        return self.seconds / self.calls if self.calls else 0.0

    # Aliases matching the metric-registry vocabulary (a timer exports
    # naturally as a ``_sum``/``_count`` pair — see repro.obs.metrics).
    @property
    def total(self) -> float:
        """Accumulated seconds (alias of :attr:`seconds`)."""
        return self.seconds

    @property
    def count(self) -> int:
        """Number of timed calls (alias of :attr:`calls`)."""
        return self.calls
