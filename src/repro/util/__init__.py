"""Small shared utilities: seeded RNG streams and timing helpers."""

from repro.util.rng import rng_for, spawn_rngs
from repro.util.timing import Timer

__all__ = ["rng_for", "spawn_rngs", "Timer"]
