"""Shared experiment setup: the paper's cluster/trace assignments.

Section 5.4.3: the three synthetic traces run on the 1024-, 2662- and
5488-node clusters; Thunder, Atlas and the Cab months run on the
1458-node cluster (chosen over the 1024-node one so the leaf size does
not accidentally divide the power-of-two job sizes, which would flatter
LaaS).  Aug-Cab and Nov-Cab arrivals are scaled by 0.5.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.core.registry import make_allocator
from repro.obs.prof import StageProfiler
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracer import Tracer
from repro.sched.metrics import SimResult
from repro.sched.simulator import Simulator
from repro.sched.speedup import apply_scenario
from repro.topology.fattree import FatTree
from repro.traces import atlas_like, cab_like, synthetic_trace, thunder_like
from repro.traces.trace import Trace

#: paper job counts per trace name
PAPER_JOB_COUNTS = {
    "Synth-16": 10_000,
    "Synth-22": 10_000,
    "Synth-28": 10_000,
    "Synth-32": 10_000,
    "Synth-36": 10_000,
    "Thunder": 105_764,
    "Atlas": 29_700,
    "Aug-Cab": 30_691,
    "Sep-Cab": 87_564,
    "Oct-Cab": 125_228,
    "Nov-Cab": 50_353,
}

#: default scaled-down job counts used by the benchmarks
DEFAULT_JOB_COUNTS = {
    "Synth-16": 2_500,
    "Synth-22": 1_500,
    "Synth-28": 1_200,
    "Synth-32": 1_000,
    "Synth-36": 1_000,
    "Thunder": 4_000,
    "Atlas": 3_000,
    "Aug-Cab": 3_500,
    "Sep-Cab": 3_500,
    "Oct-Cab": 3_500,
    "Nov-Cab": 3_500,
}

#: switch radix of the cluster each trace is simulated on (section
#: 5.4.3; Synth-32 and Synth-36 are the beyond-paper scale-up presets)
TRACE_CLUSTER_RADIX = {
    "Synth-16": 16,
    "Synth-22": 22,
    "Synth-28": 28,
    "Synth-32": 32,
    "Synth-36": 36,
    "Thunder": 18,
    "Atlas": 18,
    "Aug-Cab": 18,
    "Sep-Cab": 18,
    "Oct-Cab": 18,
    "Nov-Cab": 18,
}

#: arrival-time scaling (section 5.1: Aug and Nov ran at low native load)
ARRIVAL_SCALE = {"Aug-Cab": 0.5, "Nov-Cab": 0.5}

ALL_TRACE_NAMES = tuple(PAPER_JOB_COUNTS)

_MIN_JOBS = 300


def default_scale() -> Optional[float]:
    """The job-count scale from ``REPRO_SCALE`` (None = bench defaults).

    ``REPRO_FULL_SCALE=1`` is shorthand for ``REPRO_SCALE=1``.
    """
    if os.environ.get("REPRO_FULL_SCALE"):
        return 1.0
    raw = os.environ.get("REPRO_SCALE")
    if raw is None:
        return None
    scale = float(raw)
    if not 0 < scale <= 1:
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {scale}")
    return scale


def _num_jobs(name: str, scale: Optional[float]) -> int:
    if scale is None:
        return DEFAULT_JOB_COUNTS[name]
    return max(_MIN_JOBS, int(PAPER_JOB_COUNTS[name] * scale))


@dataclass(frozen=True)
class ExperimentSetup:
    """One trace bound to its experiment cluster, ready to simulate."""

    trace: Trace
    tree: FatTree

    @property
    def name(self) -> str:
        return self.trace.name


def paper_setup(
    name: str,
    scale: Optional[float] = None,
    seed: int = 0,
    topology: Optional[int] = None,
) -> ExperimentSetup:
    """Build the named trace on its section-5.4.3 cluster.

    ``scale`` multiplies the paper's job count (None = the benchmark
    default counts); arrival scaling for Aug/Nov-Cab is applied here.
    ``topology`` overrides the trace's default switch radix (e.g. 32
    replays any trace on the 8192-node scale-up cluster).
    """
    if name not in PAPER_JOB_COUNTS:
        raise ValueError(f"unknown trace {name!r}; expected one of {ALL_TRACE_NAMES}")
    n = _num_jobs(name, scale)
    radix = topology if topology is not None else TRACE_CLUSTER_RADIX[name]
    if name.startswith("Synth-"):
        mean = int(name.split("-")[1])
        tree = FatTree.from_radix(radix)
        trace = synthetic_trace(mean, num_jobs=n, seed=seed, max_size=tree.num_nodes)
        return ExperimentSetup(trace, tree)
    tree = FatTree.from_radix(radix)
    if name == "Thunder":
        trace = thunder_like(num_jobs=n, seed=seed)
    elif name == "Atlas":
        trace = atlas_like(num_jobs=n, seed=seed)
    else:
        month = name.split("-")[0].lower()
        trace = cab_like(month, num_jobs=n, seed=seed)
        if name in ARRIVAL_SCALE:
            trace = trace.scale_arrivals(ARRIVAL_SCALE[name])
    return ExperimentSetup(trace, tree)


def run_scheme(
    setup: ExperimentSetup,
    scheme: str,
    scenario: Optional[str] = None,
    seed: int = 0,
    backfill_window: int = 50,
    reservation_policy: str = "renew",
    backfill_policy: str = "easy",
    estimate_factor: float = 1.0,
    queue_order: str = "fifo",
    event_log=None,
    tracer=None,
    traced: bool = False,
    sampler=None,
    sample_interval: Optional[float] = None,
    metrics=None,
    fault_timeline=None,
    mttf: Optional[float] = None,
    mttr: Optional[float] = None,
    fault_seed: int = 0,
    fault_horizon: Optional[float] = None,
    fault_victim_policy: str = "requeue-full",
    checkpoint_interval: float = 0.0,
    step_interval: Optional[float] = None,
    use_vector_pass: bool = True,
    use_columnar_events: bool = True,
    profiler=None,
    profiled: bool = False,
    provenance: bool = False,
    **allocator_kwargs,
) -> SimResult:
    """Simulate ``setup``'s trace under one scheme (and speed-up scenario).

    ``scenario=None`` is equivalent to ``"none"``: the jobs' speed-ups
    are always (re)assigned, so a setup reused across runs — the worker
    setup cache in :mod:`repro.experiments.grid` does this — cannot leak
    a previous scenario's speed-ups into a scenario-free run.

    Faults (see :mod:`repro.sched.resilience`):

    * ``fault_timeline`` — an explicit :class:`FaultTimeline` (or spec
      sequence; plain picklable data, so it threads through the grid
      engine's process pool unchanged).
    * ``mttf``/``mttr``/``fault_seed``/``fault_horizon`` — synthesize a
      per-node timeline instead (mutually exclusive with an explicit
      one).  The horizon defaults to the trace's last arrival plus the
      trace's total work divided by the cluster size (a lower bound on
      the makespan, so bursty traces whose jobs all arrive at t=0 still
      see faults); the MTTR defaults to one tenth of the MTTF.
    * ``fault_victim_policy``/``checkpoint_interval`` — what happens to
      jobs running on failed hardware.

    ``step_interval`` selects batch-step scheduling rounds every Δt
    simulated seconds instead of a pass per event batch (see
    :class:`repro.sched.simulator.Simulator`); a plain float, so it
    pickles through the grid engine's process pool unchanged.

    ``use_vector_pass=False`` selects the scalar scheduling-pass twin
    (identical decisions; see the vector-pass notes on
    :class:`~repro.sched.simulator.Simulator`).
    ``use_columnar_events=False`` selects the one-event-at-a-time drain
    twin (identical decisions; see the columnar-event notes there).

    Telemetry (all strictly passive; see :mod:`repro.obs`):

    * ``tracer`` — a :class:`~repro.obs.tracer.Tracer` to record spans
      into; ``traced=True`` creates an enabled one when none is given
      (the picklable spelling grid workers use).
    * ``sampler``/``sample_interval`` — a
      :class:`~repro.obs.sampler.TimeSeriesSampler` (or the interval to
      build one from); rows land in ``SimResult.samples``.
    * ``event_log`` — a :class:`~repro.sched.log.ScheduleLog`.
    * ``metrics`` — a :class:`~repro.obs.metrics.MetricRegistry` to
      populate with live views of the run's counters.
    * ``profiler``/``profiled`` — a :class:`~repro.obs.prof.StageProfiler`
      installed on the allocator for the run (``profiled=True`` creates
      an enabled one, the picklable spelling); its snapshot lands in
      ``SimResult.prof``.
    * ``provenance=True`` — record per-job scheduling provenance into
      ``SimResult.provenance`` (see :mod:`repro.sched.metrics`).
    """
    apply_scenario(setup.trace.jobs, scenario or "none", seed=seed)
    allocator = make_allocator(scheme, setup.tree, **allocator_kwargs)
    if profiler is None and profiled:
        profiler = StageProfiler(enabled=True)
    if profiler is not None:
        allocator.prof = profiler
    if tracer is None and traced:
        tracer = Tracer(enabled=True)
    if sampler is None and sample_interval is not None:
        sampler = TimeSeriesSampler(sample_interval)
    if mttf is not None:
        if fault_timeline is not None:
            raise ValueError("pass either fault_timeline or mttf, not both")
        from repro.sched.resilience import FaultTimeline

        horizon = fault_horizon
        if horizon is None:
            jobs = setup.trace.jobs
            work = sum(j.runtime * j.size for j in jobs)
            horizon = max((j.arrival for j in jobs), default=0.0) + (
                work / setup.tree.num_nodes
            )
        fault_timeline = FaultTimeline.synthetic(
            setup.tree.num_nodes, mttf, mttr, horizon, seed=fault_seed
        )
    sim = Simulator(
        allocator,
        backfill_window=backfill_window,
        reservation_policy=reservation_policy,
        backfill_policy=backfill_policy,
        estimate_factor=estimate_factor,
        queue_order=queue_order,
        event_log=event_log,
        tracer=tracer,
        sampler=sampler,
        fault_timeline=fault_timeline,
        fault_victim_policy=fault_victim_policy,
        checkpoint_interval=checkpoint_interval,
        step_interval=step_interval,
        use_vector_pass=use_vector_pass,
        use_columnar_events=use_columnar_events,
        provenance=provenance,
    )
    result = sim.run(setup.trace)
    if profiler is not None:
        result.prof = profiler.snapshot()
    if metrics is not None:
        from repro.obs.bridge import simulation_registry

        simulation_registry(
            result, allocator.stats, event_log, registry=metrics
        )
    return result
