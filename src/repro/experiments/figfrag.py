"""Extension experiment: fragmentation decomposition over time.

Section 6.1 *explains* the utilization ranking with fragmentation
arguments; this experiment measures them.  While a trace replays under
each isolating scheme, the cluster's fragmentation snapshot is sampled
at regular completion intervals, yielding the time-averaged
decomposition of lost capacity:

* padding (internal fragmentation) — expected nonzero only for LaaS;
* free capacity split into fully-free leaves vs partial-leaf shards;
* placement feasibility rates for probe job sizes — the external-
  fragmentation view: how often could a mid-size job start *right now*?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.core.diagnostics import fragmentation_snapshot
from repro.core.registry import make_allocator
from repro.experiments.grid import cell, run_sim_grid, setup_for
from repro.experiments.report import render_table
from repro.sched.simulator import Simulator

DEFAULT_SCHEMES = ("jigsaw", "laas", "ta")
DEFAULT_PROBES = (8, 24, 64)


@dataclass
class FragTimeSeries:
    """Sampled fragmentation statistics for one scheme over one run."""

    scheme: str
    samples: int = 0
    free_pct_sum: float = 0.0
    padding_pct_sum: float = 0.0
    full_free_leaves_sum: float = 0.0
    shard_pct_sum: float = 0.0
    placeable_hits: Dict[int, int] = field(default_factory=dict)

    def mean(self, total_sum: float) -> float:
        return total_sum / self.samples if self.samples else 0.0

    def as_row(self, probes: Sequence[int]) -> Dict[str, float]:
        row = {
            "free %": self.mean(self.free_pct_sum),
            "padding %": self.mean(self.padding_pct_sum),
            "full-free leaves": self.mean(self.full_free_leaves_sum),
            "shard %": self.mean(self.shard_pct_sum),
        }
        for p in probes:
            hits = self.placeable_hits.get(p, 0)
            row[f"fit {p}n %"] = 100.0 * hits / self.samples if self.samples else 0.0
        return row


def _frag_cell(
    trace: str,
    scheme: str,
    probes: Sequence[int] = DEFAULT_PROBES,
    sample_every: int = 25,
    scale: Optional[float] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Grid task: one scheme's instrumented replay, as its table row."""
    probes = tuple(probes)
    setup = setup_for(trace, scale=scale, seed=seed)
    allocator = make_allocator(scheme, setup.tree)
    series = FragTimeSeries(scheme)
    releases = [0]
    orig_release = allocator.release

    def sampled_release(job_id, _orig=orig_release, _a=allocator,
                        _s=series):
        _orig(job_id)
        releases[0] += 1
        if releases[0] % sample_every:
            return
        snap = fragmentation_snapshot(_a, probe_sizes=probes)
        _s.samples += 1
        _s.free_pct_sum += 100.0 * snap.free_fraction
        _s.padding_pct_sum += 100.0 * snap.internal_fragmentation_fraction
        _s.full_free_leaves_sum += snap.fully_free_leaves
        _s.shard_pct_sum += 100.0 * snap.shard_nodes / snap.total_nodes
        for p in probes:
            if snap.placeable.get(p):
                _s.placeable_hits[p] = _s.placeable_hits.get(p, 0) + 1

    allocator.release = sampled_release
    Simulator(allocator).run(setup.trace)
    return series.as_row(probes)


def fragmentation_timeseries(
    trace_name: str = "Synth-16",
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    probes: Sequence[int] = DEFAULT_PROBES,
    sample_every: int = 25,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Time-averaged fragmentation decomposition per scheme."""
    cells = [
        cell(
            _frag_cell,
            trace=trace_name,
            scheme=scheme,
            probes=tuple(probes),
            sample_every=sample_every,
            scale=scale,
            seed=seed,
        )
        for scheme in schemes
    ]
    rows = run_sim_grid(cells, workers=workers)
    return dict(zip(schemes, rows))


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """The fragmentation decomposition as an aligned text table."""
    columns = list(next(iter(rows.values())))
    return render_table(
        "Fragmentation decomposition, time-averaged over the run "
        "(extension of section 6.1's analysis)",
        rows,
        columns,
        row_header="Scheme",
    )
