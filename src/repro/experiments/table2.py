"""Table 2: frequency of instantaneous-utilization ranges on Thunder.

The paper samples instantaneous utilization (allocated requested nodes /
system nodes) at every schedule or completion event of the Thunder trace
and reports, for LaaS, Jigsaw and TA, how many samples fall into each
range.  The headline shape: Jigsaw spends roughly a quarter of its
samples at >= 98 %, TA a tenth, LaaS essentially none (its ~3 % padding
loss makes >= 98 % unreachable); TA falls below 80 % far more often than
either.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table
from repro.sched.metrics import INSTANT_BINS

TABLE2_SCHEMES = ("laas", "jigsaw", "ta")


def table2_instantaneous(
    trace_name: str = "Thunder",
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, int]]:
    """Histogram counts per scheme (Table 2's rows)."""
    cells = [
        sim_cell(trace=trace_name, scheme=scheme, scale=scale, seed=seed)
        for scheme in TABLE2_SCHEMES
    ]
    results = run_sim_grid(cells, workers=workers)
    return {
        scheme: result.instant.as_row()
        for scheme, result in zip(TABLE2_SCHEMES, results)
    }


def render(rows: Dict[str, Dict[str, int]]) -> str:
    """Table 2 as an aligned text table."""
    columns = [label for label, _, _ in INSTANT_BINS]
    return render_table(
        "Table 2: Frequency of instantaneous utilization ranges (Thunder)",
        rows,
        columns,
        row_header="Approach",
    )
