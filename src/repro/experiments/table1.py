"""Table 1: characteristics of the job-queue traces."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.grid import cell, run_sim_grid, setup_for
from repro.experiments.report import render_table
from repro.experiments.runner import ALL_TRACE_NAMES


def _table1_cell(
    trace: str, scale: Optional[float] = None, seed: int = 0
) -> Dict[str, object]:
    """Grid task: one trace's Table 1 row (trace building dominates)."""
    setup = setup_for(trace, scale=scale, seed=seed)
    row = setup.trace.stats().as_row()
    row["Sim cluster nodes"] = setup.tree.num_nodes
    return row


def table1_traces(
    names: Sequence[str] = ALL_TRACE_NAMES,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, object]]:
    """Regenerate Table 1's rows for the (possibly scaled) traces."""
    cells = [
        cell(_table1_cell, trace=name, scale=scale, seed=seed) for name in names
    ]
    rows = run_sim_grid(cells, workers=workers)
    return dict(zip(names, rows))


def render(rows: Dict[str, Dict[str, object]]) -> str:
    """Table 1 as an aligned text table."""
    columns = [
        "System nodes",
        "Number of jobs",
        "Max job nodes",
        "Job run times (s)",
        "Arrival times",
        "Sim cluster nodes",
    ]
    return render_table(
        "Table 1: Characteristics of job queue traces",
        rows,
        columns,
        row_header="Trace name",
    )
