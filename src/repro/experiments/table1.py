"""Table 1: characteristics of the job-queue traces."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.runner import ALL_TRACE_NAMES, paper_setup
from repro.experiments.report import render_table


def table1_traces(
    names: Sequence[str] = ALL_TRACE_NAMES,
    scale: Optional[float] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Regenerate Table 1's rows for the (possibly scaled) traces."""
    rows: Dict[str, Dict[str, object]] = {}
    for name in names:
        setup = paper_setup(name, scale=scale, seed=seed)
        stats = setup.trace.stats()
        row = stats.as_row()
        row["Sim cluster nodes"] = setup.tree.num_nodes
        rows[name] = row
    return rows


def render(rows: Dict[str, Dict[str, object]]) -> str:
    """Table 1 as an aligned text table."""
    columns = [
        "System nodes",
        "Number of jobs",
        "Max job nodes",
        "Job run times (s)",
        "Arrival times",
        "Sim cluster nodes",
    ]
    return render_table(
        "Table 1: Characteristics of job queue traces",
        rows,
        columns,
        row_header="Trace name",
    )
