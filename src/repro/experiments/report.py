"""Plain-text rendering of experiment results, in the paper's layout."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def render_table(
    title: str,
    rows: Mapping[str, Mapping[str, object]],
    columns: Sequence[str],
    row_header: str = "",
    float_fmt: str = "{:.2f}",
) -> str:
    """Render ``rows`` (row label -> column -> value) as an aligned table."""
    header = [row_header] + list(columns)
    body = []
    for label, cells in rows.items():
        line = [str(label)]
        for col in columns:
            value = cells.get(col, "-")
            if isinstance(value, float):
                value = float_fmt.format(value)
            line.append(str(value))
        body.append(line)
    widths = [
        max(len(row[i]) for row in [header] + body) for i in range(len(header))
    ]
    sep = "  "

    def fmt(row):
        return sep.join(cell.rjust(w) for cell, w in zip(row, widths))

    lines = [title, fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


def render_series(
    title: str,
    series: Mapping[str, Mapping[str, float]],
    x_labels: Sequence[str],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render figure-style series (series name -> x label -> y value)."""
    return render_table(title, series, x_labels, row_header="series",
                        float_fmt=float_fmt)


def normalized(values: Dict[str, float], baseline: float) -> Dict[str, float]:
    """Divide every value by ``baseline`` (the paper's figure normalization)."""
    if baseline == 0:
        raise ValueError("cannot normalize by a zero baseline")
    return {k: v / baseline for k, v in values.items()}


def render_bars(
    title: str,
    values: Mapping[str, float],
    width: int = 40,
    lo: float = 0.0,
    hi: float = 100.0,
    fmt: str = "{:.1f}",
) -> str:
    """Horizontal ASCII bar chart (the terminal stand-in for Figure 6).

    Values are clipped to ``[lo, hi]`` and drawn proportionally; the
    numeric value is printed after each bar.
    """
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if width < 1:
        raise ValueError("width must be positive")
    label_w = max((len(k) for k in values), default=0)
    lines = [title]
    for label, value in values.items():
        clipped = min(max(value, lo), hi)
        filled = round(width * (clipped - lo) / (hi - lo))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"{label.rjust(label_w)} |{bar}| {fmt.format(value)}")
    return "\n".join(lines)


def render_sparkline(
    series: Sequence[float], lo: float = 0.0, hi: float = 100.0
) -> str:
    """One-line sparkline (utilization timelines, at a glance)."""
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    glyphs = " .:-=+*#%@"
    out = []
    for value in series:
        clipped = min(max(value, lo), hi)
        idx = round((len(glyphs) - 1) * (clipped - lo) / (hi - lo))
        out.append(glyphs[idx])
    return "".join(out)


def save_json(rows: Mapping, path) -> None:
    """Persist experiment rows as JSON for external plotting."""
    import json
    from pathlib import Path

    Path(path).parent.mkdir(parents=True, exist_ok=True)
    Path(path).write_text(json.dumps(rows, indent=1, sort_keys=True))
