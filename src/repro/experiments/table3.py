"""Table 3: average scheduling time per job, in seconds.

Four representative experiments from the smallest cluster to the
largest: Synth-16 (1024 nodes), Sep-Cab and Thunder (1458), Synth-28
(5488).  Paper expectations: TA, LaaS and Jigsaw are within an order of
magnitude of one another and in the milliseconds; LC+S is one to two
orders of magnitude slower and grows sharply with cluster size.
Absolute numbers are machine- and language-dependent (the paper's code
is C++; this is Python) — Table 3's *shape* is the reproduction target.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

TABLE3_TRACES = ("Synth-16", "Sep-Cab", "Thunder", "Synth-28")
TABLE3_SCHEMES = ("ta", "laas", "jigsaw", "lc+s")


def table3_full(
    trace_names: Sequence[str] = TABLE3_TRACES,
    schemes: Sequence[str] = TABLE3_SCHEMES,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Tuple[
    Dict[str, Dict[str, float]],
    Dict[str, Dict[str, str]],
    Dict[str, Dict[str, str]],
]:
    """Table 3 plus the allocator cache and search-effort counters, all
    from the same simulation runs.

    Returns ``(rows, cache_rows, search_rows)``: ``rows`` is scheme ->
    trace -> mean allocator seconds per job; ``cache_rows`` is scheme ->
    trace -> ``"hit%  (hits/lookups)"``; ``search_rows`` is scheme ->
    trace -> ``"pruned/cand/memo/steps"`` (pods pruned by the occupancy
    prefilter, candidate lists read off the maintained order, per-search
    memo hits, backtracking steps executed).
    """
    cells = [
        sim_cell(trace=name, scheme=scheme, scale=scale, seed=seed)
        for name in trace_names
        for scheme in schemes
    ]
    results = iter(run_sim_grid(cells, workers=workers))
    rows: Dict[str, Dict[str, float]] = {scheme: {} for scheme in schemes}
    cache_rows: Dict[str, Dict[str, str]] = {scheme: {} for scheme in schemes}
    search_rows: Dict[str, Dict[str, str]] = {scheme: {} for scheme in schemes}
    for name in trace_names:
        for scheme in schemes:
            result = next(results)
            rows[scheme][name] = result.mean_sched_time_per_job
            lookups = result.cache_hits + result.cache_misses
            cache_rows[scheme][name] = (
                f"{100 * result.cache_hit_rate:.1f}% "
                f"({result.cache_hits}/{lookups})"
            )
            search_rows[scheme][name] = (
                f"{result.pods_pruned}/{result.candidate_hits}"
                f"/{result.memo_hits}/{result.backtrack_steps}"
            )
    return rows, cache_rows, search_rows


def table3_with_cache(
    trace_names: Sequence[str] = TABLE3_TRACES,
    schemes: Sequence[str] = TABLE3_SCHEMES,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Tuple[Dict[str, Dict[str, float]], Dict[str, Dict[str, str]]]:
    """Table 3 plus the allocator feasibility-cache counters (see
    :func:`table3_full` for the search-effort counters as well)."""
    rows, cache_rows, _ = table3_full(
        trace_names, schemes, scale, seed, workers
    )
    return rows, cache_rows


def table3_scheduling_time(
    trace_names: Sequence[str] = TABLE3_TRACES,
    schemes: Sequence[str] = TABLE3_SCHEMES,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Mean allocator wall-clock seconds per job: scheme -> trace -> s."""
    return table3_with_cache(trace_names, schemes, scale, seed, workers)[0]


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """Table 3 as an aligned text table."""
    traces = list(next(iter(rows.values())))
    return render_table(
        "Table 3: Average scheduling time per job (seconds)",
        rows,
        traces,
        row_header="Approach",
        float_fmt="{:.5f}",
    )


def render_cache(cache_rows: Dict[str, Dict[str, str]]) -> str:
    """The feasibility-cache companion table (hit rate per run)."""
    traces = list(next(iter(cache_rows.values())))
    return render_table(
        "Allocator feasibility cache: hit rate (hits/lookups)",
        cache_rows,
        traces,
        row_header="Approach",
    )


def render_search(search_rows: Dict[str, Dict[str, str]]) -> str:
    """The search-effort companion table (pruned/cand/memo/steps)."""
    traces = list(next(iter(search_rows.values())))
    return render_table(
        "Allocator search effort: pods pruned/candidate hits"
        "/memo hits/backtrack steps",
        search_rows,
        traces,
        row_header="Approach",
    )
