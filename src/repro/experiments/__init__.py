"""Experiment harness: regenerate every table and figure of the paper.

One module per artifact:

* :mod:`repro.experiments.table1` — trace characteristics (Table 1)
* :mod:`repro.experiments.fig6` — average system utilization (Figure 6)
* :mod:`repro.experiments.table2` — instantaneous-utilization histogram (Table 2)
* :mod:`repro.experiments.fig7` — normalized turnaround times (Figure 7)
* :mod:`repro.experiments.fig8` — normalized makespans (Figure 8)
* :mod:`repro.experiments.table3` — scheduling time per job (Table 3)

Every module enumerates its (trace x scheme x scenario) grid through
:mod:`repro.experiments.grid`, which fans the cells across a process
pool when ``workers`` (or ``REPRO_WORKERS``) is above 1 — outputs are
byte-identical to the serial run either way.

All experiments accept a ``scale`` in ``(0, 1]`` that multiplies the
paper's job counts; the defaults keep each benchmark in the minutes
range on a laptop, and ``REPRO_SCALE=1`` reruns at paper scale (see
DESIGN.md section 7).
"""

from repro.experiments.runner import (
    ExperimentSetup,
    default_scale,
    paper_setup,
    run_scheme,
)
from repro.experiments.grid import (
    GridCell,
    cell,
    resolve_workers,
    run_grid,
    run_sim_grid,
    sim_cell,
)
from repro.experiments.fig6 import fig6_utilization
from repro.experiments.fig7 import fig7_turnaround
from repro.experiments.fig8 import fig8_makespan
from repro.experiments.table1 import table1_traces
from repro.experiments.table2 import table2_instantaneous
from repro.experiments.table3 import table3_scheduling_time
from repro.experiments.report import render_table, render_series
from repro.experiments.stats import (
    SeedStats,
    fig6_with_seeds,
    utilization_with_seeds,
)

__all__ = [
    "ExperimentSetup",
    "paper_setup",
    "default_scale",
    "run_scheme",
    "GridCell",
    "cell",
    "resolve_workers",
    "run_grid",
    "run_sim_grid",
    "sim_cell",
    "fig6_utilization",
    "fig7_turnaround",
    "fig8_makespan",
    "table1_traces",
    "table2_instantaneous",
    "table3_scheduling_time",
    "render_table",
    "render_series",
    "SeedStats",
    "fig6_with_seeds",
    "utilization_with_seeds",
]
