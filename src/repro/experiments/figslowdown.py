"""Extension experiment: measured interference slowdowns.

The studies the paper cites ([6-8, 30]) measure how much jobs slow down
when sharing the network; section 5.4.1 then *assumes* 5-20 % isolation
speed-ups.  This experiment derives the numbers for our own fabric
model: pack a cluster to high occupancy under Baseline and under Jigsaw
placements, run communication patterns in every job, and compare
max-min-fair phase times against each job running alone.

Expected shape: Jigsaw's slowdown column is identically 1.0 (isolation
is structural); Baseline's grows with pattern intensity and supplies
the empirical basis for the scenario magnitudes.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

from repro.core.registry import make_allocator
from repro.experiments.grid import cell, run_sim_grid
from repro.experiments.report import render_table
from repro.netsim.slowdown import slowdown_report
from repro.topology.fattree import FatTree

DEFAULT_PATTERNS = ("shift", "permutation", "neighbor", "alltoall_sample")
JOB_MIX = (4, 6, 8, 10, 12, 16, 20, 9, 14)


def _pack(scheme: str, tree: FatTree, occupancy: float, seed: int):
    allocator = make_allocator(scheme, tree)
    rng = random.Random(seed)
    allocations = []
    jid = 0
    while allocator.free_nodes > (1 - occupancy) * tree.num_nodes:
        jid += 1
        alloc = allocator.allocate(jid, rng.choice(JOB_MIX))
        if alloc is None:
            break
        allocations.append(alloc)
    return allocations


def _slowdown_cell(
    scheme: str,
    pattern: str,
    partitioned: bool,
    radix: int,
    occupancy: float,
    seeds: Sequence[int],
) -> Dict[str, float]:
    """Grid task: one scheme/pattern row, averaged over the seeds."""
    tree = FatTree.from_radix(radix)
    means = []
    maxes = []
    for seed in seeds:
        allocations = _pack(scheme, tree, occupancy, seed)
        report = slowdown_report(
            tree, allocations, patterns=pattern, seed=seed,
            use_partition_routing=partitioned,
        )
        means.append(report.mean_slowdown)
        maxes.append(report.max_slowdown)
    return {
        "mean slowdown": sum(means) / len(means),
        "max slowdown": max(maxes),
        "implied isolation speed-up %": 100.0 * (
            sum(means) / len(means) - 1.0
        ),
    }


def slowdown_comparison(
    radix: int = 8,
    occupancy: float = 0.9,
    patterns: Sequence[str] = DEFAULT_PATTERNS,
    seeds: Sequence[int] = (0, 1, 2),
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Mean and max inter-job slowdown per scheme and pattern.

    Rows are ``{scheme}/{pattern}``; columns mean/max slowdown and the
    implied section-5.4.1 isolation speed-up.
    """
    grid: Tuple[Tuple[str, bool], ...] = (("baseline", False), ("jigsaw", True))
    labels = []
    cells = []
    for scheme, partitioned in grid:
        for pattern in patterns:
            labels.append(f"{scheme}/{pattern}")
            cells.append(
                cell(
                    _slowdown_cell,
                    scheme=scheme,
                    pattern=pattern,
                    partitioned=partitioned,
                    radix=radix,
                    occupancy=occupancy,
                    seeds=tuple(seeds),
                )
            )
    rows = run_sim_grid(cells, workers=workers)
    return dict(zip(labels, rows))


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """The slowdown comparison as an aligned text table."""
    return render_table(
        "Measured inter-job slowdowns (flow-level max-min model): the "
        "empirical basis of section 5.4.1's scenarios",
        rows,
        ["mean slowdown", "max slowdown", "implied isolation speed-up %"],
        row_header="Scheme/pattern",
    )
