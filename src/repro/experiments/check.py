"""Fast reproduction self-check: the paper's claims as a scorecard.

``jigsaw-repro check`` runs miniature versions of the headline
experiments (a minute or so) and reports which of the paper's
qualitative claims hold.  It is a smoke test for the reproduction —
the benchmarks assert the same shapes at proper scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.experiments.runner import paper_setup, run_scheme
from repro.routing.contention import contention_report
from repro.routing.rearrange import route_permutation, verify_one_flow_per_link
from repro.topology.fattree import FatTree


@dataclass
class ClaimResult:
    """Outcome of checking one of the paper's claims."""

    claim: str
    paper_ref: str
    passed: bool
    detail: str = ""


def _claim_isolation_and_conditions() -> ClaimResult:
    """Jigsaw allocations are legal and mutually isolated."""
    tree = FatTree.from_radix(8)
    allocator = make_allocator("jigsaw", tree)
    rng = random.Random(0)
    allocations = []
    for jid in range(1, 30):
        alloc = allocator.allocate(jid, rng.choice([2, 5, 8, 13, 20]))
        if alloc:
            allocations.append(alloc)
    bad = sum(1 for a in allocations if check_allocation(tree, a))
    report = contention_report(tree, allocations, use_partition_routing=True)
    ok = bad == 0 and report.interference_free
    return ClaimResult(
        "isolated, condition-compliant partitions",
        "sections 3.2, 6",
        ok,
        f"{len(allocations)} placements, {bad} condition violations, "
        f"inter-job interference: {not report.interference_free}",
    )


def _claim_full_bandwidth() -> ClaimResult:
    """Partitions route random permutations one-flow-per-link."""
    tree = FatTree.from_radix(8)
    allocator = make_allocator("jigsaw", tree)
    rng = random.Random(1)
    failures = 0
    checked = 0
    for jid, size in enumerate([9, 16, 20, 33], start=1):
        alloc = allocator.allocate(jid, size)
        if alloc is None:
            continue
        nodes = sorted(alloc.nodes)
        shuffled = list(nodes)
        rng.shuffle(shuffled)
        assignments = route_permutation(tree, alloc, dict(zip(nodes, shuffled)))
        if verify_one_flow_per_link(tree, alloc, assignments):
            failures += 1
        checked += 1
    return ClaimResult(
        "partitions are rearrangeable non-blocking",
        "theorem 6 / appendix A",
        failures == 0 and checked >= 3,
        f"{checked} partitions permutation-routed, {failures} failures",
    )


def _claim_utilization_ordering(scale: Optional[float]) -> ClaimResult:
    """Baseline > Jigsaw > LaaS/TA on the synthetic workload."""
    setup = paper_setup("Synth-16", scale=scale)
    utils = {
        scheme: run_scheme(setup, scheme).steady_state_utilization
        for scheme in ("baseline", "jigsaw", "laas", "ta")
    }
    ok = (
        utils["baseline"] >= 97.0
        and utils["baseline"] > utils["jigsaw"]
        and utils["jigsaw"] >= utils["laas"] - 0.5
        and utils["jigsaw"] >= utils["ta"] - 0.5
    )
    detail = ", ".join(f"{k}={v:.1f}%" for k, v in utils.items())
    return ClaimResult(
        "utilization ranking (Figure 6)", "section 6.1", ok, detail
    )


def _claim_turnaround_crossover(scale: Optional[float]) -> ClaimResult:
    """Jigsaw beats Baseline on turnaround at a 10 % isolation speed-up."""
    setup = paper_setup("Aug-Cab", scale=scale)
    base = run_scheme(setup, "baseline", scenario="10%")
    jig = run_scheme(setup, "jigsaw", scenario="10%")
    ratio = jig.mean_turnaround / base.mean_turnaround
    return ClaimResult(
        "turnaround crossover at 10% speed-up (Figure 7)",
        "section 6.2",
        ratio < 1.0,
        f"jigsaw/baseline = {ratio:.2f}",
    )


def _claim_scheduling_speed(scale: Optional[float]) -> ClaimResult:
    """Jigsaw schedules in milliseconds; LC+S is much slower."""
    setup = paper_setup("Synth-16", scale=scale)
    jig = run_scheme(setup, "jigsaw").mean_sched_time_per_job
    lcs = run_scheme(setup, "lc+s").mean_sched_time_per_job
    ok = jig < 0.05 and lcs > 2 * jig
    return ClaimResult(
        "scheduling-time gap (Table 3)",
        "section 6.4",
        ok,
        f"jigsaw={jig * 1e3:.2f}ms/job, lc+s={lcs * 1e3:.2f}ms/job",
    )


def run_checks(scale: Optional[float] = 0.01) -> List[ClaimResult]:
    """Run every claim check at the given (tiny) scale."""
    return [
        _claim_isolation_and_conditions(),
        _claim_full_bandwidth(),
        _claim_utilization_ordering(scale),
        _claim_turnaround_crossover(scale),
        _claim_scheduling_speed(scale),
    ]


def render(results: List[ClaimResult]) -> str:
    """The scorecard as text."""
    lines = ["Reproduction self-check (miniature scale):", ""]
    for r in results:
        mark = "PASS" if r.passed else "FAIL"
        lines.append(f"[{mark}] {r.claim}  ({r.paper_ref})")
        if r.detail:
            lines.append(f"       {r.detail}")
    passed = sum(r.passed for r in results)
    lines.append("")
    lines.append(f"{passed}/{len(results)} claims reproduced")
    return "\n".join(lines)
