"""Multi-seed statistics for the stochastic experiments.

The paper reports single runs; our traces and scenario assignments are
synthetic, so seed-to-seed variance matters when judging whether a gap
(say, Jigsaw vs LaaS utilization) is real.  This module reruns an
experiment across seeds and reports mean, standard deviation and a
normal-approximation 95 % confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.experiments.runner import paper_setup, run_scheme


@dataclass(frozen=True)
class SeedStats:
    """Summary of one scalar metric across seeds."""

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("SeedStats needs at least one value")

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single value)."""
        if self.n < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((v - m) ** 2 for v in self.values) / (self.n - 1))

    @property
    def ci95(self) -> float:
        """Half-width of the normal-approximation 95 % CI of the mean."""
        if self.n < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(self.n)

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.ci95:.2f} (n={self.n})"


def across_seeds(
    metric: Callable[[int], float], seeds: Sequence[int]
) -> SeedStats:
    """Evaluate ``metric(seed)`` for every seed."""
    return SeedStats(tuple(float(metric(seed)) for seed in seeds))


def utilization_with_seeds(
    trace_name: str,
    scheme: str,
    seeds: Sequence[int] = (0, 1, 2),
    scale: Optional[float] = None,
    **run_kwargs,
) -> SeedStats:
    """Steady-state utilization of one (trace, scheme) across seeds.

    Each seed regenerates the trace (and any scenario randomness), so
    the spread covers workload variance, not just tie-breaking."""

    def metric(seed: int) -> float:
        setup = paper_setup(trace_name, scale=scale, seed=seed)
        result = run_scheme(setup, scheme, seed=seed, **run_kwargs)
        return result.steady_state_utilization

    return across_seeds(metric, seeds)


def fig6_with_seeds(
    names: Sequence[str],
    schemes: Sequence[str],
    seeds: Sequence[int] = (0, 1, 2),
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, SeedStats]]:
    """Figure 6 with confidence intervals: trace -> scheme -> stats."""
    out: Dict[str, Dict[str, SeedStats]] = {}
    for name in names:
        out[name] = {
            scheme: utilization_with_seeds(name, scheme, seeds=seeds, scale=scale)
            for scheme in schemes
        }
    return out


def gap_is_significant(a: SeedStats, b: SeedStats) -> bool:
    """Whether ``a`` and ``b``'s means differ beyond both 95 % CIs —
    a coarse two-sample check suited to the small seed counts used here."""
    return abs(a.mean - b.mean) > (a.ci95 + b.ci95)
