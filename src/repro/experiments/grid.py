"""Parallel experiment-grid engine.

Every figure/table module enumerates a (trace x scheme x scenario x
seed) grid and runs each cell through :func:`repro.experiments.runner.
run_scheme`.  The cells are embarrassingly parallel — no cell reads
another cell's output — so this module provides the one fan-out engine
they all share:

* :func:`run_grid` executes a list of :class:`GridCell`\\ s either
  in-process (``workers=1``, the default — no pool is ever spawned) or
  across a ``ProcessPoolExecutor``, and **always returns outcomes in
  cell order**, so tables built from the results are byte-identical
  regardless of worker count or completion order.
* Each worker keeps a per-process **setup cache**: the expensive
  trace/tree construction (:func:`paper_setup`) runs once per
  (trace, scale, seed) per worker instead of once per cell.  Reuse is
  safe because :func:`run_scheme` re-applies the speed-up scenario and
  the simulator resets every job before replaying.
* Worker count resolves from the explicit argument, then the
  ``REPRO_WORKERS`` environment variable, then 1 — default behavior is
  the sequential path, unchanged from before this engine existed.

Tasks are addressed by dotted name (``"package.module:function"``) so a
cell pickles as plain strings/dicts and a freshly spawned worker can
resolve it by import, whatever the multiprocessing start method.  The
built-in ``sim`` task covers the standard simulation cell; modules with
bespoke cells (fragmentation sampling, slowdown packing) register their
own module-level functions via :func:`cell`.

Example::

    cells = [sim_cell(trace="Synth-16", scheme=s, scale=0.01)
             for s in ("baseline", "jigsaw")]
    outcomes = run_grid(cells, workers=4)
    results = [o.value for o in outcomes]   # SimResults, in cell order
"""

from __future__ import annotations

import importlib
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.experiments.runner import ExperimentSetup, paper_setup, run_scheme
from repro.obs.sampler import merge_streams
from repro.obs.tracer import get_tracer

#: environment variable consulted when ``workers`` is not given
WORKERS_ENV = "REPRO_WORKERS"

#: per-worker setup-cache capacity (the full paper grid needs 9)
_SETUP_CACHE_MAX = 32


# ----------------------------------------------------------------------
# Cells and outcomes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridCell:
    """One unit of grid work: a task name plus its keyword arguments.

    ``task`` is a dotted ``"module:function"`` reference to a
    module-level callable; ``params`` must be picklable.  Build cells
    with :func:`cell` or :func:`sim_cell` rather than directly.
    """

    task: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CellOutcome:
    """What one executed cell produced.

    ``value`` is whatever the task function returned (a ``SimResult``
    for ``sim`` cells); ``wall_seconds`` is the cell's wall time in its
    worker; the cache counters say how many :func:`setup_for` lookups
    the cell answered from the worker's setup cache vs built fresh.
    """

    value: Any
    wall_seconds: float
    setup_cache_hits: int = 0
    setup_cache_misses: int = 0


def cell(task: Union[str, Callable], **params) -> GridCell:
    """Build a :class:`GridCell` from a function (or dotted name)."""
    if callable(task):
        module = getattr(task, "__module__", None)
        name = getattr(task, "__qualname__", getattr(task, "__name__", ""))
        if not module or "." in name or "<" in name:
            raise ValueError(
                f"grid tasks must be module-level functions, got {task!r}"
            )
        task = f"{module}:{name}"
    return GridCell(task=task, params=params)


def sim_cell(
    trace: str,
    scheme: str,
    scenario: Optional[str] = None,
    seed: int = 0,
    scale: Optional[float] = None,
    **run_kwargs,
) -> GridCell:
    """A standard simulation cell (the ``sim`` task).

    Extra keyword arguments are forwarded to :func:`run_scheme`
    (``backfill_window``, ``queue_order``, ``step_interval``,
    ``use_vector_pass``, allocator options, ...), except ``topology``
    (a switch-radix override), which routes to :func:`setup_for`; they
    must stay plain picklable values so the cell crosses the process
    pool unchanged.
    """
    return cell(
        _sim_task,
        trace=trace,
        scheme=scheme,
        scenario=scenario,
        seed=seed,
        scale=scale,
        **run_kwargs,
    )


# ----------------------------------------------------------------------
# Worker-side state: the per-process setup cache
# ----------------------------------------------------------------------
_SETUP_CACHE: (
    "OrderedDict[Tuple[str, Optional[float], int, Optional[int]],"
    " ExperimentSetup]"
)
_SETUP_CACHE = OrderedDict()
_CACHE_COUNTERS = {"hits": 0, "misses": 0}


def setup_for(
    trace: str,
    scale: Optional[float] = None,
    seed: int = 0,
    topology: Optional[int] = None,
) -> ExperimentSetup:
    """This process's cached :func:`paper_setup` (build once, reuse).

    Safe to share across cells: every consumer re-applies its scenario
    and the simulator resets job state, so a cached setup replays
    exactly like a fresh one.  ``topology`` (a switch radix) keys the
    cache too, so the same trace on two cluster sizes never collides.
    """
    key = (trace, scale, seed, topology)
    setup = _SETUP_CACHE.get(key)
    if setup is not None:
        _CACHE_COUNTERS["hits"] += 1
        _SETUP_CACHE.move_to_end(key)
        return setup
    _CACHE_COUNTERS["misses"] += 1
    setup = paper_setup(trace, scale=scale, seed=seed, topology=topology)
    _SETUP_CACHE[key] = setup
    while len(_SETUP_CACHE) > _SETUP_CACHE_MAX:
        _SETUP_CACHE.popitem(last=False)
    return setup


def setup_cache_stats() -> Dict[str, int]:
    """This process's cumulative setup-cache counters (for tests)."""
    return dict(_CACHE_COUNTERS, size=len(_SETUP_CACHE))


def clear_setup_cache() -> None:
    """Drop cached setups and reset the counters (for tests)."""
    _SETUP_CACHE.clear()
    _CACHE_COUNTERS["hits"] = 0
    _CACHE_COUNTERS["misses"] = 0


def _sim_task(
    trace: str,
    scheme: str,
    scenario: Optional[str] = None,
    seed: int = 0,
    scale: Optional[float] = None,
    topology: Optional[int] = None,
    **run_kwargs,
):
    """The built-in task: one simulation of one grid cell."""
    setup = setup_for(trace, scale=scale, seed=seed, topology=topology)
    return run_scheme(setup, scheme, scenario=scenario, seed=seed, **run_kwargs)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
_TASK_CACHE: Dict[str, Callable] = {}


def _resolve_task(dotted: str) -> Callable:
    fn = _TASK_CACHE.get(dotted)
    if fn is None:
        module_name, _, attr = dotted.partition(":")
        if not module_name or not attr:
            raise ValueError(f"malformed grid task name {dotted!r}")
        fn = getattr(importlib.import_module(module_name), attr)
        _TASK_CACHE[dotted] = fn
    return fn


def _execute_cell(item: Tuple[int, GridCell]) -> Tuple[int, CellOutcome]:
    """Run one cell (worker entry point; module-level so it pickles)."""
    index, c = item
    fn = _resolve_task(c.task)
    tracer = get_tracer()
    span = tracer.begin("grid.cell") if tracer.enabled else None
    hits0, misses0 = _CACHE_COUNTERS["hits"], _CACHE_COUNTERS["misses"]
    t0 = time.perf_counter()
    value = fn(**c.params)
    if span is not None:
        span.set(task=c.task, index=index, **{
            k: v for k, v in c.params.items()
            if isinstance(v, (str, int, float, bool))
        })
        tracer.end(span)
    return index, CellOutcome(
        value=value,
        wall_seconds=time.perf_counter() - t0,
        setup_cache_hits=_CACHE_COUNTERS["hits"] - hits0,
        setup_cache_misses=_CACHE_COUNTERS["misses"] - misses0,
    )


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``REPRO_WORKERS``, else 1 (sequential)."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(raw) if raw else 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def run_grid(
    cells: Sequence[GridCell],
    workers: Optional[int] = None,
    on_result: Optional[Callable[[int, CellOutcome], None]] = None,
) -> List[CellOutcome]:
    """Execute every cell; return their outcomes **in cell order**.

    ``workers=1`` (the resolved default) runs in-process — no pool, no
    pickling, no subprocess spawn.  With more workers the cells fan out
    across a ``ProcessPoolExecutor``; completion order is
    nondeterministic but the returned list is not.

    ``on_result(index, outcome)`` fires once per cell *in completion
    order* (use it for progress lines and incremental persistence —
    anything whose final state must not depend on scheduling belongs
    after :func:`run_grid` returns).
    """
    workers = resolve_workers(workers)
    items = list(enumerate(cells))
    outcomes: List[Optional[CellOutcome]] = [None] * len(items)

    if workers == 1 or len(items) <= 1:
        for item in items:
            index, outcome = _execute_cell(item)
            outcomes[index] = outcome
            if on_result is not None:
                on_result(index, outcome)
        return outcomes  # type: ignore[return-value]

    from concurrent.futures import ProcessPoolExecutor, as_completed

    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        futures = [pool.submit(_execute_cell, item) for item in items]
        for future in as_completed(futures):
            index, outcome = future.result()
            outcomes[index] = outcome
            if on_result is not None:
                on_result(index, outcome)
    return outcomes  # type: ignore[return-value]


def run_sim_grid(
    cells: Sequence[GridCell], workers: Optional[int] = None
) -> List[Any]:
    """Shorthand: :func:`run_grid` returning just the cell values."""
    return [outcome.value for outcome in run_grid(cells, workers=workers)]


#: cell params used to label merged sample rows (in label order)
_STREAM_LABEL_KEYS = ("trace", "scheme", "scenario", "seed")


def merge_sample_streams(
    cells: Sequence[GridCell], outcomes: Sequence[CellOutcome]
) -> List[Dict[str, Any]]:
    """Merge the cells' time-series samples into one labelled stream.

    Each ``SimResult.samples`` row is tagged with its cell's identifying
    parameters (trace/scheme/scenario/seed, where present).  Because
    :func:`run_grid` returns outcomes in cell order for any worker
    count, the merged stream is byte-identical serially or parallel —
    the property the obs fingerprint check rides on.
    """
    streams = []
    for c, outcome in zip(cells, outcomes):
        rows = getattr(outcome.value, "samples", None) or []
        labels = {
            k: c.params[k]
            for k in _STREAM_LABEL_KEYS
            if c.params.get(k) is not None
        }
        streams.append((labels, rows))
    return merge_streams(streams)
