"""Figure 6: average steady-state system utilization.

Five schemes x nine traces.  Paper expectations: Baseline 97-100 %,
LC+S >= Jigsaw, Jigsaw typically 95-96 % (92-93 on Atlas/Oct-Cab),
LaaS 90-93 %, TA 85-88 %.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table
from repro.experiments.runner import ALL_TRACE_NAMES

#: presentation order of Figure 6's bars
FIG6_SCHEMES = ("baseline", "lc+s", "jigsaw", "laas", "ta")


def fig6_utilization(
    names: Sequence[str] = ALL_TRACE_NAMES,
    schemes: Sequence[str] = FIG6_SCHEMES,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Average utilization (%) per trace per scheme."""
    cells = [
        sim_cell(trace=name, scheme=scheme, scale=scale, seed=seed)
        for name in names
        for scheme in schemes
    ]
    results = iter(run_sim_grid(cells, workers=workers))
    return {
        name: {scheme: next(results).steady_state_utilization for scheme in schemes}
        for name in names
    }


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """Figure 6 as an aligned text table."""
    schemes = list(next(iter(rows.values())))
    return render_table(
        "Figure 6: Average system utilization (%) per scheduling approach",
        rows,
        schemes,
        row_header="Trace",
        float_fmt="{:.1f}",
    )
