"""Figure 6: average steady-state system utilization.

Five schemes x nine traces.  Paper expectations: Baseline 97-100 %,
LC+S >= Jigsaw, Jigsaw typically 95-96 % (92-93 on Atlas/Oct-Cab),
LaaS 90-93 %, TA 85-88 %.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.report import render_table
from repro.experiments.runner import ALL_TRACE_NAMES, paper_setup, run_scheme

#: presentation order of Figure 6's bars
FIG6_SCHEMES = ("baseline", "lc+s", "jigsaw", "laas", "ta")


def fig6_utilization(
    names: Sequence[str] = ALL_TRACE_NAMES,
    schemes: Sequence[str] = FIG6_SCHEMES,
    scale: Optional[float] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Average utilization (%) per trace per scheme."""
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        setup = paper_setup(name, scale=scale, seed=seed)
        rows[name] = {}
        for scheme in schemes:
            result = run_scheme(setup, scheme, seed=seed)
            rows[name][scheme] = result.steady_state_utilization
    return rows


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """Figure 6 as an aligned text table."""
    schemes = list(next(iter(rows.values())))
    return render_table(
        "Figure 6: Average system utilization (%) per scheduling approach",
        rows,
        schemes,
        row_header="Trace",
        float_fmt="{:.1f}",
    )
