"""Extension experiment: scheduling under failures (fault rate x scheme).

The paper evaluates healthy clusters; this sweep replays one trace under
every scheme while a synthetic per-node MTTF/MTTR fault timeline
(:mod:`repro.sched.resilience`) kills and requeues jobs, and reports how
each allocator's utilization and bounded slowdown degrade as the fault
rate rises — plus the resilience-specific outcomes (goodput,
resubmissions).  Every cell is an ordinary grid cell, so the sweep is
byte-identical serially or in any worker pool.

Fault rates are given as MTTF values (simulated seconds per node);
``None`` means fault-free and anchors each column group to the paper's
healthy-cluster numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.registry import ALLOCATOR_NAMES
from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

DEFAULT_SCHEMES = ALLOCATOR_NAMES
#: simulated seconds of up-time per node between failures; None = healthy
DEFAULT_MTTF_VALUES = (None, 80_000.0, 20_000.0)


def _rate_label(mttf: Optional[float]) -> str:
    if mttf is None:
        return "healthy"
    return f"mttf={mttf:g}"


def resilience_sweep(
    trace_name: str = "Synth-16",
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    mttf_values: Sequence[Optional[float]] = DEFAULT_MTTF_VALUES,
    fault_victim_policy: str = "requeue-remaining",
    checkpoint_interval: float = 600.0,
    fault_seed: int = 1,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, float]]:
    """Utilization + bounded slowdown under failures, per scheme.

    Returns ``{scheme: {column: value}}`` with one column group per
    fault rate: steady-state utilization (%), mean bounded slowdown,
    and — for faulted rates — goodput (%) and resubmission count.
    """
    cells = []
    for scheme in schemes:
        for mttf in mttf_values:
            kwargs = {}
            if mttf is not None:
                kwargs = dict(
                    mttf=mttf,
                    fault_seed=fault_seed,
                    fault_victim_policy=fault_victim_policy,
                    checkpoint_interval=checkpoint_interval,
                )
            cells.append(
                sim_cell(trace_name, scheme, seed=seed, scale=scale, **kwargs)
            )
    results = run_sim_grid(cells, workers=workers)
    rows: Dict[str, Dict[str, float]] = {}
    it = iter(results)
    for scheme in schemes:
        row: Dict[str, float] = {}
        for mttf in mttf_values:
            result = next(it)
            label = _rate_label(mttf)
            row[f"util {label} %"] = result.steady_state_utilization
            row[f"bsld {label}"] = result.mean_bounded_slowdown()
            if mttf is not None:
                row[f"goodput {label} %"] = 100.0 * result.goodput_fraction
                row[f"resub {label}"] = float(result.resubmissions)
        rows[scheme] = row
    return rows


def render(rows: Dict[str, Dict[str, float]]) -> str:
    """The fault-rate sweep as an aligned text table."""
    columns = list(next(iter(rows.values())))
    return render_table(
        "Scheduling under failures: utilization and bounded slowdown "
        "vs per-node MTTF (kill-and-requeue victims)",
        rows,
        columns,
        row_header="Scheme",
    )
