"""Figure 7: average job turnaround time, normalized to Baseline.

Two traces (Aug-Cab and Oct-Cab, real arrivals) x six job-performance
scenarios x four schemes, reported for all jobs and for large jobs
(> 100 nodes).  Paper expectations: Jigsaw beats Baseline on all-job
turnaround in every speed-up scenario on Aug-Cab and in the 10 %/20 %
scenarios on Oct-Cab; TA is always the worst isolating scheme; LaaS
falls between TA and Jigsaw.

Baseline ignores speed-ups, so it is simulated once per trace and its
result reused across scenarios.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table
from repro.sched.speedup import SCENARIOS

FIG7_TRACES = ("Aug-Cab", "Oct-Cab")
FIG7_SCHEMES = ("ta", "laas", "jigsaw", "lc+s")


def fig7_turnaround(
    trace_names: Sequence[str] = FIG7_TRACES,
    schemes: Sequence[str] = FIG7_SCHEMES,
    scenarios: Sequence[str] = SCENARIOS,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized turnaround per trace: scenario -> scheme -> ratio.

    Each scheme contributes two keys: ``<scheme>`` (all jobs) and
    ``<scheme>/large`` (jobs over 100 nodes), matching the filled and
    empty bar portions of Figure 7.
    """
    cells = []
    for name in trace_names:
        cells.append(sim_cell(trace=name, scheme="baseline", scale=scale, seed=seed))
        for scenario in scenarios:
            for scheme in schemes:
                cells.append(
                    sim_cell(
                        trace=name, scheme=scheme, scenario=scenario,
                        scale=scale, seed=seed,
                    )
                )
    results = iter(run_sim_grid(cells, workers=workers))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in trace_names:
        base = next(results)
        base_all = base.mean_turnaround
        base_large = base.mean_turnaround_large
        out[name] = {}
        for scenario in scenarios:
            row: Dict[str, float] = {}
            for scheme in schemes:
                result = next(results)
                row[scheme] = result.mean_turnaround / base_all
                row[f"{scheme}/large"] = (
                    result.mean_turnaround_large / base_large
                )
            out[name][scenario] = row
    return out


def render(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Figure 7 as one table per trace."""
    parts = []
    for trace, by_scenario in results.items():
        columns = list(next(iter(by_scenario.values())))
        parts.append(
            render_table(
                f"Figure 7: Job turnaround times for {trace} "
                "(normalized to Baseline; lower is better)",
                by_scenario,
                columns,
                row_header="Scenario",
            )
        )
    return "\n\n".join(parts)
