"""Campaign runner: persistent, resumable experiment sweeps.

Full-scale reproduction (REPRO_FULL_SCALE=1) means dozens of multi-
minute simulations; a campaign makes that practical by persisting each
completed run to a JSON file and skipping it on re-invocation.  A
campaign is simply the cross product of traces x schemes x scenarios,
with the trace built once per name and reused.

Example::

    campaign = Campaign(path="results/full_fig6.json", scale=1.0)
    campaign.run(traces=ALL_TRACE_NAMES, schemes=FIG6_SCHEMES)
    print(campaign.table("steady_state_utilization"))
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.experiments import grid
from repro.experiments.report import render_table
from repro.sched.metrics import SimResult

#: the scalar metrics a campaign records per run
METRICS = (
    "steady_state_utilization",
    "overall_utilization",
    "makespan",
    "mean_turnaround",
    "mean_turnaround_large",
    "mean_wait",
    "mean_sched_time_per_job",
)


@dataclass(frozen=True)
class RunKey:
    """Identity of one simulation within a campaign."""

    trace: str
    scheme: str
    scenario: str
    seed: int

    def as_str(self) -> str:
        return f"{self.trace}|{self.scheme}|{self.scenario}|{self.seed}"

    @classmethod
    def from_str(cls, text: str) -> "RunKey":
        trace, scheme, scenario, seed = text.split("|")
        return cls(trace, scheme, scenario, int(seed))


@dataclass
class RunRecord:
    """Persisted scalar outcomes of one simulation."""

    key: RunKey
    metrics: Dict[str, float]
    num_jobs: int
    wall_seconds: float

    def to_json(self) -> dict:
        d = asdict(self)
        d["key"] = self.key.as_str()
        return d

    @classmethod
    def from_json(cls, d: dict) -> "RunRecord":
        return cls(
            key=RunKey.from_str(d["key"]),
            metrics=dict(d["metrics"]),
            num_jobs=int(d["num_jobs"]),
            wall_seconds=float(d["wall_seconds"]),
        )


def _extract_metrics(result: SimResult) -> Dict[str, float]:
    return {name: float(getattr(result, name)) for name in METRICS}


class Campaign:
    """A persisted sweep of simulations.

    Parameters
    ----------
    path:
        JSON file holding completed runs; created on first save.  Pass
        None for an in-memory (non-persistent) campaign.
    scale:
        Job-count scale forwarded to :func:`paper_setup`.
    """

    #: minimum seconds between incremental saves during a sweep (the
    #: final save always happens; this only throttles mid-sweep
    #: checkpoints so a large campaign is not rewritten per run)
    SAVE_INTERVAL_SECONDS = 5.0

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        scale: Optional[float] = None,
    ):
        self.path = Path(path) if path is not None else None
        self.scale = scale
        self.records: Dict[RunKey, RunRecord] = {}
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        data = json.loads(self.path.read_text())
        if data.get("scale") != self.scale:
            raise ValueError(
                f"campaign file {self.path} was run at scale "
                f"{data.get('scale')}, not {self.scale}"
            )
        for raw in data["runs"]:
            record = RunRecord.from_json(raw)
            self.records[record.key] = record

    def _save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "scale": self.scale,
            "runs": [r.to_json() for r in self.records.values()],
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, indent=1))
        tmp.replace(self.path)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        traces: Sequence[str],
        schemes: Sequence[str],
        scenarios: Sequence[str] = ("none",),
        seeds: Sequence[int] = (0,),
        progress: bool = False,
        workers: Optional[int] = None,
    ) -> List[RunRecord]:
        """Run (or skip, if already recorded) every combination.

        Cells fan out through :func:`repro.experiments.grid.run_grid`
        (``workers=None`` resolves ``REPRO_WORKERS``, default serial);
        records always come back in grid order — traces, seeds,
        scenarios, schemes, nested in that order — regardless of worker
        count or completion order.  Completed runs are checkpointed to
        the campaign file at most every :attr:`SAVE_INTERVAL_SECONDS`
        (plus a final save), so interrupting a long sweep loses at most
        a few seconds of finished work instead of rewriting the whole
        file per run.
        """
        keys = [
            RunKey(trace_name, scheme, scenario, seed)
            for trace_name in traces
            for seed in seeds
            for scenario in scenarios
            for scheme in schemes
        ]
        missing = [key for key in keys if key not in self.records]
        if missing:
            cells = [
                grid.sim_cell(
                    trace=key.trace,
                    scheme=key.scheme,
                    scenario=key.scenario,
                    seed=key.seed,
                    scale=self.scale,
                )
                for key in missing
            ]
            last_save = time.monotonic()

            def on_result(index: int, outcome: grid.CellOutcome) -> None:
                nonlocal last_save
                key = missing[index]
                result = outcome.value
                record = RunRecord(
                    key=key,
                    metrics=_extract_metrics(result),
                    num_jobs=len(result.jobs),
                    wall_seconds=outcome.wall_seconds,
                )
                self.records[key] = record
                now = time.monotonic()
                if now - last_save >= self.SAVE_INTERVAL_SECONDS:
                    self._save()
                    last_save = now
                if progress:
                    print(
                        f"[campaign] {key.as_str()}: "
                        f"util={record.metrics['steady_state_utilization']:.1f}% "
                        f"({record.wall_seconds:.1f}s)"
                    )

            grid.run_grid(cells, workers=workers, on_result=on_result)
            self._save()
        return [self.records[key] for key in keys]

    def run_parallel(
        self,
        traces: Sequence[str],
        schemes: Sequence[str],
        scenarios: Sequence[str] = ("none",),
        seeds: Sequence[int] = (0,),
        workers: int = 4,
        progress: bool = False,
    ) -> List[RunRecord]:
        """:meth:`run` across a process pool (kept for compatibility)."""
        return self.run(
            traces,
            schemes,
            scenarios=scenarios,
            seeds=seeds,
            progress=progress,
            workers=workers,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def value(
        self, trace: str, scheme: str, metric: str,
        scenario: str = "none", seed: int = 0,
    ) -> float:
        """One recorded metric value (KeyError if that run never ran)."""
        key = RunKey(trace, scheme, scenario, seed)
        return self.records[key].metrics[metric]

    def table(
        self,
        metric: str = "steady_state_utilization",
        scenario: str = "none",
        seed: int = 0,
    ) -> str:
        """Render trace x scheme values of one metric."""
        rows: Dict[str, Dict[str, float]] = {}
        for record in self.records.values():
            k = record.key
            if k.scenario != scenario or k.seed != seed:
                continue
            rows.setdefault(k.trace, {})[k.scheme] = record.metrics[metric]
        if not rows:
            return f"(no campaign runs recorded for scenario {scenario!r})"
        schemes = sorted({s for r in rows.values() for s in r})
        return render_table(
            f"Campaign: {metric} (scenario {scenario})",
            rows,
            schemes,
            row_header="Trace",
        )

    @property
    def total_wall_seconds(self) -> float:
        """Cumulative simulation wall time across all recorded runs."""
        return sum(r.wall_seconds for r in self.records.values())
