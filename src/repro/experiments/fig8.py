"""Figure 8: makespan normalized to Baseline.

Two time-zero traces (Thunder, Atlas) x six scenarios x four schemes.
Paper expectations: Jigsaw is at most a few percent above Baseline with
no speed-ups and beats it (by up to 15 %) once jobs speed up; TA is
worst (still above Baseline except at 20 %); LaaS is between TA and
Jigsaw; LC+S tracks Jigsaw closely.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table
from repro.sched.speedup import SCENARIOS

FIG8_TRACES = ("Thunder", "Atlas")
FIG8_SCHEMES = ("ta", "laas", "jigsaw", "lc+s")


def fig8_makespan(
    trace_names: Sequence[str] = FIG8_TRACES,
    schemes: Sequence[str] = FIG8_SCHEMES,
    scenarios: Sequence[str] = SCENARIOS,
    scale: Optional[float] = None,
    seed: int = 0,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized makespan per trace: scenario -> scheme -> ratio."""
    cells = []
    for name in trace_names:
        cells.append(sim_cell(trace=name, scheme="baseline", scale=scale, seed=seed))
        for scenario in scenarios:
            for scheme in schemes:
                cells.append(
                    sim_cell(
                        trace=name, scheme=scheme, scenario=scenario,
                        scale=scale, seed=seed,
                    )
                )
    results = iter(run_sim_grid(cells, workers=workers))
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in trace_names:
        base = next(results).makespan
        out[name] = {}
        for scenario in scenarios:
            out[name][scenario] = {
                scheme: next(results).makespan / base for scheme in schemes
            }
    return out


def render(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Figure 8 as one table per trace."""
    parts = []
    for trace, by_scenario in results.items():
        columns = list(next(iter(by_scenario.values())))
        parts.append(
            render_table(
                f"Figure 8: Makespans for {trace} "
                "(normalized to Baseline; lower is better)",
                by_scenario,
                columns,
                row_header="Scenario",
            )
        )
    return "\n\n".join(parts)
