"""Communication patterns as flow sets.

The interference literature the paper cites measures slowdowns on
communication-heavy kernels; these generators produce the corresponding
flow sets over a job's allocated nodes:

* ``permutation`` — a random permutation (the pattern the paper's
  bandwidth guarantee is stated over);
* ``shift`` — node ``i`` sends to node ``(i + k) mod n`` within the job
  (the pattern D-mod-k was designed to balance);
* ``neighbor`` — a bidirectional ring, the halo-exchange skeleton of
  stencil codes;
* ``alltoall_sample`` — a random sample of the full all-to-all, the
  heaviest collective (the complete all-to-all has n² flows; a sample
  keeps the analysis cheap while exercising the same links).
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.allocator import Allocation

#: (source node, destination node)
Flow = Tuple[int, int]
PatternFn = Callable[[Sequence[int], random.Random], List[Flow]]


def _permutation(nodes: Sequence[int], rng: random.Random) -> List[Flow]:
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    return [(s, d) for s, d in zip(nodes, shuffled) if s != d]


def _shift(nodes: Sequence[int], rng: random.Random) -> List[Flow]:
    n = len(nodes)
    if n < 2:
        return []
    k = rng.randrange(1, n)
    return [(nodes[i], nodes[(i + k) % n]) for i in range(n)]


def _neighbor(nodes: Sequence[int], rng: random.Random) -> List[Flow]:
    n = len(nodes)
    if n < 2:
        return []
    flows: List[Flow] = []
    for i in range(n):
        flows.append((nodes[i], nodes[(i + 1) % n]))
        flows.append((nodes[i], nodes[(i - 1) % n]))
    return [(s, d) for s, d in flows if s != d]


def _alltoall_sample(nodes: Sequence[int], rng: random.Random) -> List[Flow]:
    n = len(nodes)
    if n < 2:
        return []
    per_node = min(4, n - 1)
    flows: List[Flow] = []
    for src in nodes:
        for dst in rng.sample([d for d in nodes if d != src], per_node):
            flows.append((src, dst))
    return flows


PATTERNS: Dict[str, PatternFn] = {
    "permutation": _permutation,
    "shift": _shift,
    "neighbor": _neighbor,
    "alltoall_sample": _alltoall_sample,
}


def pattern_flows(
    alloc: Allocation, pattern: str, seed: int = 0
) -> List[Flow]:
    """The pattern's flows over one job's allocated nodes."""
    try:
        fn = PATTERNS[pattern]
    except KeyError:
        raise ValueError(
            f"unknown pattern {pattern!r}; expected one of {sorted(PATTERNS)}"
        ) from None
    # Mix the key with crc32, not hash(): tuple/str hashes depend on
    # PYTHONHASHSEED, so the "seeded" flows would differ between Python
    # processes (and the measured slowdowns with them).
    key = zlib.crc32(f"{seed}|{alloc.job_id}|{pattern}".encode())
    rng = random.Random(key)
    return fn(sorted(alloc.nodes), rng)
