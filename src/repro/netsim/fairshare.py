"""Max-min fair rate allocation (progressive filling).

The standard throughput model for TCP-like or credit-based fabrics:
every flow's rate grows uniformly until some link saturates; flows
bottlenecked there are frozen, the rest keep growing.  The result is the
unique allocation in which no flow's rate can increase without
decreasing that of a flow with an equal-or-smaller rate — and a flow
crossing only uncontended links gets the full link bandwidth, which is
what the paper's "full interconnect bandwidth" guarantee promises every
Jigsaw job.

Implementation: classic progressive filling.  Each iteration finds the
tightest link (remaining capacity / unfrozen flows), freezes its flows
at the implied rate, removes the capacity they consume, and repeats —
O(L·F) overall, exact for this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Sequence, Set

from repro.obs.tracer import get_tracer

#: a flow is any hashable identity; links likewise
FlowId = Hashable
LinkKey = Hashable


@dataclass
class FlowRates:
    """Result of a max-min fair allocation."""

    #: rate per flow, in the same units as link capacity
    rates: Dict[FlowId, float]
    #: the link at which each flow is bottlenecked
    bottleneck: Dict[FlowId, LinkKey]
    #: residual (unused) capacity per link
    residual: Dict[LinkKey, float]

    def min_rate(self) -> float:
        return min(self.rates.values()) if self.rates else 0.0

    def max_rate(self) -> float:
        return max(self.rates.values()) if self.rates else 0.0


def max_min_fair_rates(
    flow_links: Mapping[FlowId, Sequence[LinkKey]],
    capacity: float = 1.0,
    capacities: Mapping[LinkKey, float] | None = None,
) -> FlowRates:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        For every flow, the (directed) links it traverses.  A flow with
        no links (intra-switch traffic) gets the full ``capacity``.
    capacity:
        Default capacity of every link.
    capacities:
        Optional per-link overrides.
    """
    if capacity <= 0:
        raise ValueError("link capacity must be positive")
    tracer = get_tracer()
    span = tracer.begin("netsim.converge") if tracer.enabled else None
    caps: Dict[LinkKey, float] = {}
    flows_on: Dict[LinkKey, Set[FlowId]] = {}
    for flow, links in flow_links.items():
        for link in links:
            if link not in caps:
                cap = capacities.get(link, capacity) if capacities else capacity
                if cap <= 0:
                    raise ValueError(f"link {link!r} has non-positive capacity")
                caps[link] = cap
                flows_on[link] = set()
            flows_on[link].add(flow)

    rates: Dict[FlowId, float] = {}
    bottleneck: Dict[FlowId, LinkKey] = {}
    unfrozen: Set[FlowId] = set(flow_links)
    remaining = dict(caps)
    active_flows = {link: set(flows) for link, flows in flows_on.items()}

    # Flows with no links are never constrained.
    for flow, links in flow_links.items():
        if not links:
            rates[flow] = capacity
            bottleneck[flow] = None
            unfrozen.discard(flow)

    iterations = 0
    while unfrozen:
        iterations += 1
        # The tightest link determines the next uniform increment.
        tight_link = None
        tight_share = float("inf")
        for link, flows in active_flows.items():
            if not flows:
                continue
            share = remaining[link] / len(flows)
            if share < tight_share:
                tight_share = share
                tight_link = link
        if tight_link is None:
            # Remaining flows traverse only links with no contention left
            # to model; give them full default capacity.
            for flow in unfrozen:
                rates[flow] = capacity
                bottleneck[flow] = None
            break
        frozen_now = list(active_flows[tight_link])
        for flow in frozen_now:
            rates[flow] = tight_share
            bottleneck[flow] = tight_link
            unfrozen.discard(flow)
            for link in flow_links[flow]:
                active_flows[link].discard(flow)
                remaining[link] -= tight_share
        remaining[tight_link] = 0.0

    residual = {
        link: max(0.0, remaining.get(link, caps[link])) for link in caps
    }
    if span is not None:
        span.set(flows=len(flow_links), links=len(caps), iterations=iterations)
        tracer.end(span)
    return FlowRates(rates=rates, bottleneck=bottleneck, residual=residual)
