"""Flow-level network simulation: deriving slowdowns from placements.

The paper's performance scenarios (section 5.4.1) *assume* jobs speed up
by 5-20 % when isolated, citing interference studies [6-8, 30].  This
package closes the loop: given concrete placements, communication
patterns and routing, it computes per-flow throughput under max-min fair
bandwidth sharing and hence each job's *measured* slowdown relative to
running alone — zero inter-job slowdown under Jigsaw placements, and
whatever the contention produces under Baseline.

* :mod:`repro.netsim.fairshare` — progressive-filling max-min fair rate
  allocation over capacitated directed links;
* :mod:`repro.netsim.patterns` — communication patterns (permutation,
  ring shift, nearest-neighbor, all-to-all samples) as flow sets;
* :mod:`repro.netsim.slowdown` — phase-completion-time model and
  job/system slowdown reports.
"""

from repro.netsim.fairshare import FlowRates, max_min_fair_rates
from repro.netsim.patterns import PATTERNS, pattern_flows
from repro.netsim.slowdown import (
    JobSlowdown,
    SlowdownReport,
    slowdown_report,
)

__all__ = [
    "max_min_fair_rates",
    "FlowRates",
    "pattern_flows",
    "PATTERNS",
    "slowdown_report",
    "SlowdownReport",
    "JobSlowdown",
]
