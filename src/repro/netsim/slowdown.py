"""Job slowdowns derived from placements and bandwidth sharing.

Model: every job runs a communication phase moving one unit of data per
flow.  Phase completion time is set by the job's slowest flow
(``1 / min rate``).  Run alone on its own links a job completes in its
*isolated* time; sharing the fabric with everyone else it completes in
its *contended* time.  The ratio is the job's slowdown — the quantity
the interference studies the paper cites measure directly, and the
ground truth behind the 5-20 % speed-up scenarios of section 5.4.1
(a job that runs ``s``× slower under sharing speeds up by ``s - 1``
when isolated).

Routing regimes mirror :mod:`repro.routing.contention`: plain D-mod-k
over the shared fabric (Baseline) versus per-job partition routing
(isolating schedulers).  Under partition routing no link carries two
jobs' flows, so contended and isolated times coincide and every
slowdown is exactly 1.0 — verified, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.allocator import Allocation
from repro.netsim.fairshare import max_min_fair_rates
from repro.netsim.patterns import pattern_flows
from repro.routing.contention import route_flows
from repro.topology.fattree import XGFT


@dataclass(frozen=True)
class JobSlowdown:
    """One job's phase times with and without the other jobs present."""

    job_id: int
    pattern: str
    flows: int
    isolated_time: float
    contended_time: float

    @property
    def slowdown(self) -> float:
        """Contended / isolated phase time (1.0 = interference-free)."""
        if self.isolated_time == 0:
            return 1.0
        return self.contended_time / self.isolated_time

    @property
    def isolation_speedup(self) -> float:
        """The section-5.4.1 quantity: fractional speed-up from isolation."""
        return self.slowdown - 1.0


@dataclass
class SlowdownReport:
    """System-wide slowdown summary for one pattern assignment."""

    jobs: Dict[int, JobSlowdown]

    @property
    def mean_slowdown(self) -> float:
        if not self.jobs:
            return 1.0
        return sum(j.slowdown for j in self.jobs.values()) / len(self.jobs)

    @property
    def max_slowdown(self) -> float:
        return max((j.slowdown for j in self.jobs.values()), default=1.0)

    @property
    def interference_free(self) -> bool:
        return all(abs(j.slowdown - 1.0) < 1e-9 for j in self.jobs.values())

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        worst = max(self.jobs.values(), key=lambda j: j.slowdown, default=None)
        lines = [
            f"jobs: {len(self.jobs)}",
            f"mean slowdown: {self.mean_slowdown:.3f}x",
            f"max slowdown: {self.max_slowdown:.3f}x",
        ]
        if worst is not None and worst.slowdown > 1.0:
            lines.append(
                f"worst: job {worst.job_id} ({worst.pattern}) "
                f"{worst.slowdown:.2f}x"
            )
        return "\n".join(lines)


def _phase_times(
    tree: XGFT,
    job_flows: Mapping[int, List[Tuple[int, int]]],
    allocations: Optional[Mapping[int, Allocation]],
    capacity: float,
) -> Dict[int, float]:
    """Phase completion time per job when all jobs share the fabric."""
    flow_ids = {}
    flow_links = {}
    routes = route_flows(
        tree,
        [(job, s, d) for job, flows in job_flows.items() for s, d in flows],
        allocations=allocations,
    )
    for (job, s, d), route in routes.items():
        fid = (job, s, d)
        flow_ids.setdefault(job, []).append(fid)
        flow_links[fid] = [(direction, link) for direction, link in route.links()]
    rates = max_min_fair_rates(flow_links, capacity=capacity)
    times: Dict[int, float] = {}
    for job, flows in job_flows.items():
        fids = flow_ids.get(job, [])
        if not fids:
            times[job] = 0.0
            continue
        slowest = min(rates.rates[fid] for fid in fids)
        times[job] = 1.0 / slowest
    return times


def slowdown_report(
    tree: XGFT,
    allocations: Iterable[Allocation],
    patterns: Mapping[int, str] | str = "permutation",
    seed: int = 0,
    use_partition_routing: bool = False,
    capacity: float = 1.0,
) -> SlowdownReport:
    """Measure every job's slowdown under shared-fabric contention.

    ``patterns`` is either one pattern name for all jobs or a per-job
    mapping.  ``use_partition_routing=True`` models an isolating
    scheduler (each job confined to its own links).
    """
    allocs = {a.job_id: a for a in allocations}
    if isinstance(patterns, str):
        patterns = {job_id: patterns for job_id in allocs}

    job_flows: Dict[int, List[Tuple[int, int]]] = {
        job_id: pattern_flows(allocs[job_id], pattern, seed=seed)
        for job_id, pattern in patterns.items()
    }

    contended = _phase_times(
        tree, job_flows,
        allocations=allocs if use_partition_routing else None,
        capacity=capacity,
    )
    jobs: Dict[int, JobSlowdown] = {}
    for job_id, flows in job_flows.items():
        # Isolated: the job alone on the fabric, same routing regime.
        alone = _phase_times(
            tree, {job_id: flows},
            allocations={job_id: allocs[job_id]} if use_partition_routing else None,
            capacity=capacity,
        )
        jobs[job_id] = JobSlowdown(
            job_id=job_id,
            pattern=patterns[job_id],
            flows=len(flows),
            isolated_time=alone[job_id],
            contended_time=contended[job_id],
        )
    return SlowdownReport(jobs=jobs)
