"""Metric registry: Counter / Gauge / Histogram with labels.

One registry unifies every counter the repo grew organically —
feasibility-cache hits, search-effort counters, queue high-water marks,
the schedule log's start-mechanism mix — behind two calls:
``snapshot()`` (a flat dict for programs) and
``export_prometheus_text()`` (the Prometheus text exposition format for
scrapers and humans).

Two kinds of instruments coexist:

* **owned** instruments store their own value (``inc()`` / ``set()`` /
  ``observe()``) — use these for new code;
* **bound** instruments read a live value through a zero-argument
  callable at snapshot time (:meth:`MetricRegistry.bind`).  This is how
  the legacy ``AllocatorStats`` / ``SimResult`` / ``ScheduleLog``
  attributes become registry citizens *without* taxing the simulation
  hot path: the registry reads the very storage the legacy attributes
  expose, so the two views cannot disagree (the parity property test in
  ``tests/test_obs_parity.py`` holds them to it).

Metric names follow Prometheus conventions (``repro_*_total`` for
counters); the full catalog lives in ``docs/observability.md``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram buckets (seconds-flavored, like prometheus client)
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def format_labels(labelnames: Sequence[str], values: LabelValues) -> str:
    """Render ``{a="x",b="y"}`` (empty string for unlabeled series)."""
    if not labelnames:
        return ""
    inner = ",".join(
        f'{n}="{_escape(v)}"' for n, v in zip(labelnames, values)
    )
    return "{" + inner + "}"


def _format_value(v: float) -> str:
    if v != v:  # NaN
        return "NaN"
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class _Instrument:
    """Base: a named family of series, one per label-value tuple."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        _check_name(name)
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[LabelValues, Any] = {}

    def _key(self, labels: Mapping[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def labels(self, **labels: str):
        """The child series for these label values (created on demand)."""
        key = self._key(labels)
        child = self._series.get(key)
        if child is None:
            child = self._new_child()
            self._series[key] = child
        return child

    def _default_child(self):
        """The single unlabeled child (for instruments without labels)."""
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labeled {self.labelnames}; use .labels()"
            )
        return self.labels()

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    # -- collection -----------------------------------------------------
    def collect(self) -> List[Tuple[str, LabelValues, float]]:
        """(suffix, label values, value) samples for every series."""
        out: List[Tuple[str, LabelValues, float]] = []
        for key in sorted(self._series):
            out.extend(self._collect_child(key, self._series[key]))
        return out

    def _collect_child(self, key, child):  # pragma: no cover - overridden
        raise NotImplementedError


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Counter(_Instrument):
    """Monotonically increasing count (``*_total``)."""

    kind = "counter"

    def _new_child(self):
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _collect_child(self, key, child):
        return [("", key, child.value)]


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Gauge(_Instrument):
    """A value that can go up and down (or a point-in-time snapshot)."""

    kind = "gauge"

    def _new_child(self):
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value

    def _collect_child(self, key, child):
        return [("", key, child.value)]


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float]):
        self.buckets = buckets
        self.counts = [0] * len(buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        # store per-bucket counts; collect() cumulates for ``le`` output
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                self.counts[i] += 1
                break


class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics: each
    ``le`` bucket counts observations ``<=`` its edge, plus ``+Inf``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        edges = sorted(float(b) for b in buckets)
        if not edges:
            raise ValueError("histogram needs at least one bucket")
        self.buckets = tuple(edges)

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def _collect_child(self, key, child):
        out = []
        cumulative = 0
        for edge, n in zip(self.buckets, child.counts):
            cumulative += n
            out.append(("_bucket", key + (_format_value(edge),), cumulative))
        out.append(("_bucket", key + ("+Inf",), child.count))
        out.append(("_sum", key, child.sum))
        out.append(("_count", key, child.count))
        return out


class _Bound(_Instrument):
    """An instrument whose series read live values through callables."""

    def __init__(self, name, help, labelnames, kind):
        super().__init__(name, help, labelnames)
        self.kind = kind

    def bind(self, fn: Callable[[], float], labels: Mapping[str, str]) -> None:
        key = self._key(labels)
        if key in self._series:
            raise ValueError(
                f"{self.name}{format_labels(self.labelnames, key)} "
                "is already bound"
            )
        self._series[key] = fn

    def _collect_child(self, key, fn):
        return [("", key, float(fn()))]


class MetricRegistry:
    """Instrument factory plus the two read APIs.

    >>> reg = MetricRegistry()
    >>> hits = reg.counter("cache_hits_total", "cache hits")
    >>> hits.inc(3)
    >>> reg.snapshot()["cache_hits_total"]
    3.0
    """

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            raise ValueError(
                f"metric {instrument.name!r} is already registered "
                f"as a {existing.kind}"
            )
        self._instruments[instrument.name] = instrument
        return instrument

    # -- factories ------------------------------------------------------
    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    def bind(
        self,
        name: str,
        help: str,
        fn: Callable[[], float],
        kind: str = "counter",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Register (or extend) a **bound** series: ``fn`` is called at
        snapshot/export time, so the registry always reports the live
        value of whatever storage ``fn`` reads.  Repeated calls with the
        same name but different label values add series to the family
        (label *names* must match)."""
        if kind not in ("counter", "gauge"):
            raise ValueError(f"bound instruments are counter/gauge, not {kind}")
        labels = dict(labels or {})
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._register(_Bound(name, help, tuple(labels), kind))
        elif not isinstance(instrument, _Bound) or instrument.kind != kind:
            raise ValueError(
                f"metric {name!r} is already registered as an owned "
                f"{instrument.kind}"
            )
        instrument.bind(fn, labels)

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    # -- reading --------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``{"name{labels}": value}`` dict of every series.

        Unlabeled series appear under their bare name; histogram series
        under their ``_bucket``/``_sum``/``_count`` suffixes.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            labelnames = instrument.labelnames
            for suffix, key, value in instrument.collect():
                if suffix == "_bucket":
                    labels = format_labels(labelnames + ("le",), key)
                else:
                    labels = format_labels(labelnames, key)
                out[f"{name}{suffix}{labels}"] = float(value)
        return out

    def export_prometheus_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            labelnames = instrument.labelnames
            for suffix, key, value in instrument.collect():
                if suffix == "_bucket":
                    labels = format_labels(labelnames + ("le",), key)
                else:
                    labels = format_labels(labelnames, key)
                lines.append(
                    f"{name}{suffix}{labels} {_format_value(value)}"
                )
        return "\n".join(lines) + "\n"
