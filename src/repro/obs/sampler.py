"""Time-series sampler: per-interval cluster state during a simulation.

The simulator owns an event clock; this sampler turns it into a
fixed-interval time series.  At every simulated-time boundary
``k * interval`` it emits one row describing the cluster *as it stood
entering that boundary* — utilization, queue depth, running jobs, and
the structural fragmentation picture (free nodes, fully-free leaves,
partial-leaf shards, LaaS padding) that
:class:`repro.core.diagnostics.FragmentationSnapshot` defines.

Rows are derived purely from simulated state, never from wall time, so
a sampled run is deterministic: the same trace yields byte-identical
rows serially or in any process pool (the grid engine merges per-worker
streams in cell order — :func:`merge_streams`).

Sampling never probes placements (no ``can_allocate`` calls), so it
cannot touch the allocator's feasibility cache or any scheduling
decision.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

#: the row fields, in emission order (the JSONL schema)
ROW_FIELDS = (
    "t",
    "util_pct",
    "queue_depth",
    "running_jobs",
    "free_nodes",
    "fully_free_leaves",
    "shard_free_nodes",
    "padding_nodes",
    "degraded_nodes",
    "step_lag",
)


class TimeSeriesSampler:
    """Collects one row per elapsed ``interval`` of simulated time.

    Drive it with :meth:`advance_to` (called by the simulator before it
    processes each event batch) and :meth:`observe` (the row source);
    the split keeps the sampler reusable outside the simulator — tests
    drive it directly.
    """

    def __init__(self, interval: float):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.interval = float(interval)
        self.rows: List[Dict[str, Any]] = []
        self._next_boundary: Optional[float] = None

    def reset(self, start_time: float) -> None:
        """Arm the sampler: the first boundary is the first multiple of
        ``interval`` at or after ``start_time``."""
        self.rows = []
        self._next_boundary = (
            math.ceil(start_time / self.interval) * self.interval
        )

    def advance_to(self, t: float, collect) -> None:
        """Emit rows for every boundary strictly before ``t``.

        ``collect(boundary_time)`` must return the row dict; it is
        called with the state as of entering the boundary (the simulator
        calls this *before* applying the events at ``t``).
        """
        if self._next_boundary is None:
            self.reset(t)
        while self._next_boundary < t:
            self.rows.append(collect(self._next_boundary))
            self._next_boundary += self.interval

    def finish(self, t: float, collect) -> None:
        """Emit the final row at the last boundary <= ``t`` (so a trace
        shorter than one interval still produces one row)."""
        if self._next_boundary is None:
            self.reset(t)
        self.advance_to(t, collect)
        self.rows.append(collect(t))


def simulator_row(boundary: float, allocator, pending: int,
                  running_jobs: int, busy_requested: int,
                  degraded_nodes: int = 0,
                  step_lag: float = 0.0) -> Dict[str, Any]:
    """One sampler row from live simulator state.

    Structural fragmentation comes straight from the occupancy indexes
    (O(leaves) numpy sums, no placement probes) — the same quantities
    :func:`repro.core.diagnostics.fragmentation_snapshot` reports in its
    probe-free form.
    """
    tree = allocator.tree
    state = allocator.state
    free = state.free_nodes_total
    fully_free = int(state.full_free_leaves.sum())
    allocated = tree.num_nodes - free
    return {
        "t": boundary,
        "util_pct": round(100.0 * busy_requested / tree.num_nodes, 4),
        "queue_depth": pending,
        "running_jobs": running_jobs,
        "free_nodes": int(free),
        "fully_free_leaves": fully_free,
        "shard_free_nodes": int(free - fully_free * tree.m1),
        "padding_nodes": int(allocated - busy_requested - degraded_nodes),
        "degraded_nodes": int(degraded_nodes),
        # Simulated seconds since the last scheduling pass: ~0 under
        # event-driven replay, up to step_interval in batch-step mode
        # (the start-lag a queued job can pay waiting for the round).
        "step_lag": round(float(step_lag), 6),
    }


# ----------------------------------------------------------------------
# Streams: JSONL export and deterministic merging
# ----------------------------------------------------------------------
def write_jsonl(
    rows: Iterable[Dict[str, Any]], target: Union[str, Path, TextIO]
) -> None:
    """Write rows as JSONL (keys in :data:`ROW_FIELDS` order, extras
    sorted after — byte-stable for a given row sequence)."""
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_jsonl(rows, fh)
            return
    order = {name: i for i, name in enumerate(ROW_FIELDS)}
    for row in rows:
        keys = sorted(row, key=lambda k: (order.get(k, len(order)), k))
        target.write(json.dumps({k: row[k] for k in keys}))
        target.write("\n")


def merge_streams(
    streams: Sequence[Tuple[Dict[str, Any], Sequence[Dict[str, Any]]]],
) -> List[Dict[str, Any]]:
    """Concatenate per-cell sample streams deterministically.

    ``streams`` is ``[(labels, rows), ...]`` **in cell order** (the
    grid engine returns outcomes in cell order whatever the worker
    count, so the merged stream is byte-identical serially or in any
    pool).  Each emitted row carries its cell's labels.
    """
    merged: List[Dict[str, Any]] = []
    for labels, rows in streams:
        for row in rows:
            out = dict(row)
            out.update(labels)
            merged.append(out)
    return merged
