"""Span tracer: where does a simulated second of scheduling time go?

A :class:`Tracer` records **spans** — named intervals with a wall-clock
duration, the simulated time at which they ran, and arbitrary
attributes.  The instrumented sites form a fixed taxonomy (see
``docs/observability.md``):

========================  ==================================================
span                      meaning
========================  ==================================================
``sched.pass``            one scheduling pass after an event batch
``backfill.window``       the EASY window scan inside a pass
``alloc.search``          one allocator placement attempt
``grid.cell``             one experiment-grid cell in its worker
``netsim.converge``       one max-min fair-rate progressive filling
========================  ==================================================

Disabled tracing must be free: every hot call site guards with a single
``tracer.enabled`` attribute check (cool sites may use the
``with tracer.span(...)`` form, which early-returns a shared no-op).
Tracing is strictly passive — it never influences a scheduling
decision; ``benchmarks/_fingerprint.py --obs`` holds it to that.

Exports: Chrome ``trace_event`` JSON (open in Perfetto or
``chrome://tracing``) and raw JSONL, plus :func:`summarize_trace` for a
terminal report (the ``obs summarize`` CLI subcommand).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, TextIO, Union


class Span:
    """One finished (or in-flight) span.  Mutable so call sites can add
    attributes discovered mid-span via :meth:`set`."""

    __slots__ = ("name", "t0", "dur", "sim_time", "attrs", "depth")

    def __init__(
        self,
        name: str,
        t0: float,
        sim_time: Optional[float],
        attrs: Optional[Dict[str, Any]],
        depth: int,
    ):
        self.name = name
        self.t0 = t0
        self.dur = 0.0
        self.sim_time = sim_time
        self.attrs = attrs
        self.depth = depth

    def __bool__(self) -> bool:
        return True

    def set(self, **attrs: Any) -> None:
        """Attach attributes (e.g. an outcome known only at the end)."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSONL line)."""
        d: Dict[str, Any] = {
            "name": self.name,
            "t0": self.t0,
            "dur": self.dur,
            "depth": self.depth,
        }
        if self.sim_time is not None:
            d["sim_time"] = self.sim_time
        if self.attrs:
            d["attrs"] = self.attrs
        return d


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def __bool__(self) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


class _SpanCtx:
    """Context manager driving one live span on an enabled tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer.end(self._span)


class Tracer:
    """Collects spans and instant events; disabled by default.

    The simulator publishes the current simulated time through
    :attr:`sim_time`; spans snapshot it when they begin, so a trace can
    be read along either clock (wall or simulated).
    """

    def __init__(self, enabled: bool = False, max_events: int = 1_000_000):
        self.enabled = enabled
        #: simulated "now", maintained by whoever drives the clock
        self.sim_time: Optional[float] = None
        self.max_events = max_events
        #: events recorded past ``max_events`` are counted, not stored
        self.dropped = 0
        self.events: List[Dict[str, Any]] = []
        self._epoch = time.perf_counter()
        self._depth = 0

    # -- recording ------------------------------------------------------
    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span (hot-path form; pair with :meth:`end`).

        Callers on hot paths must guard with ``if tracer.enabled:`` so a
        disabled tracer costs exactly one attribute check.
        """
        span = Span(
            name, time.perf_counter() - self._epoch, self.sim_time,
            attrs, self._depth,
        )
        self._depth += 1
        return span

    def end(self, span: Span) -> None:
        """Close a span opened with :meth:`begin` and record it."""
        span.dur = time.perf_counter() - self._epoch - span.t0
        self._depth -= 1
        self._record(span.as_dict())

    def span(self, name: str, **attrs: Any):
        """Context-manager span (cool-path form).

        >>> tracer = Tracer(enabled=True)
        >>> with tracer.span("sched.pass", queue=3):
        ...     pass
        >>> tracer.events[0]["name"]
        'sched.pass'
        """
        if not self.enabled:
            return _NOOP
        return _SpanCtx(self, self.begin(name, attrs or None))

    def instant(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record a zero-duration event (e.g. one scheduling decision)."""
        if not self.enabled:
            return
        d: Dict[str, Any] = {
            "name": name,
            "t0": time.perf_counter() - self._epoch,
            "instant": True,
        }
        if self.sim_time is not None:
            d["sim_time"] = self.sim_time
        if attrs:
            d["attrs"] = attrs
        self._record(d)

    def _record(self, event: Dict[str, Any]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self._depth = 0

    # -- export ---------------------------------------------------------
    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome ``trace_event`` document (the JSON object format,
        with spans as complete ``"X"`` events in microseconds)."""
        trace_events: List[Dict[str, Any]] = []
        for e in self.events:
            args = dict(e.get("attrs") or {})
            if "sim_time" in e:
                args["sim_time"] = e["sim_time"]
            out: Dict[str, Any] = {
                "name": e["name"],
                "cat": e["name"].partition(".")[0],
                "ph": "i" if e.get("instant") else "X",
                "ts": round(e["t0"] * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": args,
            }
            if not e.get("instant"):
                out["dur"] = round(e["dur"] * 1e6, 3)
            else:
                out["s"] = "t"  # instant scope: thread
            trace_events.append(out)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def write_chrome_trace(self, target: Union[str, Path, TextIO]) -> None:
        """Write :meth:`to_chrome_trace` as JSON."""
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as fh:
                self.write_chrome_trace(fh)
                return
        json.dump(self.to_chrome_trace(), target)

    def write_jsonl(self, target: Union[str, Path, TextIO]) -> None:
        """Write the raw events, one JSON object per line."""
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as fh:
                self.write_jsonl(fh)
                return
        for e in self.events:
            target.write(json.dumps(e, sort_keys=True))
            target.write("\n")


# ----------------------------------------------------------------------
# The process-global tracer (disabled unless someone enables tracing)
# ----------------------------------------------------------------------
_ACTIVE = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer consulted by module-level call sites
    (the grid engine, the network simulator)."""
    return _ACTIVE


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global one; returns the
    previous tracer so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


# ----------------------------------------------------------------------
# Trace-file analysis (the ``obs summarize`` subcommand)
# ----------------------------------------------------------------------
def load_trace_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load span events from a Chrome trace JSON or a raw JSONL file.

    Returns events in the *raw* form (``name``/``t0``/``dur`` seconds),
    whichever format the file is in.
    """
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    doc = None
    if text[0] == "{":
        # Chrome documents are one JSON object; JSONL lines are each an
        # object too, so only a whole-text parse distinguishes them.
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
    if isinstance(doc, dict) and "traceEvents" not in doc:
        return [doc]  # a single-event JSONL file
    if doc is not None:
        events = []
        for e in doc.get("traceEvents", []):
            raw: Dict[str, Any] = {
                "name": e.get("name", "?"),
                "t0": e.get("ts", 0.0) / 1e6,
            }
            if e.get("ph") == "i":
                raw["instant"] = True
            else:
                raw["dur"] = e.get("dur", 0.0) / 1e6
            args = e.get("args") or {}
            if "sim_time" in args:
                raw["sim_time"] = args["sim_time"]
            attrs = {k: v for k, v in args.items() if k != "sim_time"}
            if attrs:
                raw["attrs"] = attrs
            events.append(raw)
        return events
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def read_dropped_count(path: Union[str, Path]) -> int:
    """The ``dropped_events`` counter of a Chrome trace file (0 when the
    file is JSONL or predates the counter)."""
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text or text[0] != "{":
        return 0
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return 0
    if not isinstance(doc, dict):
        return 0
    other = doc.get("otherData")
    if not isinstance(other, dict):
        return 0
    return int(other.get("dropped_events", 0))


def _quantile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank quantile (ceil(q*n)-th order statistic) of an
    ascending non-empty list."""
    n = len(sorted_vals)
    rank = min(n - 1, max(0, int(math.ceil(q * n)) - 1))
    return sorted_vals[rank]


def summarize_trace(
    events: Iterable[Dict[str, Any]], dropped: Optional[int] = None
) -> str:
    """Per-span-name rollup of a trace: count, total/mean/p50/p95/p99/max
    wall time, and the simulated-time range covered.

    ``dropped`` is the tracer's ring-buffer overflow counter (from
    :attr:`Tracer.dropped` or :func:`read_dropped_count`); when positive
    the report warns that the rollup undercounts.
    """
    rollup: Dict[str, List[float]] = {}
    instants: Dict[str, int] = {}
    sim_lo: Optional[float] = None
    sim_hi: Optional[float] = None
    for e in events:
        st = e.get("sim_time")
        if st is not None:
            sim_lo = st if sim_lo is None else min(sim_lo, st)
            sim_hi = st if sim_hi is None else max(sim_hi, st)
        name = e.get("name", "?")
        if e.get("instant"):
            instants[name] = instants.get(name, 0) + 1
            continue
        rollup.setdefault(name, []).append(float(e.get("dur", 0.0)))
    lines = [
        "span                     count    total ms     mean ms"
        "      p50 ms      p95 ms      p99 ms      max ms"
    ]
    totals = {name: sum(durs) for name, durs in rollup.items()}
    for name in sorted(rollup, key=lambda n: -totals[n]):
        durs = sorted(rollup[name])
        count = len(durs)
        total = totals[name]
        mean = total / count if count else 0.0
        lines.append(
            f"{name:<22} {count:>7} "
            f"{total * 1e3:>11.3f} {mean * 1e3:>11.3f} "
            f"{_quantile(durs, 0.5) * 1e3:>11.3f} "
            f"{_quantile(durs, 0.95) * 1e3:>11.3f} "
            f"{_quantile(durs, 0.99) * 1e3:>11.3f} "
            f"{durs[-1] * 1e3:>11.3f}"
        )
    if not rollup:
        lines.append("(no spans)")
    for name in sorted(instants):
        lines.append(f"{name:<22} {instants[name]:>7}  (instant events)")
    if sim_lo is not None:
        lines.append(
            f"simulated time covered: {sim_lo:.0f}s .. {sim_hi:.0f}s"
        )
    if dropped:
        lines.append(
            f"WARNING: {dropped} events dropped (tracer max_events "
            "reached) — totals and counts undercount the run"
        )
    return "\n".join(lines)
