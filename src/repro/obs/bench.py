"""Machine-readable benchmark results and the perf-regression gate.

Every benchmark that participates in CI gating emits one
``BENCH_<name>.json`` document with a fixed schema (``repro.bench/v1``):

* ``quantities`` — measured values with units.  Wall-clock quantities
  are noisy (CI machines differ); the gate compares them with a wide
  one-sided tolerance.
* ``counters`` — deterministic work proxies (allocation attempts,
  backtrack steps, scheduled jobs...).  These are exact integers that
  must not change unless the algorithm changed, so the gate compares
  them with strict equality — a silent behavioral regression fails CI
  even when the machine is fast enough to hide it in wall time.
* ``environment`` — interpreter/platform/scale capture, so a baseline
  produced at one scale is never compared against a run at another.

``benchmarks/_perf_gate.py`` produces the documents at a pinned smoke
scale (:data:`GATE_SCALE`) and compares them against the committed
baselines under ``benchmarks/results/``; the schema itself is validated
by ``benchmarks/_check_obs_schema.py --bench``.
"""

from __future__ import annotations

import json
import platform
import sys
from typing import Any, Dict, Mapping, Optional

SCHEMA = "repro.bench/v1"

#: the pinned trace scale every gated BENCH document is produced at —
#: baselines committed to the repo never churn scale, and the gate
#: refuses to compare documents captured at different scales.
GATE_SCALE = 0.02

#: default one-sided wall-time tolerance: current may exceed baseline by
#: this factor before the gate fails (CI machines are slow and shared,
#: so the gate is a catastrophic-regression detector, not a profiler).
WALL_TOLERANCE = 3.0


def environment(scale: Optional[float] = None) -> Dict[str, Any]:
    """Capture the measurement environment for a BENCH document."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "scale": scale,
    }


def make_bench_result(
    name: str,
    quantities: Mapping[str, Mapping[str, Any]],
    counters: Mapping[str, int],
    repetitions: int = 1,
    env: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one schema-conforming BENCH document.

    ``quantities`` maps label -> ``{"value": float, "unit": str}``;
    ``counters`` maps label -> int.  Validation here is deliberately
    strict so a malformed document fails at the producer, not in CI.
    """
    quantities = {k: dict(v) for k, v in quantities.items()}
    for label, q in quantities.items():
        if set(q) != {"value", "unit"}:
            raise ValueError(
                f"quantity {label!r} must have exactly value/unit keys"
            )
        q["value"] = float(q["value"])
        if not isinstance(q["unit"], str):
            raise ValueError(f"quantity {label!r} unit must be a string")
    clean_counters = {}
    for label, v in counters.items():
        if isinstance(v, bool) or not isinstance(v, (int,)):
            raise ValueError(f"counter {label!r} must be an int, got {v!r}")
        clean_counters[label] = int(v)
    return {
        "schema": SCHEMA,
        "name": str(name),
        "repetitions": int(repetitions),
        "quantities": quantities,
        "counters": clean_counters,
        "environment": dict(env if env is not None else environment()),
    }


def write_bench_json(doc: Mapping[str, Any], path) -> None:
    """Write a BENCH document (sorted keys: diffs stay reviewable)."""
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench_json(path) -> Dict[str, Any]:
    """Load and minimally validate a BENCH document."""
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    return doc


def compare_bench(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    wall_tolerance: float = WALL_TOLERANCE,
) -> Dict[str, Any]:
    """Compare a current BENCH document against its committed baseline.

    Returns ``{"ok": bool, "failures": [...], "notes": [...]}``.

    * Counters must match **exactly** — but only when both documents
      were captured at the same environment scale; a scale mismatch is
      itself a failure (the comparison would be meaningless).
    * Wall-time quantities (unit ``s`` or ``ms``) fail one-sided when
      ``current > baseline * (1 + wall_tolerance)``.  Getting faster
      never fails; it is reported as a note so baselines get refreshed.
    * Non-time quantities (unit anything else) are compared exactly.
    """
    failures = []
    notes = []
    b_scale = baseline.get("environment", {}).get("scale")
    c_scale = current.get("environment", {}).get("scale")
    if b_scale != c_scale:
        failures.append(
            f"environment scale mismatch: baseline {b_scale} vs "
            f"current {c_scale} (counters are scale-dependent)"
        )
        return {"ok": False, "failures": failures, "notes": notes}

    b_counters = baseline.get("counters", {})
    c_counters = current.get("counters", {})
    for label in sorted(set(b_counters) | set(c_counters)):
        if label not in c_counters:
            failures.append(f"counter {label!r} missing from current run")
        elif label not in b_counters:
            notes.append(f"counter {label!r} is new (no baseline)")
        elif b_counters[label] != c_counters[label]:
            failures.append(
                f"counter {label!r}: baseline {b_counters[label]} != "
                f"current {c_counters[label]} (deterministic work proxy "
                "changed — a behavioral regression, not noise)"
            )

    b_q = baseline.get("quantities", {})
    c_q = current.get("quantities", {})
    for label in sorted(set(b_q) & set(c_q)):
        bq, cq = b_q[label], c_q[label]
        if bq["unit"] != cq["unit"]:
            failures.append(
                f"quantity {label!r}: unit changed "
                f"{bq['unit']!r} -> {cq['unit']!r}"
            )
            continue
        if bq["unit"] in ("s", "ms", "us"):
            limit = bq["value"] * (1.0 + wall_tolerance)
            if cq["value"] > limit:
                failures.append(
                    f"quantity {label!r}: {cq['value']:.6g}{cq['unit']} "
                    f"exceeds baseline {bq['value']:.6g}{bq['unit']} "
                    f"by more than {wall_tolerance:.0%}"
                )
            elif cq["value"] < bq["value"] * 0.5:
                notes.append(
                    f"quantity {label!r} improved >2x "
                    f"({bq['value']:.6g} -> {cq['value']:.6g}{cq['unit']}); "
                    "consider refreshing the baseline"
                )
        elif bq["value"] != cq["value"]:
            failures.append(
                f"quantity {label!r}: baseline {bq['value']!r} != "
                f"current {cq['value']!r}"
            )
    for label in sorted(set(b_q) - set(c_q)):
        failures.append(f"quantity {label!r} missing from current run")
    return {"ok": not failures, "failures": failures, "notes": notes}
