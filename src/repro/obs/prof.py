"""Hierarchical stage profiler for the allocator hot path.

Where :mod:`repro.obs.tracer` answers *which call* took the time (one
span per ``allocate``), the stage profiler answers *which part of the
search*: the instrumented allocators mark the internal stages of
``_search`` — pod prefilter, per-pod shape fit, memo replay, the
two-level/three-level phases, the final claim — and the profiler
accumulates wall time, call counts and a log-bucketed duration
histogram per ``(scheme, stage stack)``.

The contracts mirror the tracer's:

* **Free when disabled.**  Hot sites guard with a single
  ``prof.enabled`` attribute check (hoisted to a local where a site
  sits inside a loop); no frame object is built when profiling is off.
  The disabled-mode budget is the same 2% bound
  ``benchmarks/_bench_obs_overhead.py`` enforces for the tracer.
* **Strictly passive.**  Profiling never influences a decision;
  ``benchmarks/_fingerprint.py --prof`` replays every scheme with the
  profiler (and provenance) off and on and asserts byte-identical
  fingerprints.

Frames nest: ``push`` opens a stage, ``pop`` closes it and charges the
duration to the full stack path (``"search;two_level;pod_fit"``), with
*self time* (duration minus enclosed child stages) tracked separately
so a flamegraph built from :meth:`StageProfiler.to_collapsed` sums
correctly.  Exports: collapsed-stack lines (feed them to any FlameGraph
renderer), JSON, and the attribution table behind the ``repro prof``
CLI subcommand.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

#: duration histogram buckets: bucket ``i`` counts durations in
#: ``[2**(i-1), 2**i)`` microseconds (bucket 0 is "< 1 µs"); the last
#: bucket is open-ended (~134 s and beyond)
HIST_BUCKETS = 28


class StageProfiler:
    """Accumulates per-scheme, per-stage-stack timing; disabled by default.

    The aggregate is a dict keyed by ``(scheme, "a;b;c")`` holding
    ``[count, total_seconds, self_seconds, histogram]`` — everything a
    plain int/float/list, so :meth:`snapshot` is picklable and rides on
    ``SimResult.prof`` through the grid engine's process pool.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        #: scheme label stamped on frames; the base ``Allocator.allocate``
        #: sets it (inside its enabled guard) before opening ``search``
        self.scheme = ""
        self._stack: List[str] = []
        #: per-open-frame accumulator of enclosed child durations
        self._child: List[float] = []
        self._agg: Dict[Tuple[str, str], list] = {}

    # -- recording ------------------------------------------------------
    def push(self, stage: str) -> float:
        """Open a stage frame; returns the t0 to hand back to :meth:`pop`.

        Hot sites must guard with ``if prof.enabled:`` — a disabled
        profiler costs exactly one attribute (or hoisted-local) check.
        """
        self._stack.append(stage)
        self._child.append(0.0)
        return perf_counter()

    def pop(self, t0: float) -> None:
        """Close the innermost frame and charge it to the stack path."""
        dur = perf_counter() - t0
        stack = self._stack
        path = ";".join(stack)
        stack.pop()
        child = self._child.pop()
        if self._child:
            self._child[-1] += dur
        key = (self.scheme, path)
        rec = self._agg.get(key)
        if rec is None:
            rec = self._agg[key] = [0, 0.0, 0.0, [0] * HIST_BUCKETS]
        rec[0] += 1
        rec[1] += dur
        self_s = dur - child
        rec[2] += self_s if self_s > 0.0 else 0.0
        b = int(dur * 1e6).bit_length()
        rec[3][b if b < HIST_BUCKETS else HIST_BUCKETS - 1] += 1

    def stage(self, name: str) -> "_StageCtx":
        """Context-manager frame (exception-safe form for stages a
        budget abort may unwind through)."""
        return _StageCtx(self, name)

    def clear(self) -> None:
        self._agg.clear()
        self._stack.clear()
        self._child.clear()

    # -- views ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict aggregate (picklable; ``SimResult.prof``)."""
        stages = [
            {
                "scheme": scheme,
                "stack": path,
                "count": rec[0],
                "total_s": rec[1],
                "self_s": rec[2],
                "hist_log2us": list(rec[3]),
            }
            for (scheme, path), rec in sorted(
                self._agg.items(), key=lambda kv: (kv[0][0], -kv[1][1])
            )
        ]
        return {"stages": stages}

    def to_collapsed(self) -> str:
        """Collapsed-stack lines (``scheme;stage;... self_us``) — the
        flamegraph input format; self time so the frames sum exactly."""
        lines = []
        for (scheme, path), rec in sorted(self._agg.items()):
            us = int(round(rec[2] * 1e6))
            lines.append(f"{scheme};{path} {us}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- export ---------------------------------------------------------
    def write_json(self, target: Union[str, Path, TextIO]) -> None:
        """Write :meth:`snapshot` (plus environment capture) as JSON."""
        doc = self.snapshot()
        doc["environment"] = {
            "python": platform.python_version(),
            "platform": sys.platform,
        }
        if isinstance(target, (str, Path)):
            with open(target, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
            return
        json.dump(doc, target, indent=2, sort_keys=True)

    def write_collapsed(self, target: Union[str, Path, TextIO]) -> None:
        """Write :meth:`to_collapsed` (flamegraph-compatible)."""
        text = self.to_collapsed()
        if isinstance(target, (str, Path)):
            Path(target).write_text(text, encoding="utf-8")
            return
        target.write(text)


class _StageCtx:
    """Context manager driving one frame on an enabled profiler."""

    __slots__ = ("_prof", "_name", "_t0")

    def __init__(self, prof: StageProfiler, name: str):
        self._prof = prof
        self._name = name

    def __enter__(self) -> "_StageCtx":
        self._t0 = self._prof.push(self._name)
        return self

    def __exit__(self, *exc) -> None:
        self._prof.pop(self._t0)


# ----------------------------------------------------------------------
# Snapshot analysis (the ``repro prof`` attribution table)
# ----------------------------------------------------------------------
def top_level_seconds(
    snapshot: Dict[str, Any], scheme: Optional[str] = None
) -> float:
    """Wall seconds in top-level stages (no ``;`` in the stack) — the
    profiler's account of where ``alloc.search`` span time went."""
    return sum(
        s["total_s"]
        for s in snapshot.get("stages", ())
        if ";" not in s["stack"]
        and (scheme is None or s["scheme"] == scheme)
    )


def merge_snapshots(snapshots) -> Dict[str, Any]:
    """Merge per-run snapshots (e.g. one per grid cell) into one."""
    agg: Dict[Tuple[str, str], list] = {}
    for snap in snapshots:
        for s in snap.get("stages", ()):
            key = (s["scheme"], s["stack"])
            rec = agg.get(key)
            if rec is None:
                rec = agg[key] = [0, 0.0, 0.0, [0] * HIST_BUCKETS]
            rec[0] += s["count"]
            rec[1] += s["total_s"]
            rec[2] += s["self_s"]
            for i, c in enumerate(s["hist_log2us"]):
                rec[3][i] += c
    stages = [
        {
            "scheme": scheme, "stack": path, "count": rec[0],
            "total_s": rec[1], "self_s": rec[2],
            "hist_log2us": list(rec[3]),
        }
        for (scheme, path), rec in sorted(
            agg.items(), key=lambda kv: (kv[0][0], -kv[1][1])
        )
    ]
    return {"stages": stages}


def snapshot_collapsed(snapshot: Dict[str, Any]) -> str:
    """Collapsed-stack lines from a snapshot dict (same format as
    :meth:`StageProfiler.to_collapsed`, for post-run exports)."""
    lines = []
    for s in sorted(
        snapshot.get("stages", ()), key=lambda s: (s["scheme"], s["stack"])
    ):
        us = int(round(s["self_s"] * 1e6))
        lines.append(f"{s['scheme']};{s['stack']} {us}")
    return "\n".join(lines) + ("\n" if lines else "")


def _hist_p95_us(hist: List[int]) -> float:
    """Upper bound of the bucket holding the 95th-percentile duration."""
    total = sum(hist)
    if not total:
        return 0.0
    rank = max(1, int(0.95 * total + 0.9999))
    seen = 0
    for i, c in enumerate(hist):
        seen += c
        if seen >= rank:
            return float(2 ** i)
    return float(2 ** (len(hist) - 1))


def render_attribution(snapshot: Dict[str, Any]) -> str:
    """The ``repro prof`` attribution table: one row per (scheme, stage
    stack), ordered by total time within each scheme."""
    header = (
        f"{'scheme':<9} {'stage':<34} {'count':>9} {'total ms':>11} "
        f"{'self ms':>11} {'mean us':>10} {'p95<=us':>9}"
    )
    lines = [header]
    for s in snapshot.get("stages", ()):
        count = s["count"]
        mean_us = s["total_s"] / count * 1e6 if count else 0.0
        lines.append(
            f"{s['scheme']:<9} {s['stack']:<34} {count:>9} "
            f"{s['total_s'] * 1e3:>11.3f} {s['self_s'] * 1e3:>11.3f} "
            f"{mean_us:>10.1f} {_hist_p95_us(s['hist_log2us']):>9.0f}"
        )
    if len(lines) == 1:
        lines.append("(no stages recorded)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The process-global profiler (disabled unless someone enables it)
# ----------------------------------------------------------------------
_ACTIVE = StageProfiler(enabled=False)


def get_profiler() -> StageProfiler:
    """The process-global stage profiler; allocators pick it up at
    construction (``Allocator.__init__``), disabled by default."""
    return _ACTIVE


def set_profiler(prof: StageProfiler) -> StageProfiler:
    """Install ``prof`` as the process-global one; returns the previous
    profiler so callers can restore it."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = prof
    return previous
