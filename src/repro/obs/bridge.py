"""Bind the repo's legacy counter carriers into a metric registry.

Three generations of ad-hoc counters predate :mod:`repro.obs`:

* :class:`repro.core.allocator.AllocatorStats` — allocator attempt /
  cache / search-effort counters (three perf PRs each added their own);
* :class:`repro.sched.metrics.SimResult` — per-run aggregates plus a
  mirror of the allocator counters;
* :class:`repro.sched.log.ScheduleLog` — the start-mechanism mix.

This module absorbs all of them into one :class:`MetricRegistry` as
**bound** instruments: the registry reads the live legacy storage at
snapshot/export time, so the legacy attributes and the registry are two
views of the same numbers by construction — nothing is double-counted,
nothing can drift, and the simulation hot path pays nothing.  The
field-for-field correspondence is pinned by the metric name catalog in
``docs/observability.md`` and enforced by ``tests/test_obs_parity.py``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.obs.metrics import MetricRegistry

#: AllocatorStats field -> (metric name, kind, help)
STATS_METRICS = {
    "attempts": ("repro_alloc_attempts_total", "counter",
                 "allocation attempts (successes + failures)"),
    "successes": ("repro_alloc_successes_total", "counter",
                  "allocation attempts that placed the job"),
    "failures": ("repro_alloc_failures_total", "counter",
                 "allocation attempts that found no placement"),
    "releases": ("repro_alloc_releases_total", "counter",
                 "completed jobs whose resources were released"),
    "alloc_seconds": ("repro_alloc_seconds_total", "counter",
                      "wall-clock seconds inside allocate()/release()"),
    "two_level": ("repro_alloc_two_level_total", "counter",
                  "successful two-level (single-pod) placements"),
    "three_level": ("repro_alloc_three_level_total", "counter",
                    "successful three-level (cross-pod) placements"),
    "cache_hits": ("repro_feasibility_cache_hits_total", "counter",
                   "feasibility-cache lookups answered without a search"),
    "cache_misses": ("repro_feasibility_cache_misses_total", "counter",
                     "feasibility-cache lookups that ran the search"),
    "cache_invalidations": (
        "repro_feasibility_cache_invalidations_total", "counter",
        "feasibility-cache flushes because free capacity grew"),
    "pods_pruned": ("repro_search_pods_pruned_total", "counter",
                    "pods rejected by the occupancy prefilter"),
    "candidate_hits": ("repro_search_candidate_hits_total", "counter",
                       "candidate lists served from the maintained order"),
    "memo_hits": ("repro_search_memo_hits_total", "counter",
                  "per-search memo hits that skipped a pod sub-search"),
    "xpass_memo_hits": (
        "repro_search_xpass_memo_hits_total", "counter",
        "cross-pass negative-memo hits that skipped a pod sub-search"),
    "xpass_memo_epoch_flushes": (
        "repro_search_xpass_memo_epoch_flushes_total", "counter",
        "cross-pass memo entries dropped because the pod epoch moved"),
    "xpass_memo_replayed_steps": (
        "repro_search_xpass_memo_replayed_steps_total", "counter",
        "backtracking steps replayed from cross-pass memo hits"),
    "backtrack_steps": ("repro_search_backtrack_steps_total", "counter",
                        "backtracking steps executed by searches"),
    "queue_prefiltered": (
        "repro_queue_prefiltered_total", "counter",
        "queued candidates skipped by the vector pass's prefilter"),
    "size_cut_skips": (
        "repro_size_cut_skips_total", "counter",
        "prefilter skips proven by the monotone size cut"),
    "pass_vector_rounds": (
        "repro_pass_vector_rounds_total", "counter",
        "scheduling passes run on the column-oriented path"),
}

#: SimResult field -> (metric name, kind, help); counter mirrors of the
#: allocator stats reuse the STATS_METRICS names so one catalog covers
#: both carriers.
RESULT_METRICS = {
    "makespan": ("repro_sim_makespan_seconds", "gauge",
                 "first arrival to last completion, simulated seconds"),
    "busy_area": ("repro_sim_busy_node_seconds", "counter",
                  "requested node-seconds done while the queue was non-empty"),
    "demand_area": ("repro_sim_demand_node_seconds", "counter",
                    "node-seconds available while the queue was non-empty"),
    "total_busy_area": ("repro_sim_total_busy_node_seconds", "counter",
                        "requested node-seconds over the whole run"),
    "sched_seconds": ("repro_sched_seconds_total", "counter",
                      "wall-clock seconds inside the allocator"),
    "alloc_attempts": ("repro_alloc_attempts_total", "counter",
                       STATS_METRICS["attempts"][2]),
    "cache_hits": STATS_METRICS["cache_hits"],
    "cache_misses": STATS_METRICS["cache_misses"],
    "pods_pruned": STATS_METRICS["pods_pruned"],
    "candidate_hits": STATS_METRICS["candidate_hits"],
    "memo_hits": STATS_METRICS["memo_hits"],
    "xpass_memo_hits": STATS_METRICS["xpass_memo_hits"],
    "xpass_memo_epoch_flushes": STATS_METRICS["xpass_memo_epoch_flushes"],
    "xpass_memo_replayed_steps": STATS_METRICS["xpass_memo_replayed_steps"],
    "backtrack_steps": STATS_METRICS["backtrack_steps"],
    "queue_prefiltered": STATS_METRICS["queue_prefiltered"],
    "size_cut_skips": STATS_METRICS["size_cut_skips"],
    "pass_vector_rounds": STATS_METRICS["pass_vector_rounds"],
    "faults_injected": ("repro_fault_injections_total", "counter",
                        "fault-timeline fail events applied"),
    "faults_repaired": ("repro_fault_repairs_total", "counter",
                        "fault-timeline repair events applied"),
    "resubmissions": ("repro_sim_resubmissions_total", "counter",
                      "jobs killed by a fault and resubmitted"),
    "wasted_node_seconds": (
        "repro_sim_wasted_node_seconds_total", "counter",
        "node-seconds of execution destroyed by fault kills"),
    "degraded_node_seconds": (
        "repro_sim_degraded_node_seconds_total", "counter",
        "integral of out-of-service nodes over simulated time"),
    "scheduling_rounds": ("repro_sched_rounds_total", "counter",
                          "scheduling passes run (batch-step rounds)"),
}

#: AllocatorStats fields that have no SimResult mirror (bound separately
#: when a registry holds both carriers)
STATS_ONLY_FIELDS = (
    "successes", "failures", "releases", "alloc_seconds",
    "two_level", "three_level", "cache_invalidations",
)


def registry_for_stats(
    stats,
    registry: Optional[MetricRegistry] = None,
    labels: Optional[Mapping[str, str]] = None,
) -> MetricRegistry:
    """Bind every :class:`AllocatorStats` field into ``registry``."""
    registry = registry or MetricRegistry()
    labels = dict(labels or {})
    for field, (name, kind, help) in STATS_METRICS.items():
        registry.bind(name, help, _getter(stats, field), kind=kind,
                      labels=labels)
    return registry


def registry_for_result(
    result,
    registry: Optional[MetricRegistry] = None,
    labels: Optional[Mapping[str, str]] = None,
) -> MetricRegistry:
    """Bind a :class:`SimResult`'s aggregates and counter mirrors.

    ``labels`` defaults to ``{scheme, trace}`` taken from the result,
    so multi-run registries stay collision-free.
    """
    registry = registry or MetricRegistry()
    if labels is None:
        labels = {"scheme": result.scheme, "trace": result.trace_name}
    labels = dict(labels)
    for field, (name, kind, help) in RESULT_METRICS.items():
        registry.bind(name, help, _getter(result, field), kind=kind,
                      labels=labels)
    registry.bind(
        "repro_sim_jobs_completed_total", "jobs that ran to completion",
        lambda r=result: len(r.jobs), labels=labels,
    )
    registry.bind(
        "repro_sim_jobs_unscheduled_total",
        "jobs that provably could never start",
        lambda r=result: len(r.unscheduled), labels=labels,
    )
    registry.bind(
        "repro_sim_steady_state_utilization_pct",
        "average utilization over the under-demand portion",
        lambda r=result: r.steady_state_utilization, kind="gauge",
        labels=labels,
    )
    registry.bind(
        "repro_sim_goodput_fraction",
        "share of executed node-seconds that survived to completion",
        lambda r=result: r.goodput_fraction, kind="gauge",
        labels=labels,
    )
    for bin_label in result.instant.counts:
        registry.bind(
            "repro_sim_instant_samples_total",
            "instantaneous-utilization samples per Table 2 bin",
            _bin_getter(result, bin_label),
            labels={**labels, "bin": bin_label},
        )
    for q in (0.5, 0.95, 0.99):
        registry.bind(
            "repro_sched_wait_seconds",
            "per-job scheduling latency (wait) quantiles, nearest-rank",
            _wait_quantile_getter(result, q), kind="gauge",
            labels={**labels, "quantile": f"{q:g}"},
        )
    return registry


def registry_for_log(
    log,
    registry: Optional[MetricRegistry] = None,
    labels: Optional[Mapping[str, str]] = None,
) -> MetricRegistry:
    """Bind a :class:`ScheduleLog`'s event and start-mechanism mix."""
    from repro.sched.log import KINDS, VIAS

    registry = registry or MetricRegistry()
    labels = dict(labels or {})
    for event_kind in KINDS:
        registry.bind(
            "repro_sched_events_total", "schedule-log events by kind",
            _kind_getter(log, event_kind),
            labels={**labels, "kind": event_kind},
        )
    for via in VIAS:
        registry.bind(
            "repro_sched_starts_total", "job starts by mechanism",
            _via_getter(log, via), labels={**labels, "via": via},
        )
    return registry


def registry_for_stats_only(
    stats,
    registry: MetricRegistry,
    labels: Mapping[str, str],
) -> MetricRegistry:
    """Bind just the stats fields that :func:`registry_for_result` does
    not already cover (for registries holding both carriers)."""
    for field in STATS_ONLY_FIELDS:
        name, kind, help = STATS_METRICS[field]
        registry.bind(name, help, _getter(stats, field), kind=kind,
                      labels=dict(labels))
    return registry


def simulation_registry(
    result=None,
    stats=None,
    log=None,
    registry: Optional[MetricRegistry] = None,
    labels: Optional[Mapping[str, str]] = None,
) -> MetricRegistry:
    """One registry over every counter carrier a simulation produced.

    ``labels`` defaults to ``{scheme, trace}`` taken from ``result``
    when one is given (so the same helper serves single runs and
    multi-run sweeps).
    """
    registry = registry or MetricRegistry()
    if labels is None and result is not None:
        labels = {"scheme": result.scheme, "trace": result.trace_name}
    if result is not None:
        registry_for_result(result, registry, labels)
        if stats is not None:
            registry_for_stats_only(stats, registry, dict(labels or {}))
    elif stats is not None:
        registry_for_stats(stats, registry, labels)
    if log is not None:
        registry_for_log(log, registry, labels)
    return registry


# -- late-binding helpers (default-arg capture, not closures in a loop) --
def _getter(obj, field):
    return lambda o=obj, f=field: getattr(o, f)


def _bin_getter(result, bin_label):
    return lambda r=result, b=bin_label: r.instant.counts[b]


def _wait_quantile_getter(result, q):
    return lambda r=result, q=q: r.wait_quantiles((q,))[q]


def _kind_getter(log, event_kind):
    return lambda lg=log, k=event_kind: sum(
        1 for e in lg.events if e.kind == k
    )


def _via_getter(log, via):
    return lambda lg=log, v=via: sum(
        1 for e in lg.events if e.kind == "start" and e.via == v
    )
