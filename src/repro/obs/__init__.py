"""Unified telemetry: span tracing, metrics, and time-series sampling.

The observability layer has three pillars, all strictly passive — with
telemetry fully enabled every scheduling decision is byte-identical to a
telemetry-free run (``benchmarks/_fingerprint.py --obs`` enforces it):

* :mod:`repro.obs.tracer` — context-manager **spans** (``sched.pass``,
  ``alloc.search``, ``backfill.window``, ``grid.cell``,
  ``netsim.converge``) recording wall time, simulated time and custom
  attributes, exported as Chrome ``trace_event`` JSON (loadable in
  Perfetto / ``chrome://tracing``) or raw JSONL.  A disabled tracer
  costs one attribute check per instrumented site.
* :mod:`repro.obs.metrics` — a **metric registry**
  (:class:`~repro.obs.metrics.Counter` / ``Gauge`` / ``Histogram`` with
  labels) that unifies the counters scattered across
  :class:`~repro.core.allocator.AllocatorStats`,
  :class:`~repro.sched.metrics.SimResult` and
  :class:`~repro.sched.log.ScheduleLog` behind one ``snapshot()`` /
  ``export_prometheus_text()`` API (the legacy attributes stay: bound
  instruments read the same storage, so registry and attributes can
  never disagree).
* :mod:`repro.obs.sampler` — a **time-series sampler** hooked into
  :meth:`repro.sched.simulator.Simulator.run` that emits per-interval
  utilization / queue-depth / fragmentation rows to JSONL, merged
  deterministically in cell order by the experiment-grid engine.

Two further pillars ride the same passivity contract:

* :mod:`repro.obs.prof` — a **hierarchical stage profiler** for the
  allocator hot path (``repro prof`` renders the attribution table,
  ``--prof-stacks`` exports collapsed stacks for flamegraphs).
* :mod:`repro.obs.bench` — the **machine-readable benchmark schema**
  (``BENCH_<name>.json``) and comparator behind the CI perf gate
  (``benchmarks/_perf_gate.py``).

See ``docs/observability.md`` for the span taxonomy, the profiler stage
catalog, the provenance column catalog and the metric name catalog.
"""

from repro.obs.bench import (
    GATE_SCALE,
    compare_bench,
    load_bench_json,
    make_bench_result,
    write_bench_json,
)
from repro.obs.bridge import (
    registry_for_log,
    registry_for_result,
    registry_for_stats,
    simulation_registry,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.prof import (
    StageProfiler,
    get_profiler,
    merge_snapshots,
    render_attribution,
    set_profiler,
    top_level_seconds,
)
from repro.obs.sampler import TimeSeriesSampler, merge_streams, write_jsonl
from repro.obs.tracer import (
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    summarize_trace,
)

__all__ = [
    "Counter",
    "GATE_SCALE",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Span",
    "StageProfiler",
    "TimeSeriesSampler",
    "Tracer",
    "compare_bench",
    "get_profiler",
    "get_tracer",
    "load_bench_json",
    "make_bench_result",
    "merge_snapshots",
    "merge_streams",
    "registry_for_log",
    "registry_for_result",
    "registry_for_stats",
    "render_attribution",
    "set_profiler",
    "set_tracer",
    "simulation_registry",
    "summarize_trace",
    "top_level_seconds",
    "write_bench_json",
    "write_jsonl",
]
