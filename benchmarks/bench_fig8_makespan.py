"""Regenerate Figure 8: normalized makespan on Thunder and Atlas.

Shape targets: with no speed-ups Jigsaw's makespan is within a few
percent of Baseline; under speed-ups it matches or beats Baseline; TA
never beats Jigsaw.
"""

from repro.experiments import fig8


def bench_fig8(benchmark, save_result, scale):
    results = benchmark.pedantic(
        lambda: fig8.fig8_makespan(scale=scale), rounds=1, iterations=1
    )
    save_result("fig8_makespan", fig8.render(results))

    for trace, by_scenario in results.items():
        assert by_scenario["none"]["jigsaw"] <= 1.25, (trace, by_scenario)
        assert by_scenario["20%"]["jigsaw"] < 1.0, (trace, by_scenario)
        for scenario, row in by_scenario.items():
            assert row["jigsaw"] <= row["ta"] + 0.05, (trace, scenario, row)
