"""Batch-step fidelity and speed on Synth-28 (the 5488-node cluster).

Runs every scheme twice on the same Synth-28 trace — event-driven
replay (the ground truth) and batch-step rounds at the Firmament-style
default of dt=300 s — and tabulates what the coarser grid costs
(utilization / turnaround / makespan deltas, added wait) and what it
buys (scheduling rounds, allocator attempts, ms of allocator time per
job).

Targets: batch mode must cut the allocator time per job by at least 3x
on Synth-28, with steady-state utilization within a few points of the
event-driven run.  The wall-clock ratio is asserted loosely (CI noise);
the deterministic allocator-attempt ratio carries the strict bound.
"""

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table
from repro.sched.metrics import fidelity_report

TRACE = "Synth-28"
SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
STEP_INTERVAL = 300.0

#: fidelity bounds at dt=300 on Synth-28 (hours-long jobs, so a 300 s
#: grid shifts starts by minutes against multi-hour turnarounds)
UTIL_TOLERANCE_PP = 10.0
TURNAROUND_TOLERANCE_PCT = 30.0
MAKESPAN_TOLERANCE_PCT = 12.0

#: batch mode must cut allocator work per job at least this much —
#: for the search-based schemes; ``baseline``'s first-fit attempts are
#: so cheap that fewer of them do not move its ms/job, so it is shown
#: in the table but exempt from the speed bound.
MIN_SPEEDUP = 3.0
SPEEDUP_SCHEMES = ("ta", "laas", "jigsaw", "lc+s")


def batch_fidelity(scale=None, seed=0, workers=None):
    """(scheme -> row) fidelity/speed table for event vs batch runs."""
    cells = []
    for scheme in SCHEMES:
        cells.append(sim_cell(trace=TRACE, scheme=scheme, scale=scale,
                              seed=seed))
        cells.append(sim_cell(trace=TRACE, scheme=scheme, scale=scale,
                              seed=seed, step_interval=STEP_INTERVAL))
    results = iter(run_sim_grid(cells, workers=workers))
    rows = {}
    for scheme in SCHEMES:
        event = next(results)
        batch = next(results)
        report = fidelity_report(event, batch)
        ev_ms = event.mean_sched_time_per_job * 1e3
        ba_ms = batch.mean_sched_time_per_job * 1e3
        rows[scheme] = {
            "util ev%": event.steady_state_utilization,
            "util dpp": report["util_delta_pp"],
            "tat d%": report["turnaround_delta_pct"],
            "wait ds": report["wait_delta_s"],
            "mksp d%": report["makespan_delta_pct"],
            "rounds": f"{event.scheduling_rounds}->{batch.scheduling_rounds}",
            "attempts": f"{event.alloc_attempts}->{batch.alloc_attempts}",
            "ms/job": f"{ev_ms:.3f}->{ba_ms:.3f}",
            "speedup": ev_ms / ba_ms if ba_ms else float("inf"),
            "_report": report,
            "_event": event,
            "_batch": batch,
        }
    return rows


def render(rows):
    columns = ("util ev%", "util dpp", "tat d%", "wait ds", "mksp d%",
               "rounds", "attempts", "ms/job", "speedup")
    visible = {
        scheme: {k: v for k, v in row.items() if not k.startswith("_")}
        for scheme, row in rows.items()
    }
    return render_table(
        f"Batch-step fidelity: {TRACE}, event-driven vs dt="
        f"{STEP_INTERVAL:.0f}s",
        visible, columns, row_header="scheme",
    )


def bench_batch_fidelity(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: batch_fidelity(scale=scale), rounds=1, iterations=1
    )
    save_result("batch_fidelity", render(rows))

    for scheme, row in rows.items():
        report = row["_report"]
        event, batch = row["_event"], row["_batch"]
        # Fidelity: the coarse grid may not distort the headline metrics.
        assert abs(report["util_delta_pp"]) <= UTIL_TOLERANCE_PP, (
            scheme, report)
        assert abs(report["turnaround_delta_pct"]) <= (
            TURNAROUND_TOLERANCE_PCT), (scheme, report)
        assert abs(report["makespan_delta_pct"]) <= (
            MAKESPAN_TOLERANCE_PCT), (scheme, report)
        assert report["wait_delta_s"] >= 0.0, (scheme, report)
        assert not batch.unscheduled, (scheme, batch.unscheduled)
        assert report["rounds_ratio"] < 0.1, (scheme, report)
        if scheme in SPEEDUP_SCHEMES:
            # Deterministic attempt counts carry the strict bound;
            # wall clock gets head-room for CI noise.
            assert report["attempts_ratio"] <= 1.0 / MIN_SPEEDUP, (
                scheme, report)
            assert row["speedup"] >= MIN_SPEEDUP * 0.5, (
                scheme, row["speedup"])

    # The headline target: >= 3x allocator ms/job for the paper's own
    # scheme (and the table saved above shows every other scheme).
    assert rows["jigsaw"]["speedup"] >= MIN_SPEEDUP, rows["jigsaw"]
