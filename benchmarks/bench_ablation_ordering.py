"""Ablation A3: shape-enumeration order and placement strategy.

Algorithm 1 returns the first allocation found; the order in which
shapes are enumerated and whether candidate placements are scored for
fragmentation (this implementation's default) are free choices the
paper leaves open.  This bench quantifies them.
"""

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

VARIANTS = {
    "scored/dense": dict(strategy="scored", order="dense"),
    "scored/sparse": dict(strategy="scored", order="sparse"),
    "first/dense": dict(strategy="first", order="dense"),
    "first/sparse": dict(strategy="first", order="sparse"),
}


def bench_ordering(benchmark, save_result, scale):
    def run():
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=scale, **kwargs)
            for kwargs in VARIANTS.values()
        ]
        results = run_sim_grid(cells)
        return {
            label: {
                "utilization %": result.steady_state_utilization,
                "sched ms/job": result.mean_sched_time_per_job * 1e3,
            }
            for label, result in zip(VARIANTS, results)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_ordering",
        render_table(
            "Ablation: Jigsaw shape ordering and placement strategy (Synth-16)",
            rows,
            ["utilization %", "sched ms/job"],
            row_header="Variant",
        ),
    )
    # Fragmentation-scored placement should not be worse than plain
    # first-found under the default dense ordering.
    assert (
        rows["scored/dense"]["utilization %"]
        >= rows["first/dense"]["utilization %"] - 0.5
    )
