"""Measure the cost of the telemetry layer (the <=2% disabled budget).

Usage::

    PYTHONPATH=src python benchmarks/_bench_obs_overhead.py \
        [--scale 0.02] [--repeats 3] [--seed-src DIR] [--out FILE]

Two workloads, mirroring the tracked benchmarks:

* **schedtime** (bench_table3_schedtime's quantity): full simulations of
  Synth-16 under jigsaw and lc+s; reports allocator seconds per job and
  end-to-end wall time.
* **micro** (bench_allocator_micro's quantity): allocate/release cycles
  against a pre-filled radix-18 cluster.

Each workload runs in a fresh subprocess per mode so import state never
bleeds between modes:

* ``disabled`` — current code, telemetry off (the default everyone gets;
  its cost over ``seed`` is the hot-path guard overhead and must stay
  within the 2% budget);
* ``enabled`` — current code with an enabled tracer, a time-series
  sampler and a schedule log (the full observation price, reported for
  transparency, not budgeted);
* ``seed`` — only when ``--seed-src`` points at a pre-telemetry
  checkout's ``src``; otherwise the disabled mode is the baseline.

Timings are the best of ``--repeats`` runs (least-noise estimator).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

_SCHED_SNIPPET = r"""
import json, time
from repro.experiments.runner import paper_setup, run_scheme
scale = {scale}
kwargs = {kwargs}
setup = paper_setup("Synth-16", scale=scale, seed=0)
best = None
for _ in range({repeats}):
    t0 = time.perf_counter()
    sched = 0.0
    jobs = 0
    for scheme in ("jigsaw", "lc+s"):
        result = run_scheme(setup, scheme, **kwargs)
        sched += result.sched_seconds
        jobs += len(result.jobs)
    wall = time.perf_counter() - t0
    cur = {{"wall_s": wall, "sched_us_per_job": 1e6 * sched / jobs}}
    if best is None or cur["wall_s"] < best["wall_s"]:
        best = cur
print(json.dumps(best))
"""

_MICRO_SNIPPET = r"""
import json, random, time
from repro import FatTree, make_allocator
kwargs = {kwargs}
tracer = None
if kwargs.get("traced"):
    from repro.obs.tracer import Tracer
    tracer = Tracer(enabled=True)
SIZES = [1, 3, 5, 8, 13, 20, 33, 48, 70]
best = None
for _ in range({repeats}):
    tree = FatTree.from_radix(18)
    allocator = make_allocator("jigsaw", tree)
    if tracer is not None:
        allocator.tracer = tracer
    rng = random.Random(7)
    jid = 0
    while allocator.free_nodes > 0.15 * tree.num_nodes:
        jid += 1
        if allocator.allocate(jid, rng.choice(SIZES)) is None:
            break
    n = 2000
    t0 = time.perf_counter()
    for i in range(n):
        jid += 1
        if allocator.allocate(jid, 13) is not None:
            allocator.release(jid)
    per = (time.perf_counter() - t0) / n
    if tracer is not None:
        tracer.clear()
    if best is None or per < best["cycle_us"] / 1e6:
        best = {{"cycle_us": per * 1e6}}
print(json.dumps(best))
"""


def _run(snippet: str, pythonpath: str, **fmt) -> dict:
    code = snippet.format(**fmt)
    env = dict(os.environ, PYTHONPATH=pythonpath)
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True,
        text=True, check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _pct(new: float, base: float) -> str:
    return f"{100.0 * (new - base) / base:+.2f}%"


def main(argv) -> int:
    scale = 0.02
    repeats = 3
    seed_src = None
    out_path = None
    if "--scale" in argv:
        scale = float(argv[argv.index("--scale") + 1])
    if "--repeats" in argv:
        repeats = int(argv[argv.index("--repeats") + 1])
    if "--seed-src" in argv:
        seed_src = argv[argv.index("--seed-src") + 1]
    if "--out" in argv:
        out_path = argv[argv.index("--out") + 1]

    here = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    here = os.path.normpath(here)
    modes = [("disabled", here, "{}"),
             ("enabled", here,
              "{'traced': True, 'sample_interval': 1800.0}")]
    if seed_src:
        modes.insert(0, ("seed", seed_src, "{}"))

    sched, micro = {}, {}
    for name, path, kwargs in modes:
        sched[name] = _run(_SCHED_SNIPPET, path, scale=scale,
                           repeats=repeats, kwargs=kwargs)
        micro_kwargs = "{'traced': True}" if name == "enabled" else "{}"
        micro[name] = _run(_MICRO_SNIPPET, path, repeats=repeats,
                           kwargs=micro_kwargs)
        print(f"{name}: sched={sched[name]}  micro={micro[name]}",
              file=sys.stderr)

    base = "seed" if seed_src else "disabled"
    lines = [
        "Telemetry overhead (best of "
        f"{repeats} runs, Synth-16 scale {scale}, jigsaw + lc+s)",
        "",
        "bench_table3_schedtime quantity (allocator us/job; wall = full sim):",
    ]
    for name in sched:
        s = sched[name]
        note = ""
        if name != base:
            note = (f"  [{_pct(s['sched_us_per_job'], sched[base]['sched_us_per_job'])} sched, "
                    f"{_pct(s['wall_s'], sched[base]['wall_s'])} wall vs {base}]")
        lines.append(
            f"  {name:>8}: {s['sched_us_per_job']:8.1f} us/job   "
            f"wall {s['wall_s']:6.2f} s{note}"
        )
    lines += ["", "bench_allocator_micro quantity (allocate/release cycle, "
              "radix-18 @85% occupancy):"]
    for name in micro:
        m = micro[name]
        note = ""
        if name != base:
            note = f"  [{_pct(m['cycle_us'], micro[base]['cycle_us'])} vs {base}]"
        lines.append(f"  {name:>8}: {m['cycle_us']:8.2f} us/cycle{note}")
    lines += [
        "",
        "Budget: disabled-mode overhead vs the pre-telemetry seed must stay",
        "within 2% on the schedtime quantity (one `tracer.enabled` attribute",
        "check per allocate(); spans/samples/instants are never constructed",
        "when disabled).  Enabled mode pays for what it records.",
    ]
    report = "\n".join(lines) + "\n"
    print(report)
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote {out_path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
