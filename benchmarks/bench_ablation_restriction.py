"""Ablation A1: Jigsaw's full-leaf three-level restriction (section 4).

The paper argues that allowing *every* legal placement (the pure
least-constrained scheme, LC) is both slower and, counter-intuitively,
no better for utilization than Jigsaw's restricted search, because
maximal permissiveness scatters free nodes; only adding link *sharing*
(LC+S) pushes past Jigsaw, and then only with unrealistic bandwidth
knowledge.  This bench puts the three side by side on Synth-16.
"""

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

SCHEMES = ("jigsaw", "lc", "lc+s")


def bench_restriction_ablation(benchmark, save_result, scale):
    def run():
        cells = [
            sim_cell(trace="Synth-16", scheme=scheme, scale=scale)
            for scheme in SCHEMES
        ]
        results = run_sim_grid(cells)
        return {
            scheme: {
                "utilization %": result.steady_state_utilization,
                "sched ms/job": result.mean_sched_time_per_job * 1e3,
            }
            for scheme, result in zip(SCHEMES, results)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_restriction",
        render_table(
            "Ablation: Jigsaw's full-leaf restriction vs least-constrained",
            rows,
            ["utilization %", "sched ms/job"],
            row_header="Scheme",
        ),
    )
    # The restriction buys an order of magnitude of scheduling time ...
    assert rows["jigsaw"]["sched ms/job"] * 3 < rows["lc"]["sched ms/job"]
    # ... without giving up utilization against exclusive-link LC.
    assert rows["jigsaw"]["utilization %"] >= rows["lc"]["utilization %"] - 1.5
