"""Regenerate Table 2: instantaneous-utilization histogram on Thunder.

Shape targets: Jigsaw reaches >= 98 % instantaneous utilization far more
often than LaaS (whose padding makes it nearly unreachable), and TA
spends much more of its time below 80 % than Jigsaw.
"""

from repro.experiments import table2


def bench_table2(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: table2.table2_instantaneous(scale=scale), rounds=1, iterations=1
    )
    save_result("table2_instantaneous", table2.render(rows))

    def frac(scheme, label):
        total = sum(rows[scheme].values())
        return rows[scheme][label] / total if total else 0.0

    assert frac("jigsaw", ">=98") > frac("laas", ">=98"), rows
    low = ("80-90", "60-80", "<=60")
    ta_low = sum(frac("ta", b) for b in low)
    jig_low = sum(frac("jigsaw", b) for b in low)
    assert ta_low > jig_low, rows
