"""Extension bench: fragmentation decomposition (section 6.1, measured).

Asserted shape: LaaS carries nonzero padding (internal fragmentation)
and Jigsaw none; Jigsaw keeps mid-size placements feasible more often
than TA, whose containment rules strand free capacity (external
fragmentation)."""

from repro.experiments import figfrag


def bench_fragmentation(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: figfrag.fragmentation_timeseries(scale=scale),
        rounds=1,
        iterations=1,
    )
    save_result("fig_fragmentation", figfrag.render(rows))

    assert rows["laas"]["padding %"] > 0.0, rows
    assert rows["jigsaw"]["padding %"] == 0.0, rows
    assert rows["ta"]["padding %"] == 0.0, rows
    # external fragmentation: mid-size feasibility, Jigsaw vs TA
    assert rows["jigsaw"]["fit 24n %"] >= rows["ta"]["fit 24n %"] - 5.0, rows
