"""Regenerate Figure 6: average system utilization, 5 schemes x 9 traces.

Reproduction targets (shape, not absolute points): Baseline on top at
97-100 %; LC+S >= Jigsaw; Jigsaw clearly above LaaS; LaaS above or near
TA; every isolating scheme's worst trace is Atlas or a heavy Cab month.
"""

from repro.experiments import fig6


def bench_fig6(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: fig6.fig6_utilization(scale=scale), rounds=1, iterations=1
    )
    save_result("fig6_utilization", fig6.render(rows))

    # The paper's headline ordering must hold on the synthetic traces.
    for name in ("Synth-16", "Synth-22", "Synth-28"):
        r = rows[name]
        assert r["baseline"] > r["jigsaw"] > r["laas"], rows
        assert r["baseline"] >= 97.0
        assert r["jigsaw"] >= 88.0
    # Jigsaw beats both prior isolating schemes on every trace.
    for name, r in rows.items():
        assert r["jigsaw"] >= r["laas"] - 0.5, (name, r)
        assert r["jigsaw"] >= r["ta"] - 0.5, (name, r)
