"""Regenerate Table 3: average scheduling time per job.

Shape targets: TA, LaaS and Jigsaw land within roughly an order of
magnitude of each other; LC+S is at least several times slower than
Jigsaw everywhere and degrades with cluster size (Synth-28's 5488-node
cluster is its worst case, as in the paper).

Also saves the allocator feasibility-cache companion table (per run,
the share of allocate()/can_allocate() lookups answered from the
cross-pass infeasibility cache instead of a full search) and the
search-effort companion table (pods pruned by the occupancy prefilter,
candidate-list/memo hits, backtracking steps).
"""

from repro.experiments import table3


def bench_table3(benchmark, save_result, scale):
    rows, cache_rows, search_rows = benchmark.pedantic(
        lambda: table3.table3_full(scale=scale),
        rounds=1,
        iterations=1,
    )
    save_result("table3_schedtime", table3.render(rows))
    save_result("table3_cache", table3.render_cache(cache_rows))
    save_result("table3_search", table3.render_search(search_rows))

    for trace in table3.TABLE3_TRACES:
        assert rows["lc+s"][trace] > 3 * rows["jigsaw"][trace], rows
    assert rows["lc+s"]["Synth-28"] > rows["lc+s"]["Synth-16"], rows

    # Every run must have consulted the cache; the FIFO head retrying
    # across pure-arrival batches guarantees hits on loaded traces.
    for scheme, per_trace in cache_rows.items():
        for trace, cell in per_trace.items():
            assert "/" in cell and "%" in cell, (scheme, trace, cell)
