"""Regenerate Table 3: average scheduling time per job.

Shape targets: TA, LaaS and Jigsaw land within roughly an order of
magnitude of each other; LC+S is at least several times slower than
Jigsaw everywhere and degrades with cluster size (Synth-28's 5488-node
cluster is its worst case, as in the paper).
"""

from repro.experiments import table3


def bench_table3(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: table3.table3_scheduling_time(scale=scale),
        rounds=1,
        iterations=1,
    )
    save_result("table3_schedtime", table3.render(rows))

    for trace in table3.TABLE3_TRACES:
        assert rows["lc+s"][trace] > 3 * rows["jigsaw"][trace], rows
    assert rows["lc+s"]["Synth-28"] > rows["lc+s"]["Synth-16"], rows
