"""Regenerate Table 3: average scheduling time per job.

Shape targets: TA, LaaS and Jigsaw land within roughly an order of
magnitude of each other; LC+S is at least several times slower than
Jigsaw everywhere and degrades with cluster size (Synth-28's 5488-node
cluster is its worst case, as in the paper).

Also saves the allocator feasibility-cache companion table (per run,
the share of allocate()/can_allocate() lookups answered from the
cross-pass infeasibility cache instead of a full search) and the
search-effort companion table (pods pruned by the occupancy prefilter,
candidate-list/memo hits, backtracking steps).
"""

from repro.experiments import table3
from repro.obs.bench import GATE_SCALE, environment, make_bench_result

#: the machine-readable gate slice: one trace, the three schemes whose
#: relative cost Table 3 is about (see ``benchmarks/_perf_gate.py``)
GATE_TRACE = "Synth-16"
GATE_SCHEMES = ("ta", "jigsaw", "lc+s")


def bench_payload(scale: float = GATE_SCALE, seed: int = 0) -> dict:
    """The ``BENCH_table3_schedtime.json`` document: per-scheme sched
    time plus the deterministic work proxies the CI gate holds exact."""
    from repro.experiments.grid import run_grid, sim_cell

    cells = [
        sim_cell(trace=GATE_TRACE, scheme=scheme, scale=scale, seed=seed)
        for scheme in GATE_SCHEMES
    ]
    outcomes = run_grid(cells)
    quantities, counters = {}, {}
    for scheme, outcome in zip(GATE_SCHEMES, outcomes):
        r = outcome.value
        quantities[f"sched_ms_per_job.{scheme}"] = {
            "value": r.mean_sched_time_per_job * 1e3, "unit": "ms",
        }
        quantities[f"wall_s.{scheme}"] = {
            "value": outcome.wall_seconds, "unit": "s",
        }
        counters[f"alloc_attempts.{scheme}"] = r.alloc_attempts
        counters[f"backtrack_steps.{scheme}"] = r.backtrack_steps
        counters[f"jobs.{scheme}"] = len(r.jobs)
        counters[f"unscheduled.{scheme}"] = len(r.unscheduled)
    return make_bench_result(
        "table3_schedtime", quantities, counters,
        env=environment(scale),
    )


def bench_table3(benchmark, save_result, save_bench, scale):
    rows, cache_rows, search_rows = benchmark.pedantic(
        lambda: table3.table3_full(scale=scale),
        rounds=1,
        iterations=1,
    )
    save_result("table3_schedtime", table3.render(rows))
    save_result("table3_cache", table3.render_cache(cache_rows))
    save_result("table3_search", table3.render_search(search_rows))

    for trace in table3.TABLE3_TRACES:
        assert rows["lc+s"][trace] > 3 * rows["jigsaw"][trace], rows
    assert rows["lc+s"]["Synth-28"] > rows["lc+s"]["Synth-16"], rows

    # Every run must have consulted the cache; the FIFO head retrying
    # across pure-arrival batches guarantees hits on loaded traces.
    for scheme, per_trace in cache_rows.items():
        for trace, cell in per_trace.items():
            assert "/" in cell and "%" in cell, (scheme, trace, cell)

    # Machine-readable gate document, always at the pinned gate scale
    # so the committed baseline never churns its job counts.
    save_bench(bench_payload())
