"""Vectorized scheduling-pass speed on Synth-28, plus the radix-32 smoke.

Runs every scheme through both passes on the same Synth-28 trace — the
vectorized pass (the default) and its scalar twin
(``use_vector_pass=False``) — and tabulates end-to-end wall ms/job
(best of ``REPEATS`` deterministic runs, so repeats only strip OS
noise), the allocator sched-time ratio, the prefilter counters, and
the decision invariants (identical placements, identical charged
allocator attempts).  Then takes the new radix-32 preset for a bounded
smoke run: Synth-32 on the 8192-node cluster, vector pass, must drain
the queue.

A third leg measures the bitset shape search + cross-pass memo against
the ``REPRO_NAIVE_SEARCH`` scalar twin for the search-heavy schemes
(jigsaw, laas, lc+s) on the same trace.

Targets: the vector pass must cut end-to-end wall ms/job by >= 1.5x
for the paper's own scheme (jigsaw) on Synth-28, and the indexed
search must beat the naive twin by >= 1.5x on jigsaw/laas (>= 1.2x on
lc+s, whose step budget caps the win).  Wall-clock ratios get CI
head-room; the deterministic invariants (placement identity,
attempt equality, a moving prefilter counter) carry the strict checks.
``baseline`` and ``ta`` appear in the table but are exempt from the
speed bound: their searches are already so cheap that the column build
is pure overhead (baseline, ~0.85x) or a wash (ta, ~1.0x).
"""

import os
import time

from repro.experiments.grid import run_grid, setup_for, sim_cell
from repro.experiments.report import render_table
from repro.experiments.runner import run_scheme
from repro.obs.bench import GATE_SCALE, environment, make_bench_result

TRACE = "Synth-28"
SCALE_TRACE = "Synth-32"
SMOKE_SCHEME = "jigsaw"
SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")

#: the vector pass must be at least this much faster (wall ms/job) for
#: the scored scheme; the other search-heavy schemes get CI head-room
MIN_SPEEDUP = 1.5
SPEEDUP_SCHEMES = ("laas", "jigsaw", "lc+s")

#: end-to-end ms/job floors for the bitset shape search + cross-pass
#: memo (indexed search vs the ``REPRO_NAIVE_SEARCH`` scalar twin) on
#: Synth-28.  lc+s gets a lower floor: its 50k step budget bounds how
#: much scalar work the columnar inner loop can displace.
SEARCH_MIN_SPEEDUP = {"jigsaw": 1.5, "laas": 1.5, "lc+s": 1.2}

#: wall-clock floors get CI head-room (shared runners are noisy); the
#: committed baseline documents the full measured speedup.
SEARCH_SPEEDUP_HEADROOM = 0.7

#: schemes whose restricted shapes give the prefilter something to skip
#: (baseline's only failure mode is the free-node count, which the
#: eligibility mask handles without charging, so its counter stays 0)
PREFILTER_SCHEMES = ("ta", "laas", "jigsaw", "lc+s")

#: wall time per configuration is the best of this many runs (the runs
#: are deterministic, so repeats only strip scheduler/OS noise)
REPEATS = 2


def pass_scale(scale=None, seed=0, workers=None):
    """(scheme -> row) wall-time table for vector vs scalar passes."""
    # Warm the setup cache so trace/tree construction stays out of the
    # first cell's wall time.
    setup_for(TRACE, scale=scale, seed=seed)
    cells = []
    for scheme in SCHEMES:
        for _ in range(REPEATS):
            cells.append(sim_cell(trace=TRACE, scheme=scheme, scale=scale,
                                  seed=seed))
            cells.append(sim_cell(trace=TRACE, scheme=scheme, scale=scale,
                                  seed=seed, use_vector_pass=False))
    outcomes = iter(run_grid(cells, workers=workers))
    rows = {}
    for scheme in SCHEMES:
        vec_outs, sca_outs = [], []
        for _ in range(REPEATS):
            vec_outs.append(next(outcomes))
            sca_outs.append(next(outcomes))
        vec, sca = vec_outs[0].value, sca_outs[0].value
        jobs = len(vec.jobs) or 1
        ve_ms = min(o.wall_seconds for o in vec_outs) * 1e3 / jobs
        sc_ms = min(o.wall_seconds for o in sca_outs) * 1e3 / jobs
        sched_ratio = (sca.mean_sched_time_per_job
                       / vec.mean_sched_time_per_job
                       if vec.mean_sched_time_per_job else float("inf"))
        rows[scheme] = {
            "util%": vec.steady_state_utilization,
            "ms/job": f"{sc_ms:.3f}->{ve_ms:.3f}",
            "speedup": sc_ms / ve_ms if ve_ms else float("inf"),
            "sched x": sched_ratio,
            "prefiltered": vec.queue_prefiltered,
            "cut skips": vec.size_cut_skips,
            "attempts": vec.alloc_attempts,
            "rounds": vec.pass_vector_rounds,
            "_vec": vec,
            "_sca": sca,
        }
    return rows


def scale_smoke(scale=None, seed=0):
    """One bounded radix-32 run (8192 nodes) with the vector pass."""
    setup = setup_for(SCALE_TRACE, scale=scale, seed=seed)
    outcome = run_grid([
        sim_cell(trace=SCALE_TRACE, scheme=SMOKE_SCHEME, scale=scale,
                 seed=seed),
    ])[0]
    result = outcome.value
    jobs = len(result.jobs) or 1
    return {
        "nodes": setup.tree.num_nodes,
        "jobs": jobs,
        "wall s": f"{outcome.wall_seconds:.2f}",
        "ms/job": f"{outcome.wall_seconds * 1e3 / jobs:.3f}",
        "util%": result.steady_state_utilization,
        "unscheduled": len(result.unscheduled),
        "_result": result,
    }


def _timed_search_run(scheme, naive, scale, seed):
    """One in-process run with the indexed or naive search selected.

    The naive twin is selected the same way the fingerprint harness
    selects it — via ``REPRO_NAIVE_SEARCH`` at allocator construction —
    so this measures exactly the path the invariance checks certify.
    Runs in-process (no grid pool) so the environment toggle is seen.
    """
    old = os.environ.get("REPRO_NAIVE_SEARCH")
    if naive:
        os.environ["REPRO_NAIVE_SEARCH"] = "1"
    else:
        os.environ.pop("REPRO_NAIVE_SEARCH", None)
    try:
        setup = setup_for(TRACE, scale=scale, seed=seed)
        t0 = time.perf_counter()
        result = run_scheme(setup, scheme, seed=seed)
        return result, time.perf_counter() - t0
    finally:
        if old is None:
            os.environ.pop("REPRO_NAIVE_SEARCH", None)
        else:
            os.environ["REPRO_NAIVE_SEARCH"] = old


def search_speedup(scale=None, seed=0):
    """(scheme -> row) bitset search + cross-pass memo vs naive twin.

    End-to-end wall ms/job on Synth-28, best of ``REPEATS`` runs per
    variant, for the search-heavy schemes.  The decision invariants are
    asserted by the caller (identical placements, identical leftovers);
    this just measures and carries both results.
    """
    setup_for(TRACE, scale=scale, seed=seed)
    rows = {}
    for scheme in SEARCH_MIN_SPEEDUP:
        walls, results = {}, {}
        for naive in (False, True):
            best = float("inf")
            result = None
            for _ in range(REPEATS):
                result, wall = _timed_search_run(scheme, naive, scale, seed)
                best = min(best, wall)
            walls[naive], results[naive] = best, result
        indexed, nai = results[False], results[True]
        jobs = len(indexed.jobs) or 1
        ix_ms = walls[False] * 1e3 / jobs
        na_ms = walls[True] * 1e3 / jobs
        rows[scheme] = {
            "ms/job": f"{na_ms:.3f}->{ix_ms:.3f}",
            "speedup": na_ms / ix_ms if ix_ms else float("inf"),
            "floor": SEARCH_MIN_SPEEDUP[scheme],
            "memo hits": indexed.xpass_memo_hits,
            "epoch flushes": indexed.xpass_memo_epoch_flushes,
            "replayed steps": indexed.xpass_memo_replayed_steps,
            "_indexed": indexed,
            "_naive": nai,
            "_indexed_ms": ix_ms,
            "_naive_ms": na_ms,
        }
    return rows


def pass_scale_suite(scale=None, seed=0, workers=None):
    """All three measurements, in one timed unit."""
    return (pass_scale(scale=scale, seed=seed, workers=workers),
            scale_smoke(scale=scale, seed=seed),
            search_speedup(scale=scale, seed=seed))


def render(rows, smoke, search_rows):
    columns = ("util%", "ms/job", "speedup", "sched x", "prefiltered",
               "cut skips", "attempts", "rounds")
    visible = {
        scheme: {k: v for k, v in row.items() if not k.startswith("_")}
        for scheme, row in rows.items()
    }
    main = render_table(
        f"Vectorized scheduling pass: {TRACE}, scalar twin vs vector "
        "(wall ms/job)",
        visible, columns, row_header="scheme",
    )
    smoke_tbl = render_table(
        f"Radix-32 scale-up smoke: {SCALE_TRACE} "
        f"({smoke['nodes']} nodes), vector pass",
        {SMOKE_SCHEME: {k: v for k, v in smoke.items()
                        if not k.startswith("_")}},
        ("nodes", "jobs", "wall s", "ms/job", "util%", "unscheduled"),
        row_header="scheme",
    )
    search_tbl = render_table(
        f"Bitset search + cross-pass memo: {TRACE}, naive twin vs "
        "indexed (wall ms/job)",
        {scheme: {k: v for k, v in row.items() if not k.startswith("_")}
         for scheme, row in search_rows.items()},
        ("ms/job", "speedup", "floor", "memo hits", "epoch flushes",
         "replayed steps"),
        row_header="scheme",
    )
    return main + "\n\n" + smoke_tbl + "\n\n" + search_tbl


def bench_payload(scale: float = GATE_SCALE, seed: int = 0) -> dict:
    """The ``BENCH_pass_scale.json`` document: vector vs scalar pass on
    the gate slice (Synth-28 under jigsaw) plus the bitset-search vs
    naive-twin leg for the search-heavy schemes, wall time tolerant and
    the work proxies (attempts, memo counters) exact.

    The search leg enforces the ms/job floors (with CI head-room) and
    the decision invariant — naive and indexed runs must place the same
    jobs at the same times — so the gate fails loudly if either the
    speedup collapses or the twin paths ever diverge.
    """
    setup_for(TRACE, scale=scale, seed=seed)
    vec_out, sca_out = run_grid([
        sim_cell(trace=TRACE, scheme=SMOKE_SCHEME, scale=scale, seed=seed),
        sim_cell(trace=TRACE, scheme=SMOKE_SCHEME, scale=scale, seed=seed,
                 use_vector_pass=False),
    ])
    vec, sca = vec_out.value, sca_out.value
    jobs = len(vec.jobs) or 1
    quantities = {
        "vector_ms_per_job": {
            "value": vec_out.wall_seconds * 1e3 / jobs, "unit": "ms"},
        "scalar_ms_per_job": {
            "value": sca_out.wall_seconds * 1e3 / jobs, "unit": "ms"},
    }
    counters = {
        "alloc_attempts": vec.alloc_attempts,
        "queue_prefiltered": vec.queue_prefiltered,
        "size_cut_skips": vec.size_cut_skips,
        "pass_vector_rounds": vec.pass_vector_rounds,
        "jobs": jobs,
        "unscheduled": len(vec.unscheduled),
    }
    for scheme, row in search_speedup(scale=scale, seed=seed).items():
        indexed, naive = row["_indexed"], row["_naive"]
        assert [(j.job_id, j.start, j.end) for j in indexed.jobs] == [
            (j.job_id, j.start, j.end) for j in naive.jobs
        ], scheme
        assert indexed.unscheduled == naive.unscheduled, scheme
        floor = SEARCH_MIN_SPEEDUP[scheme]
        assert row["speedup"] >= floor * SEARCH_SPEEDUP_HEADROOM, (
            scheme, row["speedup"], floor)
        tag = scheme.replace("+", "")
        quantities[f"search_indexed_ms_per_job.{tag}"] = {
            "value": row["_indexed_ms"], "unit": "ms"}
        quantities[f"search_naive_ms_per_job.{tag}"] = {
            "value": row["_naive_ms"], "unit": "ms"}
        counters[f"search_xpass_memo_hits.{tag}"] = indexed.xpass_memo_hits
        counters[f"search_xpass_memo_epoch_flushes.{tag}"] = (
            indexed.xpass_memo_epoch_flushes)
        counters[f"search_xpass_memo_replayed_steps.{tag}"] = (
            indexed.xpass_memo_replayed_steps)
    return make_bench_result(
        "pass_scale", quantities, counters, env=environment(scale),
    )


def bench_pass_scale(benchmark, save_result, save_bench, scale):
    rows, smoke, search_rows = benchmark.pedantic(
        lambda: pass_scale_suite(scale=scale), rounds=1, iterations=1
    )
    save_result("pass_scale", render(rows, smoke, search_rows))

    for scheme, row in rows.items():
        vec, sca = row["_vec"], row["_sca"]
        # Decision invariance: the vector pass changes speed, never
        # placements — same starts, same charged attempts, same leftovers.
        assert [(j.job_id, j.start, j.end) for j in vec.jobs] == [
            (j.job_id, j.start, j.end) for j in sca.jobs
        ], scheme
        assert vec.alloc_attempts == sca.alloc_attempts, scheme
        assert vec.unscheduled == sca.unscheduled, scheme
        # The vector run took the vector path; the twin never did.
        assert vec.pass_vector_rounds == vec.scheduling_rounds, scheme
        assert sca.pass_vector_rounds == 0, scheme
        if scheme in PREFILTER_SCHEMES:
            # Deterministic speed proxy: the prefilter skipped real work.
            assert vec.queue_prefiltered > 0, scheme
        if scheme in SPEEDUP_SCHEMES:
            assert row["speedup"] >= MIN_SPEEDUP * 0.7, (
                scheme, row["speedup"])
    # The monotone size cut fired somewhere on this contended trace.
    assert sum(row["cut skips"] for row in rows.values()) > 0, rows

    # The headline target: >= 1.5x wall ms/job for the paper's own
    # scheme (the table saved above reports every other scheme).
    assert rows["jigsaw"]["speedup"] >= MIN_SPEEDUP, rows["jigsaw"]

    # Bitset search + cross-pass memo: the indexed search must beat the
    # naive twin by its per-scheme floor while deciding identically.
    for scheme, row in search_rows.items():
        indexed, naive = row["_indexed"], row["_naive"]
        assert [(j.job_id, j.start, j.end) for j in indexed.jobs] == [
            (j.job_id, j.start, j.end) for j in naive.jobs
        ], scheme
        assert indexed.unscheduled == naive.unscheduled, scheme
        assert row["speedup"] >= SEARCH_MIN_SPEEDUP[scheme], (
            scheme, row["speedup"])

    # Radix-32 smoke: the 8192-node preset drains its queue on the
    # vector pass, and the run actually went through it.
    result = smoke["_result"]
    assert not result.unscheduled, result.unscheduled
    assert result.pass_vector_rounds == result.scheduling_rounds

    save_bench(bench_payload())
