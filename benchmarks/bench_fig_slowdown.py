"""Extension bench: measured interference slowdowns.

Shape asserted: Jigsaw placements yield exactly 1.0 slowdown for every
pattern (interference-freedom is structural); Baseline placements show
measurable slowdown under the heavier patterns, grounding the paper's
speed-up scenarios."""

from repro.experiments import figslowdown


def bench_slowdown(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: figslowdown.slowdown_comparison(), rounds=1, iterations=1
    )
    save_result("fig_slowdown", figslowdown.render(rows))

    for key, row in rows.items():
        if key.startswith("jigsaw/"):
            assert row["max slowdown"] == 1.0, (key, row)
    baseline_heavy = rows["baseline/alltoall_sample"]
    assert baseline_heavy["max slowdown"] > 1.0, rows
