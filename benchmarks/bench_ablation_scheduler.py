"""Ablation A4 (extension): backfill policy and walltime-estimate error.

The paper fixes EASY with perfect estimates.  Two classic scheduler
variations, provided as extensions, quantified here on Synth-16 with
Jigsaw: conservative backfilling (every queued job holds a reservation)
and user walltime overestimation (estimates = actual x factor).
"""

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

VARIANTS = {
    "easy/exact": dict(backfill_policy="easy", estimate_factor=1.0),
    "easy/over-2x": dict(backfill_policy="easy", estimate_factor=2.0),
    "conservative/exact": dict(backfill_policy="conservative",
                               estimate_factor=1.0),
    "conservative/over-2x": dict(backfill_policy="conservative",
                                 estimate_factor=2.0),
}


def bench_scheduler_variants(benchmark, save_result, scale):
    def run():
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=scale, **kwargs)
            for kwargs in VARIANTS.values()
        ]
        results = run_sim_grid(cells)
        return {
            label: {
                "utilization %": result.steady_state_utilization,
                "mean turnaround s": result.mean_turnaround,
                "mean wait s": result.mean_wait,
            }
            for label, result in zip(VARIANTS, results)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_scheduler",
        render_table(
            "Ablation: backfill policy and walltime estimates (Jigsaw, Synth-16)",
            rows,
            ["utilization %", "mean turnaround s", "mean wait s"],
            row_header="Variant",
        ),
    )
    # Conservative is more cautious: utilization must not exceed EASY's
    # by more than noise.
    assert (
        rows["conservative/exact"]["utilization %"]
        <= rows["easy/exact"]["utilization %"] + 1.0
    )
