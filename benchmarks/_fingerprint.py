"""Decision-invariance fingerprint: hash every SimResult field that must
not change across performance work (job records, makespan, utilization).

Usage::

    PYTHONPATH=src python benchmarks/_fingerprint.py out.json [--scale 0.02]

Compare two dumps with ``diff`` — they must be identical.
"""

from __future__ import annotations

import hashlib
import json
import sys

from repro.experiments.runner import paper_setup, run_scheme

TRACES = ("Synth-16", "Thunder", "Sep-Cab")
SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")


def fingerprint(scale: float) -> dict:
    out = {}
    for trace in TRACES:
        setup = paper_setup(trace, scale=scale, seed=0)
        for scheme in SCHEMES:
            result = run_scheme(setup, scheme, seed=0)
            records = [
                (r.job_id, r.size, r.arrival, r.start, r.end)
                for r in result.jobs
            ]
            digest = hashlib.sha256(
                json.dumps(records, sort_keys=True).encode()
            ).hexdigest()
            out[f"{trace}/{scheme}"] = {
                "jobs": len(result.jobs),
                "records_sha256": digest,
                "makespan": result.makespan,
                "steady_state_utilization": result.steady_state_utilization,
                "overall_utilization": result.overall_utilization,
                "alloc_attempts": result.alloc_attempts,
                "unscheduled": list(result.unscheduled),
            }
    return out


if __name__ == "__main__":
    path = sys.argv[1]
    scale = 0.02
    if "--scale" in sys.argv:
        scale = float(sys.argv[sys.argv.index("--scale") + 1])
    data = fingerprint(scale)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    print(f"wrote {len(data)} fingerprints to {path}")
