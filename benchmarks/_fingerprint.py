"""Decision-invariance fingerprint: hash every SimResult field that must
not change across performance work (job records, makespan, utilization).

Usage::

    PYTHONPATH=src python benchmarks/_fingerprint.py out.json [--scale 0.02]

Compare two dumps with ``diff`` — they must be identical.

Parallel invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --selfcheck [--scale 0.02]

runs the grid serially and across a 2-worker process pool and asserts
the fingerprints are identical — the grid engine's core guarantee.
``--workers N`` fingerprints through an N-worker pool (for diffing a
parallel dump against a serial one).

Allocator invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --vs-naive [--scale 0.02]

runs every scheme twice — once on the incremental occupancy indexes
and once on the naive recompute-per-call search paths
(``REPRO_NAIVE_SEARCH=1``) — and asserts byte-identical decisions.
``--compare FILE`` instead checks the current code against a previously
written dump and prints ``FINGERPRINTS-IDENTICAL`` on a match.
Comparisons are schema-tolerant: only the decision keys are diffed, so
a dump written before a diagnostic counter was added still compares.

Scheduling-pass invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --vs-scalar [--scale 0.02]

runs every scheme twice — once on the vectorized scheduling pass and
once on the scalar twin (``REPRO_NAIVE_PASS=1``) — and asserts
byte-identical decisions, in event-driven, batch-step *and* faulted
replay.

Event-drain invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --vs-scalar-events [--scale 0.02]

same shape for the event drain: every scheme twice — once on the
columnar drain (bulk ``release_many`` completions, batched arrivals)
and once on the one-event-at-a-time twin (``REPRO_NAIVE_EVENTS=1``) —
asserting byte-identical decisions in event-driven, batch-step and
faulted replay.

Telemetry invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --obs [--scale 0.02]

runs every scheme twice — telemetry off and fully on (enabled tracer,
time-series sampler, schedule log, metric registry) — and asserts
byte-identical scheduling decisions: observation must be strictly
passive (the contract of :mod:`repro.obs`).

Profiler/provenance invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --prof [--scale 0.02]

runs every scheme twice — once plain and once with the stage profiler
and per-job provenance recording enabled — and asserts byte-identical
scheduling decisions (:mod:`repro.obs.prof` and the provenance columns
are strictly passive).  ``--compare FILE --with-prof`` checks a saved
dump against a profiled+provenance run for the same guarantee.

Resilience invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --empty-faults [--scale 0.02]
    PYTHONPATH=src python benchmarks/_fingerprint.py --faults [--scale 0.02]

``--empty-faults`` runs every scheme with no fault machinery and again
with an explicitly-empty ``FaultTimeline`` and asserts byte-identical
decisions (an empty timeline must be a no-op).  ``--faults`` runs a
seeded MTTF timeline serially and through a 2-worker pool and asserts
the faulted fingerprints are identical — the timeline and its outcomes
must thread through the process pool deterministically.

Batch-step invariance::

    PYTHONPATH=src python benchmarks/_fingerprint.py --batch [--scale 0.02]

runs every scheme in batch-step mode (``step_interval=300``) serially
and through a 2-worker pool and asserts the fingerprints are identical:
the batch drive mode must be exactly as deterministic and
pool-invariant as event-driven replay (its *fidelity* against
event-driven replay is a separate question —
``benchmarks/bench_batch_fidelity.py``).
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from typing import Optional

from repro.experiments.grid import run_sim_grid, sim_cell

TRACES = ("Synth-16", "Thunder", "Sep-Cab")
SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")

#: the fields a comparison must hold identical — everything that encodes
#: a scheduling decision.  Other dump fields (diagnostic counters like
#: ``queue_prefiltered``) are informational and may legitimately differ
#: across code paths that decide identically, so diffs ignore them.
DECISION_KEYS = (
    "jobs", "records_sha256", "makespan", "steady_state_utilization",
    "overall_utilization", "alloc_attempts", "unscheduled",
)


def _decisions(fp: dict) -> dict:
    """Project a fingerprint dict onto its decision keys."""
    return {
        run: {k: v for k, v in entry.items() if k in DECISION_KEYS}
        for run, entry in fp.items()
    }


def fingerprint(
    scale: float, workers: Optional[int] = None, **run_kwargs
) -> dict:
    cells = [
        sim_cell(trace=trace, scheme=scheme, scale=scale, seed=0,
                 **run_kwargs)
        for trace in TRACES
        for scheme in SCHEMES
    ]
    results = iter(run_sim_grid(cells, workers=workers))
    out = {}
    for trace in TRACES:
        for scheme in SCHEMES:
            result = next(results)
            records = [
                (r.job_id, r.size, r.arrival, r.start, r.end)
                for r in result.jobs
            ]
            digest = hashlib.sha256(
                json.dumps(records, sort_keys=True).encode()
            ).hexdigest()
            out[f"{trace}/{scheme}"] = {
                "jobs": len(result.jobs),
                "records_sha256": digest,
                "makespan": result.makespan,
                "steady_state_utilization": result.steady_state_utilization,
                "overall_utilization": result.overall_utilization,
                "alloc_attempts": result.alloc_attempts,
                "unscheduled": list(result.unscheduled),
                # Diagnostic counters (not decision keys; see above).
                "queue_prefiltered": result.queue_prefiltered,
                "size_cut_skips": result.size_cut_skips,
                "pass_vector_rounds": result.pass_vector_rounds,
            }
    return out


def selfcheck(scale: float, workers: int = 2) -> None:
    """Assert the serial and parallel fingerprints are identical."""
    serial = fingerprint(scale, workers=1)
    parallel = fingerprint(scale, workers=workers)
    mismatches = [key for key in serial if serial[key] != parallel.get(key)]
    if mismatches or serial.keys() != parallel.keys():
        for key in mismatches:
            print(f"MISMATCH {key}:")
            print(f"  serial:   {serial[key]}")
            print(f"  parallel: {parallel.get(key)}")
        raise SystemExit(
            f"serial vs {workers}-worker fingerprints differ "
            f"({len(mismatches)} of {len(serial)} runs)"
        )
    print(
        f"selfcheck ok: {len(serial)} fingerprints identical "
        f"(serial vs {workers} workers, scale {scale})"
    )


def _diff(label_a: str, a: dict, label_b: str, b: dict) -> int:
    """Print mismatching fingerprints; return the mismatch count."""
    mismatches = [key for key in a if a[key] != b.get(key)]
    mismatches += [key for key in b if key not in a]
    for key in mismatches:
        print(f"MISMATCH {key}:")
        print(f"  {label_a}: {a.get(key)}")
        print(f"  {label_b}: {b.get(key)}")
    return len(mismatches)


def vs_naive(scale: float) -> None:
    """Assert the indexed and naive allocator search paths decide
    identically — the decision-invariance contract of the incremental
    occupancy indexes, the bitset shape search and the cross-pass memo
    — in event-driven, batch-step and faulted replay."""
    variants = (
        ("event", {}),
        ("batch", dict(step_interval=300.0)),
        ("faulted", dict(
            mttf=20_000.0, fault_seed=1,
            fault_victim_policy="requeue-remaining",
            checkpoint_interval=600.0,
        )),
    )
    prev = os.environ.pop("REPRO_NAIVE_SEARCH", None)
    try:
        for label, kwargs in variants:
            os.environ.pop("REPRO_NAIVE_SEARCH", None)
            indexed = fingerprint(scale, **kwargs)
            os.environ["REPRO_NAIVE_SEARCH"] = "1"
            naive = fingerprint(scale, **kwargs)
            # Decision keys only: the naive paths disable the batch
            # screens, so the prefilter diagnostics legitimately differ.
            bad = _diff(
                f"indexed[{label}]", _decisions(indexed),
                f"naive[{label}]", _decisions(naive),
            )
            if bad:
                raise SystemExit(
                    f"indexed vs naive fingerprints differ "
                    f"({label}: {bad} of {len(indexed)} runs)"
                )
            print(
                f"vs-naive ok: {len(indexed)} fingerprints identical "
                f"({label} runs, indexed vs naive search, scale {scale})"
            )
    finally:
        if prev is None:
            os.environ.pop("REPRO_NAIVE_SEARCH", None)
        else:
            os.environ["REPRO_NAIVE_SEARCH"] = prev


def vs_scalar(scale: float) -> None:
    """Assert the vectorized and scalar scheduling passes decide
    identically — event-driven, batch-step and faulted replay."""
    variants = (
        ("event", {}),
        ("batch", dict(step_interval=300.0)),
        ("faulted", dict(
            mttf=20_000.0, fault_seed=1,
            fault_victim_policy="requeue-remaining",
            checkpoint_interval=600.0,
        )),
    )
    prev = os.environ.pop("REPRO_NAIVE_PASS", None)
    try:
        for label, kwargs in variants:
            os.environ.pop("REPRO_NAIVE_PASS", None)
            vector = _decisions(fingerprint(scale, **kwargs))
            os.environ["REPRO_NAIVE_PASS"] = "1"
            scalar = _decisions(fingerprint(scale, **kwargs))
            bad = _diff(
                f"vector[{label}]", vector, f"scalar[{label}]", scalar
            )
            if bad:
                raise SystemExit(
                    f"FINGERPRINTS-DIFFER: vector vs scalar pass "
                    f"({label}: {bad} of {len(vector)} runs)"
                )
            print(
                f"FINGERPRINTS-IDENTICAL ({len(vector)}/{len(vector)} "
                f"{label} runs, vector vs scalar pass, scale {scale})"
            )
    finally:
        if prev is None:
            os.environ.pop("REPRO_NAIVE_PASS", None)
        else:
            os.environ["REPRO_NAIVE_PASS"] = prev


def vs_scalar_events(scale: float) -> None:
    """Assert the columnar and one-event-at-a-time drains decide
    identically — event-driven, batch-step and faulted replay."""
    variants = (
        ("event", {}),
        ("batch", dict(step_interval=300.0)),
        ("faulted", dict(
            mttf=20_000.0, fault_seed=1,
            fault_victim_policy="requeue-remaining",
            checkpoint_interval=600.0,
        )),
    )
    prev = os.environ.pop("REPRO_NAIVE_EVENTS", None)
    try:
        for label, kwargs in variants:
            os.environ.pop("REPRO_NAIVE_EVENTS", None)
            columnar = _decisions(fingerprint(scale, **kwargs))
            os.environ["REPRO_NAIVE_EVENTS"] = "1"
            scalar = _decisions(fingerprint(scale, **kwargs))
            bad = _diff(
                f"columnar[{label}]", columnar,
                f"scalar-events[{label}]", scalar,
            )
            if bad:
                raise SystemExit(
                    f"FINGERPRINTS-DIFFER: columnar vs scalar events "
                    f"({label}: {bad} of {len(columnar)} runs)"
                )
            print(
                f"FINGERPRINTS-IDENTICAL ({len(columnar)}/{len(columnar)} "
                f"{label} runs, columnar vs scalar events, scale {scale})"
            )
    finally:
        if prev is None:
            os.environ.pop("REPRO_NAIVE_EVENTS", None)
        else:
            os.environ["REPRO_NAIVE_EVENTS"] = prev


def vs_obs(scale: float) -> None:
    """Assert that full telemetry changes no scheduling decision."""
    from repro.sched.log import ScheduleLog

    plain = fingerprint(scale)
    traced = fingerprint(
        scale, traced=True, sample_interval=1800.0, event_log=ScheduleLog()
    )
    bad = _diff("plain", plain, "traced", traced)
    if bad:
        raise SystemExit(
            f"plain vs traced fingerprints differ "
            f"({bad} of {len(plain)} runs)"
        )
    print(
        f"obs ok: {len(plain)} fingerprints identical "
        f"(telemetry off vs on, scale {scale})"
    )


def vs_prof(scale: float) -> None:
    """Assert that the stage profiler and provenance recording change
    no scheduling decision (the passivity contract of
    :mod:`repro.obs.prof` and the provenance columns)."""
    plain = fingerprint(scale)
    profiled = fingerprint(scale, profiled=True, provenance=True)
    bad = _diff("plain", _decisions(plain),
                "profiled", _decisions(profiled))
    if bad:
        raise SystemExit(
            f"FINGERPRINTS-DIFFER: plain vs profiled+provenance "
            f"({bad} of {len(plain)} runs)"
        )
    print(
        f"FINGERPRINTS-IDENTICAL ({len(plain)}/{len(plain)} runs, "
        f"profiler+provenance off vs on, scale {scale})"
    )


def vs_empty_faults(scale: float) -> None:
    """Assert an explicitly-empty fault timeline changes nothing."""
    from repro.sched.resilience import FaultTimeline

    plain = fingerprint(scale)
    empty = fingerprint(scale, fault_timeline=FaultTimeline())
    bad = _diff("plain", plain, "empty-timeline", empty)
    if bad:
        raise SystemExit(
            f"plain vs empty-timeline fingerprints differ "
            f"({bad} of {len(plain)} runs)"
        )
    print(
        f"empty-faults ok: {len(plain)} fingerprints identical "
        f"(no resilience vs empty timeline, scale {scale})"
    )


def faulted_selfcheck(scale: float, workers: int = 2) -> None:
    """Assert a seeded-MTTF faulted sweep is pool-invariant.

    The faulted runs also double as resilience accounting checks: the
    timeline must actually fire, and injects/repairs/goodput must agree
    between the serial and parallel runs (they are part of the
    fingerprint here).
    """
    kwargs = dict(
        mttf=20_000.0, fault_seed=1,
        fault_victim_policy="requeue-remaining", checkpoint_interval=600.0,
    )

    def faulted(n):
        out = {}
        cells = [
            sim_cell(trace=trace, scheme=scheme, scale=scale, seed=0,
                     **kwargs)
            for trace in TRACES
            for scheme in SCHEMES
        ]
        results = iter(run_sim_grid(cells, workers=n))
        for trace in TRACES:
            for scheme in SCHEMES:
                result = next(results)
                records = [
                    (r.job_id, r.size, r.arrival, r.start, r.end)
                    for r in result.jobs
                ]
                digest = hashlib.sha256(
                    json.dumps(records, sort_keys=True).encode()
                ).hexdigest()
                out[f"{trace}/{scheme}"] = {
                    "jobs": len(result.jobs),
                    "records_sha256": digest,
                    "makespan": result.makespan,
                    "faults_injected": result.faults_injected,
                    "faults_repaired": result.faults_repaired,
                    "resubmissions": result.resubmissions,
                    "wasted_node_seconds": result.wasted_node_seconds,
                    "degraded_node_seconds": result.degraded_node_seconds,
                }
        return out

    serial = faulted(1)
    parallel = faulted(workers)
    fired = sum(v["faults_injected"] for v in serial.values())
    if not fired:
        raise SystemExit("faulted selfcheck injected no faults — "
                         "the timeline never fired")
    bad = _diff("serial", serial, "parallel", parallel)
    if bad:
        raise SystemExit(
            f"serial vs {workers}-worker faulted fingerprints differ "
            f"({bad} of {len(serial)} runs)"
        )
    print(
        f"faults ok: {len(serial)} faulted fingerprints identical "
        f"({fired} faults fired; serial vs {workers} workers, "
        f"scale {scale})"
    )


def batch_selfcheck(
    scale: float, workers: int = 2, step_interval: float = 300.0
) -> None:
    """Assert batch-step fingerprints are serial/parallel invariant."""
    serial = fingerprint(scale, workers=1, step_interval=step_interval)
    parallel = fingerprint(
        scale, workers=workers, step_interval=step_interval
    )
    bad = _diff("serial", serial, "parallel", parallel)
    if bad:
        raise SystemExit(
            f"serial vs {workers}-worker batch-step fingerprints differ "
            f"({bad} of {len(serial)} runs)"
        )
    print(
        f"batch ok: {len(serial)} batch-step fingerprints identical "
        f"(dt={step_interval:g}s, serial vs {workers} workers, "
        f"scale {scale})"
    )


def compare(
    path: str, scale: float, workers: Optional[int], **run_kwargs
) -> None:
    """Fingerprint the current code and diff against a saved dump.

    Only the decision keys are compared (schema-tolerant: a dump
    written before a diagnostic counter existed still compares, and a
    newer dump's extra counters are ignored by older code).  Extra
    keyword arguments (e.g. ``profiled=True, provenance=True`` from
    ``--with-prof``) thread into the runs being fingerprinted.
    """
    with open(path) as fh:
        saved = json.load(fh)
    current = fingerprint(scale, workers=workers, **run_kwargs)
    bad = _diff("saved", _decisions(saved), "current", _decisions(current))
    if bad:
        raise SystemExit(
            f"FINGERPRINTS-DIFFER ({bad} of {len(current)} runs vs {path})"
        )
    print(f"FINGERPRINTS-IDENTICAL ({len(current)}/{len(current)} runs "
          f"vs {path})")


if __name__ == "__main__":
    scale = 0.02
    if "--scale" in sys.argv:
        scale = float(sys.argv[sys.argv.index("--scale") + 1])
    workers = None
    if "--workers" in sys.argv:
        workers = int(sys.argv[sys.argv.index("--workers") + 1])
    if "--selfcheck" in sys.argv:
        selfcheck(scale, workers=workers or 2)
        sys.exit(0)
    if "--vs-naive" in sys.argv:
        vs_naive(scale)
        sys.exit(0)
    if "--vs-scalar" in sys.argv:
        vs_scalar(scale)
        sys.exit(0)
    if "--vs-scalar-events" in sys.argv:
        vs_scalar_events(scale)
        sys.exit(0)
    if "--obs" in sys.argv:
        vs_obs(scale)
        sys.exit(0)
    if "--prof" in sys.argv:
        vs_prof(scale)
        sys.exit(0)
    if "--empty-faults" in sys.argv:
        vs_empty_faults(scale)
        sys.exit(0)
    if "--faults" in sys.argv:
        faulted_selfcheck(scale, workers=workers or 2)
        sys.exit(0)
    if "--batch" in sys.argv:
        batch_selfcheck(scale, workers=workers or 2)
        sys.exit(0)
    if "--compare" in sys.argv:
        extra = {}
        if "--with-prof" in sys.argv:
            extra = dict(profiled=True, provenance=True)
        compare(sys.argv[sys.argv.index("--compare") + 1], scale, workers,
                **extra)
        sys.exit(0)
    path = sys.argv[1]
    data = fingerprint(scale, workers=workers)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
    print(f"wrote {len(data)} fingerprints to {path}")
