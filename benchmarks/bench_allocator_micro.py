"""Micro-benchmarks: raw allocate/release cost per scheme.

Unlike the table/figure benches (one full simulation, ``rounds=1``),
these use pytest-benchmark's normal repeated timing: a cluster is
pre-filled to a steady-state-like occupancy, then one allocate/release
pair is timed.  This isolates Table 3's quantity — allocator cost — from
simulation overhead, and tracks regressions in the search code.
"""

import random

import pytest

from repro import FatTree, make_allocator

SIZES = [1, 3, 5, 8, 13, 20, 33, 48, 70]


def _prefill(allocator, occupancy: float, seed: int = 7):
    """Fill the cluster to roughly ``occupancy`` with a random job mix."""
    rng = random.Random(seed)
    total = allocator.tree.num_nodes
    jid = 0
    while allocator.free_nodes > (1 - occupancy) * total:
        jid += 1
        if allocator.allocate(jid, rng.choice(SIZES)) is None:
            break
    return jid


@pytest.mark.parametrize("scheme", ["baseline", "jigsaw", "laas", "ta", "lc+s"])
def bench_allocate_release(benchmark, scheme):
    tree = FatTree.from_radix(18)
    allocator = make_allocator(scheme, tree)
    _prefill(allocator, occupancy=0.85)
    job_id = [10**6]

    def one_cycle():
        job_id[0] += 1
        if allocator.allocate(job_id[0], 13) is not None:
            allocator.release(job_id[0])

    benchmark(one_cycle)


@pytest.mark.parametrize("radix", [16, 18, 22, 28])
def bench_jigsaw_by_cluster_size(benchmark, radix):
    """Jigsaw's scaling with cluster size (Table 3's size axis)."""
    tree = FatTree.from_radix(radix)
    allocator = make_allocator("jigsaw", tree)
    _prefill(allocator, occupancy=0.85)
    job_id = [10**6]

    def one_cycle():
        job_id[0] += 1
        if allocator.allocate(job_id[0], 2 * tree.m1 + 3) is not None:
            allocator.release(job_id[0])

    benchmark(one_cycle)
