"""Micro-benchmarks: raw allocate/release cost per scheme.

Unlike the table/figure benches (one full simulation, ``rounds=1``),
these use pytest-benchmark's normal repeated timing: a cluster is
pre-filled to a steady-state-like occupancy, then one allocate/release
pair is timed.  This isolates Table 3's quantity — allocator cost — from
simulation overhead, and tracks regressions in the search code.
"""

import random
import time

import pytest

from repro import FatTree, make_allocator
from repro.obs.bench import GATE_SCALE, environment, make_bench_result

SIZES = [1, 3, 5, 8, 13, 20, 33, 48, 70]

#: fixed timed-cycle count for the gate document (pytest-benchmark's
#: adaptive iteration counts are nondeterministic; the gate needs the
#: same work every run so its counters compare exactly)
GATE_CYCLES = 120


def _counters(allocator) -> str:
    """Search-effort and cache counters, one line per bench run."""
    s = allocator.stats
    return (
        f"pruned={s.pods_pruned} cand={s.candidate_hits} "
        f"memo={s.memo_hits} steps={s.backtrack_steps} "
        f"cache={s.cache_hits}/{s.cache_hits + s.cache_misses}"
    )


def _prefill(allocator, occupancy: float, seed: int = 7):
    """Fill the cluster to roughly ``occupancy`` with a random job mix."""
    rng = random.Random(seed)
    total = allocator.tree.num_nodes
    jid = 0
    while allocator.free_nodes > (1 - occupancy) * total:
        jid += 1
        if allocator.allocate(jid, rng.choice(SIZES)) is None:
            break
    return jid


def bench_payload(scale: float = GATE_SCALE) -> dict:
    """The ``BENCH_allocator_micro.json`` document: fixed-cycle
    allocate/release cost per scheme on a radix-18 cluster at 85%
    occupancy.  ``scale`` only labels the environment (the micro runs
    no trace); the cycle count is pinned at :data:`GATE_CYCLES`."""
    quantities, counters = {}, {}
    for scheme in ("baseline", "ta", "laas", "jigsaw", "lc+s"):
        tree = FatTree.from_radix(18)
        allocator = make_allocator(scheme, tree)
        _prefill(allocator, occupancy=0.85)
        job_id = [10**6]

        def one_cycle():
            job_id[0] += 1
            if allocator.allocate(job_id[0], 13) is not None:
                allocator.release(job_id[0])

        one_cycle()  # warm-up
        t0 = time.perf_counter()
        for _ in range(GATE_CYCLES):
            one_cycle()
        us = 1e6 * (time.perf_counter() - t0) / GATE_CYCLES
        quantities[f"us_per_cycle.{scheme}"] = {"value": us, "unit": "us"}
        s = allocator.stats
        counters[f"attempts.{scheme}"] = s.attempts
        counters[f"backtrack_steps.{scheme}"] = s.backtrack_steps
    return make_bench_result(
        "allocator_micro", quantities, counters,
        repetitions=GATE_CYCLES, env=environment(scale),
    )


@pytest.mark.parametrize("scheme", ["baseline", "jigsaw", "laas", "ta", "lc+s"])
def bench_allocate_release(benchmark, scheme):
    tree = FatTree.from_radix(18)
    allocator = make_allocator(scheme, tree)
    _prefill(allocator, occupancy=0.85)
    job_id = [10**6]

    def one_cycle():
        job_id[0] += 1
        if allocator.allocate(job_id[0], 13) is not None:
            allocator.release(job_id[0])

    benchmark(one_cycle)
    print(f"\n[{scheme}] search effort: {_counters(allocator)}")


@pytest.mark.parametrize("radix", [16, 18, 22, 28])
def bench_jigsaw_by_cluster_size(benchmark, radix):
    """Jigsaw's scaling with cluster size (Table 3's size axis)."""
    tree = FatTree.from_radix(radix)
    allocator = make_allocator("jigsaw", tree)
    _prefill(allocator, occupancy=0.85)
    job_id = [10**6]

    def one_cycle():
        job_id[0] += 1
        if allocator.allocate(job_id[0], 2 * tree.m1 + 3) is not None:
            allocator.release(job_id[0])

    benchmark(one_cycle)
    print(f"\n[jigsaw r{radix}] search effort: {_counters(allocator)}")


def bench_allocator_micro_summary(save_result, save_bench):
    """Indexed vs naive per-cycle cost, with the search-effort counters.

    Times one allocate/release cycle with ``perf_counter`` (the
    pytest-benchmark fixtures above track regressions; this one writes
    the committed before/after record) and saves it under
    ``benchmarks/results/allocator_micro.txt``.  Radix 28 is the paper's
    largest cluster (Synth-28).
    """
    lines = [
        "Allocator micro-benchmark: one allocate/release cycle at 85% "
        "occupancy,",
        "incremental occupancy indexes vs naive recompute-per-call "
        "search (us/cycle).",
        "Counters are the indexed run's totals (prefill + timed cycles).",
        "",
    ]
    for radix, schemes, cycles in (
        (18, ("baseline", "ta", "laas", "jigsaw", "lc+s"), 300),
        (28, ("jigsaw", "lc+s"), 60),
    ):
        for scheme in schemes:
            per_cycle = {}
            counters = ""
            for naive in (False, True):
                tree = FatTree.from_radix(radix)
                allocator = make_allocator(scheme, tree)
                if naive:
                    allocator.use_indexes = False
                _prefill(allocator, occupancy=0.85)
                size = 13 if radix == 18 else 2 * tree.m1 + 3
                job_id = [10**6]

                def one_cycle():
                    job_id[0] += 1
                    if allocator.allocate(job_id[0], size) is not None:
                        allocator.release(job_id[0])

                one_cycle()  # warm-up
                t0 = time.perf_counter()
                for _ in range(cycles):
                    one_cycle()
                per_cycle["naive" if naive else "indexed"] = (
                    1e6 * (time.perf_counter() - t0) / cycles
                )
                if not naive:
                    counters = _counters(allocator)
            speedup = (
                per_cycle["naive"] / per_cycle["indexed"]
                if per_cycle["indexed"]
                else float("inf")
            )
            lines.append(
                f"radix {radix:>2} {scheme:>8}: "
                f"indexed {per_cycle['indexed']:8.1f} us  "
                f"naive {per_cycle['naive']:8.1f} us  "
                f"({speedup:4.1f}x)  [{counters}]"
            )
    save_result("allocator_micro", "\n".join(lines))
    save_bench(bench_payload())
