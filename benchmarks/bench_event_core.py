"""Columnar event core on Synth-28, the release-path micro, radix-36 smoke.

Runs every scheme through both event drains on the same Synth-28
batch-step trace (step interval 300 s) — the columnar drain (the
default) and its scalar twin (``use_columnar_events=False``) — and
tabulates end-to-end wall ms/job (best of ``REPEATS`` deterministic
runs) plus the decision invariants (identical placements, identical
charged attempts).  Peak RSS is measured for the headline scheme by
running each variant in a fresh subprocess (``ru_maxrss`` is
process-wide and monotone, so in-process cells cannot be told apart).

Where the speed target lives: on this trace the allocator *search*
dominates wall time (cProfile: ~95% of a jigsaw batch run is inside
``allocate``; the whole scalar drain is ~4%), and the search is
decision-identical by construction — so no end-to-end multiple is
achievable from event handling alone, whatever the drain costs.  The
table therefore carries a no-regression floor end-to-end, and the
>= 1.3x target is asserted where the batched path actually does the
work: the release path itself, ``Allocator.release_many`` against N
sequential ``release`` calls on a fully packed radix-28 machine.

Then the new radix-36 preset (11664 nodes, the maximal tree a
radix-36 switch supports) gets a bounded smoke run: Synth-36 under
jigsaw on the columnar drain must drain its queue.
"""

import resource
import subprocess
import sys
import time

from repro.core.registry import make_allocator
from repro.experiments.grid import run_grid, setup_for, sim_cell
from repro.experiments.report import render_table
from repro.obs.bench import GATE_SCALE, environment, make_bench_result
from repro.topology.fattree import FatTree

TRACE = "Synth-28"
SCALE_TRACE = "Synth-36"
SMOKE_SCHEME = "jigsaw"
SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
STEP = 300.0

#: end-to-end wall time must not regress (with CI head-room): the drain
#: is ~4% of a batch round's wall time, so the honest end-to-end check
#: is "no slower", not a multiple
NO_REGRESSION = 0.85

#: the batched release path itself must beat N scalar releases by this
MIN_RELEASE_SPEEDUP = 1.3

#: wall time per configuration is the best of this many runs (the runs
#: are deterministic, so repeats only strip scheduler/OS noise)
REPEATS = 2

_RSS_CHILD = """\
import resource
from repro.experiments.grid import run_grid, sim_cell
run_grid([sim_cell(trace={trace!r}, scheme={scheme!r}, scale={scale!r},
                   seed=0, step_interval={step!r},
                   use_columnar_events={columnar!r})])
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def event_core(scale=None, seed=0, workers=None):
    """(scheme -> row) wall-time table for columnar vs scalar drains."""
    setup_for(TRACE, scale=scale, seed=seed)
    cells = []
    for scheme in SCHEMES:
        for _ in range(REPEATS):
            cells.append(sim_cell(trace=TRACE, scheme=scheme, scale=scale,
                                  seed=seed, step_interval=STEP))
            cells.append(sim_cell(trace=TRACE, scheme=scheme, scale=scale,
                                  seed=seed, step_interval=STEP,
                                  use_columnar_events=False))
    outcomes = iter(run_grid(cells, workers=workers))
    rows = {}
    for scheme in SCHEMES:
        col_outs, sca_outs = [], []
        for _ in range(REPEATS):
            col_outs.append(next(outcomes))
            sca_outs.append(next(outcomes))
        col, sca = col_outs[0].value, sca_outs[0].value
        jobs = len(col.jobs) or 1
        co_ms = min(o.wall_seconds for o in col_outs) * 1e3 / jobs
        sc_ms = min(o.wall_seconds for o in sca_outs) * 1e3 / jobs
        rows[scheme] = {
            "util%": col.steady_state_utilization,
            "ms/job": f"{sc_ms:.3f}->{co_ms:.3f}",
            "speedup": sc_ms / co_ms if co_ms else float("inf"),
            "attempts": col.alloc_attempts,
            "resub": col.resubmissions,
            "_col": col,
            "_sca": sca,
        }
    return rows


def peak_rss(scale=None):
    """Peak RSS (MB) per drain for the headline scheme, in fresh
    subprocesses so the two variants do not share a high-water mark."""
    out = {}
    for label, columnar in (("scalar", False), ("columnar", True)):
        code = _RSS_CHILD.format(trace=TRACE, scheme=SMOKE_SCHEME,
                                 scale=scale, step=STEP, columnar=columnar)
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, check=True)
        kb = int(proc.stdout.strip().splitlines()[-1])
        out[label] = {"peak RSS MB": f"{kb / 1024:.1f}"}
    return out


def release_micro():
    """Bulk vs sequential release on a fully packed radix-28 machine.

    Packs the 5488-node cluster with size-28 jigsaw jobs, then frees
    every one of them — once with N ``release`` calls, once with one
    ``release_many`` — and times the freeing alone (best of REPEATS).
    """
    def packed():
        alloc = make_allocator(SMOKE_SCHEME, FatTree.from_radix(28))
        job_id = 0
        while True:
            job_id += 1
            if alloc.allocate(job_id, 28) is None:
                return alloc, list(range(1, job_id))

    seq = bulk = float("inf")
    jobs = 0
    for _ in range(REPEATS):
        alloc, ids = packed()
        jobs = len(ids)
        t0 = time.perf_counter()
        for job_id in ids:
            alloc.release(job_id)
        seq = min(seq, time.perf_counter() - t0)
        assert alloc.state.is_idle()

        alloc, ids = packed()
        t0 = time.perf_counter()
        alloc.release_many(ids)
        bulk = min(bulk, time.perf_counter() - t0)
        assert alloc.state.is_idle()
        alloc.state.audit()
    return {
        "jobs": jobs,
        "sequential ms": f"{seq * 1e3:.2f}",
        "bulk ms": f"{bulk * 1e3:.2f}",
        "speedup": seq / bulk if bulk else float("inf"),
    }


def scale_smoke(scale=None, seed=0):
    """One bounded radix-36 run (11664 nodes) on the columnar drain."""
    setup = setup_for(SCALE_TRACE, scale=scale, seed=seed)
    outcome = run_grid([
        sim_cell(trace=SCALE_TRACE, scheme=SMOKE_SCHEME, scale=scale,
                 seed=seed),
    ])[0]
    result = outcome.value
    jobs = len(result.jobs) or 1
    return {
        "nodes": setup.tree.num_nodes,
        "jobs": jobs,
        "wall s": f"{outcome.wall_seconds:.2f}",
        "ms/job": f"{outcome.wall_seconds * 1e3 / jobs:.3f}",
        "util%": result.steady_state_utilization,
        "unscheduled": len(result.unscheduled),
        "_result": result,
    }


def event_core_suite(scale=None, seed=0, workers=None):
    """All four measurements, in one timed unit."""
    return (event_core(scale=scale, seed=seed, workers=workers),
            peak_rss(scale=scale), release_micro(),
            scale_smoke(scale=scale, seed=seed))


def render(rows, rss, micro, smoke):
    visible = {
        scheme: {k: v for k, v in row.items() if not k.startswith("_")}
        for scheme, row in rows.items()
    }
    main = render_table(
        f"Columnar event core: {TRACE}, batch step {STEP:.0f}s, scalar "
        "twin vs columnar (wall ms/job)",
        visible,
        ("util%", "ms/job", "speedup", "attempts", "resub"),
        row_header="scheme",
    )
    rss_tbl = render_table(
        f"Peak RSS, {SMOKE_SCHEME} on {TRACE} (fresh subprocess per "
        "variant)",
        rss, ("peak RSS MB",), row_header="drain",
    )
    micro_tbl = render_table(
        "Release path: one release_many vs N sequential releases "
        f"(packed radix-28, {SMOKE_SCHEME})",
        {"release": micro},
        ("jobs", "sequential ms", "bulk ms", "speedup"),
        row_header="path",
    )
    smoke_tbl = render_table(
        f"Radix-36 scale-up smoke: {SCALE_TRACE} "
        f"({smoke['nodes']} nodes), columnar drain",
        {SMOKE_SCHEME: {k: v for k, v in smoke.items()
                        if not k.startswith("_")}},
        ("nodes", "jobs", "wall s", "ms/job", "util%", "unscheduled"),
        row_header="scheme",
    )
    return "\n\n".join((main, rss_tbl, micro_tbl, smoke_tbl))


def bench_payload(scale: float = GATE_SCALE, seed: int = 0) -> dict:
    """The ``BENCH_event_core.json`` document: columnar vs scalar event
    drain on the gate slice (Synth-28 under jigsaw, batch step 300s)."""
    setup_for(TRACE, scale=scale, seed=seed)
    col_out, sca_out = run_grid([
        sim_cell(trace=TRACE, scheme=SMOKE_SCHEME, scale=scale, seed=seed,
                 step_interval=STEP),
        sim_cell(trace=TRACE, scheme=SMOKE_SCHEME, scale=scale, seed=seed,
                 step_interval=STEP, use_columnar_events=False),
    ])
    col, sca = col_out.value, sca_out.value
    jobs = len(col.jobs) or 1
    quantities = {
        "columnar_ms_per_job": {
            "value": col_out.wall_seconds * 1e3 / jobs, "unit": "ms"},
        "scalar_ms_per_job": {
            "value": sca_out.wall_seconds * 1e3 / jobs, "unit": "ms"},
    }
    counters = {
        "alloc_attempts": col.alloc_attempts,
        "scheduling_rounds": col.scheduling_rounds,
        "jobs": jobs,
        "unscheduled": len(col.unscheduled),
    }
    return make_bench_result(
        "event_core", quantities, counters, env=environment(scale),
    )


def bench_event_core(benchmark, save_result, save_bench, scale):
    rows, rss, micro, smoke = benchmark.pedantic(
        lambda: event_core_suite(scale=scale), rounds=1, iterations=1
    )
    save_result("event_core", render(rows, rss, micro, smoke))

    for scheme, row in rows.items():
        col, sca = row["_col"], row["_sca"]
        # Decision invariance: the columnar drain changes bookkeeping
        # cost, never outcomes — same placements, same charged attempts,
        # same leftovers, bit-identical utilization areas.
        assert [(j.job_id, j.start, j.end) for j in col.jobs] == [
            (j.job_id, j.start, j.end) for j in sca.jobs
        ], scheme
        assert col.alloc_attempts == sca.alloc_attempts, scheme
        assert col.unscheduled == sca.unscheduled, scheme
        assert col.busy_area == sca.busy_area, scheme
        assert col.instant.counts == sca.instant.counts, scheme
        # End-to-end no-regression floor (search-bound; see docstring).
        assert row["speedup"] >= NO_REGRESSION, (scheme, row["speedup"])

    # The batched release path is where the speed target lives.
    assert micro["speedup"] >= MIN_RELEASE_SPEEDUP, micro

    # Radix-36 smoke: the 11664-node preset drains its queue.
    assert not smoke["_result"].unscheduled, smoke["_result"].unscheduled

    save_bench(bench_payload())
