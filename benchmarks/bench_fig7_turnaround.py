"""Regenerate Figure 7: normalized turnaround on Aug-Cab and Oct-Cab.

Shape targets: under the 10 % and 20 % speed-up scenarios Jigsaw's
all-job turnaround beats Baseline (ratio < 1); TA is the worst isolating
scheme in every scenario; LaaS sits between TA and Jigsaw.
"""

from repro.experiments import fig7


def bench_fig7(benchmark, save_result, scale):
    results = benchmark.pedantic(
        lambda: fig7.fig7_turnaround(scale=scale), rounds=1, iterations=1
    )
    save_result("fig7_turnaround", fig7.render(results))

    for trace, by_scenario in results.items():
        for scenario in ("10%", "20%"):
            row = by_scenario[scenario]
            assert row["jigsaw"] < 1.0, (trace, scenario, row)
            assert row["jigsaw"] <= row["laas"] + 0.02, (trace, scenario, row)
            assert row["jigsaw"] <= row["ta"] + 0.02, (trace, scenario, row)
