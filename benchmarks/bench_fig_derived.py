"""Extension bench: scenario-free (derived-interference) comparison.

The paper's conclusion — isolating schedulers beat traditional
scheduling once interference is accounted for, and Jigsaw leads among
them — asserted with the contention penalty *derived* by the runtime
model instead of assumed by a scenario."""

from repro.core.registry import make_allocator
from repro.experiments.report import render_table
from repro.sched.interference import ContentionRuntimeModel
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree
from repro.traces import synthetic_trace

SCHEMES = ("baseline", "jigsaw", "laas", "ta")


def bench_derived_interference(benchmark, save_result, scale):
    def run():
        tree = FatTree.from_radix(8)
        trace = synthetic_trace(6, num_jobs=600, seed=1,
                                max_size=tree.num_nodes)
        results = {}
        for scheme in SCHEMES:
            model = ContentionRuntimeModel(tree, alpha=0.3, seed=0)
            sim = Simulator(make_allocator(scheme, tree), runtime_model=model)
            results[scheme] = sim.run(trace)
        base = results["baseline"]
        return {
            scheme: {
                "utilization %": r.steady_state_utilization,
                "turnaround ratio": r.mean_turnaround / base.mean_turnaround,
                "makespan ratio": r.makespan / base.makespan,
            }
            for scheme, r in results.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "fig_derived",
        render_table(
            "Derived-interference comparison (no assumed scenarios)",
            rows,
            ["utilization %", "turnaround ratio", "makespan ratio"],
            row_header="Scheme",
        ),
    )
    for scheme in ("jigsaw", "laas", "ta"):
        assert rows[scheme]["turnaround ratio"] < 1.0, rows
        assert rows[scheme]["makespan ratio"] < 1.0, rows
    assert rows["jigsaw"]["turnaround ratio"] <= rows["ta"]["turnaround ratio"]
