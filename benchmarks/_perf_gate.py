"""CI perf gate: compare fresh BENCH documents against committed baselines.

Usage::

    PYTHONPATH=src python benchmarks/_perf_gate.py             # gate
    PYTHONPATH=src python benchmarks/_perf_gate.py --update    # refresh
    PYTHONPATH=src python benchmarks/_perf_gate.py --selftest  # negative test
    PYTHONPATH=src python benchmarks/_perf_gate.py --only pass_scale

Each gated benchmark module exposes a ``bench_payload()`` producing one
schema-conforming ``BENCH_<name>.json`` document (see
:mod:`repro.obs.bench`) at the pinned gate scale.  The gate runs every
payload and compares it against the committed baseline under
``benchmarks/results/``:

* **counters** (deterministic work proxies) must match exactly — a
  changed counter is a behavioral change, not machine noise, and fails
  the gate even on a fast machine;
* **wall-time quantities** fail one-sided when the current run exceeds
  the baseline by more than the tolerance (default 3x: CI machines are
  slow and shared, so the gate catches catastrophic regressions, not
  single-digit percentages).

``--update`` rewrites the baselines (commit the result when a counter
change is intentional).  ``--selftest`` injects a synthetic regression
into a fresh document (10x wall time, one perturbed counter) and exits
non-zero unless the comparator flags both — the gate gating itself.
"""

from __future__ import annotations

import importlib
import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
RESULTS_DIR = HERE / "results"

#: gated benchmark modules (each exposes ``bench_payload() -> dict``)
GATED = (
    "bench_table3_schedtime",
    "bench_allocator_micro",
    "bench_pass_scale",
    "bench_event_core",
)


def _payloads(only=None):
    sys.path.insert(0, str(HERE))
    try:
        for mod_name in GATED:
            module = importlib.import_module(mod_name)
            doc = module.bench_payload()
            if only is not None and doc["name"] != only:
                continue
            yield doc
    finally:
        sys.path.remove(str(HERE))


def update(only=None) -> int:
    from repro.obs.bench import write_bench_json

    RESULTS_DIR.mkdir(exist_ok=True)
    count = 0
    for doc in _payloads(only):
        path = RESULTS_DIR / f"BENCH_{doc['name']}.json"
        write_bench_json(doc, path)
        print(f"wrote {path}")
        count += 1
    if not count:
        print(f"no gated benchmark named {only!r}", file=sys.stderr)
        return 2
    return 0


def gate(only=None, wall_tolerance: float | None = None) -> int:
    from repro.obs.bench import (
        GATE_SCALE,
        WALL_TOLERANCE,
        compare_bench,
        load_bench_json,
    )

    tol = WALL_TOLERANCE if wall_tolerance is None else wall_tolerance
    failed = 0
    seen = 0
    for doc in _payloads(only):
        seen += 1
        name = doc["name"]
        path = RESULTS_DIR / f"BENCH_{name}.json"
        if not path.exists():
            print(f"FAIL {name}: no committed baseline at {path} "
                  "(run --update and commit it)")
            failed += 1
            continue
        baseline = load_bench_json(path)
        b_scale = baseline.get("environment", {}).get("scale")
        if b_scale != GATE_SCALE:
            print(f"FAIL {name}: baseline captured at scale {b_scale}, "
                  f"gate runs at {GATE_SCALE} — refresh with --update")
            failed += 1
            continue
        verdict = compare_bench(baseline, doc, wall_tolerance=tol)
        for note in verdict["notes"]:
            print(f"note {name}: {note}")
        if verdict["ok"]:
            print(f"ok   {name}: counters exact, wall within "
                  f"{tol:.0%} of baseline")
        else:
            for failure in verdict["failures"]:
                print(f"FAIL {name}: {failure}")
            failed += 1
    if not seen:
        print(f"no gated benchmark named {only!r}", file=sys.stderr)
        return 2
    if failed:
        print(f"\nPERF-GATE-FAILED ({failed} of {seen} benchmarks)")
        return 1
    print(f"\nPERF-GATE-OK ({seen} benchmarks)")
    return 0


def selftest() -> int:
    """Inject a synthetic regression and assert the comparator sees it."""
    from repro.obs.bench import compare_bench

    sys.path.insert(0, str(HERE))
    try:
        module = importlib.import_module("bench_allocator_micro")
    finally:
        sys.path.remove(str(HERE))
    baseline = module.bench_payload()

    regressed = json.loads(json.dumps(baseline))  # deep copy
    wall_label = next(iter(regressed["quantities"]))
    regressed["quantities"][wall_label]["value"] *= 10.0
    counter_label = next(iter(regressed["counters"]))
    regressed["counters"][counter_label] += 1

    verdict = compare_bench(baseline, regressed)
    wall_hit = any(wall_label in f for f in verdict["failures"])
    counter_hit = any(counter_label in f for f in verdict["failures"])
    if verdict["ok"] or not wall_hit or not counter_hit:
        print("SELFTEST-FAILED: injected regression not detected:")
        print(json.dumps(verdict, indent=2))
        return 1

    clean = compare_bench(baseline, json.loads(json.dumps(baseline)))
    if not clean["ok"]:
        print("SELFTEST-FAILED: identical documents did not compare clean:")
        print(json.dumps(clean, indent=2))
        return 1
    print("SELFTEST-OK: injected 10x wall regression and counter drift "
          "both detected; identical documents compare clean")
    return 0


if __name__ == "__main__":
    only = None
    if "--only" in sys.argv:
        only = sys.argv[sys.argv.index("--only") + 1]
    if "--selftest" in sys.argv:
        sys.exit(selftest())
    if "--update" in sys.argv:
        sys.exit(update(only))
    tol = None
    if "--wall-tolerance" in sys.argv:
        tol = float(sys.argv[sys.argv.index("--wall-tolerance") + 1])
    sys.exit(gate(only, wall_tolerance=tol))
