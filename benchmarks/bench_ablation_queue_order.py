"""Ablation A5 (extension): queue-ordering policy under Jigsaw.

The paper fixes FIFO (+EASY).  Classic priority orders shift the
utilization/fairness trade-off: SJF minimizes mean turnaround and
bounded slowdown, largest-first feeds Jigsaw's three-level allocator a
clean fabric (raising utilization and large-job service) while starving
everyone else."""

from repro.experiments.report import render_table
from repro.experiments.runner import paper_setup
from repro.core.registry import make_allocator
from repro.sched.simulator import Simulator

ORDERS = ("fifo", "sjf", "smallest", "largest")


def bench_queue_order(benchmark, save_result, scale):
    def run():
        setup = paper_setup("Synth-16", scale=scale)
        rows = {}
        for order in ORDERS:
            sim = Simulator(
                make_allocator("jigsaw", setup.tree), queue_order=order
            )
            result = sim.run(setup.trace)
            rows[order] = {
                "utilization %": result.steady_state_utilization,
                "mean turnaround s": result.mean_turnaround,
                "bounded slowdown": result.mean_bounded_slowdown(),
                "large-job turnaround s": result.mean_turnaround_large,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_queue_order",
        render_table(
            "Ablation: queue order under Jigsaw (Synth-16)",
            rows,
            ["utilization %", "mean turnaround s", "bounded slowdown",
             "large-job turnaround s"],
            row_header="Order",
        ),
    )
    assert rows["sjf"]["bounded slowdown"] < rows["fifo"]["bounded slowdown"]
    assert (
        rows["largest"]["large-job turnaround s"]
        < rows["fifo"]["large-job turnaround s"]
    )
