"""Ablation A5 (extension): queue-ordering policy under Jigsaw.

The paper fixes FIFO (+EASY).  Classic priority orders shift the
utilization/fairness trade-off: SJF minimizes mean turnaround and
bounded slowdown, largest-first feeds Jigsaw's three-level allocator a
clean fabric (raising utilization and large-job service) while starving
everyone else."""

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

ORDERS = ("fifo", "sjf", "smallest", "largest")


def bench_queue_order(benchmark, save_result, scale):
    def run():
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=scale,
                     queue_order=order)
            for order in ORDERS
        ]
        results = run_sim_grid(cells)
        return {
            order: {
                "utilization %": result.steady_state_utilization,
                "mean turnaround s": result.mean_turnaround,
                "bounded slowdown": result.mean_bounded_slowdown(),
                "large-job turnaround s": result.mean_turnaround_large,
            }
            for order, result in zip(ORDERS, results)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_queue_order",
        render_table(
            "Ablation: queue order under Jigsaw (Synth-16)",
            rows,
            ["utilization %", "mean turnaround s", "bounded slowdown",
             "large-job turnaround s"],
            row_header="Order",
        ),
    )
    assert rows["sjf"]["bounded slowdown"] < rows["fifo"]["bounded slowdown"]
    assert (
        rows["largest"]["large-job turnaround s"]
        < rows["fifo"]["large-job turnaround s"]
    )
