"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper at
a scaled job count (see DESIGN.md section 7), prints it, and saves the
rendered text under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table and echo it to the terminal."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to benchmarks/results/{name}.txt]")

    return _save


@pytest.fixture(scope="session")
def save_bench():
    """Persist a machine-readable ``BENCH_<name>.json`` document.

    Gated benches produce these at the pinned gate scale (see
    :mod:`repro.obs.bench`); ``benchmarks/_perf_gate.py`` compares the
    committed copies against fresh runs in CI.
    """
    from repro.obs.bench import write_bench_json

    def _save(doc: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{doc['name']}.json"
        write_bench_json(doc, path)
        print(f"[saved to benchmarks/results/{path.name}]")

    return _save


@pytest.fixture(scope="session")
def scale():
    """Job-count scale: None = bench defaults, REPRO_SCALE/FULL overrides."""
    from repro.experiments.runner import default_scale

    return default_scale()
