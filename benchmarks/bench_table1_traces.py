"""Regenerate Table 1: characteristics of the job-queue traces."""

from repro.experiments import table1


def bench_table1(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: table1.table1_traces(scale=scale), rounds=1, iterations=1
    )
    save_result("table1_traces", table1.render(rows))
    assert set(rows) == {
        "Synth-16", "Synth-22", "Synth-28", "Thunder", "Atlas",
        "Aug-Cab", "Sep-Cab", "Oct-Cab", "Nov-Cab",
    }
    # Every trace contains single-node jobs and respects Table 1's maxima.
    for name, row in rows.items():
        assert row["Max job nodes"] <= 1024 or name == "Atlas"
