"""Ablation A2: backfill window and reservation policy.

The paper fixes EASY with a window of 50 (section 5.4.3).  This bench
shows what that choice is worth: pure FIFO collapses utilization for
every scheme, the window's marginal value flattens past ~50, and the
reservation policy (how the head's shadow time is maintained under a
constrained allocator) trades large-job starvation against drains.
"""

from repro.experiments.grid import run_sim_grid, sim_cell
from repro.experiments.report import render_table

WINDOWS = (0, 1, 10, 50, 200)
POLICIES = ("renew", "sticky", "slip")


def bench_backfill_window(benchmark, save_result, scale):
    def run():
        labels = [f"window={w}" for w in WINDOWS] + [
            f"policy={p}" for p in POLICIES
        ]
        cells = [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=scale,
                     backfill_window=window)
            for window in WINDOWS
        ] + [
            sim_cell(trace="Synth-16", scheme="jigsaw", scale=scale,
                     reservation_policy=policy)
            for policy in POLICIES
        ]
        results = run_sim_grid(cells)
        return {
            label: {
                "utilization %": result.steady_state_utilization,
                "mean turnaround s": result.mean_turnaround,
            }
            for label, result in zip(labels, results)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_backfill",
        render_table(
            "Ablation: EASY backfill window and reservation policy (Jigsaw, Synth-16)",
            rows,
            ["utilization %", "mean turnaround s"],
            row_header="Variant",
        ),
    )
    assert rows["window=0"]["utilization %"] < rows["window=50"]["utilization %"]
    assert rows["window=1"]["utilization %"] < rows["window=50"]["utilization %"]
