"""Ablation A2: backfill window and reservation policy.

The paper fixes EASY with a window of 50 (section 5.4.3).  This bench
shows what that choice is worth: pure FIFO collapses utilization for
every scheme, the window's marginal value flattens past ~50, and the
reservation policy (how the head's shadow time is maintained under a
constrained allocator) trades large-job starvation against drains.
"""

from repro.experiments.report import render_table
from repro.experiments.runner import paper_setup, run_scheme


def bench_backfill_window(benchmark, save_result, scale):
    def run():
        setup = paper_setup("Synth-16", scale=scale)
        rows = {}
        for window in (0, 1, 10, 50, 200):
            result = run_scheme(setup, "jigsaw", backfill_window=window)
            rows[f"window={window}"] = {
                "utilization %": result.steady_state_utilization,
                "mean turnaround s": result.mean_turnaround,
            }
        for policy in ("renew", "sticky", "slip"):
            result = run_scheme(setup, "jigsaw", reservation_policy=policy)
            rows[f"policy={policy}"] = {
                "utilization %": result.steady_state_utilization,
                "mean turnaround s": result.mean_turnaround,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_backfill",
        render_table(
            "Ablation: EASY backfill window and reservation policy (Jigsaw, Synth-16)",
            rows,
            ["utilization %", "mean turnaround s"],
            row_header="Variant",
        ),
    )
    assert rows["window=0"]["utilization %"] < rows["window=50"]["utilization %"]
    assert rows["window=1"]["utilization %"] < rows["window=50"]["utilization %"]
