"""Validate the telemetry artifacts a traced simulation emits.

Usage::

    PYTHONPATH=src python benchmarks/_check_obs_schema.py \
        [--trace t.json] [--samples s.jsonl] [--metrics m.prom]

Each given file is checked against its format contract (hand-rolled —
no external schema libraries):

* ``--trace`` — Chrome ``trace_event`` JSON: a ``traceEvents`` list of
  objects with ``name``/``ph``/``ts``/``pid``/``tid``; ``"X"`` events
  carry a non-negative ``dur``; span names come from the documented
  taxonomy (``docs/observability.md``).
* ``--samples`` — time-series JSONL: every line a JSON object carrying
  every field of :data:`repro.obs.sampler.ROW_FIELDS` with sane types
  and monotonically non-decreasing ``t`` per (trace, scheme) stream.
* ``--metrics`` — Prometheus text exposition 0.0.4: ``# HELP``/
  ``# TYPE`` pairs, valid metric/label names, parseable values, and
  histogram ``_bucket`` series cumulative in ``le``.
* ``--bench`` — a ``BENCH_<name>.json`` document against the
  ``repro.bench/v1`` schema (:mod:`repro.obs.bench`): quantities carry
  value/unit, counters are non-negative ints, the environment records
  interpreter/platform/scale.
* ``--provenance`` — per-job scheduling-provenance JSONL
  (:mod:`repro.sched.metrics`): every line carries the full column
  catalog, skip counts never exceed attempts, started jobs carry
  consistent start/end/wait, unstarted jobs carry none.

Exits non-zero with a per-file error listing on any violation.
"""

from __future__ import annotations

import json
import math
import re
import sys
from typing import Dict, List, Tuple

#: the span/instant names the instrumentation may emit
KNOWN_SPANS = {
    "sched.pass", "sched.round", "backfill.window", "alloc.search",
    "grid.cell", "netsim.converge",
}
KNOWN_INSTANTS = {
    "sched.start", "sched.complete", "sched.kill",
    "fault.inject", "fault.repair",
}

_METRIC_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
_LABEL_PAIR = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def check_trace(path: str) -> List[str]:
    errors: List[str] = []
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: no traceEvents list"]
    if not events:
        errors.append(f"{path}: traceEvents is empty")
    seen_names = set()
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                errors.append(f"{where}: missing {key!r}")
        ph = e.get("ph")
        if ph not in ("X", "i"):
            errors.append(f"{where}: unexpected phase {ph!r}")
        if ph == "X" and not (
            isinstance(e.get("dur"), (int, float)) and e["dur"] >= 0
        ):
            errors.append(f"{where}: 'X' event needs non-negative dur")
        ts = e.get("ts")
        if not (isinstance(ts, (int, float)) and ts >= 0):
            errors.append(f"{where}: bad ts {ts!r}")
        name = e.get("name")
        known = KNOWN_SPANS if ph == "X" else KNOWN_INSTANTS
        if name not in known:
            errors.append(f"{where}: unknown {'span' if ph == 'X' else 'instant'} name {name!r}")
        seen_names.add(name)
    return errors


def check_samples(path: str) -> List[str]:
    from repro.obs.sampler import ROW_FIELDS

    errors: List[str] = []
    last_t: Dict[Tuple[str, str], float] = {}
    count = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            where = f"{path}:{lineno}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: not JSON ({exc})")
                continue
            for field in ROW_FIELDS:
                if field not in row:
                    errors.append(f"{where}: missing {field!r}")
            util = row.get("util_pct")
            if not (
                isinstance(util, (int, float)) and 0.0 <= util <= 100.0
            ):
                errors.append(f"{where}: util_pct {util!r} outside [0, 100]")
            for field in ("queue_depth", "running_jobs", "free_nodes",
                          "fully_free_leaves", "shard_free_nodes",
                          "padding_nodes", "degraded_nodes"):
                v = row.get(field)
                if not (isinstance(v, int) and v >= 0):
                    errors.append(f"{where}: {field} {v!r} not a non-negative int")
            lag = row.get("step_lag")
            if not (isinstance(lag, (int, float)) and lag >= 0.0):
                errors.append(
                    f"{where}: step_lag {lag!r} not a non-negative number"
                )
            stream = (str(row.get("trace", "")), str(row.get("scheme", "")))
            t = row.get("t")
            if isinstance(t, (int, float)):
                if stream in last_t and t < last_t[stream]:
                    errors.append(
                        f"{where}: t {t} went backwards within stream {stream}"
                    )
                last_t[stream] = t
            else:
                errors.append(f"{where}: bad t {t!r}")
    if count == 0:
        errors.append(f"{path}: no sample rows")
    return errors


def check_metrics(path: str) -> List[str]:
    errors: List[str] = []
    helped, typed = set(), {}
    buckets: Dict[str, List[Tuple[float, float]]] = {}
    samples = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            where = f"{path}:{lineno}"
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    errors.append(f"{where}: malformed TYPE line")
                else:
                    typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            m = _METRIC_LINE.match(line)
            if m is None:
                errors.append(f"{where}: unparseable sample line {line!r}")
                continue
            samples += 1
            labels = {}
            raw = m.group("labels")
            if raw:
                for pair in _split_labels(raw):
                    pm = _LABEL_PAIR.match(pair)
                    if pm is None:
                        errors.append(f"{where}: bad label pair {pair!r}")
                    else:
                        labels[pm.group(1)] = pm.group(2)
            try:
                value = float(m.group("value"))
            except ValueError:
                errors.append(f"{where}: bad value {m.group('value')!r}")
                continue
            name = m.group("name")
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and name[: -len(suffix)] in typed:
                    base = name[: -len(suffix)]
            if base not in typed:
                errors.append(f"{where}: sample {name!r} has no # TYPE")
            if base not in helped:
                errors.append(f"{where}: sample {name!r} has no # HELP")
            if typed.get(base) == "counter" and base == name and (
                value < 0 or math.isnan(value)
            ):
                errors.append(f"{where}: counter {name!r} value {value}")
            if name.endswith("_bucket") and "le" in labels:
                le = (
                    math.inf if labels["le"] == "+Inf" else float(labels["le"])
                )
                key = name + json.dumps(
                    {k: v for k, v in sorted(labels.items()) if k != "le"}
                )
                buckets.setdefault(key, []).append((le, value))
    for key, series in buckets.items():
        series.sort()
        if series[-1][0] != math.inf:
            errors.append(f"{path}: {key}: no +Inf bucket")
        counts = [c for _, c in series]
        if counts != sorted(counts):
            errors.append(f"{path}: {key}: buckets not cumulative")
    if samples == 0:
        errors.append(f"{path}: no metric samples")
    return errors


def check_bench(path: str) -> List[str]:
    errors: List[str] = []
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            return [f"{path}: not JSON ({exc})"]
    if not isinstance(doc, dict):
        return [f"{path}: not a JSON object"]
    if doc.get("schema") != "repro.bench/v1":
        errors.append(f"{path}: schema {doc.get('schema')!r} != "
                      "'repro.bench/v1'")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        errors.append(f"{path}: missing or empty name")
    reps = doc.get("repetitions")
    if not isinstance(reps, int) or isinstance(reps, bool) or reps < 1:
        errors.append(f"{path}: repetitions {reps!r} not a positive int")
    quantities = doc.get("quantities")
    if not isinstance(quantities, dict) or not quantities:
        errors.append(f"{path}: quantities missing or empty")
    else:
        for label, q in quantities.items():
            where = f"{path}: quantities[{label!r}]"
            if not isinstance(q, dict) or set(q) != {"value", "unit"}:
                errors.append(f"{where}: needs exactly value/unit keys")
                continue
            if not isinstance(q["value"], (int, float)) or isinstance(
                q["value"], bool
            ) or math.isnan(q["value"]):
                errors.append(f"{where}: bad value {q['value']!r}")
            if not isinstance(q["unit"], str) or not q["unit"]:
                errors.append(f"{where}: bad unit {q['unit']!r}")
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        errors.append(f"{path}: counters missing")
    else:
        for label, v in counters.items():
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(
                    f"{path}: counters[{label!r}] {v!r} not a "
                    "non-negative int"
                )
    env = doc.get("environment")
    if not isinstance(env, dict):
        errors.append(f"{path}: environment missing")
    else:
        for key in ("python", "platform", "scale"):
            if key not in env:
                errors.append(f"{path}: environment missing {key!r}")
    return errors


def check_provenance(path: str) -> List[str]:
    from repro.sched.metrics import PROVENANCE_COLUMNS

    skip_cols = ("skip_cache", "skip_cut", "skip_screen", "skip_search",
                 "skip_budget")
    states = {"pending", "queued", "running", "completed", "unscheduled"}
    errors: List[str] = []
    count = 0
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            count += 1
            where = f"{path}:{lineno}"
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{where}: not JSON ({exc})")
                continue
            missing = [c for c in PROVENANCE_COLUMNS if c not in row]
            if missing:
                errors.append(f"{where}: missing columns {missing}")
                continue
            extra = set(row) - set(PROVENANCE_COLUMNS)
            if extra:
                errors.append(f"{where}: unknown columns {sorted(extra)}")
            for col in ("attempts",) + skip_cols:
                v = row[col]
                if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                    errors.append(
                        f"{where}: {col} {v!r} not a non-negative int"
                    )
                    break
            else:
                skips = sum(row[c] for c in skip_cols)
                if skips > row["attempts"]:
                    errors.append(
                        f"{where}: {skips} skips exceed "
                        f"{row['attempts']} attempts"
                    )
            if row["state"] not in states:
                errors.append(f"{where}: unknown state {row['state']!r}")
            started = row["start"] is not None
            if started:
                for col in ("end", "wait"):
                    if row[col] is None:
                        errors.append(
                            f"{where}: started job missing {col}"
                        )
                if row["wait"] is not None and (
                    abs((row["start"] - row["arrival"]) - row["wait"])
                    > 1e-9
                ):
                    errors.append(
                        f"{where}: wait {row['wait']} != "
                        "start - arrival"
                    )
                if row["first_eligible"] is None:
                    errors.append(
                        f"{where}: started job never marked eligible"
                    )
                elif row["attempts"] < 1:
                    errors.append(f"{where}: started job with 0 attempts")
            else:
                for col in ("end", "wait"):
                    if row[col] is not None:
                        errors.append(
                            f"{where}: unstarted job carries {col}"
                        )
                if row["state"] in ("running", "completed"):
                    errors.append(
                        f"{where}: state {row['state']} without a start"
                    )
    if count == 0:
        errors.append(f"{path}: no provenance rows")
    return errors


def _split_labels(raw: str) -> List[str]:
    """Split a label body on commas outside quoted values."""
    out, depth, cur = [], False, []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == '"' and (i == 0 or raw[i - 1] != "\\"):
            depth = not depth
        if ch == "," and not depth:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
        i += 1
    if cur:
        out.append("".join(cur))
    return out


if __name__ == "__main__":
    argv = sys.argv[1:]
    checks = {"--trace": check_trace, "--samples": check_samples,
              "--metrics": check_metrics, "--bench": check_bench,
              "--provenance": check_provenance}
    all_errors: List[str] = []
    ran = 0
    for flag, fn in checks.items():
        if flag in argv:
            path = argv[argv.index(flag) + 1]
            ran += 1
            found = fn(path)
            all_errors.extend(found)
            status = "ok" if not found else f"{len(found)} errors"
            print(f"{flag[2:]:>8} {path}: {status}")
    if ran == 0:
        print(__doc__)
        sys.exit(2)
    for err in all_errors:
        print("ERROR:", err)
    sys.exit(1 if all_errors else 0)
