"""Extension bench: scheduling under failures (fault rate x scheme).

Asserted shape: every scheme survives the faulted replays (faults fire,
no job is stranded unscheduled), goodput degrades as the fault rate
rises, and the healthy column reproduces the fault-free baseline."""

from repro.experiments import figresilience


def bench_resilience(benchmark, save_result, scale):
    rows = benchmark.pedantic(
        lambda: figresilience.resilience_sweep(scale=scale),
        rounds=1,
        iterations=1,
    )
    save_result("fig_resilience", figresilience.render(rows))

    for scheme, row in rows.items():
        assert row["resub mttf=20000"] > 0, (scheme, row)
        # work is lost under faults, never more than was executed
        assert 0.0 < row["goodput mttf=20000 %"] <= 100.0, (scheme, row)
        # more failures, no more goodput
        assert (
            row["goodput mttf=20000 %"] <= row["goodput mttf=80000 %"] + 1e-9
        ), (scheme, row)
        # faults cost utilization relative to the healthy run (allow a
        # small tolerance: requeues can serendipitously pack better)
        assert row["util mttf=20000 %"] <= row["util healthy %"] + 15.0, (
            scheme,
            row,
        )
