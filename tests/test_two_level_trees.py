"""Two-level clusters as the degenerate case (m3 = 1).

The theory builds three-level trees out of two-level ones; a single-pod
XGFT *is* a two-level fat-tree, and everything — allocators, conditions,
routing, simulation — must work there unchanged (this is LaaS's original
setting)."""

import random

import pytest

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.routing.rearrange import route_permutation, verify_one_flow_per_link
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import XGFT


@pytest.fixture
def pod():
    return XGFT(m1=4, m2=4, m3=1)  # one 16-node pod


@pytest.mark.parametrize("scheme", ["baseline", "jigsaw", "laas", "ta", "lc+s"])
def test_allocators_work_single_pod(pod, scheme):
    allocator = make_allocator(scheme, pod)
    alloc = allocator.allocate(1, 6)
    assert alloc is not None
    assert alloc.spine_links == ()  # no third level to use
    if scheme in ("jigsaw", "laas", "lc+s"):
        assert check_allocation(pod, alloc, exact_nodes=(scheme != "laas")) == []


def test_whole_pod_job(pod):
    allocator = make_allocator("jigsaw", pod)
    alloc = allocator.allocate(1, 16)
    assert alloc is not None
    assert len(alloc.nodes) == 16


def test_oversized_fails_cleanly(pod):
    allocator = make_allocator("jigsaw", pod)
    assert allocator.allocate(1, 17) is None


def test_two_level_partitions_are_rnb(pod):
    allocator = make_allocator("jigsaw", pod)
    alloc = allocator.allocate(1, 7)
    rng = random.Random(1)
    nodes = sorted(alloc.nodes)
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    perm = dict(zip(nodes, shuffled))
    assignments = route_permutation(pod, alloc, perm)
    assert verify_one_flow_per_link(pod, alloc, assignments) == []


def test_simulation_on_single_pod(pod):
    jobs = [Job(id=i, size=(i % 6) + 1, runtime=10.0) for i in range(60)]
    result = Simulator(make_allocator("jigsaw", pod)).run(jobs)
    assert len(result.jobs) == 60
    assert not result.unscheduled
