"""LC / LC+S: link sharing, bandwidth caps, search budget."""

import pytest

from repro.core.conditions import check_allocation
from repro.core.lcs import LeastConstrainedAllocator
from repro.core.shapes import ThreeLevelShape
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


class TestLinkSharing:
    def test_shared_links_overlap(self, tree):
        """Two jobs with modest bandwidth needs may use the same links —
        that is the whole point of LC+S."""
        a = LeastConstrainedAllocator(tree, share_links=True)
        a1 = a.allocate(1, 8, bw_need=1.0)
        a2 = a.allocate(2, 8, bw_need=1.0)
        assert a1 and a2
        # exclusive-node invariant still holds
        assert not set(a1.nodes) & set(a2.nodes)

    def test_bandwidth_cap_respected(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True)
        # Saturate leaf 0/1's common links with 2x 2.0 GB/s jobs, then a
        # third 2.0 job must avoid or fail those links (cap is 4.0).
        for jid in range(1, 20):
            result = a.allocate(jid, 8, bw_need=2.0)
            if result is None:
                break
        # every leaf link's accumulated bandwidth stays within the cap
        assert (a.links.leaf_bw <= a.links.capacity + 1e-9).all()
        assert (a.links.spine_bw <= a.links.capacity + 1e-9).all()

    def test_default_bw_used_when_job_silent(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True, default_bw=2.0)
        a.allocate(1, 8)  # no bw_need given
        import numpy as np

        used = a.links.leaf_bw[a.links.leaf_bw > 0]
        assert len(used) and np.allclose(used, 2.0)

    def test_release_returns_bandwidth(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True)
        a.allocate(1, 12, bw_need=1.5)
        a.release(1)
        assert (a.links.leaf_bw == 0).all()
        assert (a.links.spine_bw == 0).all()
        assert a.state.is_idle()


class TestExclusiveLC:
    def test_lc_is_isolating(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=False)
        assert a.isolating
        assert a.name == "lc"
        a1 = a.allocate(1, 8)
        a2 = a.allocate(2, 8)
        assert not set(a1.leaf_links) & set(a2.leaf_links)

    def test_lcs_is_not_isolating_but_low_interference(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True)
        assert not a.isolating
        assert a.low_interference


class TestGeneralShapes:
    def test_sparse_cross_pod_placement(self, tree):
        """LC can place a mid-size job across pods with partial leaves —
        the placement Jigsaw's full-leaf restriction forgoes."""
        a = LeastConstrainedAllocator(tree, share_links=True)
        # leave exactly 2 free nodes on the first two leaves of 3 pods
        jid = 100
        for pod in range(tree.num_pods):
            for k, leaf in enumerate(tree.leaves_of_pod(pod)):
                keep = 2 if (k < 2 and pod < 3) else 0
                nodes = list(tree.nodes_of_leaf(leaf))[keep:]
                if nodes:
                    jid += 1
                    a.state.claim(jid, nodes)
        result = a.allocate(1, 12)
        assert result is not None
        assert isinstance(result.shape, ThreeLevelShape)
        assert result.shape.nL < tree.m1  # not a full-leaf shape
        assert check_allocation(tree, result) == []

    def test_allocations_satisfy_formal_conditions(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True)
        for jid, size in enumerate([3, 7, 12, 20, 33, 50], start=1):
            result = a.allocate(jid, size)
            assert result is not None, size
            assert check_allocation(tree, result) == [], size


class TestBudget:
    def test_budget_exhaustion_acts_like_timeout(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True, step_budget=3)
        assert a.allocate(1, 20) is None
        assert a.state.is_idle()

    def test_generous_budget_succeeds(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=True, step_budget=100_000)
        assert a.allocate(1, 20) is not None

    def test_solution_cap_bounds_memory(self, tree):
        a = LeastConstrainedAllocator(tree, max_solutions_per_pod=2)
        sols = a._find_all_in_pod(0, LT=2, nL=2, nrL=0)
        assert len(sols) <= 2
