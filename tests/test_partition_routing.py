"""Jigsaw partition routing: confined, connected, deterministic."""

import random

import pytest

from repro.core.jigsaw import JigsawAllocator
from repro.core.laas import LaaSAllocator
from repro.routing.dmodk import route_stays_inside
from repro.routing.partition import PartitionRouter
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def all_pairs_stay_inside(tree, alloc):
    router = PartitionRouter(tree, alloc)
    nodes = sorted(alloc.nodes)
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            route = router.route(src, dst)
            assert route_stays_inside(route, alloc), (src, dst, alloc.shape)


class TestConfinement:
    @pytest.mark.parametrize("size", [2, 5, 8, 11, 16, 20, 33, 48])
    def test_every_pair_routes_inside_allocation(self, tree, size):
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, size)
        all_pairs_stay_inside(tree, alloc)

    def test_fragmented_allocations_also_confined(self, tree):
        random.seed(13)
        allocator = JigsawAllocator(tree)
        live = []
        jid = 0
        checked = 0
        for _ in range(400):
            if live and (random.random() < 0.4 or len(live) > 20):
                allocator.release(live.pop(random.randrange(len(live))))
            else:
                jid += 1
                alloc = allocator.allocate(jid, random.choice([2, 3, 6, 9, 14, 20, 34]))
                if alloc:
                    live.append(jid)
                    if checked < 40 and len(alloc.nodes) > 1:
                        all_pairs_stay_inside(tree, alloc)
                        checked += 1
        assert checked >= 30

    def test_laas_allocations_confined(self, tree):
        allocator = LaaSAllocator(tree)
        # force three-level by filling two leaves per pod
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                allocator.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        alloc = allocator.allocate(1, 11)
        assert alloc.spine_links
        all_pairs_stay_inside(tree, alloc)


class TestWraparound:
    def test_remainder_leaf_traffic_uses_sr_only(self, tree):
        """The wraparound case: routes to/from the remainder leaf must
        use its (smaller) allocated uplink set Sr."""
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, 9)  # 2 full leaves x 4 + remainder 1
        rem_leaves = [
            leaf for leaf, cnt in alloc.leaf_node_counts(tree).items() if cnt == 1
        ]
        assert rem_leaves
        rem_leaf = rem_leaves[0]
        sr = {l.l2_index for l in alloc.leaf_links if l.leaf == rem_leaf}
        router = PartitionRouter(tree, alloc)
        rem_node = next(n for n in alloc.nodes if n // tree.m1 == rem_leaf)
        for dst in alloc.nodes:
            if dst == rem_node or dst // tree.m1 == rem_leaf:
                continue
            route = router.route(rem_node, dst)
            assert route.up_leaf.l2_index in sr
            back = router.route(dst, rem_node)
            assert back.down_leaf.l2_index in sr


class TestErrors:
    def test_foreign_nodes_rejected(self, tree):
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, 8)
        router = PartitionRouter(tree, alloc)
        outside = max(alloc.nodes) + 1
        with pytest.raises(ValueError):
            router.route(outside, min(alloc.nodes))

    def test_self_route_rejected(self, tree):
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, 8)
        router = PartitionRouter(tree, alloc)
        n = min(alloc.nodes)
        with pytest.raises(ValueError):
            router.route(n, n)

    def test_deterministic(self, tree):
        allocator = JigsawAllocator(tree)
        alloc = allocator.allocate(1, 20)
        r1 = PartitionRouter(tree, alloc)
        r2 = PartitionRouter(tree, alloc)
        nodes = sorted(alloc.nodes)
        for src, dst in zip(nodes, reversed(nodes)):
            if src != dst:
                assert r1.route(src, dst) == r2.route(src, dst)
