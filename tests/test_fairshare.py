"""Max-min fair rate allocation: textbook cases and the fairness property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fairshare import max_min_fair_rates


class TestTextbookCases:
    def test_single_flow_gets_full_capacity(self):
        r = max_min_fair_rates({"f": ["l1", "l2"]}, capacity=5.0)
        assert r.rates["f"] == pytest.approx(5.0)

    def test_linkless_flow_unconstrained(self):
        r = max_min_fair_rates({"f": []}, capacity=3.0)
        assert r.rates["f"] == pytest.approx(3.0)

    def test_equal_sharing(self):
        r = max_min_fair_rates({"a": ["l"], "b": ["l"], "c": ["l"]})
        assert all(v == pytest.approx(1 / 3) for v in r.rates.values())
        assert r.residual["l"] == pytest.approx(0.0)

    def test_classic_three_flow_chain(self):
        # A on l1; B on l1+l2; C on l2; all capacities 1 -> all 0.5
        r = max_min_fair_rates({"a": ["l1"], "b": ["l1", "l2"], "c": ["l2"]})
        assert all(v == pytest.approx(0.5) for v in r.rates.values())

    def test_wide_second_link_leaves_headroom(self):
        r = max_min_fair_rates(
            {"a": ["l1"], "b": ["l1", "l2"], "c": ["l2"]},
            capacities={"l2": 10.0},
        )
        assert r.rates["a"] == pytest.approx(0.5)
        assert r.rates["b"] == pytest.approx(0.5)
        assert r.rates["c"] == pytest.approx(9.5)

    def test_tight_upstream_bottleneck(self):
        # A limited to 0.4 upstream; B picks up the slack downstream
        r = max_min_fair_rates(
            {"a": ["l1", "l2"], "b": ["l2"]},
            capacities={"l1": 0.4, "l2": 1.0},
        )
        assert r.rates["a"] == pytest.approx(0.4)
        assert r.rates["b"] == pytest.approx(0.6)
        assert r.bottleneck["a"] == "l1"
        assert r.bottleneck["b"] == "l2"

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            max_min_fair_rates({"a": ["l"]}, capacity=0.0)
        with pytest.raises(ValueError):
            max_min_fair_rates({"a": ["l"]}, capacities={"l": -1.0})


@st.composite
def flow_systems(draw):
    n_links = draw(st.integers(1, 6))
    n_flows = draw(st.integers(1, 8))
    flows = {}
    for f in range(n_flows):
        links = draw(
            st.lists(st.integers(0, n_links - 1), min_size=1, max_size=4,
                     unique=True)
        )
        flows[f] = links
    return flows


class TestMaxMinProperty:
    @settings(max_examples=100, deadline=None)
    @given(flows=flow_systems())
    def test_feasibility_and_bottleneck_condition(self, flows):
        result = max_min_fair_rates(flows, capacity=1.0)
        # feasibility: no link oversubscribed
        load = {}
        for flow, links in flows.items():
            for link in links:
                load[link] = load.get(link, 0.0) + result.rates[flow]
        for link, used in load.items():
            assert used <= 1.0 + 1e-9
        # max-min condition: every flow has a bottleneck link that is
        # saturated and on which it has the maximal rate
        for flow, links in flows.items():
            b = result.bottleneck[flow]
            assert b in links
            assert load[b] == pytest.approx(1.0)
            for other, other_links in flows.items():
                if b in other_links:
                    assert result.rates[other] <= result.rates[flow] + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(flows=flow_systems())
    def test_rates_positive(self, flows):
        result = max_min_fair_rates(flows)
        assert all(rate > 0 for rate in result.rates.values())
