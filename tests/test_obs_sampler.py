"""Time-series sampler: boundary math, simulator wiring, grid merging."""

import io
import json

import pytest

from repro.core.baseline import BaselineAllocator
from repro.experiments.grid import merge_sample_streams, run_grid, sim_cell
from repro.obs.sampler import (
    ROW_FIELDS,
    TimeSeriesSampler,
    merge_streams,
    simulator_row,
    write_jsonl,
)
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


class TestBoundaryMath:
    def test_emits_every_boundary_strictly_before_t(self):
        s = TimeSeriesSampler(10.0)
        s.reset(0.0)
        s.advance_to(25.0, lambda b: {"t": b})
        assert [r["t"] for r in s.rows] == [0.0, 10.0, 20.0]

    def test_first_boundary_rounds_up_from_start(self):
        s = TimeSeriesSampler(10.0)
        s.reset(7.0)
        s.advance_to(31.0, lambda b: {"t": b})
        assert [r["t"] for r in s.rows] == [10.0, 20.0, 30.0]

    def test_finish_adds_final_row_at_end_time(self):
        s = TimeSeriesSampler(10.0)
        s.reset(0.0)
        s.finish(4.0, lambda b: {"t": b})
        assert [r["t"] for r in s.rows] == [0.0, 4.0]

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesSampler(0)


class TestSimulatorRow:
    def test_counts_padding_and_shards(self):
        tree = FatTree.from_radix(8)
        allocator = BaselineAllocator(tree)
        allocator.allocate(1, 3)
        row = simulator_row(
            0.0, allocator, pending=2, running_jobs=1, busy_requested=3
        )
        assert set(ROW_FIELDS) <= set(row)
        assert row["free_nodes"] == tree.num_nodes - 3
        assert row["padding_nodes"] == 0  # baseline never pads
        assert row["queue_depth"] == 2 and row["running_jobs"] == 1
        assert row["util_pct"] == pytest.approx(
            100.0 * 3 / tree.num_nodes, abs=1e-3
        )


class TestSimulatorWiring:
    def _run(self, sampler=None):
        tree = FatTree.from_radix(8)
        jobs = [
            Job(id=i, size=8, runtime=100.0, arrival=i * 10.0)
            for i in range(6)
        ]
        sim = Simulator(BaselineAllocator(tree), sampler=sampler)
        return sim.run(jobs)

    def test_unsampled_run_has_no_samples(self):
        assert self._run().samples == []

    def test_sampled_run_fills_result_samples(self):
        result = self._run(TimeSeriesSampler(25.0))
        assert result.samples, "expected at least one row"
        times = [r["t"] for r in result.samples]
        assert times == sorted(times)
        # the final row lands at the last event time
        assert times[-1] == pytest.approx(50.0 + 100.0)
        for row in result.samples:
            assert set(ROW_FIELDS) <= set(row)

    def test_sampling_changes_no_decision(self):
        plain = self._run()
        sampled = self._run(TimeSeriesSampler(7.0))
        assert [
            (j.job_id, j.start, j.end) for j in plain.jobs
        ] == [(j.job_id, j.start, j.end) for j in sampled.jobs]


class TestStreams:
    def test_write_jsonl_orders_keys_stably(self):
        rows = [{"queue_depth": 1, "t": 0.0, "zz": 9, "scheme": "ta"}]
        buf = io.StringIO()
        write_jsonl(rows, buf)
        obj = json.loads(buf.getvalue())
        assert list(obj) == ["t", "queue_depth", "scheme", "zz"]

    def test_merge_streams_labels_and_orders(self):
        merged = merge_streams([
            ({"scheme": "a"}, [{"t": 0.0}, {"t": 1.0}]),
            ({"scheme": "b"}, [{"t": 0.0}]),
        ])
        assert [(r["scheme"], r["t"]) for r in merged] == [
            ("a", 0.0), ("a", 1.0), ("b", 0.0),
        ]

    def test_grid_merge_identical_serial_and_parallel(self):
        cells = [
            sim_cell(trace="Synth-16", scheme=scheme, scale=0.01,
                     sample_interval=1800.0)
            for scheme in ("baseline", "jigsaw")
        ]
        serial = merge_sample_streams(cells, run_grid(cells, workers=1))
        parallel = merge_sample_streams(cells, run_grid(cells, workers=2))
        assert serial == parallel
        assert serial, "expected sample rows"
        assert {r["scheme"] for r in serial} == {"baseline", "jigsaw"}
        assert all(r["trace"] == "Synth-16" for r in serial)
        buf_a, buf_b = io.StringIO(), io.StringIO()
        write_jsonl(serial, buf_a)
        write_jsonl(parallel, buf_b)
        assert buf_a.getvalue() == buf_b.getvalue()
