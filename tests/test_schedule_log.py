"""Schedule event log."""

import io

import pytest

from repro.core.baseline import BaselineAllocator
from repro.sched.job import Job
from repro.sched.log import ScheduleLog
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def run(tree, jobs, **kw):
    log = ScheduleLog()
    Simulator(BaselineAllocator(tree), event_log=log, **kw).run(jobs)
    return log


class TestLogContents:
    def test_every_job_has_three_events(self, tree):
        jobs = [Job(id=i, size=10, runtime=5.0) for i in range(10)]
        log = run(tree, jobs)
        for i in range(10):
            kinds = [e.kind for e in log.of_job(i)]
            assert kinds == ["arrive", "start", "complete"]
        assert len(log) == 30

    def test_event_times_ordered_per_job(self, tree):
        jobs = [Job(id=1, size=128, runtime=7.0),
                Job(id=2, size=128, runtime=3.0)]
        log = run(tree, jobs)
        a, s, c = log.of_job(2)
        assert a.time <= s.time <= c.time
        assert s.time == pytest.approx(7.0)

    def test_backfill_marked(self, tree):
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=10.0),
            Job(id=3, size=20, runtime=50.0),  # backfills
        ]
        log = run(tree, jobs)
        start3 = next(e for e in log.of_job(3) if e.kind == "start")
        assert start3.via == "backfill"
        assert log.backfill_fraction == pytest.approx(1 / 3)
        assert log.start_mechanisms()["fifo"] == 2

    def test_conservative_marks_reserved(self, tree):
        jobs = [Job(id=1, size=10, runtime=5.0)]
        log = run(tree, jobs, backfill_policy="conservative")
        start = next(e for e in log.of_job(1) if e.kind == "start")
        assert start.via == "reserved"

    def test_no_log_by_default(self, tree):
        result = Simulator(BaselineAllocator(tree)).run(
            [Job(id=1, size=4, runtime=1.0)]
        )
        assert len(result.jobs) == 1  # merely runs without a log


class TestExport:
    def test_csv_roundtrip(self, tree):
        jobs = [Job(id=1, size=4, runtime=1.0)]
        log = run(tree, jobs)
        buf = io.StringIO()
        log.to_csv(buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "time,kind,job_id,size,via"
        assert len(lines) == 1 + len(log)

    def test_csv_file(self, tree, tmp_path):
        log = run(tree, [Job(id=1, size=4, runtime=1.0)])
        path = tmp_path / "log.csv"
        log.to_csv(path)
        assert path.read_text().startswith("time,kind")

    def test_validation(self):
        log = ScheduleLog()
        with pytest.raises(ValueError):
            log.record(0.0, "pause", 1, 4)
        with pytest.raises(ValueError):
            log.record(0.0, "start", 1, 4, via="teleport")

    def test_empty_backfill_fraction(self):
        assert ScheduleLog().backfill_fraction == 0.0


class TestAttrs:
    def test_record_accepts_and_stores_attrs(self):
        log = ScheduleLog()
        attrs = {"wait": 3.0, "via": "backfill"}
        log.record(10.0, "start", 1, 4, via="backfill", attrs=attrs)
        assert log.events[0].attrs is attrs  # shared, not copied

    def test_csv_without_attrs_keeps_five_columns(self):
        log = ScheduleLog()
        log.record(0.0, "arrive", 1, 4)
        buf = io.StringIO()
        log.to_csv(buf)
        assert buf.getvalue().splitlines()[0] == "time,kind,job_id,size,via"

    def test_csv_with_attrs_appends_json_column(self):
        log = ScheduleLog()
        log.record(0.0, "arrive", 1, 4)
        log.record(1.0, "start", 1, 4, via="fifo", attrs={"wait": 1.0})
        buf = io.StringIO()
        log.to_csv(buf)
        lines = buf.getvalue().splitlines()
        assert lines[0] == "time,kind,job_id,size,via,attrs"
        assert lines[1].endswith(",")  # attr-less event: empty cell
        assert '""wait"": 1.0' in lines[2]

    def test_traced_simulator_shares_attrs_with_instants(self, tree):
        from repro.obs.tracer import Tracer

        log = ScheduleLog()
        tracer = Tracer(enabled=True)
        Simulator(BaselineAllocator(tree), event_log=log,
                  tracer=tracer).run([Job(id=1, size=4, runtime=1.0)])
        start = next(e for e in log.events if e.kind == "start")
        instants = [e for e in tracer.events if e["name"] == "sched.start"]
        assert start.attrs is instants[0]["attrs"]  # one shared dict
        assert start.attrs["via"] == "fifo"
        assert start.attrs["wait"] == 0.0
