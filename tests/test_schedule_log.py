"""Schedule event log."""

import io

import pytest

from repro.core.baseline import BaselineAllocator
from repro.sched.job import Job
from repro.sched.log import ScheduleLog
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def run(tree, jobs, **kw):
    log = ScheduleLog()
    Simulator(BaselineAllocator(tree), event_log=log, **kw).run(jobs)
    return log


class TestLogContents:
    def test_every_job_has_three_events(self, tree):
        jobs = [Job(id=i, size=10, runtime=5.0) for i in range(10)]
        log = run(tree, jobs)
        for i in range(10):
            kinds = [e.kind for e in log.of_job(i)]
            assert kinds == ["arrive", "start", "complete"]
        assert len(log) == 30

    def test_event_times_ordered_per_job(self, tree):
        jobs = [Job(id=1, size=128, runtime=7.0),
                Job(id=2, size=128, runtime=3.0)]
        log = run(tree, jobs)
        a, s, c = log.of_job(2)
        assert a.time <= s.time <= c.time
        assert s.time == pytest.approx(7.0)

    def test_backfill_marked(self, tree):
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=10.0),
            Job(id=3, size=20, runtime=50.0),  # backfills
        ]
        log = run(tree, jobs)
        start3 = next(e for e in log.of_job(3) if e.kind == "start")
        assert start3.via == "backfill"
        assert log.backfill_fraction == pytest.approx(1 / 3)
        assert log.start_mechanisms()["fifo"] == 2

    def test_conservative_marks_reserved(self, tree):
        jobs = [Job(id=1, size=10, runtime=5.0)]
        log = run(tree, jobs, backfill_policy="conservative")
        start = next(e for e in log.of_job(1) if e.kind == "start")
        assert start.via == "reserved"

    def test_no_log_by_default(self, tree):
        result = Simulator(BaselineAllocator(tree)).run(
            [Job(id=1, size=4, runtime=1.0)]
        )
        assert len(result.jobs) == 1  # merely runs without a log


class TestExport:
    def test_csv_roundtrip(self, tree):
        jobs = [Job(id=1, size=4, runtime=1.0)]
        log = run(tree, jobs)
        buf = io.StringIO()
        log.to_csv(buf)
        lines = buf.getvalue().strip().splitlines()
        assert lines[0] == "time,kind,job_id,size,via"
        assert len(lines) == 1 + len(log)

    def test_csv_file(self, tree, tmp_path):
        log = run(tree, [Job(id=1, size=4, runtime=1.0)])
        path = tmp_path / "log.csv"
        log.to_csv(path)
        assert path.read_text().startswith("time,kind")

    def test_validation(self):
        log = ScheduleLog()
        with pytest.raises(ValueError):
            log.record(0.0, "pause", 1, 4)
        with pytest.raises(ValueError):
            log.record(0.0, "start", 1, 4, via="teleport")

    def test_empty_backfill_fraction(self):
        assert ScheduleLog().backfill_fraction == 0.0
