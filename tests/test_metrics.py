"""Metrics: histogram binning and SimResult arithmetic."""

import math

import pytest

from repro.sched.metrics import (
    INSTANT_BINS,
    InstantHistogram,
    JobRecord,
    SimResult,
)


class TestInstantHistogram:
    def test_bins_cover_0_to_100(self):
        h = InstantHistogram()
        for u in (0.0, 37.5, 60.0, 79.9, 80.0, 90.0, 94.9, 95.0, 97.9, 98.0, 100.0):
            h.add(u)
        assert h.total == 11
        assert sum(h.counts.values()) == 11

    def test_bin_boundaries(self):
        h = InstantHistogram()
        h.add(98.0)
        h.add(97.999)
        h.add(60.0)
        h.add(59.999)
        assert h.counts[">=98"] == 1
        assert h.counts["95-97"] == 1
        assert h.counts["60-80"] == 1
        assert h.counts["<=60"] == 1

    def test_out_of_range_rejected(self):
        h = InstantHistogram()
        with pytest.raises(ValueError):
            h.add(101.0)
        with pytest.raises(ValueError):
            h.add(-1.0)

    def test_fraction(self):
        h = InstantHistogram()
        assert h.fraction(">=98") == 0.0
        h.add(99.0)
        h.add(50.0)
        assert h.fraction(">=98") == 0.5

    def test_bin_labels_match_paper(self):
        assert [b[0] for b in INSTANT_BINS] == [
            ">=98", "95-97", "90-95", "80-90", "60-80", "<=60",
        ]


class TestJobRecord:
    def test_derived_times(self):
        r = JobRecord(job_id=1, size=4, arrival=10.0, start=15.0, end=40.0)
        assert r.wait == 5.0
        assert r.turnaround == 30.0


def make_result(records, makespan=100.0, busy=900.0, demand=1000.0):
    return SimResult(
        scheme="jigsaw",
        trace_name="t",
        system_nodes=10,
        jobs=records,
        makespan=makespan,
        busy_area=busy,
        demand_area=demand,
        total_busy_area=busy,
        instant=InstantHistogram(),
        sched_seconds=0.5,
        alloc_attempts=len(records),
    )


class TestSimResult:
    def test_utilization(self):
        r = make_result([JobRecord(1, 2, 0.0, 0.0, 10.0)])
        assert r.steady_state_utilization == pytest.approx(90.0)
        assert r.overall_utilization == pytest.approx(90.0)

    def test_no_demand_means_full_utilization(self):
        r = make_result([JobRecord(1, 2, 0.0, 0.0, 10.0)], busy=0.0, demand=0.0)
        assert r.steady_state_utilization == 100.0

    def test_turnaround_means(self):
        records = [
            JobRecord(1, 2, 0.0, 0.0, 10.0),
            JobRecord(2, 200, 0.0, 5.0, 25.0),
        ]
        r = make_result(records)
        assert r.mean_turnaround == pytest.approx(17.5)
        assert r.mean_turnaround_large == pytest.approx(25.0)
        assert r.mean_wait == pytest.approx(2.5)

    def test_no_large_jobs_gives_nan(self):
        r = make_result([JobRecord(1, 2, 0.0, 0.0, 10.0)])
        assert math.isnan(r.mean_turnaround_large)

    def test_sched_time_per_job(self):
        r = make_result([JobRecord(1, 2, 0.0, 0.0, 10.0)] )
        assert r.mean_sched_time_per_job == pytest.approx(0.5)

    def test_summary_is_one_line(self):
        r = make_result([JobRecord(1, 2, 0.0, 0.0, 10.0)])
        assert "\n" not in r.summary()
        assert "jigsaw" in r.summary()

    def test_bounded_slowdown(self):
        records = [
            JobRecord(1, 2, 0.0, 0.0, 100.0),    # no wait: slowdown 1
            JobRecord(2, 2, 0.0, 100.0, 200.0),  # waited 100, ran 100: 2
        ]
        r = make_result(records)
        assert r.mean_bounded_slowdown() == pytest.approx(1.5)

    def test_bounded_slowdown_tau_floor(self):
        # 1-second job that waited 100 s: raw slowdown 101, bounded by
        # tau=10 to 101/10
        r = make_result([JobRecord(1, 2, 0.0, 100.0, 101.0)])
        assert r.mean_bounded_slowdown(tau=10.0) == pytest.approx(10.1)

    def test_bounded_slowdown_never_below_one(self):
        r = make_result([JobRecord(1, 2, 0.0, 0.0, 5.0)])
        assert r.mean_bounded_slowdown() == pytest.approx(1.0)

    def test_turnaround_by_size_class(self):
        records = [
            JobRecord(1, 1, 0.0, 0.0, 10.0),
            JobRecord(2, 3, 0.0, 0.0, 30.0),
            JobRecord(3, 50, 0.0, 0.0, 100.0),
            JobRecord(4, 500, 0.0, 0.0, 200.0),
        ]
        r = make_result(records)
        classes = r.turnaround_by_size_class(bounds=(1, 4, 64))
        assert classes["1"] == pytest.approx(10.0)
        assert classes["2-4"] == pytest.approx(30.0)
        assert classes["5-64"] == pytest.approx(100.0)
        assert classes[">64"] == pytest.approx(200.0)

    def test_size_classes_omit_empty(self):
        r = make_result([JobRecord(1, 1, 0.0, 0.0, 10.0)])
        classes = r.turnaround_by_size_class(bounds=(1, 4))
        assert set(classes) == {"1"}


class TestUtilizationTimeline:
    def test_constant_load(self):
        from repro.sched.metrics import utilization_timeline

        r = make_result([JobRecord(1, 5, 0.0, 0.0, 100.0)], makespan=100.0)
        series = utilization_timeline(r, buckets=4)
        assert len(series) == 4
        for _t, util in series:
            assert util == pytest.approx(50.0)

    def test_step_load(self):
        from repro.sched.metrics import utilization_timeline

        records = [
            JobRecord(1, 10, 0.0, 0.0, 50.0),
            JobRecord(2, 10, 0.0, 50.0, 100.0),
            JobRecord(3, 10, 0.0, 50.0, 100.0),
        ]
        r = make_result(records, makespan=100.0)
        series = utilization_timeline(r, buckets=2)
        assert series[0][1] == pytest.approx(100.0)
        assert series[1][1] == pytest.approx(200.0)  # two 10-node jobs on 10

    def test_bucket_boundaries_conserve_area(self):
        from repro.sched.metrics import utilization_timeline

        records = [JobRecord(1, 10, 0.0, 13.0, 87.0)]
        r = make_result(records, makespan=100.0)
        series = utilization_timeline(r, buckets=7)
        total = sum(u for _, u in series) / 100.0 * (100.0 / 7) * 10
        assert total == pytest.approx(10 * (87 - 13), rel=1e-6)

    def test_validation(self):
        from repro.sched.metrics import utilization_timeline

        r = make_result([JobRecord(1, 5, 0.0, 0.0, 1.0)])
        with pytest.raises(ValueError):
            utilization_timeline(r, buckets=0)
