"""Composable workload models."""

import numpy as np
import pytest

from repro.traces.model import WorkloadModel


def base(**kw):
    defaults = dict(name="m", system_nodes=1024, max_size=256)
    defaults.update(kw)
    return WorkloadModel(**defaults)


class TestValidation:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(system_nodes=0),
            dict(max_size=2048),
            dict(max_size=0),
            dict(runtime="weibull"),
            dict(arrivals="burst"),
            dict(pow2_fraction=1.5),
            dict(near_machine_prob=-0.1),
            dict(spikes=((0, 0.5),)),
            dict(spikes=((64, 1.5),)),
            dict(arrivals="poisson", load=0.0),
            dict(min_runtime=0.0),
            dict(min_runtime=100.0, max_runtime=10.0),
        ],
    )
    def test_bad_params(self, kw):
        with pytest.raises(ValueError):
            base(**kw)

    def test_bad_num_jobs(self):
        with pytest.raises(ValueError):
            base().generate(0)


class TestGeneration:
    def test_sizes_respect_max(self):
        trace = base(mean_size=100, max_size=128).generate(2000, seed=1)
        assert max(j.size for j in trace.jobs) <= 128

    def test_spikes_add_mass(self):
        plain = base(mean_size=8).generate(4000, seed=1)
        spiked = base(mean_size=8, spikes=((200, 0.05),)).generate(4000, seed=1)
        assert sum(1 for j in spiked.jobs if j.size == 200) > 100
        assert sum(1 for j in plain.jobs if j.size == 200) < 20

    def test_near_machine_jobs(self):
        trace = base(near_machine_prob=0.01).generate(3000, seed=1)
        big = [j for j in trace.jobs if j.size >= 128]
        assert 5 <= len(big) <= 100

    def test_uniform_runtimes(self):
        trace = base(runtime="uniform", min_runtime=20, max_runtime=30).generate(
            500, seed=1
        )
        rts = [j.runtime for j in trace.jobs]
        assert min(rts) >= 20 and max(rts) <= 30

    def test_lognormal_skew(self):
        trace = base(runtime="lognormal", median_runtime=100, sigma=1.5,
                     max_runtime=10_000).generate(4000, seed=1)
        rts = sorted(j.runtime for j in trace.jobs)
        assert rts[len(rts) // 2] < sum(rts) / len(rts)  # median < mean

    def test_zero_arrivals(self):
        trace = base().generate(100, seed=1)
        assert all(j.arrival == 0.0 for j in trace.jobs)
        assert not trace.has_arrivals

    def test_poisson_load_controls_rate(self):
        light = base(arrivals="poisson", load=0.5).generate(2000, seed=1)
        heavy = base(arrivals="poisson", load=2.0).generate(2000, seed=1)
        assert light.jobs[-1].arrival > heavy.jobs[-1].arrival

    def test_diurnal_changes_timing_only(self):
        flat = base(arrivals="poisson", load=1.0).generate(1000, seed=1)
        wavy = base(arrivals="poisson", load=1.0, diurnal=True).generate(
            1000, seed=1
        )
        assert [j.size for j in flat.jobs] == [j.size for j in wavy.jobs]
        assert [j.arrival for j in flat.jobs] != [j.arrival for j in wavy.jobs]

    def test_deterministic(self):
        a = base().generate(200, seed=9)
        b = base().generate(200, seed=9)
        assert [(j.size, j.runtime) for j in a.jobs] == [
            (j.size, j.runtime) for j in b.jobs
        ]

    def test_simulatable(self):
        from repro import FatTree, Simulator, make_allocator

        model = base(mean_size=6, max_size=64)
        trace = model.generate(200, seed=2)
        tree = FatTree.from_radix(8)
        result = Simulator(make_allocator("jigsaw", tree)).run(trace)
        assert len(result.jobs) == 200
