"""Cross-module integration: full simulations with invariants audited.

These tests run real (small) workloads through the whole stack —
trace -> simulator -> allocator -> topology state — and check the
paper's guarantees at every step: isolation, formal-condition
compliance, and rearrangeable-non-blocking routing of live partitions.
"""

import random

import pytest

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.routing.partition import PartitionRouter
from repro.routing.dmodk import route_stays_inside
from repro.routing.rearrange import route_permutation, verify_one_flow_per_link
from repro.sched.simulator import Simulator
from repro.sched.speedup import apply_scenario
from repro.topology.fattree import FatTree
from repro.traces import synthetic_trace, thunder_like


@pytest.fixture(scope="module")
def tree():
    return FatTree.from_radix(8)


class AuditingSimulator(Simulator):
    """Simulator that audits state and validates every allocation."""

    def __init__(self, allocator, exact_nodes=True, **kwargs):
        super().__init__(allocator, **kwargs)
        self.exact_nodes = exact_nodes
        self.validated = 0
        orig_allocate = allocator.allocate

        def checked_allocate(job_id, size, bw_need=None):
            alloc = orig_allocate(job_id, size, bw_need=bw_need)
            if alloc is not None and allocator.name not in ("baseline", "ta"):
                violations = check_allocation(
                    allocator.tree, alloc, exact_nodes=self.exact_nodes
                )
                assert violations == [], (allocator.name, size, violations)
                self.validated += 1
            allocator.state.audit()
            return alloc

        allocator.allocate = checked_allocate


@pytest.mark.parametrize("scheme", ["baseline", "jigsaw", "laas", "ta", "lc+s"])
def test_full_simulation_with_invariants(tree, scheme):
    trace = synthetic_trace(8, num_jobs=200, seed=4, max_size=tree.num_nodes)
    allocator = make_allocator(scheme, tree)
    sim = AuditingSimulator(allocator, exact_nodes=(scheme != "laas"))
    result = sim.run(trace)
    assert len(result.jobs) == 200
    assert not result.unscheduled
    assert allocator.state.is_idle()  # everything released
    if scheme not in ("baseline", "ta"):
        assert sim.validated > 0


def test_isolation_holds_throughout_simulation(tree):
    """No two live jobs ever share a node or a link under Jigsaw."""
    trace = synthetic_trace(8, num_jobs=150, seed=9, max_size=tree.num_nodes)
    allocator = make_allocator("jigsaw", tree)
    seen_overlap = []
    orig = allocator.allocate

    def watched(job_id, size, bw_need=None):
        alloc = orig(job_id, size, bw_need=bw_need)
        if alloc is not None:
            for other_id, other in allocator.allocations.items():
                if other_id == job_id:
                    continue
                if set(alloc.nodes) & set(other.nodes):
                    seen_overlap.append(("nodes", job_id, other_id))
                if set(alloc.leaf_links) & set(other.leaf_links):
                    seen_overlap.append(("leaf links", job_id, other_id))
                if set(alloc.spine_links) & set(other.spine_links):
                    seen_overlap.append(("spine links", job_id, other_id))
        return alloc

    allocator.allocate = watched
    Simulator(allocator).run(trace)
    assert seen_overlap == []


def test_live_partitions_route_all_traffic_internally(tree):
    """Mid-simulation, every live Jigsaw partition confines its traffic
    and carries random permutations one-flow-per-link."""
    rng = random.Random(21)
    allocator = make_allocator("jigsaw", tree)
    trace = synthetic_trace(8, num_jobs=120, seed=2, max_size=tree.num_nodes)
    checked = [0]
    orig = allocator.allocate

    def watched(job_id, size, bw_need=None):
        alloc = orig(job_id, size, bw_need=bw_need)
        if alloc is not None and len(alloc.nodes) > 1 and checked[0] < 25:
            router = PartitionRouter(tree, alloc)
            nodes = sorted(alloc.nodes)
            for src in nodes[:6]:
                for dst in nodes[:6]:
                    if src != dst:
                        assert route_stays_inside(router.route(src, dst), alloc)
            shuffled = list(nodes)
            rng.shuffle(shuffled)
            perm = dict(zip(nodes, shuffled))
            assignments = route_permutation(tree, alloc, perm)
            assert verify_one_flow_per_link(tree, alloc, assignments) == []
            checked[0] += 1
        return alloc

    allocator.allocate = watched
    Simulator(allocator).run(trace)
    assert checked[0] >= 20


def test_speedups_shorten_isolated_runs_only(tree):
    trace = synthetic_trace(8, num_jobs=150, seed=3, max_size=tree.num_nodes)
    apply_scenario(trace.jobs, "20%", seed=0)
    base = Simulator(make_allocator("baseline", tree)).run(trace)
    jig = Simulator(make_allocator("jigsaw", tree)).run(trace)
    base_rt = {r.job_id: r.end - r.start for r in base.jobs}
    jig_rt = {r.job_id: r.end - r.start for r in jig.jobs}
    for job in trace.jobs:
        assert base_rt[job.id] == pytest.approx(job.runtime)
        assert jig_rt[job.id] == pytest.approx(job.runtime / (1 + job.speedup))


def test_schemes_rank_as_paper_on_small_synthetic(tree):
    """Even at small scale, Baseline tops utilization and Jigsaw beats
    LaaS and TA (Figure 6's core claim)."""
    trace = synthetic_trace(8, num_jobs=500, seed=1, max_size=tree.num_nodes)
    utils = {}
    for scheme in ("baseline", "jigsaw", "laas", "ta"):
        result = Simulator(make_allocator(scheme, tree)).run(trace)
        utils[scheme] = result.steady_state_utilization
    assert utils["baseline"] >= utils["jigsaw"]
    assert utils["jigsaw"] >= utils["laas"] - 0.5
    assert utils["jigsaw"] >= utils["ta"] - 0.5


def test_thunder_like_on_1458(tree):
    big = FatTree.from_radix(18)
    trace = thunder_like(num_jobs=300, seed=0)
    result = Simulator(make_allocator("jigsaw", big)).run(trace)
    assert len(result.jobs) == 300
    assert result.steady_state_utilization > 60.0
