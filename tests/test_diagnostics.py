"""Fragmentation diagnostics."""

import pytest

from repro.core.diagnostics import (
    compare_fragmentation,
    default_probe_sizes,
    fragmentation_snapshot,
)
from repro.core.registry import make_allocator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


class TestCanAllocate:
    def test_probe_does_not_claim(self, tree):
        allocator = make_allocator("jigsaw", tree)
        assert allocator.can_allocate(50)
        assert allocator.state.is_idle()
        assert allocator.free_nodes == tree.num_nodes

    def test_probe_does_not_pollute_stats(self, tree):
        allocator = make_allocator("jigsaw", tree)
        allocator.can_allocate(10)
        assert allocator.stats.attempts == 0

    def test_probe_tracks_feasibility(self, tree):
        allocator = make_allocator("jigsaw", tree)
        # fragment: one node taken on each leaf
        for leaf in range(tree.num_leaves):
            allocator.state.claim(100 + leaf, [leaf * tree.m1])
        assert allocator.can_allocate(3)
        assert not allocator.can_allocate(13)  # no fully-free leaves left

    def test_invalid_size(self, tree):
        with pytest.raises(ValueError):
            make_allocator("jigsaw", tree).can_allocate(0)


class TestSnapshot:
    def test_empty_machine(self, tree):
        allocator = make_allocator("jigsaw", tree)
        snap = fragmentation_snapshot(allocator)
        assert snap.free_nodes == tree.num_nodes
        assert snap.padding_nodes == 0
        assert snap.fully_free_leaves == tree.num_leaves
        assert snap.shard_nodes == 0
        assert snap.largest_placeable == tree.num_nodes
        assert snap.unusable_free_nodes == 0

    def test_laas_padding_counted(self, tree):
        allocator = make_allocator("laas", tree)
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                allocator.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        allocator.allocate(1, 11)  # rounded to 12: one padding node
        snap = fragmentation_snapshot(allocator, probe_sizes=[1, 4])
        assert snap.padding_nodes == 1
        assert snap.internal_fragmentation_fraction == pytest.approx(1 / 128)

    def test_external_fragmentation_visible(self, tree):
        allocator = make_allocator("jigsaw", tree)
        for leaf in range(tree.num_leaves):
            allocator.state.claim(
                100 + leaf, list(tree.nodes_of_leaf(leaf))[: tree.m1 - 1]
            )
        snap = fragmentation_snapshot(allocator)
        assert snap.free_nodes == tree.num_leaves
        assert snap.fully_free_leaves == 0
        assert snap.shard_nodes == tree.num_leaves
        # One free node per leaf: a job can still spread one-node-per-leaf
        # across a single pod (nL=1, LT<=m2), so the largest placeable job
        # is the pod's leaf count; everything bigger needs fully-free
        # leaves (three-level) and is out of reach.
        assert snap.largest_placeable == tree.m2
        assert snap.unusable_free_nodes == tree.num_leaves - tree.m2

    def test_pod_free_descending(self, tree):
        allocator = make_allocator("jigsaw", tree)
        allocator.allocate(1, 20)
        snap = fragmentation_snapshot(allocator, probe_sizes=[1])
        assert list(snap.pod_free) == sorted(snap.pod_free, reverse=True)
        assert sum(snap.pod_free) == snap.free_nodes

    def test_summary_text(self, tree):
        snap = fragmentation_snapshot(make_allocator("jigsaw", tree),
                                      probe_sizes=[1, 128])
        text = snap.summary()
        assert "fully-free leaves" in text
        assert "largest placeable" in text

    def test_compare(self, tree):
        allocs = [make_allocator(n, tree) for n in ("jigsaw", "baseline")]
        for a in allocs:
            a.allocate(1, 20)
        snaps = compare_fragmentation(allocs, probe_sizes=[1, 50])
        assert set(snaps) == {"jigsaw", "baseline"}


def test_default_probe_sizes():
    sizes = default_probe_sizes(128)
    assert sizes[0] == 1
    assert sizes[-1] == 128
    assert list(sizes) == sorted(set(sizes))
