"""The incremental occupancy index layer and its decision-invariance
contract.

Three families of checks:

* **index consistency** — a seeded random claim/release soak in which,
  after *every* mutation, each incremental index (`pod_free`,
  `full_free_leaves`, the >=k leaf counters, the exact-count bitmask
  buckets) is compared against its recomputed-from-scratch counterpart;
* **read-helper equivalence** — the bucket-backed candidate orders and
  vectorized pod prefilter answer exactly like brute-force scans;
* **search equivalence** — every allocator makes byte-identical
  decisions with ``use_indexes`` on and off, including under a tight
  LC+S step budget where the memo's tick-charging must make the
  timeout fire at exactly the same instant.
"""

import random

import numpy as np
import pytest

from repro.core.registry import make_allocator
from repro.topology.fattree import FatTree
from repro.topology.state import ClusterState, mask_of


# ----------------------------------------------------------------------
# Recompute-from-scratch reference for every incremental index
# ----------------------------------------------------------------------
def assert_indexes_match_recomputed(state: ClusterState) -> None:
    tree = state.tree
    m1, m2 = tree.m1, tree.m2
    per_leaf = [
        int((state.node_owner[leaf * m1 : (leaf + 1) * m1] == -1).sum())
        for leaf in range(tree.num_leaves)
    ]
    assert per_leaf == state.free_per_leaf.tolist()
    for pod in range(tree.num_pods):
        counts = per_leaf[pod * m2 : (pod + 1) * m2]
        assert sum(counts) == int(state.pod_free[pod])
        assert counts.count(m1) == int(state.full_free_leaves[pod])
        for k in range(m1 + 1):
            assert sum(1 for c in counts if c >= k) == state.leaves_with_at_least(
                pod, k
            ), (pod, k)
        for f in range(m1 + 1):
            want = mask_of(j for j in range(m2) if counts[j] == f)
            assert want == state._leaf_buckets[pod][f], (pod, f)
        assert state.fully_free_leaf_mask(pod) == mask_of(
            j for j in range(m2) if counts[j] == m1
        )
    assert sum(per_leaf) == state.free_nodes_total
    state.audit()  # and the audit itself must agree


def random_claims(state: ClusterState, rng: random.Random, jid: int):
    """Claim a random set of free nodes; returns the claim size or 0."""
    free = np.flatnonzero(state.node_owner == -1).tolist()
    if not free:
        return 0
    size = rng.randint(1, min(len(free), state.tree.m1 * 3))
    state.claim(jid, rng.sample(free, size))
    return size


class TestIndexConsistency:
    def test_claim_release_soak(self):
        tree = FatTree.from_radix(8)
        state = ClusterState(tree)
        rng = random.Random(31)
        live = []
        jid = 0
        for _ in range(300):
            if live and (rng.random() < 0.45 or not state.free_nodes_total):
                state.release(live.pop(rng.randrange(len(live))))
            else:
                jid += 1
                if random_claims(state, rng, jid):
                    live.append(jid)
            assert_indexes_match_recomputed(state)
        while live:  # drain back to pristine
            state.release(live.pop())
            assert_indexes_match_recomputed(state)
        assert state.free_nodes_total == tree.num_nodes

    def test_fresh_state_indexes(self):
        tree = FatTree.from_radix(10)
        assert_indexes_match_recomputed(ClusterState(tree))

    def test_audit_detects_stale_leaf_ge(self):
        state = ClusterState(FatTree.from_radix(8))
        state._leaf_ge[1, 0] -= 1
        with pytest.raises(Exception, match="_leaf_ge"):
            state.audit()

    def test_audit_detects_stale_bucket(self):
        state = ClusterState(FatTree.from_radix(8))
        state._leaf_buckets[0][0] |= 1
        with pytest.raises(Exception, match="_leaf_buckets"):
            state.audit()


class TestReadOnlyView:
    def test_free_leaf_counts_mutation_raises(self):
        state = ClusterState(FatTree.from_radix(8))
        view = state.free_leaf_counts_in_pod(0)
        with pytest.raises(ValueError):
            view[0] = 0
        with pytest.raises(ValueError):
            view += 1

    def test_values_still_track_state(self):
        tree = FatTree.from_radix(8)
        state = ClusterState(tree)
        state.claim(1, [0, 1])
        assert int(state.free_leaf_counts_in_pod(0)[0]) == tree.m1 - 2


class TestReadHelperEquivalence:
    @pytest.fixture
    def state(self):
        tree = FatTree.from_radix(8)
        state = ClusterState(tree)
        rng = random.Random(7)
        jid = 0
        for _ in range(40):
            jid += 1
            random_claims(state, rng, jid)
        return state

    def test_leaf_candidates_is_best_fit_order(self, state):
        tree = state.tree
        for pod in range(tree.num_pods):
            free = state.free_leaf_counts_in_pod(pod)
            base = tree.first_leaf_of_pod(pod)
            for min_free in range(tree.m1 + 1):
                want = sorted(
                    (base + k for k in range(tree.m2) if free[k] >= min_free),
                    key=lambda leaf: (int(free[leaf - base]), leaf),
                )
                assert state.leaf_candidates(pod, min_free) == want

    def test_leaf_candidates_by_id_order(self, state):
        tree = state.tree
        for pod in range(tree.num_pods):
            free = state.free_leaf_counts_in_pod(pod)
            base = tree.first_leaf_of_pod(pod)
            for min_free in range(tree.m1 + 1):
                want = [
                    base + k for k in range(tree.m2) if free[k] >= min_free
                ]
                assert state.leaf_candidates_by_id(pod, min_free) == want

    def test_best_fit_leaf_is_candidate_head(self, state):
        tree = state.tree
        for pod in range(tree.num_pods):
            for min_free in range(tree.m1 + 1):
                cands = state.leaf_candidates(pod, min_free)
                assert state.best_fit_leaf(pod, min_free) == (
                    cands[0] if cands else None
                )

    def test_feasible_pods_matches_bruteforce(self, state):
        tree = state.tree
        rng = random.Random(5)
        for _ in range(50):
            min_free = rng.randint(0, tree.nodes_per_pod)
            k = rng.randint(0, tree.m1)
            min_leaves = rng.randint(0, tree.m2)
            min_full = rng.randint(0, tree.m2)
            got = state.feasible_pods(
                min_free, k, min_leaves, min_full
            ).tolist()
            want = []
            for pod in range(tree.num_pods):
                free = state.free_leaf_counts_in_pod(pod)
                if int(free.sum()) < min_free:
                    continue
                if min_leaves and sum(1 for f in free if f >= k) < min_leaves:
                    continue
                if min_full and sum(
                    1 for f in free if f == tree.m1
                ) < min_full:
                    continue
                want.append(pod)
            assert got == want, (min_free, k, min_leaves, min_full)


# ----------------------------------------------------------------------
# Indexed vs naive searches must make byte-identical decisions
# ----------------------------------------------------------------------
def drive_twins(scheme, radix, seed, steps, max_size, **kwargs):
    """Run indexed and naive twins through one random workload."""
    tree = FatTree.from_radix(radix)
    fast = make_allocator(scheme, tree, **kwargs)
    slow = make_allocator(scheme, tree, **kwargs)
    slow.use_indexes = False
    assert fast.use_indexes
    rng = random.Random(seed)
    live = []
    jid = 0
    placed = failed = 0
    for _ in range(steps):
        if live and rng.random() < 0.4:
            j = live.pop(rng.randrange(len(live)))
            fast.release(j)
            slow.release(j)
            continue
        jid += 1
        size = rng.randint(1, max_size)
        a = fast.allocate(jid, size)
        b = slow.allocate(jid, size)
        if (a is None) != (b is None):
            raise AssertionError(
                f"{scheme}: job {jid} size {size}: "
                f"indexed={'ok' if a else 'fail'} "
                f"naive={'ok' if b else 'fail'}"
            )
        if a is None:
            failed += 1
            continue
        assert a.nodes == b.nodes, (scheme, jid, size)
        assert a.leaf_links == b.leaf_links, (scheme, jid, size)
        assert a.spine_links == b.spine_links, (scheme, jid, size)
        assert a.shape == b.shape, (scheme, jid, size)
        live.append(jid)
        placed += 1
    assert placed, "workload never placed a job — not a meaningful test"
    assert (fast.state.node_owner == slow.state.node_owner).all()
    fast.state.audit()
    return fast, slow, failed


class TestSearchEquivalence:
    @pytest.mark.parametrize("scheme", ["jigsaw", "laas", "ta", "lc+s", "lc"])
    def test_small_jobs(self, scheme):
        drive_twins(scheme, radix=8, seed=11, steps=120, max_size=10)

    @pytest.mark.parametrize("scheme", ["jigsaw", "laas", "ta", "lc+s"])
    def test_pod_spanning_jobs(self, scheme):
        tree = FatTree.from_radix(8)
        drive_twins(
            scheme, radix=8, seed=12, steps=80,
            max_size=tree.nodes_per_pod + tree.m1,
        )

    def test_lcs_tight_budget_timeouts_match(self):
        # A budget small enough that searches genuinely exhaust it:
        # the memo's tick-charging must reproduce the exact step at
        # which BudgetExhausted fires, or the twins diverge.
        tree = FatTree.from_radix(8)
        fast, slow, failed = drive_twins(
            "lc+s", radix=8, seed=13, steps=100,
            max_size=tree.nodes_per_pod + 2 * tree.m1,
            step_budget=150,
        )
        assert failed, "budget never fired — test lost its teeth"

    def test_pod_memo_hit_replays_identical_cost(self):
        # A memo hit must charge the budget exactly what the original
        # call cost — otherwise BudgetExhausted fires at a different
        # step than the uncached search and decisions diverge.
        tree = FatTree.from_radix(8)
        allocator = make_allocator("lc+s", tree)
        allocator.state.claim(1, [0, 5, 17])
        allocator._steps_left = allocator.step_budget
        allocator._pod_memo.clear()

        before = allocator._steps_left
        first = allocator._find_all_in_pod(0, 2, 3, 0)
        cost = before - allocator._steps_left
        assert first and cost > 0
        assert allocator.stats.memo_hits == 0

        before = allocator._steps_left
        again = allocator._find_all_in_pod(0, 2, 3, 0)
        assert allocator.stats.memo_hits == 1
        assert again is first  # replayed, not re-searched
        assert before - allocator._steps_left == cost

        # ...and a hit still raises BudgetExhausted when the replayed
        # cost exhausts what's left, exactly like the real search would.
        allocator._steps_left = cost
        with pytest.raises(allocator.BudgetExhausted):
            allocator._find_all_in_pod(0, 2, 3, 0)
        assert allocator.stats.memo_hits == 2

    def test_search_effort_counters_populate(self):
        fast, _slow, _failed = drive_twins(
            "jigsaw", radix=8, seed=14, steps=100, max_size=20
        )
        stats = fast.stats
        assert stats.pods_pruned > 0
        assert stats.candidate_hits > 0
        assert stats.backtrack_steps > 0
        # the naive twin never consults the index layer
        assert _slow.stats.candidate_hits == 0
        assert _slow.stats.pods_pruned == 0

    def test_naive_env_knob(self, monkeypatch):
        tree = FatTree.from_radix(8)
        monkeypatch.setenv("REPRO_NAIVE_SEARCH", "1")
        assert make_allocator("jigsaw", tree).use_indexes is False
        monkeypatch.setenv("REPRO_NAIVE_SEARCH", "0")
        assert make_allocator("jigsaw", tree).use_indexes is True
        monkeypatch.delenv("REPRO_NAIVE_SEARCH")
        assert make_allocator("ta", tree).use_indexes is True
