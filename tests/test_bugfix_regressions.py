"""Regression tests for three scheduling-correctness fixes.

Each test encodes a scenario that the pre-fix simulator got wrong:

* conservative backfilling double-booked profile capacity for a job the
  allocator had already refused this pass;
* planning estimates under a runtime model disagreed between the
  running-set completion times and ``walltime_est``;
* the under-demand utilization denominator counted fault-claimed nodes
  as available capacity.
"""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.sched.job import Job
from repro.sched.resilience import FaultSpec, FaultTimeline
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # 128 nodes


def by_id(result):
    return {r.job_id: r for r in result.jobs}


class FussyAllocator(BaselineAllocator):
    """Refuses 64-node placements unless the whole cluster is free.

    A stand-in for fragmentation: the free-node *count* says a 64-node
    job fits while the allocator's actual search cannot place it — the
    exact situation where the free profile and the allocator disagree.
    """

    def allocate(self, job_id, size, bw_need=None):
        if size == 64 and self.free_nodes < 128:
            return None
        return super().allocate(job_id, size, bw_need=bw_need)


class TestConservativeDoubleBooking:
    """A repeat allocator failure must not reserve capacity at ``now``.

    Queue at t=0: A(60) starts; B(64) fails the allocator (fussy) and
    correctly defers its reservation to the next release; C(64) hits the
    same memoized failure — pre-fix it fell through and reserved 64
    nodes at t=0 that it provably could not use, pushing D(8)'s
    reservation (and start) behind phantom load.
    """

    def _run(self, tree):
        jobs = [
            Job(id=1, size=60, runtime=100.0),
            Job(id=2, size=64, runtime=100.0),
            Job(id=3, size=64, runtime=100.0),
            Job(id=4, size=8, runtime=10.0),
        ]
        sim = Simulator(FussyAllocator(tree), backfill_policy="conservative")
        return by_id(sim.run(jobs))

    def test_memoized_failure_does_not_block_backfill(self, tree):
        recs = self._run(tree)
        # Pre-fix: C's phantom reservation at t=0 left only 4 free nodes
        # in the profile, so D was planned (and started) at t=100.
        assert recs[4].start == 0.0

    def test_deferred_jobs_unaffected(self, tree):
        recs = self._run(tree)
        assert recs[1].start == 0.0
        assert recs[2].start == pytest.approx(100.0)
        assert recs[3].start == pytest.approx(200.0)


class DoublingModel:
    """Minimal runtime model: every job runs 2x its base runtime."""

    def on_start(self, alloc, isolating):
        return 2.0

    def on_release(self, job_id):
        pass


class TestPlanningEstimateConsistency:
    """The running set and ``walltime_est`` must use one estimate source.

    Pre-fix, ``running[job.id]`` recorded the contention-*scaled* end
    (``now + actual * estimate_factor``) while ``walltime_est`` used the
    base runtime, so the head's shadow time (from ``running``) and the
    backfill walltimes (from ``walltime_est``) described different
    clocks: a backfill candidate could be admitted against the inflated
    shadow and then delay the head past the point the base estimates
    promised.
    """

    def _run(self, tree):
        jobs = [
            Job(id=1, size=127, runtime=100.0),
            Job(id=2, size=128, runtime=50.0, arrival=1.0),
            Job(id=3, size=1, runtime=150.0, arrival=1.0),
        ]
        sim = Simulator(BaselineAllocator(tree),
                        runtime_model=DoublingModel())
        return by_id(sim.run(jobs))

    def test_backfill_cannot_delay_head_via_inflated_shadow(self, tree):
        recs = self._run(tree)
        # Planning sees job 1 ending at its estimate (t=100), so job 3
        # (est 150) must not backfill against the head's reservation.
        # Pre-fix the shadow was the scaled end (t=200), job 3 slipped
        # in at t=1, ran doubled until t=301, and held the head's nodes:
        # job 2 started at 301 instead of 200.
        assert recs[2].start == pytest.approx(200.0)
        assert recs[3].start >= recs[2].start

    def test_actual_runtimes_still_scaled(self, tree):
        recs = self._run(tree)
        assert recs[1].end == pytest.approx(200.0)  # 100 * 2.0
        assert recs[2].end - recs[2].start == pytest.approx(100.0)


class TestDegradedUtilizationDenominator:
    """Utilization during faults is measured against in-service nodes.

    Half the cluster fails permanently at t=0; the surviving half runs
    back-to-back 64-node jobs, i.e. every node that *can* work is
    working whenever the queue is non-empty.  Steady-state utilization
    must therefore be 100% — pre-fix the denominator kept counting the
    64 dead nodes and reported 50%.
    """

    def _run(self, tree):
        timeline = FaultTimeline(
            tuple(FaultSpec(0.0, "node", (n,)) for n in range(64, 128))
        )
        jobs = [
            Job(id=1, size=64, runtime=100.0),
            Job(id=2, size=64, runtime=100.0),
        ]
        sim = Simulator(BaselineAllocator(tree), fault_timeline=timeline)
        return sim.run(jobs)

    def test_steady_state_uses_in_service_capacity(self, tree):
        result = self._run(tree)
        assert result.steady_state_utilization == pytest.approx(100.0)

    def test_degraded_integral_unchanged(self, tree):
        result = self._run(tree)
        # 64 nodes down for the whole 200s run.
        assert result.degraded_node_seconds == pytest.approx(64 * 200.0)
        assert result.faults_injected == 64
        assert len(result.jobs) == 2
