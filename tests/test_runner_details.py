"""Experiment-runner details: cluster bindings and arrival scaling."""

import pytest

from repro.experiments.runner import (
    ARRIVAL_SCALE,
    DEFAULT_JOB_COUNTS,
    PAPER_JOB_COUNTS,
    TRACE_CLUSTER_RADIX,
    paper_setup,
    run_scheme,
)
from repro.traces import cab_like


def test_every_trace_has_complete_bindings():
    for name in PAPER_JOB_COUNTS:
        assert name in DEFAULT_JOB_COUNTS
        assert name in TRACE_CLUSTER_RADIX


def test_arrival_scaling_halves_aug_and_nov():
    assert ARRIVAL_SCALE == {"Aug-Cab": 0.5, "Nov-Cab": 0.5}
    n = 400
    raw = cab_like("aug", num_jobs=n)
    setup = paper_setup("Aug-Cab", scale=PAPER_JOB_COUNTS["Aug-Cab"] and None)
    # rebuild at matching size for the comparison
    setup_trace = cab_like("aug", num_jobs=len(setup.trace)).scale_arrivals(0.5)
    assert setup.trace.jobs[-1].arrival == pytest.approx(
        setup_trace.jobs[-1].arrival
    )
    # and the scaled arrivals really are half the raw ones
    raw_half = raw.scale_arrivals(0.5)
    assert raw_half.jobs[50].arrival == pytest.approx(raw.jobs[50].arrival / 2)


def test_synthetic_sizes_clamped_to_cluster():
    setup = paper_setup("Synth-16", scale=0.01)
    assert max(j.size for j in setup.trace.jobs) <= setup.tree.num_nodes


def test_scenario_application_is_per_run(tmp_path=None):
    setup = paper_setup("Synth-16", scale=0.004)
    with_speedup = run_scheme(setup, "jigsaw", scenario="20%")
    without = run_scheme(setup, "jigsaw", scenario="none")
    assert with_speedup.makespan < without.makespan


def test_allocator_kwargs_forwarded():
    setup = paper_setup("Synth-16", scale=0.004)
    result = run_scheme(setup, "jigsaw", strategy="first", order="sparse")
    assert len(result.jobs) == len(setup.trace)


def test_backfill_window_forwarded():
    setup = paper_setup("Synth-16", scale=0.004)
    fifo = run_scheme(setup, "jigsaw", backfill_window=0)
    easy = run_scheme(setup, "jigsaw", backfill_window=50)
    assert fifo.mean_turnaround >= easy.mean_turnaround * 0.5  # both sane
