"""Campaign runner: persistence, resume, reporting."""

import json

import pytest

from repro.experiments.campaign import Campaign, RunKey, RunRecord

TINY = 0.003


class TestRunKey:
    def test_roundtrip(self):
        key = RunKey("Synth-16", "jigsaw", "10%", 3)
        assert RunKey.from_str(key.as_str()) == key


class TestCampaign:
    def test_in_memory_run(self):
        c = Campaign(scale=TINY)
        records = c.run(["Synth-16"], ["baseline", "jigsaw"])
        assert len(records) == 2
        util = c.value("Synth-16", "jigsaw", "steady_state_utilization")
        assert 0 < util <= 100

    def test_persistence_and_resume(self, tmp_path):
        path = tmp_path / "campaign.json"
        c1 = Campaign(path, scale=TINY)
        c1.run(["Synth-16"], ["jigsaw"])
        assert path.exists()

        c2 = Campaign(path, scale=TINY)
        assert len(c2.records) == 1
        # resumed runs are skipped: record identity preserved
        before = dict(c2.records)
        c2.run(["Synth-16"], ["jigsaw"])
        assert c2.records == before

    def test_incremental_extension(self, tmp_path):
        path = tmp_path / "campaign.json"
        c = Campaign(path, scale=TINY)
        c.run(["Synth-16"], ["jigsaw"])
        c.run(["Synth-16"], ["jigsaw", "baseline"])  # adds only baseline
        data = json.loads(path.read_text())
        assert len(data["runs"]) == 2

    def test_scale_mismatch_rejected(self, tmp_path):
        path = tmp_path / "campaign.json"
        Campaign(path, scale=TINY).run(["Synth-16"], ["jigsaw"])
        with pytest.raises(ValueError, match="scale"):
            Campaign(path, scale=0.5)

    def test_scenarios_and_seeds(self):
        c = Campaign(scale=TINY)
        c.run(["Synth-16"], ["jigsaw"], scenarios=("none", "20%"), seeds=(0, 1))
        assert len(c.records) == 4
        no_speedup = c.value(
            "Synth-16", "jigsaw", "mean_turnaround", scenario="none"
        )
        speedup = c.value(
            "Synth-16", "jigsaw", "mean_turnaround", scenario="20%"
        )
        assert speedup < no_speedup

    def test_table_rendering(self):
        c = Campaign(scale=TINY)
        c.run(["Synth-16"], ["baseline", "jigsaw"])
        text = c.table()
        assert "Synth-16" in text
        assert "jigsaw" in text
        assert "(no campaign runs" in c.table(scenario="v2")

    def test_wall_seconds_accumulate(self):
        c = Campaign(scale=TINY)
        c.run(["Synth-16"], ["jigsaw"])
        assert c.total_wall_seconds > 0

    def test_parallel_matches_serial(self, tmp_path):
        serial = Campaign(scale=TINY)
        serial.run(["Synth-16"], ["baseline", "jigsaw"])
        parallel = Campaign(tmp_path / "p.json", scale=TINY)
        parallel.run_parallel(
            ["Synth-16"], ["baseline", "jigsaw"], workers=2
        )
        for key, record in serial.records.items():
            for metric, value in record.metrics.items():
                if metric == "mean_sched_time_per_job":
                    continue  # wall clock: inherently non-deterministic
                assert parallel.records[key].metrics[metric] == pytest.approx(
                    value, rel=1e-9
                ), (key, metric)

    def test_parallel_resumes(self, tmp_path):
        c = Campaign(tmp_path / "p.json", scale=TINY)
        c.run(["Synth-16"], ["jigsaw"])
        done = c.run_parallel(["Synth-16"], ["jigsaw"], workers=2)
        assert len(done) == 1  # nothing re-ran

    def test_record_json_roundtrip(self):
        rec = RunRecord(
            key=RunKey("Synth-16", "ta", "v2", 1),
            metrics={"steady_state_utilization": 91.5},
            num_jobs=42,
            wall_seconds=1.5,
        )
        assert RunRecord.from_json(rec.to_json()) == rec
