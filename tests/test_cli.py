"""CLI wiring at tiny scale."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1", "--scale", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Thunder" in out


def test_fig6_subset(capsys):
    assert main(["fig6", "--scale", "0.004", "--traces", "Synth-16"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "jigsaw" in out


def test_simulate(capsys):
    assert main([
        "simulate", "--scale", "0.004", "--trace", "Synth-16",
        "--scheme", "jigsaw", "--scenario", "10%",
    ]) == 0
    out = capsys.readouterr().out
    assert "jigsaw on Synth-16" in out
    assert "instantaneous histogram" in out


def test_frag(capsys):
    assert main(["frag", "--radix", "8", "--occupancy", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "largest placeable job" in out
    assert "per-pod free capacity" in out


def test_contention(capsys):
    assert main(["contention", "--radix", "8", "--jobs", "5", "9"]) == 0
    out = capsys.readouterr().out
    assert "baseline D-mod-k" in out
    assert "rearranged" in out


def test_check(capsys):
    assert main(["check", "--scale", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "5/5 claims reproduced" in out
    assert "rearrangeable non-blocking" in out


def test_campaign(tmp_path, capsys):
    out = tmp_path / "c.json"
    args = ["campaign", "--scale", "0.004", "--out", str(out),
            "--traces", "Synth-16", "--schemes", "baseline", "jigsaw"]
    assert main(args) == 0
    assert out.exists()
    first = capsys.readouterr().out
    assert "Campaign: steady_state_utilization" in first
    # resumable: second invocation runs nothing new but reports the same
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "total simulated wall time" in second


def test_unknown_trace_rejected():
    with pytest.raises(SystemExit):
        main(["fig6", "--traces", "NotATrace"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
