"""CLI wiring at tiny scale."""

import pytest

from repro.cli import main


def test_table1(capsys):
    assert main(["table1", "--scale", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Thunder" in out


def test_fig6_subset(capsys):
    assert main(["fig6", "--scale", "0.004", "--traces", "Synth-16"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "jigsaw" in out


def test_simulate(capsys):
    assert main([
        "simulate", "--scale", "0.004", "--trace", "Synth-16",
        "--scheme", "jigsaw", "--scenario", "10%",
    ]) == 0
    out = capsys.readouterr().out
    assert "jigsaw on Synth-16" in out
    assert "instantaneous histogram" in out


def test_simulate_telemetry_outputs(tmp_path, capsys):
    import json

    trace_out = tmp_path / "t.json"
    trace_jsonl = tmp_path / "t.jsonl"
    metrics_out = tmp_path / "m.prom"
    samples_out = tmp_path / "s.jsonl"
    assert main([
        "simulate", "--scale", "0.004", "--trace", "Synth-16",
        "--scheme", "jigsaw",
        "--trace-out", str(trace_out),
        "--trace-jsonl", str(trace_jsonl),
        "--metrics-out", str(metrics_out),
        "--samples-out", str(samples_out),
        "--sample-interval", "1800",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out and "metrics:" in out and "samples:" in out
    doc = json.loads(trace_out.read_text())
    assert doc["traceEvents"], "expected span events"
    assert any(e["name"] == "alloc.search" for e in doc["traceEvents"])
    assert trace_jsonl.read_text().strip()
    assert "# TYPE repro_alloc_attempts_total counter" in (
        metrics_out.read_text()
    )
    rows = [json.loads(l) for l in samples_out.read_text().splitlines()]
    assert rows and all("util_pct" in r for r in rows)


def test_obs_summarize(tmp_path, capsys):
    trace_out = tmp_path / "t.json"
    assert main([
        "simulate", "--scale", "0.004", "--trace", "Synth-16",
        "--scheme", "baseline", "--trace-out", str(trace_out),
    ]) == 0
    capsys.readouterr()
    assert main(["obs", "summarize", str(trace_out)]) == 0
    out = capsys.readouterr().out
    assert "alloc.search" in out
    assert "mean ms" in out


def test_frag(capsys):
    assert main(["frag", "--radix", "8", "--occupancy", "0.5"]) == 0
    out = capsys.readouterr().out
    assert "largest placeable job" in out
    assert "per-pod free capacity" in out


def test_contention(capsys):
    assert main(["contention", "--radix", "8", "--jobs", "5", "9"]) == 0
    out = capsys.readouterr().out
    assert "baseline D-mod-k" in out
    assert "rearranged" in out


def test_check(capsys):
    assert main(["check", "--scale", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "5/5 claims reproduced" in out
    assert "rearrangeable non-blocking" in out


def test_campaign(tmp_path, capsys):
    out = tmp_path / "c.json"
    args = ["campaign", "--scale", "0.004", "--out", str(out),
            "--traces", "Synth-16", "--schemes", "baseline", "jigsaw"]
    assert main(args) == 0
    assert out.exists()
    first = capsys.readouterr().out
    assert "Campaign: steady_state_utilization" in first
    # resumable: second invocation runs nothing new but reports the same
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "total simulated wall time" in second


def test_unknown_trace_rejected():
    with pytest.raises(SystemExit):
        main(["fig6", "--traces", "NotATrace"])


def test_command_required():
    with pytest.raises(SystemExit):
        main([])
