"""Regression tests for the scheduler hot-path fixes.

Covers: the FIFO queue/started-set memory leak (live bookkeeping must
stay bounded on long traces), unscheduled jobs being reported as ids
and logged, LinkCapacityState clamping only the links a release
touched, and ClusterState.claim rejecting out-of-range node ids with
AllocationError instead of numpy's IndexError (or silent negative-index
wrap-around).
"""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.sched.job import Job
from repro.sched.log import ScheduleLog
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree
from repro.topology.faults import FaultInjector
from repro.topology.state import AllocationError, ClusterState, LinkCapacityState


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # 128 nodes


class TestBoundedQueueBookkeeping:
    def test_fifo_queue_stays_bounded_on_long_trace(self, tree):
        # 2000 jobs, each starting as the previous one completes: the
        # live backlog never exceeds a couple of jobs.  Before the
        # compaction fix the FIFO list kept every job ever enqueued, so
        # peak_queue_len reached ~n_jobs.
        n_jobs = 2000
        jobs = [
            Job(id=i, size=1, runtime=1.0, arrival=float(i))
            for i in range(n_jobs)
        ]
        sim = Simulator(BaselineAllocator(tree))
        result = sim.run(jobs)
        assert len(result.jobs) == n_jobs
        assert not result.unscheduled
        assert sim.peak_queue_len < 200, (
            f"live FIFO queue grew to {sim.peak_queue_len} entries "
            f"for a trace whose backlog never exceeds a few jobs"
        )

    def test_started_out_of_order_is_pruned(self, tree):
        # Each round: a blocker fills 120 nodes, a same-size job queues
        # behind it as the blocked head, and two small jobs backfill
        # into the 8 spare nodes.  The backfilled ids enter the
        # started-out-of-order set and must be pruned as the head
        # passes them — without pruning the set grows by two per round.
        jobs = []
        jid = 0
        rounds = 200
        for r in range(rounds):
            t = r * 30.0
            jid += 1
            jobs.append(Job(id=jid, size=120, runtime=10.0, arrival=t))
            jid += 1
            jobs.append(Job(id=jid, size=120, runtime=5.0, arrival=t + 1.0))
            for k in range(2):
                jid += 1
                jobs.append(
                    Job(id=jid, size=4, runtime=2.0, arrival=t + 1.5 + 0.1 * k)
                )
        log = ScheduleLog()
        sim = Simulator(BaselineAllocator(tree), event_log=log)
        result = sim.run(jobs)
        assert len(result.jobs) == len(jobs)
        # Backfills must actually have happened for this test to mean
        # anything.
        assert log.start_mechanisms()["backfill"] >= rounds
        assert sim.peak_started_out_of_order < 20, (
            f"started-out-of-order set grew to "
            f"{sim.peak_started_out_of_order} ids across {rounds} rounds"
        )
        assert sim.peak_queue_len < 200

    def _backfill_heavy_trace(self):
        # Every round a blocker occupies the machine, a same-size job
        # waits as the blocked head, and two small-but-long jobs sort
        # *behind* the head under "largest" (by size) and "sjf" (by
        # estimate) yet fit the spare nodes — so they backfill, leaving
        # two stale priority-heap entries per round.
        jobs = []
        jid = 0
        for r in range(150):
            t = r * 30.0
            jid += 1
            jobs.append(Job(id=jid, size=120, runtime=10.0, arrival=t))
            jid += 1
            jobs.append(Job(id=jid, size=120, runtime=5.0, arrival=t + 1.0))
            for k in range(2):
                jid += 1
                jobs.append(
                    Job(id=jid, size=4, runtime=12.0, arrival=t + 1.5 + 0.1 * k)
                )
        return jobs

    def test_priority_heap_stale_entries_stay_bounded(self, tree):
        # Before the eager compaction, backfilled jobs lingered in the
        # priority heap until they surfaced at the top, and every
        # scheduling pass paid heapq.nsmallest(window + 1 + stale) —
        # O(Q log Q) as the stale share grew.
        jobs = self._backfill_heavy_trace()
        log = ScheduleLog()
        sim = Simulator(
            BaselineAllocator(tree), queue_order="largest", event_log=log
        )
        result = sim.run(jobs)
        assert len(result.jobs) == len(jobs)
        # Backfills must actually have happened for this test to bite.
        assert log.start_mechanisms()["backfill"] >= 100
        assert sim.peak_pheap_stale <= 2 * Simulator.PHEAP_COMPACT_MIN, (
            f"stale priority-heap entries grew to {sim.peak_pheap_stale}"
        )

    def test_priority_heap_compaction_is_decision_invariant(self, tree):
        # Forcing a compaction after every backfill must not change a
        # single scheduling decision relative to never compacting (the
        # pre-fix behavior).
        jobs = self._backfill_heavy_trace()
        for order in ("largest", "sjf"):
            lazy = Simulator(BaselineAllocator(tree), queue_order=order)
            lazy.PHEAP_COMPACT_MIN = 10**9  # never compact eagerly
            eager = Simulator(BaselineAllocator(tree), queue_order=order)
            eager.PHEAP_COMPACT_MIN = 1  # compact at every opportunity
            result_lazy = lazy.run(jobs)
            result_eager = eager.run(jobs)
            assert result_lazy.jobs == result_eager.jobs, order
            assert result_lazy.makespan == result_eager.makespan, order

    def test_compaction_mid_backfill_pass_cannot_revive_entries(self, tree):
        # Regression: a compaction triggered by a backfill *inside* a
        # window_candidates pass used to remove old stale ids from the
        # tracking set while they were still in the pass's snapshot —
        # the snapshot entry then looked live and its (long-finished)
        # job was started a second time, silently losing other jobs.
        # A dense all-at-zero mixed-size queue under a *constrained*
        # allocator (fragmentation blocks the head while backfills keep
        # landing) keeps many stale entries interleaved with live ones
        # inside a single snapshot.
        from repro.core.jigsaw import JigsawAllocator

        jobs = [
            Job(id=i, size=(i * 5) % 30 + 1, runtime=5.0 + i % 7)
            for i in range(200)
        ]
        for order in ("sjf", "smallest", "largest"):
            lazy = Simulator(JigsawAllocator(tree), queue_order=order)
            lazy.PHEAP_COMPACT_MIN = 10**9
            eager = Simulator(JigsawAllocator(tree), queue_order=order)
            eager.PHEAP_COMPACT_MIN = 1
            result_lazy = lazy.run(jobs)
            result_eager = eager.run(jobs)
            assert len(result_eager.jobs) == len(jobs), order
            assert result_lazy.jobs == result_eager.jobs, order


class TestUnscheduledJobs:
    def test_unscheduled_ids_and_log(self, tree):
        # With one node down, a full-machine job can never start; the
        # simulator must drain it as unscheduled (reporting the *id*)
        # and log the decision.
        log = ScheduleLog()
        sim = Simulator(BaselineAllocator(tree), event_log=log)
        FaultInjector(sim.allocator).fail_node(0)
        result = sim.run([Job(id=7, size=tree.num_nodes, runtime=5.0)])
        assert result.unscheduled == [7]
        assert all(isinstance(j, int) for j in result.unscheduled)
        assert not result.jobs
        events = [e for e in log.events if e.kind == "unscheduled"]
        assert len(events) == 1
        assert events[0].job_id == 7
        assert events[0].size == tree.num_nodes


class TestLinkReleaseClamp:
    def test_float_residue_is_clamped_on_touched_links(self, tree):
        links = LinkCapacityState(tree)
        # 0.3 and 0.6 have no exact binary representation: 0.3 + 0.6 -
        # 0.6 - 0.3 is a tiny *negative* number in floats, which must be
        # clamped to exactly zero on the touched link.
        link = (0, 0)
        links.claim(1, [link], [], need=0.3)
        links.claim(2, [link], [], need=0.6)
        links.release(2)
        links.release(1)
        assert links.leaf_bw[0][0] == 0.0

    def test_untouched_links_are_left_alone(self, tree):
        # The old code clamped the *entire* arrays on every release,
        # masking accounting bugs on links the job never used.  Plant a
        # negative value on an untouched link and check a release
        # elsewhere does not launder it.
        links = LinkCapacityState(tree)
        links.claim(1, [(0, 0)], [(0, 0, 0)], need=0.5)
        links.leaf_bw[3][1] = -1e-12
        links.spine_bw[1][0][0] = -1e-12
        links.release(1)
        assert links.leaf_bw[0][0] == 0.0
        assert links.spine_bw[0][0][0] == 0.0
        assert links.leaf_bw[3][1] == -1e-12
        assert links.spine_bw[1][0][0] == -1e-12


class TestClaimBounds:
    def test_node_id_past_the_end(self, tree):
        state = ClusterState(tree)
        with pytest.raises(AllocationError, match="outside the cluster"):
            state.claim(1, [tree.num_nodes])
        state.audit()
        assert state.free_nodes_total == tree.num_nodes

    def test_negative_node_id(self, tree):
        # numpy would silently wrap -1 to the last node; the claim must
        # be rejected instead.
        state = ClusterState(tree)
        with pytest.raises(AllocationError, match="outside the cluster"):
            state.claim(1, [-1])
        state.audit()
        assert state.free_nodes_total == tree.num_nodes
        assert state.node_owner[tree.num_nodes - 1] == -1

    def test_partial_claim_not_applied(self, tree):
        # A claim that mixes valid and invalid ids must not leave the
        # valid prefix claimed.
        state = ClusterState(tree)
        with pytest.raises(AllocationError):
            state.claim(1, [0, 1, tree.num_nodes + 5])
        state.audit()
        assert state.free_nodes_total == tree.num_nodes
        assert state.node_owner[0] == -1
