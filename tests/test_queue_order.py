"""Priority queue orders (extension): SJF and size-based policies."""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.core.jigsaw import JigsawAllocator
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def run(tree, jobs, order, **kw):
    return Simulator(BaselineAllocator(tree), queue_order=order, **kw).run(jobs)


def by_id(result):
    return {r.job_id: r for r in result.jobs}


class TestOrders:
    def test_sjf_runs_short_job_first(self, tree):
        jobs = [
            Job(id=1, size=128, runtime=10.0),  # occupies the machine
            Job(id=2, size=128, runtime=100.0),
            Job(id=3, size=128, runtime=5.0),
        ]
        fifo = run(tree, jobs, "fifo")
        assert by_id(fifo)[2].start < by_id(fifo)[3].start
        sjf = run(tree, jobs, "sjf")
        assert by_id(sjf)[3].start < by_id(sjf)[2].start

    def test_smallest_first(self, tree):
        jobs = [
            Job(id=1, size=128, runtime=10.0),
            Job(id=2, size=100, runtime=10.0),
            Job(id=3, size=10, runtime=10.0),
        ]
        result = run(tree, jobs, "smallest")
        assert by_id(result)[3].start <= by_id(result)[2].start

    def test_largest_first(self, tree):
        jobs = [
            Job(id=1, size=128, runtime=10.0),
            Job(id=2, size=10, runtime=10.0),
            Job(id=3, size=100, runtime=10.0),
        ]
        result = run(tree, jobs, "largest")
        recs = by_id(result)
        assert recs[3].start <= recs[2].start

    def test_ties_fall_back_to_arrival_order(self, tree):
        jobs = [Job(id=i, size=128, runtime=10.0) for i in (4, 9, 2)]
        result = run(tree, jobs, "smallest")
        recs = by_id(result)
        assert recs[4].start < recs[9].start < recs[2].start

    def test_backfilling_still_works_under_sjf(self, tree):
        jobs = [
            Job(id=1, size=100, runtime=50.0),
            Job(id=2, size=100, runtime=60.0),   # head after 1 starts
            Job(id=3, size=20, runtime=40.0),    # backfills beside job 1
        ]
        result = run(tree, jobs, "sjf")
        assert by_id(result)[3].start == 0.0

    def test_all_jobs_complete_with_constrained_allocator(self, tree):
        jobs = [
            Job(id=i, size=(i * 5) % 30 + 1, runtime=5.0 + i % 7)
            for i in range(200)
        ]
        for order in ("sjf", "smallest", "largest"):
            result = Simulator(
                JigsawAllocator(tree), queue_order=order
            ).run(jobs)
            assert len(result.jobs) == 200, order
            assert not result.unscheduled


class TestValidation:
    def test_unknown_order(self, tree):
        with pytest.raises(ValueError, match="queue order"):
            Simulator(BaselineAllocator(tree), queue_order="lifo")

    def test_priority_requires_easy(self, tree):
        with pytest.raises(ValueError, match="EASY"):
            Simulator(
                BaselineAllocator(tree),
                queue_order="sjf",
                backfill_policy="conservative",
            )
