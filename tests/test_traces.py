"""Trace container and generators (Table 1 conformance)."""

import numpy as np
import pytest

from repro.sched.job import Job
from repro.traces import (
    PAPER_TRACES,
    Trace,
    assign_bandwidth_classes,
    atlas_like,
    cab_like,
    synthetic_trace,
    thunder_like,
)
from repro.traces.synthetic import BANDWIDTH_CLASSES


class TestTraceContainer:
    def test_sorted_by_arrival(self):
        jobs = [
            Job(id=1, size=1, runtime=1.0, arrival=5.0),
            Job(id=2, size=1, runtime=1.0, arrival=1.0),
        ]
        trace = Trace("t", jobs, has_arrivals=True)
        assert [j.id for j in trace] == [2, 1]
        assert len(trace) == 2

    def test_duplicate_ids_rejected(self):
        jobs = [Job(id=1, size=1, runtime=1.0)] * 2
        with pytest.raises(ValueError):
            Trace("t", jobs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace("t", [])

    def test_head_preserves_distribution_knobs(self):
        trace = synthetic_trace(16, num_jobs=100, seed=0)
        head = trace.head(10)
        assert len(head) == 10
        assert head.name.startswith("Synth-16")
        assert [j.id for j in head] == [j.id for j in trace][:10]
        # jobs are copies: mutating the head does not touch the original
        head.jobs[0].speedup = 0.9
        assert trace.jobs[0].speedup == 0.0

    def test_head_noop_when_larger(self):
        trace = synthetic_trace(16, num_jobs=10, seed=0)
        assert trace.head(50) is trace

    def test_scale_arrivals(self):
        trace = cab_like("aug", num_jobs=400)
        scaled = trace.scale_arrivals(0.5)
        orig = [j.arrival for j in trace.jobs]
        new = [j.arrival for j in scaled.jobs]
        assert new == [a * 0.5 for a in orig]

    def test_zeroed_arrivals(self):
        trace = cab_like("sep", num_jobs=400).zeroed_arrivals()
        assert all(j.arrival == 0.0 for j in trace.jobs)
        assert not trace.has_arrivals

    def test_stats_row(self):
        trace = synthetic_trace(16, num_jobs=50, seed=0)
        row = trace.stats().as_row()
        assert row["Number of jobs"] == 50
        assert row["Arrival times"] == "N"


class TestSyntheticTrace:
    def test_mean_size_approximate(self):
        trace = synthetic_trace(16, num_jobs=5000, seed=0)
        sizes = np.array([j.size for j in trace.jobs])
        assert 14 < sizes.mean() < 18

    def test_runtimes_uniform_in_range(self):
        trace = synthetic_trace(16, num_jobs=2000, seed=0)
        rts = np.array([j.runtime for j in trace.jobs])
        assert rts.min() >= 20.0 and rts.max() <= 3000.0
        # roughly uniform: the mean sits near the midpoint
        assert 1300 < rts.mean() < 1700

    def test_all_arrive_at_zero(self):
        trace = synthetic_trace(16, num_jobs=100, seed=0)
        assert all(j.arrival == 0.0 for j in trace.jobs)

    def test_contains_single_node_jobs(self):
        trace = synthetic_trace(16, num_jobs=3000, seed=0)
        assert any(j.size == 1 for j in trace.jobs)

    def test_max_size_clamp(self):
        trace = synthetic_trace(16, num_jobs=3000, max_size=64, seed=0)
        assert max(j.size for j in trace.jobs) <= 64

    def test_deterministic_by_seed(self):
        a = synthetic_trace(16, num_jobs=100, seed=5)
        b = synthetic_trace(16, num_jobs=100, seed=5)
        c = synthetic_trace(16, num_jobs=100, seed=6)
        assert [(j.size, j.runtime) for j in a] == [(j.size, j.runtime) for j in b]
        assert [(j.size, j.runtime) for j in a] != [(j.size, j.runtime) for j in c]

    def test_validation(self):
        with pytest.raises(ValueError):
            synthetic_trace(0)
        with pytest.raises(ValueError):
            synthetic_trace(16, num_jobs=0)
        with pytest.raises(ValueError):
            synthetic_trace(16, min_runtime=-1.0)
        with pytest.raises(ValueError):
            synthetic_trace(16, min_runtime=100.0, max_runtime=10.0)

    def test_bandwidth_classes(self):
        trace = synthetic_trace(16, num_jobs=500, seed=0)
        assert all(j.bw_need in BANDWIDTH_CLASSES for j in trace.jobs)
        # all four classes appear
        assert {j.bw_need for j in trace.jobs} == set(BANDWIDTH_CLASSES)

    def test_assign_bandwidth_stable_under_seed(self):
        jobs1 = [Job(id=i, size=1, runtime=1.0) for i in range(50)]
        jobs2 = [Job(id=i, size=1, runtime=1.0) for i in range(50)]
        assign_bandwidth_classes(jobs1, seed=3)
        assign_bandwidth_classes(jobs2, seed=3)
        assert [j.bw_need for j in jobs1] == [j.bw_need for j in jobs2]


class TestLLNLTraces:
    def test_thunder_characteristics(self):
        trace = thunder_like(num_jobs=3000, seed=0)
        stats = trace.stats()
        assert stats.system_nodes == 1024
        assert stats.max_job_nodes <= 965
        assert stats.min_runtime >= 1.0
        assert stats.max_runtime <= 172_362.0
        assert not trace.has_arrivals
        assert any(j.size == 1 for j in trace.jobs)

    def test_atlas_has_whole_machine_jobs(self):
        trace = atlas_like(num_jobs=2000, seed=0)
        assert max(j.size for j in trace.jobs) == 1024
        assert trace.stats().max_runtime <= 342_754.0

    def test_cab_months(self):
        for month in ("aug", "sep", "oct", "nov"):
            trace = cab_like(month, num_jobs=500, seed=0)
            stats = trace.stats()
            assert stats.system_nodes == 1296
            assert stats.max_job_nodes <= PAPER_TRACES[f"{month.capitalize()}-Cab"]["max_job"]
            assert trace.has_arrivals
            arrivals = [j.arrival for j in trace.jobs]
            assert arrivals == sorted(arrivals)
            assert arrivals[0] == 0.0

    def test_unknown_month_rejected(self):
        with pytest.raises(ValueError):
            cab_like("december")

    def test_power_of_two_mass(self):
        trace = thunder_like(num_jobs=5000, seed=0)
        sizes = [j.size for j in trace.jobs if j.size > 1]
        pow2 = sum(1 for s in sizes if s & (s - 1) == 0)
        assert pow2 / len(sizes) > 0.3  # heavier than exponential alone

    def test_runtimes_skewed_short(self):
        trace = thunder_like(num_jobs=5000, seed=0)
        rts = sorted(j.runtime for j in trace.jobs)
        median = rts[len(rts) // 2]
        mean = sum(rts) / len(rts)
        assert mean > 1.5 * median  # right-skew

    def test_default_job_counts_match_paper(self):
        # we do not generate the full traces here (slow), just check the
        # advertised paper counts
        assert PAPER_TRACES["Thunder"]["num_jobs"] == 105_764
        assert PAPER_TRACES["Oct-Cab"]["num_jobs"] == 125_228
