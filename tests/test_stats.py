"""Multi-seed statistics."""

import pytest

from repro.experiments.stats import (
    SeedStats,
    across_seeds,
    fig6_with_seeds,
    gap_is_significant,
    utilization_with_seeds,
)


class TestSeedStats:
    def test_mean_std_ci(self):
        s = SeedStats((1.0, 2.0, 3.0))
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci95 == pytest.approx(1.96 / 3**0.5)

    def test_single_value(self):
        s = SeedStats((5.0,))
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.ci95 == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeedStats(())

    def test_str(self):
        assert "±" in str(SeedStats((1.0, 2.0)))

    def test_gap_significance(self):
        tight_low = SeedStats((1.0, 1.01, 0.99))
        tight_high = SeedStats((2.0, 2.01, 1.99))
        wide = SeedStats((0.0, 2.0, 4.0))
        assert gap_is_significant(tight_low, tight_high)
        assert not gap_is_significant(tight_low, wide)


class TestAcrossSeeds:
    def test_metric_called_per_seed(self):
        calls = []

        def metric(seed):
            calls.append(seed)
            return float(seed)

        stats = across_seeds(metric, [3, 5, 7])
        assert calls == [3, 5, 7]
        assert stats.mean == pytest.approx(5.0)


class TestExperimentIntegration:
    def test_utilization_with_seeds(self):
        stats = utilization_with_seeds(
            "Synth-16", "jigsaw", seeds=(0, 1), scale=0.004
        )
        assert stats.n == 2
        assert 50 < stats.mean <= 100

    def test_fig6_with_seeds(self):
        rows = fig6_with_seeds(
            ["Synth-16"], ["baseline", "jigsaw"], seeds=(0,), scale=0.004
        )
        assert rows["Synth-16"]["baseline"].mean >= 90
