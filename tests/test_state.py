"""ClusterState: isolation invariant, summaries, bitmask helpers."""

import pytest

from repro.topology.fattree import FatTree, LinkId, SpineLinkId
from repro.topology.state import (
    AllocationError,
    ClusterState,
    LinkCapacityState,
    indices_of,
    lowest_bits,
    mask_of,
)


class TestMaskHelpers:
    def test_mask_roundtrip(self):
        assert mask_of([0, 2, 5]) == 0b100101
        assert indices_of(0b100101) == (0, 2, 5)
        assert indices_of(0) == ()
        assert mask_of([]) == 0

    def test_lowest_bits(self):
        assert lowest_bits(0b110110, 2) == 0b000110
        assert lowest_bits(0b110110, 4) == 0b110110
        assert lowest_bits(0b1, 1) == 1
        assert lowest_bits(0b111, 0) == 0

    def test_lowest_bits_insufficient(self):
        with pytest.raises(ValueError):
            lowest_bits(0b101, 3)


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


@pytest.fixture
def state(tree):
    return ClusterState(tree)


class TestClaimRelease:
    def test_initially_idle_and_free(self, state, tree):
        assert state.is_idle()
        assert state.free_nodes_total == tree.num_nodes
        assert all(state.leaf_is_fully_free(l) for l in range(tree.num_leaves))
        state.audit()

    def test_claim_updates_summaries(self, state, tree):
        state.claim(1, nodes=[0, 1], leaf_links=[LinkId(0, 0), LinkId(0, 1)])
        assert state.free_nodes_total == tree.num_nodes - 2
        assert state.free_nodes_on_leaf(0) == tree.m1 - 2
        assert not state.leaf_is_fully_free(0)
        assert state.full_free_leaves[0] == tree.m2 - 1
        assert not state.leaf_up_mask[0] & 0b11
        state.audit()

    def test_release_restores_everything(self, state, tree):
        state.claim(
            1,
            nodes=[0, 1, 4],
            leaf_links=[LinkId(0, 2), LinkId(1, 2)],
            spine_links=[SpineLinkId(0, 2, 1)],
        )
        rec = state.release(1)
        assert rec.nodes == (0, 1, 4)
        assert state.is_idle()
        assert state.free_nodes_total == tree.num_nodes
        assert state.leaf_up_mask[0] == (1 << tree.m1) - 1
        assert state.spine_free_mask[0][2] == (1 << tree.m2) - 1
        state.audit()

    def test_double_claim_of_node_rejected(self, state):
        state.claim(1, nodes=[0])
        with pytest.raises(AllocationError):
            state.claim(2, nodes=[0])
        state.audit()

    def test_double_claim_of_link_rejected(self, state):
        state.claim(1, nodes=[0], leaf_links=[LinkId(0, 0)])
        with pytest.raises(AllocationError):
            state.claim(2, nodes=[1], leaf_links=[LinkId(0, 0)])

    def test_double_claim_of_spine_link_rejected(self, state):
        state.claim(1, nodes=[0], spine_links=[SpineLinkId(0, 0, 0)])
        with pytest.raises(AllocationError):
            state.claim(2, nodes=[1], spine_links=[SpineLinkId(0, 0, 0)])

    def test_same_job_cannot_claim_twice(self, state):
        state.claim(1, nodes=[0])
        with pytest.raises(AllocationError):
            state.claim(1, nodes=[1])

    def test_duplicates_within_claim_rejected(self, state):
        with pytest.raises(AllocationError):
            state.claim(1, nodes=[0, 0])
        with pytest.raises(AllocationError):
            state.claim(1, nodes=[0], leaf_links=[LinkId(0, 0), LinkId(0, 0)])
        with pytest.raises(AllocationError):
            state.claim(
                1, nodes=[0],
                spine_links=[SpineLinkId(0, 0, 0), SpineLinkId(0, 0, 0)],
            )

    def test_failed_claim_leaves_state_untouched(self, state, tree):
        state.claim(1, nodes=[0])
        before = state.free_nodes_total
        with pytest.raises(AllocationError):
            state.claim(2, nodes=[1, 0])  # node 0 already taken
        assert state.free_nodes_total == before
        assert state.node_owner[1] == -1
        state.audit()

    def test_release_unknown_job_rejected(self, state):
        with pytest.raises(AllocationError):
            state.release(42)

    def test_free_node_ids_lowest_first(self, state):
        state.claim(1, nodes=[0, 2])
        assert state.free_node_ids(0, 2) == (1, 3)
        with pytest.raises(AllocationError):
            state.free_node_ids(0, 3)
        assert state.free_node_ids(0, 0) == ()

    def test_resident_jobs_tracking(self, state):
        state.claim(5, nodes=[0])
        state.claim(9, nodes=[1])
        assert set(state.resident_jobs()) == {5, 9}
        assert state.num_jobs_resident == 2
        assert state.claim_record(5).nodes == (0,)


class TestAudit:
    def test_audit_detects_corruption(self, state):
        state.claim(1, nodes=[0])
        state.free_nodes_total += 1  # corrupt on purpose
        with pytest.raises(AllocationError):
            state.audit()

    def test_audit_detects_leaf_count_drift(self, state):
        state.claim(1, nodes=[0])
        state.free_per_leaf[0] += 1
        with pytest.raises(AllocationError):
            state.audit()


class TestLinkCapacityState:
    def test_capacity_is_capped_peak(self, tree):
        links = LinkCapacityState(tree, peak_bandwidth=5.0, cap_fraction=0.8)
        assert links.capacity == pytest.approx(4.0)

    def test_masks_reflect_headroom(self, tree):
        links = LinkCapacityState(tree)
        full = (1 << tree.l2_per_pod) - 1
        assert links.leaf_mask(0, 1.0) == full
        links.claim(1, [LinkId(0, 0)], [], need=3.5)
        assert not links.leaf_mask(0, 1.0) & 1  # link 0 lacks headroom
        assert links.leaf_mask(0, 0.5) & 1  # but 0.5 still fits

    def test_sharing_up_to_cap(self, tree):
        links = LinkCapacityState(tree)
        links.claim(1, [LinkId(0, 0)], [], need=2.0)
        links.claim(2, [LinkId(0, 0)], [], need=2.0)
        with pytest.raises(Exception):
            links.claim(3, [LinkId(0, 0)], [], need=0.5)
        links.release(1)
        links.claim(3, [LinkId(0, 0)], [], need=0.5)

    def test_spine_masks(self, tree):
        links = LinkCapacityState(tree)
        links.claim(1, [], [SpineLinkId(0, 0, 1)], need=4.0)
        assert not links.spine_mask(0, 0, 1.0) & 0b10
        assert links.spine_mask(0, 0, 1.0) & 0b01

    def test_release_unknown_rejected(self, tree):
        links = LinkCapacityState(tree)
        with pytest.raises(Exception):
            links.release(7)
