"""Performance scenarios of section 5.4.1."""

import pytest

from repro.sched.job import Job
from repro.sched.speedup import SCENARIOS, apply_scenario


def make_jobs(sizes):
    return [Job(id=i, size=s, runtime=100.0) for i, s in enumerate(sizes)]


def test_none_clears_speedups():
    jobs = make_jobs([1, 10, 200])
    for j in jobs:
        j.speedup = 0.5
    apply_scenario(jobs, "none")
    assert all(j.speedup == 0.0 for j in jobs)


@pytest.mark.parametrize("scenario,pct", [("5%", 0.05), ("10%", 0.10), ("20%", 0.20)])
def test_fixed_scenarios_respect_four_node_floor(scenario, pct):
    jobs = make_jobs([1, 4, 5, 64, 500])
    apply_scenario(jobs, scenario)
    assert jobs[0].speedup == 0.0
    assert jobs[1].speedup == 0.0  # exactly four nodes: no speed-up
    assert jobs[2].speedup == pct
    assert jobs[3].speedup == pct
    assert jobs[4].speedup == pct


def test_v2_scales_linearly_with_size():
    jobs = make_jobs(list(range(1, 301)))
    apply_scenario(jobs, "v2", seed=3)
    max_size = 300
    for j in jobs:
        assert 0.0 <= j.speedup <= 0.30 * j.size / max_size + 1e-12
    # some jobs actually speed up
    assert any(j.speedup > 0 for j in jobs)


def test_random_scenario_only_above_64_nodes():
    jobs = make_jobs([1, 64, 65, 100, 200] * 50)
    apply_scenario(jobs, "random", seed=1)
    for j in jobs:
        if j.size <= 64:
            assert j.speedup == 0.0
        else:
            assert j.speedup in (0.0, 0.05, 0.15, 0.30)
    assert any(j.speedup > 0 for j in jobs if j.size > 64)


def test_deterministic_across_calls():
    jobs1 = make_jobs([100, 200, 300] * 20)
    jobs2 = make_jobs([100, 200, 300] * 20)
    apply_scenario(jobs1, "random", seed=7)
    apply_scenario(jobs2, "random", seed=7)
    assert [j.speedup for j in jobs1] == [j.speedup for j in jobs2]


def test_seed_changes_assignment():
    jobs1 = make_jobs([100, 200, 300] * 20)
    jobs2 = make_jobs([100, 200, 300] * 20)
    apply_scenario(jobs1, "random", seed=1)
    apply_scenario(jobs2, "random", seed=2)
    assert [j.speedup for j in jobs1] != [j.speedup for j in jobs2]


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        apply_scenario(make_jobs([1]), "15%")


def test_scenario_list_matches_paper():
    assert SCENARIOS == ("none", "5%", "10%", "20%", "v2", "random")
