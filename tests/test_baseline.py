"""Baseline: unconstrained node-only allocation."""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


@pytest.fixture
def alloc(tree):
    return BaselineAllocator(tree)


def test_no_links_ever(alloc):
    a = alloc.allocate(1, 50)
    assert a.leaf_links == () and a.spine_links == ()


def test_never_fails_with_enough_nodes(tree, alloc):
    """The defining property: any free-node count is fully usable."""
    jid = 0
    sizes = [7, 13, 1, 29, 5, 3, 17, 11, 2, 19]
    total = 0
    while True:
        size = sizes[jid % len(sizes)]
        if total + size > tree.num_nodes:
            break
        jid += 1
        assert alloc.allocate(jid, size) is not None
        total += size
    assert alloc.free_nodes == tree.num_nodes - total
    # exactly the remaining count succeeds; one more fails
    if alloc.free_nodes:
        assert alloc.allocate(9998, alloc.free_nodes) is not None
    assert alloc.allocate(9999, 1) is None


def test_best_fit_fills_partial_leaves_first(tree, alloc):
    alloc.allocate(1, 2)  # breaks one leaf
    a2 = alloc.allocate(2, 2)  # should fill the same leaf
    leaves1 = {n // tree.m1 for n in alloc.allocations[1].nodes}
    leaves2 = {n // tree.m1 for n in a2.nodes}
    assert leaves1 == leaves2


def test_flags(alloc):
    assert not alloc.isolating
    assert not alloc.low_interference


def test_release(tree, alloc):
    alloc.allocate(1, tree.num_nodes)
    assert alloc.free_nodes == 0
    alloc.release(1)
    assert alloc.free_nodes == tree.num_nodes
