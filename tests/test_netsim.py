"""Communication patterns and the slowdown model."""

import pytest

from repro.core.registry import make_allocator
from repro.netsim import PATTERNS, pattern_flows, slowdown_report
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


@pytest.fixture
def alloc(tree):
    return make_allocator("jigsaw", tree).allocate(1, 12)


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_flows_stay_within_job(self, alloc, name):
        flows = pattern_flows(alloc, name, seed=1)
        nodes = set(alloc.nodes)
        for s, d in flows:
            assert s in nodes and d in nodes and s != d

    def test_permutation_is_partial_permutation(self, alloc):
        flows = pattern_flows(alloc, "permutation", seed=1)
        srcs = [s for s, _ in flows]
        dsts = [d for _, d in flows]
        assert len(set(srcs)) == len(srcs)
        assert len(set(dsts)) == len(dsts)

    def test_shift_covers_every_node(self, alloc):
        flows = pattern_flows(alloc, "shift", seed=1)
        assert len(flows) == len(alloc.nodes)
        assert {s for s, _ in flows} == set(alloc.nodes)

    def test_neighbor_is_bidirectional_ring(self, alloc):
        flows = set(pattern_flows(alloc, "neighbor", seed=1))
        for s, d in list(flows):
            assert (d, s) in flows

    def test_alltoall_sample_bounded_degree(self, alloc):
        flows = pattern_flows(alloc, "alltoall_sample", seed=1)
        from collections import Counter

        out = Counter(s for s, _ in flows)
        assert max(out.values()) <= 4

    def test_deterministic(self, alloc):
        assert pattern_flows(alloc, "permutation", seed=5) == pattern_flows(
            alloc, "permutation", seed=5
        )

    def test_deterministic_across_processes(self):
        # Regression: the rng used to be seeded with hash() of a tuple
        # containing the pattern *string*, which varies with
        # PYTHONHASHSEED — so every Python process sampled different
        # flows for the same (seed, job, pattern) and the measured
        # slowdowns flickered between runs.
        import os
        import subprocess
        import sys

        script = (
            "from repro.core.registry import make_allocator\n"
            "from repro.netsim import pattern_flows\n"
            "from repro.topology.fattree import FatTree\n"
            "alloc = make_allocator('jigsaw', FatTree.from_radix(8))"
            ".allocate(1, 12)\n"
            "for p in ('permutation', 'shift', 'alltoall_sample'):\n"
            "    print(pattern_flows(alloc, p, seed=3))\n"
        )
        outputs = []
        for hashseed in ("0", "1"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = "src"
            outputs.append(
                subprocess.run(
                    [sys.executable, "-c", script],
                    capture_output=True, text=True, env=env, check=True,
                ).stdout
            )
        assert outputs[0] == outputs[1]

    def test_unknown_pattern(self, alloc):
        with pytest.raises(ValueError):
            pattern_flows(alloc, "butterfly")

    def test_single_node_job_has_no_flows(self, tree):
        alloc = make_allocator("jigsaw", tree).allocate(1, 1)
        for name in PATTERNS:
            assert pattern_flows(alloc, name, seed=0) == []


class TestSlowdown:
    def _pack(self, tree, scheme, sizes):
        allocator = make_allocator(scheme, tree)
        allocations = []
        for jid, size in enumerate(sizes, start=1):
            alloc = allocator.allocate(jid, size)
            if alloc is not None:
                allocations.append(alloc)
        return allocations

    def test_jigsaw_placements_have_zero_interjob_slowdown(self, tree):
        allocations = self._pack(tree, "jigsaw", [10, 10, 14, 10, 16, 10])
        for pattern in ("permutation", "shift", "alltoall_sample"):
            report = slowdown_report(
                tree, allocations, patterns=pattern, seed=3,
                use_partition_routing=True,
            )
            assert report.interference_free, pattern
            assert report.max_slowdown == pytest.approx(1.0)

    def test_baseline_placements_slow_down_under_contention(self, tree):
        allocations = self._pack(
            tree, "baseline", [10] * 10 + [14, 14]
        )
        worst = 1.0
        for seed in range(4):
            report = slowdown_report(
                tree, allocations, patterns="alltoall_sample", seed=seed
            )
            worst = max(worst, report.max_slowdown)
        assert worst > 1.0

    def test_single_job_never_slows_itself_in_ratio(self, tree):
        allocations = self._pack(tree, "jigsaw", [20])
        report = slowdown_report(tree, allocations, patterns="alltoall_sample")
        assert report.jobs[1].slowdown == pytest.approx(1.0)

    def test_isolation_speedup_definition(self, tree):
        from repro.netsim.slowdown import JobSlowdown

        j = JobSlowdown(1, "shift", 8, isolated_time=1.0, contended_time=1.2)
        assert j.slowdown == pytest.approx(1.2)
        assert j.isolation_speedup == pytest.approx(0.2)

    def test_per_job_patterns(self, tree):
        allocations = self._pack(tree, "jigsaw", [10, 12])
        ids = [a.job_id for a in allocations]
        report = slowdown_report(
            tree, allocations,
            patterns={ids[0]: "shift", ids[1]: "neighbor"},
            use_partition_routing=True,
        )
        assert report.jobs[ids[0]].pattern == "shift"
        assert report.jobs[ids[1]].pattern == "neighbor"

    def test_summary(self, tree):
        allocations = self._pack(tree, "jigsaw", [10, 12])
        report = slowdown_report(tree, allocations,
                                 use_partition_routing=True)
        assert "mean slowdown" in report.summary()
