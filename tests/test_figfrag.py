"""Fragmentation time-series experiment."""

from repro.experiments import figfrag


def test_timeseries_tiny():
    rows = figfrag.fragmentation_timeseries(
        schemes=("jigsaw", "laas"),
        probes=(8, 24),
        sample_every=10,
        scale=0.004,
    )
    assert set(rows) == {"jigsaw", "laas"}
    for row in rows.values():
        assert 0 <= row["free %"] <= 100
        assert 0 <= row["fit 8n %"] <= 100
    assert rows["jigsaw"]["padding %"] == 0.0
    assert rows["laas"]["padding %"] >= 0.0


def test_render():
    rows = {"jigsaw": {"free %": 10.0, "padding %": 0.0,
                       "full-free leaves": 5.0, "shard %": 3.0,
                       "fit 8n %": 90.0}}
    text = figfrag.render(rows)
    assert "jigsaw" in text
    assert "padding %" in text
