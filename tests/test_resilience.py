"""Online fault timeline: job-killing failures inside the simulator."""

import pickle

import pytest

from repro.core.conditions import check_allocation
from repro.core.registry import make_allocator
from repro.sched.job import Job
from repro.sched.log import ScheduleLog
from repro.sched.resilience import FaultSpec, FaultTimeline, ResilienceManager
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree
from repro.traces import synthetic_trace


@pytest.fixture(scope="module")
def tree():
    return FatTree.from_radix(8)


def fresh(scheme, tree, **kwargs):
    return Simulator(make_allocator(scheme, tree), **kwargs)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(0.0, "quantum", (0,))
        with pytest.raises(ValueError):
            FaultSpec(-1.0, "node", (0,))
        with pytest.raises(ValueError):
            FaultSpec(5.0, "node", (0,), end=5.0)

    def test_target_normalized_to_int_tuple(self):
        spec = FaultSpec(0.0, "node", 7)
        assert spec.target == (7,)
        spec = FaultSpec(0.0, "spine-link", [0, 1, 2])
        assert spec.target == (0, 1, 2)

    def test_duration(self):
        assert FaultSpec(1.0, "node", (0,), 4.0).duration == 3.0
        assert FaultSpec(1.0, "node", (0,)).duration is None


class TestFaultTimeline:
    def test_coerce(self):
        assert not FaultTimeline.coerce(None)
        tl = FaultTimeline((FaultSpec(0.0, "node", (0,)),))
        assert FaultTimeline.coerce(tl) is tl
        assert len(FaultTimeline.coerce([FaultSpec(0.0, "node", (0,))])) == 1

    def test_synthetic_is_deterministic_and_picklable(self):
        a = FaultTimeline.synthetic(64, mttf=500.0, horizon=5000.0, seed=3)
        b = FaultTimeline.synthetic(64, mttf=500.0, horizon=5000.0, seed=3)
        assert a == b
        assert len(a) > 0
        assert pickle.loads(pickle.dumps(a)) == a
        assert a != FaultTimeline.synthetic(
            64, mttf=500.0, horizon=5000.0, seed=4
        )

    def test_synthetic_windows_are_sane(self):
        tl = FaultTimeline.synthetic(32, mttf=300.0, mttr=50.0,
                                     horizon=2000.0, seed=1)
        starts = [s.start for s in tl]
        assert starts == sorted(starts)
        for spec in tl:
            assert spec.kind == "node"
            assert 0 <= spec.target[0] < 32
            assert 0 <= spec.start < 2000.0
            assert spec.end > spec.start

    def test_synthetic_rejects_bad_params(self):
        with pytest.raises(ValueError):
            FaultTimeline.synthetic(0, mttf=1.0, horizon=1.0)
        with pytest.raises(ValueError):
            FaultTimeline.synthetic(4, mttf=0.0, horizon=1.0)
        with pytest.raises(ValueError):
            FaultTimeline.synthetic(4, mttf=1.0, mttr=0.0, horizon=1.0)


class TestVictimPolicy:
    """A whole-cluster job killed at t=50 by a node fault repaired at 60."""

    def timeline(self):
        return FaultTimeline((FaultSpec(50.0, "node", (0,), 60.0),))

    def run_one(self, tree, **kwargs):
        job = Job(id=1, size=tree.num_nodes, runtime=100.0, arrival=0.0)
        log = ScheduleLog()
        sim = fresh("baseline", tree, fault_timeline=self.timeline(),
                    event_log=log, **kwargs)
        result = sim.run([job])
        return job, log, result

    def test_requeue_full_redoes_everything(self, tree):
        job, log, result = self.run_one(tree)
        # killed at 50, hardware back at 60, full 100s redone
        assert job.start == 60.0 and job.end == 160.0
        assert result.resubmissions == 1
        assert result.wasted_node_seconds == 50.0 * tree.num_nodes
        kinds = [e.kind for e in log.of_job(1)]
        assert kinds == ["arrive", "start", "kill", "requeue", "start",
                         "complete"]

    def test_requeue_remaining_restarts_from_checkpoint(self, tree):
        job, _, result = self.run_one(
            tree, fault_victim_policy="requeue-remaining",
            checkpoint_interval=30.0,
        )
        # checkpoints at 30 survive: 70s of work remain after the kill
        assert job.start == 60.0 and job.end == pytest.approx(130.0)
        assert result.wasted_node_seconds == pytest.approx(
            20.0 * tree.num_nodes
        )

    def test_continuous_checkpointing_loses_nothing(self, tree):
        job, _, result = self.run_one(
            tree, fault_victim_policy="requeue-remaining",
            checkpoint_interval=0.0,
        )
        assert job.end == pytest.approx(110.0)
        assert result.wasted_node_seconds == pytest.approx(0.0)
        assert result.goodput_fraction == pytest.approx(1.0)

    def test_turnaround_counts_from_original_arrival(self, tree):
        _, _, result = self.run_one(tree)
        (record,) = result.jobs
        assert record.arrival == 0.0
        assert record.turnaround == 160.0

    def test_unknown_policy_rejected(self, tree):
        with pytest.raises(ValueError):
            fresh("baseline", tree, fault_timeline=self.timeline(),
                  fault_victim_policy="exile")


class AuditingSimulator(Simulator):
    """Simulator that audits state and validates every allocation."""

    def __init__(self, allocator, exact_nodes=True, **kwargs):
        super().__init__(allocator, **kwargs)
        self.exact_nodes = exact_nodes
        self.validated = 0
        orig_allocate = allocator.allocate

        def checked_allocate(job_id, size, bw_need=None):
            alloc = orig_allocate(job_id, size, bw_need=bw_need)
            if alloc is not None and allocator.name not in ("baseline", "ta"):
                violations = check_allocation(
                    allocator.tree, alloc, exact_nodes=self.exact_nodes
                )
                assert violations == [], (allocator.name, size, violations)
                self.validated += 1
            allocator.state.audit()
            return alloc

        allocator.allocate = checked_allocate


DEGRADED_TIMELINE = FaultTimeline((
    FaultSpec(100.0, "node", (3,), 2500.0),
    FaultSpec(300.0, "node", (17,), 2000.0),
    FaultSpec(500.0, "leaf-switch", (5,), 3000.0),
    FaultSpec(800.0, "spine-link", (0, 0, 1), 2600.0),
    FaultSpec(1200.0, "l2-switch", (1, 2), 2800.0),
))


@pytest.mark.parametrize("scheme", ["baseline", "jigsaw", "laas", "ta", "lc+s"])
def test_conditions_hold_while_degraded(tree, scheme):
    """All five schemes schedule on the degraded remainder with every
    allocation passing the formal-conditions oracle."""
    trace = synthetic_trace(8, num_jobs=150, seed=4,
                            max_size=tree.num_nodes // 2)
    allocator = make_allocator(scheme, tree)
    sim = AuditingSimulator(allocator, exact_nodes=(scheme != "laas"),
                            fault_timeline=DEGRADED_TIMELINE)
    result = sim.run(trace)
    assert result.faults_injected == len(DEGRADED_TIMELINE)
    assert result.faults_repaired == len(DEGRADED_TIMELINE)
    assert len(result.jobs) == 150  # every job (re)ran to completion
    assert not result.unscheduled
    assert allocator.state.is_idle()  # jobs released, faults repaired
    if scheme not in ("baseline", "ta"):
        assert sim.validated > 0


def test_victim_killed_and_requeued_exactly_once(tree):
    """A fault hitting a running job kills it exactly once; bystanders
    are untouched."""
    trace = synthetic_trace(8, num_jobs=120, seed=7,
                            max_size=tree.num_nodes // 2)
    log = ScheduleLog()
    timeline = FaultTimeline((FaultSpec(50.0, "leaf-switch", (0,), 400.0),))
    sim = fresh("jigsaw", tree, fault_timeline=timeline, event_log=log)
    result = sim.run(trace)
    kills = [e for e in log.events if e.kind == "kill"]
    requeues = [e for e in log.events if e.kind == "requeue"]
    assert len(kills) == result.resubmissions > 0
    assert [e.job_id for e in kills] == [e.job_id for e in requeues]
    for e in kills:
        assert len([k for k in kills if k.job_id == e.job_id]) == 1
        per_job = [ev.kind for ev in log.of_job(e.job_id)]
        assert per_job == ["arrive", "start", "kill", "requeue", "start",
                           "complete"]
    assert result.wasted_node_seconds > 0
    assert 0.0 < result.goodput_fraction < 1.0
    assert len(result.jobs) == 120


def test_empty_timeline_is_event_for_event_identical(tree):
    """The hard guarantee: an empty timeline runs the historical path."""
    trace = synthetic_trace(8, num_jobs=150, seed=9,
                            max_size=tree.num_nodes)
    log_plain = ScheduleLog()
    fresh("jigsaw", tree, event_log=log_plain).run(trace)
    log_empty = ScheduleLog()
    fresh("jigsaw", tree, fault_timeline=FaultTimeline(),
          event_log=log_empty).run(trace)
    assert log_plain.events == log_empty.events


def test_degraded_capacity_integral(tree):
    """An unowned node fault degrades exactly duration x nodes."""
    jobs = [Job(id=1, size=4, runtime=10.0, arrival=0.0)]
    timeline = FaultTimeline((FaultSpec(20.0, "node", (31,), 50.0),))
    result = fresh("baseline", tree, fault_timeline=timeline).run(jobs)
    assert result.degraded_node_seconds == pytest.approx(30.0)
    assert result.resubmissions == 0  # nobody owned node 31


def test_sampler_sees_degraded_nodes(tree):
    from repro.obs.sampler import TimeSeriesSampler

    jobs = [Job(id=1, size=4, runtime=100.0, arrival=0.0)]
    timeline = FaultTimeline((FaultSpec(20.0, "leaf-switch", (7,), 80.0),))
    sampler = TimeSeriesSampler(10.0)
    result = fresh("baseline", tree, fault_timeline=timeline,
                   sampler=sampler).run(jobs)
    degraded = [row["degraded_nodes"] for row in result.samples]
    assert max(degraded) == tree.m1  # one whole leaf out
    assert degraded[0] == 0 and degraded[-1] == 0


def test_link_fault_kills_lcs_bandwidth_claimant(tree):
    """LC+S jobs own links only fractionally; a link fault must still
    find and kill them."""
    job = Job(id=1, size=2 * tree.m1, runtime=100.0, arrival=0.0,
              bw_need=0.25)
    allocator = make_allocator("lc+s", tree)
    probe = allocator.allocate(99, 2 * tree.m1, bw_need=0.25)
    link = probe.leaf_links[0]
    allocator.release(99)
    timeline = FaultTimeline((
        FaultSpec(10.0, "leaf-link", tuple(link), 40.0),
    ))
    result = Simulator(allocator, fault_timeline=timeline).run([job])
    assert result.resubmissions == 1
    assert len(result.jobs) == 1


def test_run_scheme_synthesizes_deterministic_timeline(tree):
    from repro.experiments.runner import paper_setup, run_scheme

    setup = paper_setup("Synth-16", scale=0.005, seed=0)
    a = run_scheme(setup, "jigsaw", mttf=30_000.0, fault_seed=2)
    b = run_scheme(setup, "jigsaw", mttf=30_000.0, fault_seed=2)
    assert a.faults_injected == b.faults_injected > 0
    assert [(r.job_id, r.start, r.end) for r in a.jobs] == [
        (r.job_id, r.start, r.end) for r in b.jobs
    ]
    assert a.wasted_node_seconds == b.wasted_node_seconds
    with pytest.raises(ValueError):
        run_scheme(setup, "jigsaw", mttf=1000.0,
                   fault_timeline=FaultTimeline())


def test_resilience_metrics_reach_registry(tree):
    from repro.obs.metrics import MetricRegistry

    jobs = [Job(id=1, size=tree.num_nodes, runtime=100.0, arrival=0.0)]
    timeline = FaultTimeline((FaultSpec(50.0, "node", (0,), 60.0),))
    result = fresh("baseline", tree, fault_timeline=timeline).run(jobs)
    registry = result.as_registry()
    text = registry.export_prometheus_text()
    assert "repro_sim_resubmissions_total" in text
    assert "repro_fault_injections_total" in text
    assert "repro_sim_wasted_node_seconds_total" in text
    assert "repro_sim_goodput_fraction" in text


def test_tracer_emits_fault_instants(tree):
    from repro.obs.tracer import Tracer

    jobs = [Job(id=1, size=tree.num_nodes, runtime=100.0, arrival=0.0)]
    timeline = FaultTimeline((FaultSpec(50.0, "node", (0,), 60.0),))
    tracer = Tracer(enabled=True)
    fresh("baseline", tree, fault_timeline=timeline, tracer=tracer).run(jobs)
    names = [e["name"] for e in tracer.events]
    assert "fault.inject" in names
    assert "fault.repair" in names
    assert "sched.kill" in names


def test_permanent_fault_never_repaired(tree):
    """end=None faults stay down; the run still terminates."""
    jobs = [Job(id=1, size=4, runtime=10.0, arrival=0.0)]
    timeline = FaultTimeline((FaultSpec(5.0, "node", (31,)),))
    result = fresh("jigsaw", tree, fault_timeline=timeline).run(jobs)
    assert result.faults_injected == 1
    assert result.faults_repaired == 0
    assert len(result.jobs) == 1
