"""Shape enumeration: conditions (1)-(3) as arithmetic."""

import pytest

from repro.core.shapes import (
    ThreeLevelShape,
    TwoLevelShape,
    three_level_shapes,
    two_level_shapes,
)


class TestTwoLevelShape:
    def test_size_and_leaf_count(self):
        s = TwoLevelShape(LT=3, nL=4, nrL=2)
        assert s.size == 14
        assert s.num_leaves == 4
        assert not s.single_leaf

    def test_single_leaf(self):
        s = TwoLevelShape(LT=1, nL=5, nrL=0)
        assert s.single_leaf
        assert s.num_leaves == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoLevelShape(LT=0, nL=4, nrL=0)
        with pytest.raises(ValueError):
            TwoLevelShape(LT=1, nL=4, nrL=4)  # remainder not smaller
        with pytest.raises(ValueError):
            TwoLevelShape(LT=1, nL=0, nrL=0)


class TestThreeLevelShape:
    def test_size_identity(self):
        # N = T(LT*nL) + (LrT*nL + nrL), the identity in condition (3)
        s = ThreeLevelShape(T=2, LT=2, nL=2, LrT=1, nrL=1)
        assert s.nT == 4
        assert s.nrT == 3
        assert s.size == 11  # the paper's Figure 3 example
        assert s.num_pods == 3
        assert s.has_remainder_pod

    def test_no_remainder(self):
        s = ThreeLevelShape(T=3, LT=2, nL=4, LrT=0, nrL=0)
        assert s.nrT == 0
        assert s.num_pods == 3
        assert not s.has_remainder_pod

    def test_remainder_must_be_smaller_than_full_tree(self):
        with pytest.raises(ValueError):
            ThreeLevelShape(T=1, LT=2, nL=2, LrT=2, nrL=0)  # nrT == nT
        with pytest.raises(ValueError):
            ThreeLevelShape(T=1, LT=1, nL=4, LrT=0, nrL=4)  # nrL == nL


class TestTwoLevelEnumeration:
    def test_every_shape_reconstructs_size(self):
        for size in range(1, 65):
            for s in two_level_shapes(size, m1=8, m2=8):
                assert s.size == size
                assert s.num_leaves <= 8
                assert s.nL <= 8

    def test_one_shape_per_nl(self):
        shapes = list(two_level_shapes(13, m1=8, m2=8))
        nls = [s.nL for s in shapes]
        assert len(set(nls)) == len(nls)

    def test_dense_order_prefers_fewest_leaves(self):
        shapes = list(two_level_shapes(13, m1=8, m2=8))
        assert shapes[0].nL == 8
        leaves = [s.num_leaves for s in shapes]
        assert leaves == sorted(leaves)

    def test_sparse_order_reversed(self):
        dense = list(two_level_shapes(13, m1=8, m2=8, order="dense"))
        sparse = list(two_level_shapes(13, m1=8, m2=8, order="sparse"))
        assert dense == list(reversed(sparse))

    def test_too_large_for_pod_yields_nothing(self):
        assert list(two_level_shapes(65, m1=8, m2=8)) == []

    def test_exact_pod_size(self):
        shapes = list(two_level_shapes(64, m1=8, m2=8))
        assert TwoLevelShape(LT=8, nL=8, nrL=0) in shapes

    def test_single_node(self):
        shapes = list(two_level_shapes(1, m1=8, m2=8))
        assert shapes == [TwoLevelShape(LT=1, nL=1, nrL=0)]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(two_level_shapes(0, m1=8, m2=8))


class TestThreeLevelEnumeration:
    def test_full_leaves_only_pins_nl(self):
        for s in three_level_shapes(50, m1=8, m2=8, m3=16):
            assert s.nL == 8
            assert s.size == 50

    def test_least_constrained_covers_all_nl(self):
        shapes = list(
            three_level_shapes(50, m1=8, m2=8, m3=16, full_leaves_only=False)
        )
        assert {s.nL for s in shapes} >= {1, 2, 4, 8}
        for s in shapes:
            assert s.size == 50

    def test_excludes_single_pod_no_remainder(self):
        # 16 nodes = one full pod on an m1=4, m2=4 tree: a two-level shape
        for s in three_level_shapes(16, m1=4, m2=4, m3=8):
            assert s.num_pods > 1

    def test_respects_pod_count(self):
        for s in three_level_shapes(120, m1=4, m2=4, m3=8):
            assert s.num_pods <= 8

    def test_paper_figure3_shape_present(self):
        # Figure 3: N=11, T=2 trees of nT=4, remainder tree nrT=3
        shapes = list(
            three_level_shapes(11, m1=2, m2=2, m3=4, full_leaves_only=True)
        )
        assert ThreeLevelShape(T=2, LT=2, nL=2, LrT=1, nrL=1) in shapes

    def test_size_larger_than_machine_yields_nothing(self):
        assert list(three_level_shapes(1000, m1=4, m2=4, m3=8)) == []

    def test_small_sizes_have_no_three_level_shape_with_full_leaves(self):
        # a sub-leaf job cannot use a full-leaf three-level shape
        assert list(three_level_shapes(3, m1=8, m2=8, m3=16)) == []

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            list(three_level_shapes(0, m1=4, m2=4, m3=8))

    def test_dense_vs_sparse_order(self):
        dense = list(three_level_shapes(64, m1=4, m2=4, m3=8))
        sparse = list(three_level_shapes(64, m1=4, m2=4, m3=8, order="sparse"))
        assert set(dense) == set(sparse)
        assert dense != sparse or len(dense) <= 1
