"""Twin-driver equivalence: the vectorized scheduling pass vs its
scalar twin.

The vector pass promises *identical decisions* — every placement, every
charged allocator attempt, the priority-heap bookkeeping — across all
five schemes, every queue order, both drive modes and faulted replay.
These tests run each configuration through both passes and hold them to
it, and a property test checks the monotone size cut directly: a size
the cut condemns must be one the allocator's real search also rejects.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_allocator
from repro.sched.job import Job
from repro.sched.resilience import FaultTimeline
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree

SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")
QUEUE_ORDERS = ("fifo", "sjf", "smallest", "largest")
STEP_MODES = (None, 300.0)  # event-driven and batch-step


def _jobs(n=250, seed=0):
    rng = random.Random(seed)
    jobs, arrival = [], 0.0
    for i in range(n):
        arrival += rng.expovariate(1 / 20)
        jobs.append(Job(
            id=i,
            size=rng.randint(1, 100),
            runtime=rng.uniform(10.0, 400.0),
            arrival=arrival,
        ))
    return jobs


def _run(scheme, use_vector_pass, **sim_kwargs):
    tree = FatTree.from_radix(8)
    sim = Simulator(
        make_allocator(scheme, tree),
        use_vector_pass=use_vector_pass,
        **sim_kwargs,
    )
    result = sim.run(_jobs(), "twin")
    return sim, result


def _assert_twin(scheme, **sim_kwargs):
    """Run the vector and scalar passes and assert identical decisions.

    Cache hit/miss counts are deliberately *not* compared: the vector
    prefilter proves (and caches) some failures the scalar path's
    budget-exhausted searches leave uncached — same decisions, same
    attempt counts, different cache bookkeeping.
    """
    vsim, vec = _run(scheme, True, **sim_kwargs)
    ssim, sca = _run(scheme, False, **sim_kwargs)
    assert [(j.job_id, j.start, j.end) for j in vec.jobs] == [
        (j.job_id, j.start, j.end) for j in sca.jobs
    ]
    assert vec.makespan == sca.makespan
    assert vec.alloc_attempts == sca.alloc_attempts
    assert vec.unscheduled == sca.unscheduled
    assert vsim.peak_pheap_stale == ssim.peak_pheap_stale
    assert vsim.peak_started_out_of_order == ssim.peak_started_out_of_order
    # The vector run actually took the vector path — and only it.
    assert vec.pass_vector_rounds == vec.scheduling_rounds
    assert sca.pass_vector_rounds == 0
    assert sca.queue_prefiltered == 0
    return vec, sca


@pytest.mark.parametrize("step_interval", STEP_MODES)
@pytest.mark.parametrize("queue_order", QUEUE_ORDERS)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_easy_twin(scheme, queue_order, step_interval):
    _assert_twin(
        scheme, queue_order=queue_order, step_interval=step_interval
    )


@pytest.mark.parametrize("step_interval", STEP_MODES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_conservative_twin(scheme, step_interval):
    _assert_twin(
        scheme, backfill_policy="conservative", step_interval=step_interval
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_faulted_twin(scheme):
    timeline = FaultTimeline.synthetic(
        128, mttf=40_000.0, mttr=4_000.0, horizon=20_000.0, seed=1
    )
    vec, _ = _assert_twin(
        scheme,
        fault_timeline=timeline,
        fault_victim_policy="requeue-remaining",
        checkpoint_interval=600.0,
    )
    assert vec.faults_injected > 0  # the timeline actually fired


def test_env_knob_selects_scalar_pass(monkeypatch):
    monkeypatch.setenv("REPRO_NAIVE_PASS", "1")
    sim, result = _run("jigsaw", True)  # env overrides the argument
    assert not sim.use_vector_pass
    assert result.pass_vector_rounds == 0
    monkeypatch.setenv("REPRO_NAIVE_PASS", "0")
    sim, result = _run("jigsaw", True)  # "0" does not
    assert sim.use_vector_pass
    assert result.pass_vector_rounds == result.scheduling_rounds


def test_prefilter_actually_fires():
    """On a contended trace the vector pass must skip real work: the
    prefilter counter moves and the attempts it replaces stay equal to
    the scalar run's (checked by ``_assert_twin`` elsewhere)."""
    _, vec = _run("ta", True)
    assert vec.queue_prefiltered > 0
    assert vec.size_cut_skips > 0
    assert vec.queue_prefiltered >= vec.size_cut_skips


@settings(max_examples=15, deadline=None)
@given(st.data())
def test_size_cut_soundness(data):
    """Any size the monotone cut condemns is one the real search also
    rejects — over random occupancy states of every scheme."""
    scheme = data.draw(st.sampled_from(SCHEMES))
    tree = FatTree.from_radix(8)
    alloc = make_allocator(scheme, tree)
    jid = 0
    for _ in range(data.draw(st.integers(min_value=5, max_value=40))):
        jid += 1
        alloc.allocate(jid, data.draw(st.integers(min_value=1, max_value=40)))
    condemned = 0
    for size in range(1, tree.num_nodes + 1):
        eff = alloc.effective_size(size)
        if alloc.cut_infeasible(eff, None):
            condemned += 1
            assert not alloc.can_allocate(size), (scheme, size)
    # (can_allocate probes feed the floor, so on a crowded state the
    # sweep itself generates cut verdicts to check)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    scheme=st.sampled_from(SCHEMES),
    order=st.sampled_from(QUEUE_ORDERS),
)
def test_twin_property_random_traces(seed, scheme, order):
    """Vector and scalar passes agree on randomized traces too."""
    rng = random.Random(seed)
    jobs, arrival = [], 0.0
    for i in range(rng.randint(20, 80)):
        arrival += rng.expovariate(1 / 30)
        jobs.append(Job(
            id=i, size=rng.randint(1, 128),
            runtime=rng.uniform(1.0, 300.0), arrival=arrival,
        ))
    results = []
    for vec in (True, False):
        tree = FatTree.from_radix(8)
        sim = Simulator(
            make_allocator(scheme, tree),
            queue_order=order,
            use_vector_pass=vec,
        )
        results.append(sim.run(list(jobs), "prop"))
    vec_r, sca_r = results
    assert [(j.job_id, j.start, j.end) for j in vec_r.jobs] == [
        (j.job_id, j.start, j.end) for j in sca_r.jobs
    ]
    assert vec_r.alloc_attempts == sca_r.alloc_attempts
