"""Utility helpers: seeded RNG streams and the timing stopwatch."""

import time

from repro.util import Timer, rng_for, spawn_rngs


class TestRngStreams:
    def test_same_name_same_seed_same_stream(self):
        a = rng_for("x", seed=1)
        b = rng_for("x", seed=1)
        assert a.integers(0, 10**9, 5).tolist() == b.integers(0, 10**9, 5).tolist()

    def test_different_names_independent(self):
        a = rng_for("x", seed=1)
        b = rng_for("y", seed=1)
        assert a.integers(0, 10**9, 5).tolist() != b.integers(0, 10**9, 5).tolist()

    def test_different_seeds_independent(self):
        a = rng_for("x", seed=1)
        b = rng_for("x", seed=2)
        assert a.integers(0, 10**9, 5).tolist() != b.integers(0, 10**9, 5).tolist()

    def test_spawn_rngs(self):
        rngs = spawn_rngs("workers", 4, seed=0)
        assert len(rngs) == 4
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(int(d) for d in draws)) == 4


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.calls == 2
        assert t.seconds >= 0.02
        assert t.mean >= 0.01

    def test_unused_mean_is_zero(self):
        # regression: mean on a never-used timer must not divide by zero
        t = Timer()
        assert t.mean == 0.0
        assert t.total == 0.0
        assert t.count == 0

    def test_total_and_count_alias_seconds_and_calls(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        assert t.total == t.seconds
        assert t.count == t.calls == 1
