"""Jigsaw allocator: Algorithm 1's behavior on crafted cluster states."""

import pytest

from repro.core.conditions import check_allocation
from repro.core.jigsaw import JigsawAllocator
from repro.core.shapes import ThreeLevelShape, TwoLevelShape
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # m1=m2=4, m3=8, pod=16, 128 nodes


@pytest.fixture
def alloc(tree):
    return JigsawAllocator(tree)


def fill_leaf(allocator, leaf, job_id, count=None):
    """Claim ``count`` nodes of ``leaf`` directly (filler, no links)."""
    nodes = list(allocator.tree.nodes_of_leaf(leaf))
    count = len(nodes) if count is None else count
    allocator.state.claim(job_id, nodes[:count])


class TestBasicPlacement:
    def test_single_node(self, tree, alloc):
        a = alloc.allocate(1, 1)
        assert a is not None
        assert len(a.nodes) == 1
        assert a.leaf_links == () and a.spine_links == ()
        assert a.shape == TwoLevelShape(LT=1, nL=1, nrL=0)

    def test_single_leaf_job_takes_one_leaf(self, tree, alloc):
        a = alloc.allocate(1, tree.m1)
        leaves = {n // tree.m1 for n in a.nodes}
        assert len(leaves) == 1
        assert a.leaf_links == ()

    def test_pod_sized_job_fits_one_pod(self, tree, alloc):
        a = alloc.allocate(1, tree.nodes_per_pod)
        pods = {tree.pod_of_node(n) for n in a.nodes}
        assert len(pods) == 1
        assert a.spine_links == ()

    def test_larger_than_pod_goes_three_level(self, tree, alloc):
        a = alloc.allocate(1, tree.nodes_per_pod + 1)
        assert isinstance(a.shape, ThreeLevelShape)
        assert a.spine_links != ()
        assert check_allocation(tree, a) == []

    def test_whole_machine(self, tree, alloc):
        a = alloc.allocate(1, tree.num_nodes)
        assert a is not None
        assert len(a.nodes) == tree.num_nodes
        assert check_allocation(tree, a) == []

    def test_oversized_rejected_cleanly(self, tree, alloc):
        assert alloc.allocate(1, tree.num_nodes + 1) is None
        assert alloc.state.is_idle()

    def test_invalid_size(self, alloc):
        with pytest.raises(ValueError):
            alloc.allocate(1, 0)

    def test_duplicate_job_id_rejected(self, alloc):
        alloc.allocate(1, 2)
        with pytest.raises(ValueError):
            alloc.allocate(1, 2)

    def test_release_returns_resources(self, tree, alloc):
        alloc.allocate(1, 30)
        alloc.release(1)
        assert alloc.state.is_idle()
        assert alloc.free_nodes == tree.num_nodes
        with pytest.raises(ValueError):
            alloc.release(1)


class TestFragmentedPlacement:
    def test_uses_partial_leaves_within_pod(self, tree, alloc):
        # Occupy 2 nodes on each leaf of pod 0 (filler); a 8-node job can
        # still be placed there as 4 leaves x 2 nodes.
        for k, leaf in enumerate(tree.leaves_of_pod(0)):
            fill_leaf(alloc, leaf, 100 + k, count=2)
        # force other pods to be unattractive by filling them entirely
        for pod in range(1, tree.num_pods):
            for k, leaf in enumerate(tree.leaves_of_pod(pod)):
                fill_leaf(alloc, leaf, 1000 + pod * 10 + k)
        a = alloc.allocate(1, 8)
        assert a is not None
        assert {tree.pod_of_node(n) for n in a.nodes} == {0}
        assert check_allocation(tree, a) == []

    def test_external_fragmentation_blocks(self, tree, alloc):
        # 2 free nodes on every leaf (64 free total) but zero fully-free
        # leaves: a 17-node job (> pod capacity of 4x2=8... actually 16
        # free per pod arranged 2+2+2+2) cannot be placed even though 64
        # nodes are free — Jigsaw's documented external fragmentation.
        jid = 0
        for leaf in range(tree.num_leaves):
            jid += 1
            fill_leaf(alloc, leaf, jid, count=2)
        assert alloc.free_nodes == 64
        assert alloc.allocate(9999, 17) is None

    def test_remainder_leaf_can_be_partial(self, tree, alloc):
        # Fill pod 0 except 2 nodes on leaf 0; fill pods so that a
        # 18-node job must take 4 full leaves + that partial remainder.
        fill_leaf(alloc, 0, 100, count=2)
        a = alloc.allocate(1, 4 * tree.m1 + 2)
        assert a is not None
        assert check_allocation(tree, a) == []
        # the partial leaf 0 should serve as the remainder (best fit)
        counts = a.leaf_node_counts(tree)
        assert counts.get(0) == 2

    def test_three_level_needs_full_leaves(self, tree, alloc):
        # break every leaf with one filler node; no three-level shape fits
        for leaf in range(tree.num_leaves):
            fill_leaf(alloc, leaf, 100 + leaf, count=1)
        # a job larger than any pod's free capacity (12 per pod) fails
        assert alloc.allocate(1, 13) is None

    def test_links_constrain_not_just_nodes(self, tree, alloc):
        # Place a legitimate 2-leaf job that holds L2 indices {0,1} on
        # leaves 0 and 1; a second 2x2 job on the same leaves must use
        # the remaining indices {2,3}.
        a1 = alloc.allocate(1, 4)
        used = {link.l2_index for link in a1.leaf_links}
        a2 = alloc.allocate(2, 4)
        if set(a1.leaf_node_counts(tree)) == set(a2.leaf_node_counts(tree)):
            used2 = {link.l2_index for link in a2.leaf_links}
            assert not used & used2


class TestStrategyAndStats:
    def test_first_strategy_matches_pseudocode_order(self, tree):
        a = JigsawAllocator(tree, strategy="first")
        alloc = a.allocate(1, 5)
        # densest shape first: 1 full leaf (4) + remainder (1)
        assert alloc.shape == TwoLevelShape(LT=1, nL=4, nrL=1)

    def test_unknown_strategy_rejected(self, tree):
        with pytest.raises(ValueError):
            JigsawAllocator(tree, strategy="magic")

    def test_stats_track_levels(self, tree, alloc):
        alloc.allocate(1, 4)
        alloc.allocate(2, tree.nodes_per_pod + 4)
        assert alloc.stats.two_level == 1
        assert alloc.stats.three_level == 1
        assert alloc.stats.successes == 2
        alloc.release(1)
        assert alloc.stats.releases == 1

    def test_budget_exhaustion_returns_none(self, tree):
        a = JigsawAllocator(tree)
        a.step_budget = 1
        assert a.allocate(1, 20) is None
        assert a.state.is_idle()

    def test_effective_size_is_exact(self, alloc):
        assert alloc.effective_size(13) == 13


class TestConditionCompliance:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17,
                                      20, 30, 33, 48, 63, 64, 65, 100, 128])
    def test_empty_machine_allocations_legal(self, tree, size):
        a = JigsawAllocator(tree)
        result = a.allocate(1, size)
        assert result is not None, size
        assert len(result.nodes) == size
        assert check_allocation(tree, result) == [], size
