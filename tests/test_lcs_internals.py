"""LC/LC+S search internals on crafted states."""

import pytest

from repro.core.conditions import check_allocation
from repro.core.lcs import LeastConstrainedAllocator
from repro.core.shapes import ThreeLevelShape
from repro.topology.fattree import FatTree, LinkId


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def leave_free(allocator, spec):
    """Occupy everything except ``spec[pod][k]`` free nodes per leaf."""
    tree = allocator.tree
    jid = 500
    for pod in range(tree.num_pods):
        per_leaf = spec.get(pod, {})
        for k, leaf in enumerate(tree.leaves_of_pod(pod)):
            keep = per_leaf.get(k, 0)
            nodes = list(tree.nodes_of_leaf(leaf))[keep:]
            if nodes:
                jid += 1
                allocator.state.claim(jid, nodes)


class TestGeneralThreeLevel:
    def test_lone_remainder_leaf_solution(self, tree):
        """LrT = 0: the remainder pod holds only the remainder leaf."""
        a = LeastConstrainedAllocator(tree)
        # pods 0,1: 2 free nodes on each of 2 leaves; pod 2: 1 free node
        leave_free(a, {0: {0: 2, 1: 2}, 1: {0: 2, 1: 2}, 2: {0: 1}})
        result = a.allocate(1, 9)  # T=2 x (2x2) + nrT=1
        assert result is not None
        shape = result.shape
        assert isinstance(shape, ThreeLevelShape)
        assert shape.LrT == 0 and shape.nrL == 1
        assert check_allocation(tree, result) == []

    def test_common_s_across_pods_required(self, tree):
        """Pods whose free-uplink index sets cannot agree on a common S
        are rejected even with enough nodes."""
        a = LeastConstrainedAllocator(tree, share_links=False)
        leave_free(a, {0: {0: 2, 1: 2}, 1: {0: 2, 1: 2}})
        # burn uplinks so pod 0 leaves can only use {0,1} and pod 1
        # leaves only {2,3}: no common S of size 2 exists
        burn = []
        for leaf in [tree.first_leaf_of_pod(0), tree.first_leaf_of_pod(0) + 1]:
            burn += [LinkId(leaf, 2), LinkId(leaf, 3)]
        for leaf in [tree.first_leaf_of_pod(1), tree.first_leaf_of_pod(1) + 1]:
            burn += [LinkId(leaf, 0), LinkId(leaf, 1)]
        a.state.claim(900, [], burn)
        assert a.allocate(1, 8) is None

    def test_common_s_found_when_sets_overlap(self, tree):
        a = LeastConstrainedAllocator(tree, share_links=False)
        leave_free(a, {0: {0: 2, 1: 2}, 1: {0: 2, 1: 2}})
        # pod 0 leaves restricted to {1,2,3}; pod 1 leaves to {0,1,2}:
        # common S = {1,2} works
        burn = [LinkId(tree.first_leaf_of_pod(0), 0),
                LinkId(tree.first_leaf_of_pod(0) + 1, 0),
                LinkId(tree.first_leaf_of_pod(1), 3),
                LinkId(tree.first_leaf_of_pod(1) + 1, 3)]
        a.state.claim(900, [], burn)
        result = a.allocate(1, 8)
        assert result is not None
        s_indices = {i for _, i in result.leaf_links}
        assert s_indices <= {1, 2}
        assert check_allocation(tree, result) == []

    def test_bandwidth_gates_link_choice(self, tree):
        """With sharing, a saturated link is avoided, not blocked on."""
        a = LeastConstrainedAllocator(tree, share_links=True)
        # saturate leaf 0's uplink 0 fully (4.0 of 4.0 capacity)
        a.links.claim(900, [LinkId(0, 0)], [], need=4.0)
        result = a.allocate(1, 8)  # 2 leaves x 4: needs all uplinks/leaf?
        # nL=4 needs 4 uplinks per leaf; leaf 0 has only 3 with headroom,
        # so leaf 0 cannot be a full leaf of an nL=4 shape
        if result is not None:
            counts = result.leaf_node_counts(tree)
            assert counts.get(0, 0) < 4 or LinkId(0, 0) not in result.leaf_links

    def test_solutions_per_pod_capped(self, tree):
        a = LeastConstrainedAllocator(tree, max_solutions_per_pod=3)
        sols = a._find_all_in_pod(0, LT=2, nL=1, nrL=0)
        assert 0 < len(sols) <= 3

    def test_remainder_only_solutions_best_fit(self, tree):
        a = LeastConstrainedAllocator(tree)
        leave_free(a, {3: {0: 3, 1: 1}})
        from repro.core.shapes import ThreeLevelShape as TLS

        shape = TLS(T=2, LT=2, nL=2, LrT=0, nrL=1)
        sols = a._remainder_only_solutions(3 , shape)
        assert sols
        # best fit: the 1-free leaf ranks before the 3-free leaf
        assert sols[0].rem_leaf == tree.first_leaf_of_pod(3) + 1
