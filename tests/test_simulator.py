"""Discrete-event simulator: hand-crafted schedules with known outcomes."""

import pytest

from repro.core.baseline import BaselineAllocator
from repro.core.jigsaw import JigsawAllocator
from repro.sched.job import Job
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree


@pytest.fixture
def tree():
    return FatTree.from_radix(8)  # 128 nodes


def sim(tree, window=50, policy="renew"):
    return Simulator(
        BaselineAllocator(tree),
        backfill_window=window,
        reservation_policy=policy,
    )


def by_id(result):
    return {r.job_id: r for r in result.jobs}


class TestFifoBasics:
    def test_single_job(self, tree):
        result = sim(tree).run([Job(id=1, size=10, runtime=100.0)])
        rec = by_id(result)[1]
        assert rec.start == 0.0
        assert rec.end == 100.0
        assert result.makespan == 100.0
        assert not result.unscheduled

    def test_fifo_order_when_machine_full(self, tree):
        jobs = [
            Job(id=1, size=128, runtime=10.0),
            Job(id=2, size=128, runtime=10.0),
        ]
        result = sim(tree).run(jobs)
        recs = by_id(result)
        assert recs[1].start == 0.0
        assert recs[2].start == 10.0
        assert result.makespan == 20.0

    def test_parallel_when_capacity_allows(self, tree):
        jobs = [
            Job(id=1, size=60, runtime=10.0),
            Job(id=2, size=60, runtime=10.0),
        ]
        result = sim(tree).run(jobs)
        recs = by_id(result)
        assert recs[1].start == recs[2].start == 0.0

    def test_arrivals_respected(self, tree):
        jobs = [
            Job(id=1, size=10, runtime=5.0, arrival=100.0),
            Job(id=2, size=10, runtime=5.0, arrival=0.0),
        ]
        result = sim(tree).run(jobs)
        recs = by_id(result)
        assert recs[2].start == 0.0
        assert recs[1].start == 100.0
        # makespan runs from the first *arrival*
        assert result.makespan == 105.0


class TestBackfilling:
    def test_easy_backfill_jumps_queue(self, tree):
        """Job 3 (small, short) backfills ahead of blocked job 2."""
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=10.0),   # blocked until t=100
            Job(id=3, size=20, runtime=50.0),    # fits now, ends before 100
        ]
        result = sim(tree).run(jobs)
        recs = by_id(result)
        assert recs[1].start == 0.0
        assert recs[3].start == 0.0  # backfilled
        assert recs[2].start == 100.0

    def test_backfill_must_not_delay_reservation(self, tree):
        """A long job that would overlap the shadow and exceed the spare
        may not backfill."""
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=120, runtime=10.0),   # needs 120: shadow t=100
            Job(id=3, size=28, runtime=500.0),   # 28 free now, but spare=8
        ]
        result = sim(tree, window=50).run(jobs)
        recs = by_id(result)
        assert recs[3].start >= 100.0

    def test_spare_rule_allows_long_narrow_jobs(self, tree):
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=120, runtime=10.0),   # shadow t=100, spare=8
            Job(id=3, size=8, runtime=500.0),    # fits in the spare
        ]
        result = sim(tree).run(jobs)
        assert by_id(result)[3].start == 0.0

    def test_fifo_only_when_window_zero(self, tree):
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=10.0),
            Job(id=3, size=20, runtime=50.0),
        ]
        result = sim(tree, window=0).run(jobs)
        recs = by_id(result)
        assert recs[3].start >= 100.0  # no backfilling at all

    def test_window_limits_lookahead(self, tree):
        """With window=1 only the first queued job may backfill."""
        jobs = [
            Job(id=1, size=100, runtime=100.0),
            Job(id=2, size=100, runtime=10.0),
            Job(id=3, size=200, runtime=10.0),  # can't ever fit now (128 max)
            Job(id=4, size=20, runtime=50.0),   # would fit, but outside window
        ]
        # size 200 > machine: invalid; use 120 instead (fits machine, not now)
        jobs[2] = Job(id=3, size=120, runtime=10.0)
        result = sim(tree, window=1).run(jobs)
        recs = by_id(result)
        assert recs[4].start > 0.0
        wide = sim(tree, window=10).run(jobs)
        assert by_id(wide)[4].start == 0.0


class TestSpeedups:
    def test_isolating_scheme_runs_faster(self, tree):
        job = Job(id=1, size=10, runtime=100.0, speedup=0.25)
        result = Simulator(JigsawAllocator(tree)).run([job])
        assert by_id(result)[1].end == pytest.approx(80.0)

    def test_baseline_ignores_speedups(self, tree):
        job = Job(id=1, size=10, runtime=100.0, speedup=0.25)
        result = sim(tree).run([job])
        assert by_id(result)[1].end == pytest.approx(100.0)


class TestMetricsAccounting:
    def test_utilization_over_demand_period(self, tree):
        # two sequential full-machine jobs: always 100% while demand lasts
        jobs = [
            Job(id=1, size=128, runtime=10.0),
            Job(id=2, size=128, runtime=10.0),
        ]
        result = sim(tree).run(jobs)
        assert result.steady_state_utilization == pytest.approx(100.0)

    def test_idle_gaps_without_demand_not_counted(self, tree):
        jobs = [
            Job(id=1, size=64, runtime=10.0, arrival=0.0),
            Job(id=2, size=64, runtime=10.0, arrival=1000.0),
        ]
        result = sim(tree).run(jobs)
        # Neither job ever waits, so the system is never "under demand":
        # steady-state utilization reports no scheduler loss (100 %) even
        # though the machine is mostly idle — that idleness shows up in
        # the overall figure instead.
        assert result.steady_state_utilization == pytest.approx(100.0)
        assert result.overall_utilization < 10.0

    def test_half_loaded_machine(self, tree):
        jobs = [
            Job(id=1, size=64, runtime=10.0),
            Job(id=2, size=64, runtime=20.0),
            # a queued job that cannot start keeps demand active:
            Job(id=3, size=128, runtime=1.0),
        ]
        result = sim(tree).run(jobs)
        recs = by_id(result)
        assert recs[3].start == 20.0
        # [0,10): 100%, [10,20): 50%; then job 3 runs alone (queue empty)
        assert result.busy_area == pytest.approx(64 * 10 * 2 + 64 * 10)

    def test_results_are_snapshots(self, tree):
        """Re-running the trace must not mutate earlier results."""
        jobs = [Job(id=1, size=10, runtime=100.0, speedup=1.0)]
        base = sim(tree).run(jobs)
        iso = Simulator(JigsawAllocator(tree)).run(jobs)
        assert by_id(base)[1].end == pytest.approx(100.0)
        assert by_id(iso)[1].end == pytest.approx(50.0)

    def test_sched_seconds_accumulate(self, tree):
        result = sim(tree).run([Job(id=i, size=4, runtime=5.0) for i in range(20)])
        assert result.sched_seconds > 0
        assert result.alloc_attempts >= 20


class TestValidationAndEdgeCases:
    def test_oversized_job_rejected_up_front(self, tree):
        with pytest.raises(ValueError, match="cluster has"):
            sim(tree).run([Job(id=1, size=129, runtime=1.0)])

    def test_allocator_must_be_idle(self, tree):
        allocator = BaselineAllocator(tree)
        allocator.allocate(99, 4)
        with pytest.raises(ValueError, match="idle"):
            Simulator(allocator)

    def test_unknown_policy_rejected(self, tree):
        with pytest.raises(ValueError, match="reservation policy"):
            Simulator(BaselineAllocator(tree), reservation_policy="wish")

    def test_empty_trace(self, tree):
        result = sim(tree).run([])
        assert result.jobs == []
        assert result.makespan == 0.0

    @pytest.mark.parametrize("policy", ["renew", "sticky", "slip"])
    def test_all_policies_complete_all_jobs(self, tree, policy):
        jobs = [
            Job(id=i, size=(i % 30) + 1, runtime=10.0 + i % 7)
            for i in range(120)
        ]
        result = Simulator(
            JigsawAllocator(tree), reservation_policy=policy
        ).run(jobs)
        assert len(result.jobs) == 120
        assert not result.unscheduled
