"""Registry/legacy parity and telemetry invariance.

The bound-instrument bridge promises the metric registry and the legacy
counter attributes are two views of the same storage; the property test
here holds them to it field for field, over randomized synthetic traces
and all five schemes.  Telemetry as a whole promises to be strictly
passive; the invariance tests hold the tracer/sampler/log stack to that.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import make_allocator
from repro.obs.bridge import (
    RESULT_METRICS,
    STATS_METRICS,
    STATS_ONLY_FIELDS,
    registry_for_stats,
    simulation_registry,
)
from repro.obs.metrics import MetricRegistry, format_labels
from repro.obs.sampler import TimeSeriesSampler
from repro.obs.tracer import Tracer
from repro.sched.job import Job
from repro.sched.log import ScheduleLog
from repro.sched.simulator import Simulator
from repro.topology.fattree import FatTree

SCHEMES = ("baseline", "ta", "laas", "jigsaw", "lc+s")


def _series(snapshot, name, labels):
    return snapshot[name + format_labels(tuple(labels), tuple(labels.values()))]


def _random_jobs(draw):
    n = draw(st.integers(min_value=5, max_value=40))
    jobs = []
    arrival = 0.0
    for i in range(n):
        arrival += draw(st.floats(min_value=0.0, max_value=200.0))
        jobs.append(Job(
            id=i,
            size=draw(st.integers(min_value=1, max_value=100)),
            runtime=draw(st.floats(min_value=1.0, max_value=500.0)),
            arrival=arrival,
        ))
    return jobs


@st.composite
def sim_inputs(draw):
    return _random_jobs(draw), draw(st.sampled_from(SCHEMES))


class TestParityProperty:
    @settings(max_examples=20, deadline=None)
    @given(sim_inputs())
    def test_registry_equals_legacy_counters(self, inputs):
        jobs, scheme = inputs
        tree = FatTree.from_radix(8)
        allocator = make_allocator(scheme, tree)
        log = ScheduleLog()
        result = Simulator(allocator, event_log=log).run(jobs, "prop")
        stats = allocator.stats
        registry = simulation_registry(result, stats, log)
        snap = registry.snapshot()
        labels = {"scheme": result.scheme, "trace": "prop"}

        # SimResult fields, field for field.
        for field, (name, _, _) in RESULT_METRICS.items():
            assert _series(snap, name, labels) == pytest.approx(
                getattr(result, field)
            ), field
        # AllocatorStats fields not mirrored on the result.
        for field in STATS_ONLY_FIELDS:
            name = STATS_METRICS[field][0]
            assert _series(snap, name, labels) == pytest.approx(
                getattr(stats, field)
            ), field
        # Mirrored stats fields agree with the allocator too (the result
        # copied them at run end; nothing ran since).
        for field in ("cache_hits", "cache_misses", "pods_pruned",
                      "candidate_hits", "memo_hits", "backtrack_steps",
                      "queue_prefiltered", "size_cut_skips",
                      "pass_vector_rounds"):
            assert getattr(result, field) == getattr(stats, field), field
        # Derived series.
        assert _series(
            snap, "repro_sim_jobs_completed_total", labels
        ) == len(result.jobs)
        assert _series(
            snap, "repro_sim_steady_state_utilization_pct", labels
        ) == pytest.approx(result.steady_state_utilization)
        for bin_label, count in result.instant.counts.items():
            assert _series(
                snap, "repro_sim_instant_samples_total",
                {**labels, "bin": bin_label},
            ) == count
        # ScheduleLog mix.
        mechanisms = log.start_mechanisms()
        for via in ("fifo", "backfill", "reserved"):
            assert _series(
                snap, "repro_sched_starts_total", {**labels, "via": via}
            ) == mechanisms.get(via, 0)
        assert _series(
            snap, "repro_sched_events_total", {**labels, "kind": "arrive"}
        ) == len(jobs)

    def test_view_is_live_not_a_copy(self):
        tree = FatTree.from_radix(8)
        allocator = make_allocator("jigsaw", tree)
        registry = registry_for_stats(allocator.stats)
        name = STATS_METRICS["attempts"][0]
        before = registry.snapshot()[name]
        allocator.allocate(1, 5)
        assert registry.snapshot()[name] == before + 1

    def test_as_registry_methods_delegate(self):
        tree = FatTree.from_radix(8)
        allocator = make_allocator("baseline", tree)
        log = ScheduleLog()
        result = Simulator(allocator, event_log=log).run(
            [Job(id=0, size=4, runtime=5.0)], "t"
        )
        assert STATS_METRICS["attempts"][0] in allocator.stats.as_registry()
        assert RESULT_METRICS["makespan"][0] in result.as_registry()
        assert "repro_sched_starts_total" in log.as_registry()


class TestTelemetryInvariance:
    def _jobs(self):
        return [
            Job(id=i, size=(i % 13) + 1, runtime=50.0 + 7 * (i % 5),
                arrival=4.0 * i)
            for i in range(60)
        ]

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_full_telemetry_changes_nothing(self, scheme):
        tree = FatTree.from_radix(8)
        plain = Simulator(make_allocator(scheme, tree)).run(self._jobs(), "t")

        tracer = Tracer(enabled=True)
        sim = Simulator(
            make_allocator(scheme, tree),
            event_log=ScheduleLog(),
            tracer=tracer,
            sampler=TimeSeriesSampler(25.0),
        )
        traced = sim.run(self._jobs(), "t")

        assert [
            (j.job_id, j.start, j.end) for j in plain.jobs
        ] == [(j.job_id, j.start, j.end) for j in traced.jobs]
        assert plain.makespan == traced.makespan
        assert plain.cache_hits == traced.cache_hits
        assert plain.cache_misses == traced.cache_misses
        assert plain.backtrack_steps == traced.backtrack_steps
        # and the traced run actually observed things
        names = {e["name"] for e in tracer.events}
        assert {"sched.pass", "alloc.search", "sched.start",
                "sched.complete"} <= names
        assert traced.samples

    def test_alloc_span_attrs_present(self):
        tree = FatTree.from_radix(8)
        allocator = make_allocator("jigsaw", tree)
        tracer = Tracer(enabled=True)
        allocator.tracer = tracer
        allocator.allocate(1, 5)
        allocator.allocate(2, tree.num_nodes)  # cannot fit: failed outcome
        searches = [
            e for e in tracer.events if e["name"] == "alloc.search"
        ]
        assert len(searches) == 2
        placed, failed = searches
        assert placed["attrs"]["outcome"] == "placed"
        assert placed["attrs"]["scheme"] == "jigsaw"
        assert placed["attrs"]["nodes"] == 5
        assert "strategy" in placed["attrs"]
        assert failed["attrs"]["outcome"] == "failed"
