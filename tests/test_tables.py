"""Forwarding tables: table-driven packets reach their destinations."""

import random

import pytest

from repro.core.registry import make_allocator
from repro.routing.tables import (
    dmodk_tables,
    partition_tables,
    tables_use_only_allocated_links,
)
from repro.topology.fattree import FatTree


@pytest.fixture(scope="module")
def tree():
    return FatTree.from_radix(8)


@pytest.fixture(scope="module")
def full_tables(tree):
    return dmodk_tables(tree)


class TestDmodkTables:
    def test_every_pair_delivered(self, tree, full_tables):
        rng = random.Random(1)
        for _ in range(300):
            src, dst = rng.sample(range(tree.num_nodes), 2)
            path = full_tables.forward(src, dst)
            assert path[0] == ("leaf", tree.leaf_of_node(src))
            assert path[-1] == ("leaf", tree.leaf_of_node(dst))

    def test_hop_counts(self, tree, full_tables):
        # same leaf: 1 switch; same pod: 3; cross pod: 5
        assert len(full_tables.forward(0, 1)) == 1
        assert len(full_tables.forward(0, tree.m1)) == 3
        assert len(full_tables.forward(0, tree.nodes_per_pod)) == 5

    def test_self_delivery_trivial(self, full_tables):
        assert full_tables.forward(5, 5) == []

    def test_table_sizes(self, tree, full_tables):
        assert len(full_tables.tables) == (
            tree.num_leaves + tree.num_l2 + tree.num_spines
        )
        for table in full_tables.tables.values():
            assert len(table) == tree.num_nodes

    def test_matches_dmodk_route(self, tree, full_tables):
        """Table-driven paths traverse the same switches dmodk_route says."""
        from repro.routing.dmodk import dmodk_route

        rng = random.Random(2)
        for _ in range(100):
            src, dst = rng.sample(range(tree.num_nodes), 2)
            route = dmodk_route(tree, src, dst)
            path = full_tables.forward(src, dst)
            if route.spine_up is not None:
                spine = next(s for s in path if s[0] == "spine")
                assert spine == (
                    "spine", route.spine_up.l2_index, route.spine_up.spine_index
                )

    def test_unknown_destination(self, full_tables):
        with pytest.raises(KeyError):
            full_tables.port(("leaf", 0), 10_000)


class TestPartitionTables:
    @pytest.mark.parametrize("size", [2, 5, 9, 16, 20, 33])
    def test_confined_and_complete(self, tree, size):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, size)
        tables = partition_tables(tree, alloc)
        assert tables_use_only_allocated_links(tree, tables, alloc)
        nodes = sorted(alloc.nodes)
        for src in nodes:
            for dst in nodes:
                if src == dst:
                    continue
                path = tables.forward(src, dst)
                assert path[-1] == ("leaf", tree.leaf_of_node(dst))

    def test_laas_partition_tables(self, tree):
        allocator = make_allocator("laas", tree)
        jid = 100
        for pod in range(tree.num_pods):
            for leaf in list(tree.leaves_of_pod(pod))[:2]:
                jid += 1
                allocator.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
        alloc = allocator.allocate(1, 11)
        tables = partition_tables(tree, alloc)
        assert tables_use_only_allocated_links(tree, tables, alloc)
        for dst in sorted(alloc.nodes)[1:]:
            tables.forward(sorted(alloc.nodes)[0], dst)

    def test_tables_do_not_cover_foreign_nodes(self, tree):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 8)
        tables = partition_tables(tree, alloc)
        outside = max(alloc.nodes) + tree.m1
        with pytest.raises(KeyError):
            tables.forward(min(alloc.nodes), outside)

    def test_audit_detects_foreign_link(self, tree):
        allocator = make_allocator("jigsaw", tree)
        alloc = allocator.allocate(1, 9)
        tables = partition_tables(tree, alloc)
        # corrupt a table entry on the remainder leaf (the one leaf that
        # does not own all of its uplinks) to point at a foreign uplink
        by_leaf = {}
        for link in alloc.leaf_links:
            by_leaf.setdefault(link.leaf, set()).add(link.l2_index)
        leaf, owned = next(
            (l, o) for l, o in by_leaf.items() if len(o) < tree.m1
        )
        foreign = next(i for i in range(tree.m1) if i not in owned)
        victim = next(
            d for d, p in tables.tables[("leaf", leaf)].items() if p >= tree.m1
        )
        tables.tables[("leaf", leaf)][victim] = tree.m1 + foreign
        assert not tables_use_only_allocated_links(tree, tables, alloc)
