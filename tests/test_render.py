"""ASCII rendering."""

import pytest

from repro.core.registry import make_allocator
from repro.topology.fattree import FatTree
from repro.topology.render import (
    job_symbols,
    render_allocation,
    render_free_summary,
    render_occupancy,
)


@pytest.fixture
def tree():
    return FatTree.from_radix(8)


def test_symbols_stable_and_unique_for_small_sets():
    symbols = job_symbols([9, 3, 7])
    assert len(set(symbols.values())) == 3
    assert job_symbols([3, 7, 9]) == symbols


def test_occupancy_empty_machine(tree):
    allocator = make_allocator("jigsaw", tree)
    text = render_occupancy(allocator.state)
    assert text.count("\n") == tree.num_pods - 1
    assert "[....]" in text
    assert text.count("[") == tree.num_leaves


def test_occupancy_shows_jobs(tree):
    allocator = make_allocator("jigsaw", tree)
    allocator.allocate(1, 4)
    allocator.allocate(2, 6)
    text = render_occupancy(allocator.state)
    assert "a" in text and "b" in text
    # exactly the allocated node counts appear
    assert text.count("a") == 4
    assert text.count("b") == 6


def test_occupancy_pod_subset(tree):
    allocator = make_allocator("jigsaw", tree)
    text = render_occupancy(allocator.state, pods=[0, 1])
    assert text.count("pod") == 2


def test_render_allocation_lists_links(tree):
    allocator = make_allocator("jigsaw", tree)
    alloc = allocator.allocate(1, 20)  # three-level: has spine links
    text = render_allocation(tree, alloc)
    assert "20 nodes" in text
    assert "uplinks [" in text
    assert "spines [" in text


def test_render_allocation_shows_padding(tree):
    allocator = make_allocator("laas", tree)
    jid = 100
    for pod in range(tree.num_pods):
        for leaf in list(tree.leaves_of_pod(pod))[:2]:
            jid += 1
            allocator.state.claim(jid, list(tree.nodes_of_leaf(leaf)))
    alloc = allocator.allocate(1, 11)
    assert "(+1 padding)" in render_allocation(tree, alloc)


def test_free_summary(tree):
    allocator = make_allocator("jigsaw", tree)
    allocator.allocate(1, tree.nodes_per_pod)
    text = render_free_summary(allocator.state)
    assert f"0/{tree.nodes_per_pod} free" in text
    assert text.count("\n") == tree.num_pods - 1
