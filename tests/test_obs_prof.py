"""Stage profiler: frame accounting, passivity plumbing, attribution."""

import math

import pytest

from repro.core.registry import make_allocator
from repro.experiments.runner import paper_setup, run_scheme
from repro.obs.prof import (
    HIST_BUCKETS,
    StageProfiler,
    get_profiler,
    merge_snapshots,
    render_attribution,
    set_profiler,
    snapshot_collapsed,
    top_level_seconds,
)
from repro.topology.fattree import FatTree

#: every stage name the instrumentation may emit, per scheme engine
#: (the catalog in docs/observability.md; base stages apply everywhere)
BASE_STAGES = {"search", "claim", "release"}
KNOWN_STAGES = BASE_STAGES | {
    "two_level", "three_level", "prefilter", "pod_fit",   # jigsaw/laas
    "memo_replay", "pod_enum",                            # lc+s
    "t1", "t2", "t3",                                     # ta
    "fill",                                               # baseline
}


class TestStageProfiler:
    def test_disabled_by_default(self):
        assert StageProfiler().enabled is False
        assert get_profiler().enabled is False

    def test_push_pop_counts_and_nesting(self):
        prof = StageProfiler(enabled=True)
        prof.scheme = "x"
        t0 = prof.push("outer")
        t1 = prof.push("inner")
        prof.pop(t1)
        prof.pop(t0)
        snap = prof.snapshot()
        stacks = {s["stack"]: s for s in snap["stages"]}
        assert set(stacks) == {"outer", "outer;inner"}
        assert stacks["outer"]["count"] == 1
        assert stacks["outer;inner"]["count"] == 1

    def test_self_time_excludes_children(self):
        prof = StageProfiler(enabled=True)
        prof.scheme = "x"
        t0 = prof.push("outer")
        t1 = prof.push("inner")
        for _ in range(1000):
            pass
        prof.pop(t1)
        prof.pop(t0)
        stacks = {s["stack"]: s for s in prof.snapshot()["stages"]}
        outer, inner = stacks["outer"], stacks["outer;inner"]
        assert outer["total_s"] >= inner["total_s"]
        assert outer["self_s"] <= outer["total_s"] - inner["total_s"] + 1e-9
        # Top-level totals already include child time.
        assert top_level_seconds(prof.snapshot()) == outer["total_s"]

    def test_stage_ctx_exception_safe(self):
        prof = StageProfiler(enabled=True)
        prof.scheme = "x"
        with pytest.raises(RuntimeError):
            with prof.stage("outer"):
                with prof.stage("inner"):
                    raise RuntimeError("unwind")
        # Both frames were popped despite the unwind...
        stacks = {s["stack"] for s in prof.snapshot()["stages"]}
        assert stacks == {"outer", "outer;inner"}
        # ...and the stack is balanced for the next use.
        with prof.stage("outer"):
            pass
        stacks = {s["stack"]: s for s in prof.snapshot()["stages"]}
        assert stacks["outer"]["count"] == 2

    def test_histogram_buckets_sum_to_count(self):
        prof = StageProfiler(enabled=True)
        prof.scheme = "x"
        for _ in range(37):
            prof.pop(prof.push("s"))
        (stage,) = prof.snapshot()["stages"]
        assert len(stage["hist_log2us"]) == HIST_BUCKETS
        assert sum(stage["hist_log2us"]) == stage["count"] == 37

    def test_merge_snapshots_adds(self):
        a = StageProfiler(enabled=True)
        a.scheme = "x"
        a.pop(a.push("s"))
        b = StageProfiler(enabled=True)
        b.scheme = "x"
        b.pop(b.push("s"))
        b.pop(b.push("t"))
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        stacks = {s["stack"]: s for s in merged["stages"]}
        assert stacks["s"]["count"] == 2
        assert stacks["t"]["count"] == 1

    def test_collapsed_stack_format(self):
        prof = StageProfiler(enabled=True)
        prof.scheme = "jigsaw"
        t0 = prof.push("search")
        prof.pop(prof.push("two_level"))
        prof.pop(t0)
        for text in (prof.to_collapsed(),
                     snapshot_collapsed(prof.snapshot())):
            lines = text.strip().splitlines()
            assert len(lines) == 2
            for line in lines:
                frames, _, us = line.rpartition(" ")
                assert frames.startswith("jigsaw;search")
                assert int(us) >= 0

    def test_set_profiler_restores(self):
        prev = get_profiler()
        mine = StageProfiler(enabled=True)
        try:
            assert set_profiler(mine) is prev
            assert get_profiler() is mine
        finally:
            set_profiler(prev)
        assert get_profiler() is prev

    def test_clear_resets(self):
        prof = StageProfiler(enabled=True)
        prof.scheme = "x"
        prof.pop(prof.push("s"))
        prof.clear()
        assert prof.snapshot() == {"stages": []}


class TestAllocatorIntegration:
    def test_allocator_picks_up_global_profiler(self):
        mine = StageProfiler(enabled=True)
        prev = set_profiler(mine)
        try:
            allocator = make_allocator("jigsaw", FatTree.from_radix(8))
        finally:
            set_profiler(prev)
        assert allocator.prof is mine
        allocator.allocate(1, 3)
        allocator.release(1)
        stacks = {s["stack"] for s in mine.snapshot()["stages"]}
        assert {"search", "claim", "release"} <= stacks

    @pytest.mark.parametrize(
        "scheme", ["baseline", "ta", "laas", "jigsaw", "lc+s"]
    )
    def test_stage_catalog_per_scheme(self, scheme):
        prof = StageProfiler(enabled=True)
        allocator = make_allocator(scheme, FatTree.from_radix(8))
        allocator.prof = prof
        for jid, size in enumerate((1, 3, 5, 8, 13, 20, 64, 3, 5), 1):
            allocator.allocate(jid, size)
        snap = prof.snapshot()
        names = {
            frame for s in snap["stages"]
            for frame in s["stack"].split(";")
        }
        assert names <= KNOWN_STAGES, names - KNOWN_STAGES
        assert "search" in names
        assert all(s["scheme"] == scheme for s in snap["stages"])

    def test_run_scheme_attaches_snapshot(self):
        setup = paper_setup("Synth-16", scale=0.004)
        result = run_scheme(setup, "jigsaw", profiled=True)
        assert result.prof is not None
        stacks = {s["stack"] for s in result.prof["stages"]}
        assert "search" in stacks
        # The profiler's account of the search stage is bounded by the
        # allocator wall time the simulator measured around it.
        search_total = sum(
            s["total_s"] for s in result.prof["stages"]
            if s["stack"] == "search"
        )
        assert 0.0 < search_total
        assert search_total <= result.sched_seconds * 1.05
        text = render_attribution(result.prof)
        assert "search" in text and "jigsaw" in text

    def test_unprofiled_run_has_no_snapshot(self):
        setup = paper_setup("Synth-16", scale=0.004)
        result = run_scheme(setup, "jigsaw")
        assert result.prof is None


class TestAttributionHelpers:
    def test_top_level_seconds_filters_scheme(self):
        snap = {"stages": [
            {"scheme": "a", "stack": "search", "count": 1,
             "total_s": 1.0, "self_s": 1.0, "hist_log2us": [1]},
            {"scheme": "a", "stack": "search;sub", "count": 1,
             "total_s": 0.5, "self_s": 0.5, "hist_log2us": [1]},
            {"scheme": "b", "stack": "claim", "count": 1,
             "total_s": 2.0, "self_s": 2.0, "hist_log2us": [1]},
        ]}
        assert top_level_seconds(snap) == 3.0
        assert top_level_seconds(snap, scheme="a") == 1.0
        assert math.isclose(top_level_seconds(snap, scheme="b"), 2.0)

    def test_render_attribution_empty(self):
        assert "no stages" in render_attribution({"stages": []})
